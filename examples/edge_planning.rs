//! Plan an edge-datacenter deployment for a metro area (§VI-F).
//!
//! Generates a synthetic 1000-user metro, then answers the operator
//! questions: how many edge datacenters does a given AR deadline require,
//! where does greedy placement fall short of optimal, and which users are
//! unreachable at any placement because their own access RTT already
//! exceeds the budget?
//!
//! Run with: `cargo run --example edge_planning`

use marnet::edge::placement::synthetic_metro;
use marnet::sim::rng::derive_rng;
use marnet::sim::time::SimDuration;

fn main() {
    println!("== edge datacenter planning: 1000 users, 60 candidate sites, 30 km metro ==\n");
    println!(
        "{:>10} {:>13} {:>18} {:>14}",
        "budget δ", "datacenters", "infeasible users", "users per DC"
    );
    for budget_ms in [10u64, 15, 20, 30, 50, 75] {
        let mut rng = derive_rng(31, "edge_planning");
        let problem =
            synthetic_metro(1000, 60, 30.0, SimDuration::from_millis(budget_ms), &mut rng);
        let solution = problem.solve_greedy();
        assert!(problem.validate(&solution), "solver produced an invalid cover");
        let covered = 1000 - solution.uncovered.len();
        println!(
            "{:>8}ms {:>13} {:>18} {:>14}",
            budget_ms,
            solution.cost(),
            solution.uncovered.len(),
            if solution.cost() > 0 { covered / solution.cost() } else { 0 },
        );
    }

    // Solver quality on a small instance, where exact search is affordable.
    let mut rng = derive_rng(32, "edge_planning.small");
    let problem = synthetic_metro(150, 18, 25.0, SimDuration::from_millis(14), &mut rng);
    let greedy = problem.solve_greedy();
    let exact = problem.solve_exact();
    println!(
        "\nsolver check (150 users, 18 sites, δ=14 ms): greedy {} DCs, optimal {} DCs, \
         lower bound {}",
        greedy.cost(),
        exact.cost(),
        problem.lower_bound()
    );
    println!(
        "\nTight AR deadlines are what make edge placement a real planning\n\
         problem: at 75 ms a couple of metro datacenters cover everyone, at\n\
         10-20 ms the map fragments into many small coverage islands and\n\
         LTE users drop out entirely (their access RTT alone busts δ)."
    );
}
