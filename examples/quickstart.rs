//! Quickstart: one MAR flow over the AR transport protocol.
//!
//! Builds the smallest meaningful topology — a phone on WiFi, an edge
//! server 18 ms away — streams the four Fig. 4 sub-streams for ten
//! simulated seconds, and prints what arrived and how fast.
//!
//! Run with: `cargo run --example quickstart`

use marnet::arcore::class::StreamKind;
use marnet::arcore::config::ArConfig;
use marnet::arcore::endpoint::{ArReceiver, ArSender, SenderPathConfig, Submit};
use marnet::arcore::message::ArMessage;
use marnet::arcore::multipath::PathRole;
use marnet::sim::engine::{Actor, ActorId, Event, SimCtx, Simulator};
use marnet::sim::link::{Bandwidth, LinkParams};
use marnet::sim::packet::Payload;
use marnet::sim::time::{SimDuration, SimTime};
use marnet::transport::nic::TxPath;

/// A 30 FPS camera app: a video frame, a sensor batch and a metadata
/// record per tick.
struct CameraApp {
    sender: ActorId,
    next_id: u64,
    frame: u64,
}

impl Actor for CameraApp {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        if matches!(ev, Event::Start | Event::Timer { .. }) {
            let now = ctx.now();
            let deadline = now + SimDuration::from_millis(75);
            let kind = if self.frame.is_multiple_of(10) {
                StreamKind::VideoReference
            } else {
                StreamKind::VideoInter
            };
            let size = if self.frame.is_multiple_of(10) { 20_000 } else { 8_000 };
            self.frame += 1;
            let id = self.next_id;
            self.next_id += 3;
            for (offset, (k, s)) in
                [(kind, size), (StreamKind::Sensor, 200), (StreamKind::Metadata, 100)]
                    .into_iter()
                    .enumerate()
            {
                let msg = ArMessage::new(id + offset as u64, k, s, now).with_deadline(deadline);
                ctx.send_message(self.sender, Payload::new(Submit(msg)));
            }
            ctx.schedule_timer(SimDuration::from_millis(33), 0);
        }
    }
}

fn main() {
    let mut sim = Simulator::new(2026);
    let phone = sim.reserve_actor();
    let server = sim.reserve_actor();
    let app = sim.reserve_actor();

    // A WiFi access path to an edge server: 20 Mb/s, 36 ms RTT — the
    // paper's Table II "cloud over WiFi" scenario.
    let up = sim.add_link(
        phone,
        server,
        LinkParams::new(Bandwidth::from_mbps(20.0), SimDuration::from_millis(18)),
    );
    let down = sim.add_link(
        server,
        phone,
        LinkParams::new(Bandwidth::from_mbps(20.0), SimDuration::from_millis(18)),
    );

    let cfg = ArConfig::default();
    let sender = ArSender::new(
        1,
        cfg.clone(),
        vec![SenderPathConfig { role: PathRole::Wifi, tx: TxPath::Link(up), link: Some(up) }],
    );
    let tx_stats = sender.stats();
    sim.install_actor(phone, sender);

    let receiver = ArReceiver::new(1, cfg.feedback_interval, vec![TxPath::Link(down)]);
    let rx_stats = receiver.stats();
    sim.install_actor(server, receiver);
    sim.install_actor(app, CameraApp { sender: phone, next_id: 0, frame: 0 });

    sim.run_until(SimTime::from_secs(10));

    let rx = rx_stats.borrow();
    let tx = tx_stats.borrow();
    println!("== marnet quickstart: 10 s of MAR offloading over 20 Mb/s / 36 ms RTT ==\n");
    for (kind, stats) in &rx.by_kind {
        let mut lat = stats.latency_ms.clone();
        println!(
            "{kind:<12} delivered {:>4}  median latency {:>6.1} ms  deadline hits {}/{}",
            stats.delivered,
            lat.median().unwrap_or(f64::NAN),
            stats.deadline_hits,
            stats.deadline_hits + stats.deadline_misses,
        );
    }
    println!(
        "\nsender: {} retransmissions, {} parity packets, {} bytes shed, \
         deadline-hit ratio {:.1}%",
        tx.retransmits,
        tx.parity_sent,
        tx.dropped_bytes(),
        rx.deadline_hit_ratio() * 100.0
    );
}
