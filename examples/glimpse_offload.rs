//! Compare offloading strategies for a vision MAR app on a smartphone.
//!
//! Runs the full end-to-end pipeline (camera → strategy → AR transport →
//! server compute → results → QoE) for each of the paper's named designs —
//! local-only, full-frame offload, CloudRidAR-style feature offload and
//! Glimpse-style tracking offload — on two networks: a good edge (16 ms
//! RTT) and an LTE path (120 ms RTT, Table II row 4).
//!
//! Run with: `cargo run --example glimpse_offload`

use marnet::app::compute::{ComputeModel, FrameWork};
use marnet::app::device::DeviceClass;
use marnet::app::pipeline::{MarClient, MarServer};
use marnet::app::qoe::QoeReport;
use marnet::app::strategy::OffloadStrategy;
use marnet::app::video::{FrameSource, VideoConfig};
use marnet::arcore::config::ArConfig;
use marnet::arcore::endpoint::{ArReceiver, ArSender, SenderPathConfig};
use marnet::arcore::multipath::PathRole;
use marnet::sim::engine::Simulator;
use marnet::sim::link::{Bandwidth, LinkParams};
use marnet::sim::rng::derive_rng;
use marnet::sim::time::{SimDuration, SimTime};
use marnet::transport::nic::TxPath;

fn run(strategy: OffloadStrategy, up_mbps: f64, one_way_ms: u64, secs: u64) -> QoeReport {
    let mut sim = Simulator::new(99);
    let c_snd = sim.reserve_actor();
    let s_rcv = sim.reserve_actor();
    let s_snd = sim.reserve_actor();
    let c_rcv = sim.reserve_actor();
    let client = sim.reserve_actor();
    let server = sim.reserve_actor();

    let one_way = SimDuration::from_millis(one_way_ms);
    let up = sim.add_link(c_snd, s_rcv, LinkParams::new(Bandwidth::from_mbps(up_mbps), one_way));
    let up_fb = sim.add_link(s_rcv, c_snd, LinkParams::new(Bandwidth::from_mbps(20.0), one_way));
    let down = sim.add_link(s_snd, c_rcv, LinkParams::new(Bandwidth::from_mbps(20.0), one_way));
    let down_fb =
        sim.add_link(c_rcv, s_snd, LinkParams::new(Bandwidth::from_mbps(up_mbps), one_way));

    let cfg = ArConfig::default();
    let sender = ArSender::new(
        1,
        cfg.clone(),
        vec![SenderPathConfig { role: PathRole::Wifi, tx: TxPath::Link(up), link: Some(up) }],
    )
    .with_qos_target(client);
    sim.install_actor(c_snd, sender);
    sim.install_actor(
        s_rcv,
        ArReceiver::new(1, cfg.feedback_interval, vec![TxPath::Link(up_fb)])
            .with_delivery_target(server),
    );
    sim.install_actor(
        s_snd,
        ArSender::new(
            2,
            cfg.clone(),
            vec![SenderPathConfig {
                role: PathRole::Wifi,
                tx: TxPath::Link(down),
                link: Some(down),
            }],
        ),
    );
    sim.install_actor(
        c_rcv,
        ArReceiver::new(2, cfg.feedback_interval, vec![TxPath::Link(down_fb)])
            .with_delivery_target(client),
    );

    let model = ComputeModel::new(30.0, FrameWork::vision_pipeline())
        .with_deadline(SimDuration::from_millis(75));
    let video = FrameSource::new(VideoConfig::ar_minimal(), 0.05, derive_rng(99, "example.video"));
    let mar = MarClient::new(c_snd, DeviceClass::Smartphone.spec(), model.clone(), strategy, video);
    let qoe = mar.qoe();
    sim.install_actor(client, mar);
    sim.install_actor(
        server,
        MarServer::new(s_snd, DeviceClass::Cloud.spec(), model.work, strategy),
    );
    sim.run_until(SimTime::from_secs(secs));
    let report = qoe.borrow_mut().report();
    report
}

fn main() {
    println!("== offloading strategies on a smartphone (10 s sessions) ==\n");
    for (net_label, up, rtt_half) in
        [("good edge, 16 ms RTT, 20 Mb/s up", 20.0, 8), ("LTE, 120 ms RTT, 6 Mb/s up", 6.0, 60)]
    {
        println!("--- {net_label} ---");
        println!(
            "{:<30} {:>7} {:>10} {:>9} {:>9} {:>7}",
            "strategy", "frames", "mean ms", "p95 ms", "≤75ms", "score"
        );
        for strategy in OffloadStrategy::canonical() {
            let r = run(strategy, up, rtt_half, 10);
            println!(
                "{:<30} {:>7} {:>10.1} {:>9.1} {:>8.1}% {:>7.1}",
                strategy.to_string(),
                r.frames,
                r.mean_latency_ms,
                r.p95_latency_ms,
                r.within_budget * 100.0,
                r.score()
            );
        }
        println!();
    }
    println!(
        "Glimpse's local tracking sidesteps the network for 9 of 10 frames —\n\
         the only strategy that stays usable once the RTT alone eats the\n\
         75 ms budget, which is the insight the paper draws from it."
    );
}
