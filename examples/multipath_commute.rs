//! A commuting MAR user: WiFi that comes and goes, LTE that costs money.
//!
//! Replays the §VI-D scenario — urban WiFi usable only ~54% of the time
//! (the Wi2Me numbers the paper cites) with near-ubiquitous LTE — under the
//! three multipath policies the paper proposes, and prints the service
//! quality each one buys per LTE megabyte.
//!
//! Run with: `cargo run --example multipath_commute`

use marnet::arcore::class::StreamKind;
use marnet::arcore::multipath::MultipathPolicy;
use marnet_bench::scenarios::run_multipath_commute;

fn main() {
    let secs = 180;
    println!("== {secs}s commute: WiFi usable ~54% of the time, LTE always on ==\n");
    println!("{:<42} {:>9} {:>10} {:>10} {:>8}", "policy", "video", "meta", "p95 ms", "LTE MB");
    for (label, policy) in [
        ("1: WiFi all the time, 4G for handover", MultipathPolicy::WifiOnly),
        ("2: WiFi preferred, 4G when WiFi is out", MultipathPolicy::WifiPreferred),
        ("3: WiFi and 4G simultaneously", MultipathPolicy::Aggregate),
    ] {
        let out = run_multipath_commute(policy, secs, 7);
        let r = out.receiver.borrow();
        let s = out.sender.borrow();
        let video = r.by_kind.get(&StreamKind::VideoInter);
        let p95 = video.map(|k| k.latency_ms.clone()).and_then(|mut h| h.p95()).unwrap_or(f64::NAN);
        println!(
            "{:<42} {:>9} {:>10} {:>10.1} {:>8.1}",
            label,
            video.map_or(0, |k| k.delivered),
            r.by_kind.get(&StreamKind::Metadata).map_or(0, |k| k.delivered),
            p95,
            s.cellular_bytes as f64 / 1e6,
        );
    }
    println!(
        "\nPolicy 1 protects the data plan but loses video in every WiFi gap\n\
         (metadata survives — the protocol moves critical data to LTE during\n\
         handover). Policy 2 is the 'almost 100% service, low LTE usage'\n\
         compromise; policy 3 buys the smoothest stream with the biggest\n\
         bill — the §VI-D menu, quantified."
    );
}
