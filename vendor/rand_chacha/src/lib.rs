//! Vendored minimal stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha stream cipher used as a deterministic RNG,
//! matching the layout of upstream `rand_chacha`: 256-bit key, 64-bit block
//! counter (words 12–13), zero stream id (words 14–15), words emitted in
//! block order, `next_u64` as two consecutive `u32`s (low half first).
//! Only [`ChaCha12Rng`] is provided — the variant the workspace uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rand_core;

use rand_core::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Runs the ChaCha block function with the given number of double rounds.
fn chacha_block(input: &[u32; 16], double_rounds: u32) -> [u32; 16] {
    let mut x = *input;
    for _ in 0..double_rounds {
        // Column round.
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }
    for (o, i) in x.iter_mut().zip(input.iter()) {
        *o = o.wrapping_add(*i);
    }
    x
}

/// A ChaCha stream cipher with 12 rounds, used as a deterministic RNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha12Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unconsumed word in `buf`; 16 means the buffer is exhausted.
    idx: usize,
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&CONSTANTS);
        input[4..12].copy_from_slice(&self.key);
        input[12] = self.counter as u32;
        input[13] = (self.counter >> 32) as u32;
        self.buf = chacha_block(&input, 6);
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        ChaCha12Rng { key, counter: 0, buf: [0; 16], idx: 16 }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let v = self.buf[self.idx];
        self.idx += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha12Rng::from_seed([7u8; 32]);
        let mut b = ChaCha12Rng::from_seed([7u8; 32]);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha12Rng::from_seed([1u8; 32]);
        let mut b = ChaCha12Rng::from_seed([2u8; 32]);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn block_function_diffuses_single_bit() {
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&CONSTANTS);
        let base = chacha_block(&input, 6);
        input[4] ^= 1;
        let flipped = chacha_block(&input, 6);
        let differing = base.iter().zip(flipped.iter()).filter(|(a, b)| a != b).count();
        assert_eq!(differing, 16, "one key bit must perturb every output word");
    }

    #[test]
    fn fill_bytes_handles_odd_lengths() {
        let mut rng = ChaCha12Rng::from_seed([3u8; 32]);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 7]);
    }

    #[test]
    fn output_is_roughly_balanced() {
        let mut rng = ChaCha12Rng::from_seed([9u8; 32]);
        let ones: u32 = (0..1000).map(|_| rng.next_u32().count_ones()).sum();
        // 32_000 bits, expect ~16_000 ones; allow a generous band.
        assert!((15_000..17_000).contains(&ones), "bit balance off: {ones}");
    }
}
