//! Vendored minimal stand-in for the `serde_json` crate.
//!
//! Serializes the vendored [`serde::Value`] data model to JSON text and
//! parses JSON text back. The writer is deterministic: struct fields keep
//! declaration order, map-like collections were already key-sorted by the
//! vendored `serde`, and floats print via Rust's shortest round-trip
//! formatting with a `.0` suffix for integral values (so they re-parse as
//! floats). Non-finite floats serialize as `null`, matching serde_json.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

pub use serde::Error;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Converts a value into the [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize_value())
}

/// Reconstructs a typed value from the [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::deserialize_value(value)
}

/// Parses JSON text into a typed value.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_str(text)?;
    T::deserialize_value(&value)
}

fn parse_value_str(text: &str) -> Result<Value, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(value)
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    // "1" → "1.0" so the value round-trips as a float.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Value::UInt(n) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Value::Float(f) => write_f64(out, *f),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            push_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            push_indent(out, indent, depth);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(&format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(&format!("unexpected character at byte {}", self.pos))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(&format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| Error::new("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(&format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().ok_or_else(|| Error::new("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(&format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::new("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("a \"quoted\" name\n".into())),
            ("xs".into(), Value::Array(vec![Value::UInt(1), Value::Float(2.5)])),
            ("neg".into(), Value::Int(-4)),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            ("empty".into(), Value::Array(vec![])),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn floats_keep_float_identity() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: Value = from_str("1.0").unwrap();
        assert_eq!(back, Value::Float(1.0));
    }

    #[test]
    fn integers_parse_as_integers() {
        assert_eq!(from_str::<Value>("42").unwrap(), Value::UInt(42));
        assert_eq!(from_str::<Value>("-42").unwrap(), Value::Int(-42));
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
    }

    #[test]
    fn pretty_printing_shape() {
        let v = Value::Object(vec![("a".into(), Value::Array(vec![Value::UInt(1)]))]);
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"open").is_err());
    }
}
