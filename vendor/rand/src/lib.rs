//! Vendored minimal stand-in for the `rand` crate facade.
//!
//! Provides the [`Rng`] extension trait over [`RngCore`] with the methods
//! the workspace uses: `gen`, `gen_range` (half-open and inclusive, integer
//! and float), and `gen_bool`. Integer ranges use Lemire's multiply-shift
//! reduction; floats use the standard 53-bit mantissa-fill giving uniforms
//! in `[0, 1)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub use rand_core::{RngCore, SeedableRng};

/// Types that can be sampled uniformly from an RNG's raw words
/// (the equivalent of upstream's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Converts a raw `u64` into a uniform `f64` in `[0, 1)` using 53 bits.
#[inline]
pub fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Scalar types that support uniform sampling over a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let width = (high as i128 - low as i128) as u128;
                let v = rng.next_u64() as u128;
                low.wrapping_add(((v * width) >> 64) as $t)
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let width = (high as i128 - low as i128) as u128 + 1;
                let v = rng.next_u64() as u128;
                low.wrapping_add(((v * width) >> 64) as $t)
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                low + (unit_f64(rng) as $t) * (high - low)
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                low + (unit_f64(rng) as $t) * (high - low)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from the given range.
    #[inline]
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Self: Sized,
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial deterministic counter RNG for range tests.
    struct Step(u64);
    impl RngCore for Step {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Step(42);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let g: f64 = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Step(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unit_f64_is_in_unit_interval() {
        let mut rng = Step(7);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = Step(5);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values should appear: {seen:?}");
    }
}
