//! Vendored minimal stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro with `pattern in strategy` bindings, integer/float range
//! strategies, tuples of strategies, [`strategy::Strategy::prop_map`] and
//! the unweighted `prop_oneof!` union, `prop::collection::vec`, `any::<T>()`
//! for small primitives and `prop::sample::Index`, and the `prop_assert*`
//! macros (which simply panic, so failures surface as test failures —
//! there is no shrinking).
//!
//! Every test function draws from a ChaCha12 stream seeded from the test's
//! name, so runs are fully deterministic. The case count defaults to 64 and
//! can be overridden with the `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// The RNG handed to strategies.
pub type TestRng = ChaCha12Rng;

/// Number of cases each property runs (env `PROPTEST_CASES`, default 64).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// Per-block configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases each property in the block runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: cases() }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Builds the deterministic RNG for a named property test.
pub fn test_rng(name: &str) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    ChaCha12Rng::seed_from_u64(hash)
}

pub mod strategy {
    //! The [`Strategy`] trait and implementations for ranges and tuples.

    use super::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of an output type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (the real proptest's
        /// `prop_map`; no shrinking here, so it is a plain functor).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Unweighted union of strategies with a common value type; each draw
    /// picks one alternative uniformly. Built by the `prop_oneof!` macro.
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// A union over the given alternatives.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    /// Boxes a strategy, erasing its concrete type (coercion helper for
    /// `prop_oneof!`).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }

    /// Strategy returned by [`crate::arbitrary::any`].
    pub struct Any<T> {
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! Default value generation for `any::<T>()`.

    use super::strategy::Any;
    use super::TestRng;
    use rand::Rng;

    /// Types with a canonical full-domain generation strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy generating arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { _marker: std::marker::PhantomData }
    }

    macro_rules! arbitrary_prim {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    arbitrary_prim!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A size specification for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy generating `Vec`s of an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling helpers.

    use super::TestRng;
    use rand::Rng;

    /// An index into a collection of yet-unknown length.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(usize);

    impl Index {
        /// Resolves the index against a concrete length.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl crate::arbitrary::Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.gen())
        }
    }
}

pub use arbitrary::any;

pub mod prelude {
    //! Everything a property-test module needs, via `use proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! The `prop::` namespace (collections, sampling).

        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...)` block runs
/// [`cases()`] times with fresh deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_rng(stringify!($name));
                for __case in 0..$crate::cases() {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Uniform choice between strategies producing the same value type. The
/// real proptest accepts `weight => strategy` arms; this subset is
/// unweighted only — use nested unions if skew is needed.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in -1.0f64..=1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..=1.0).contains(&f));
        }

        #[test]
        fn vectors_respect_size(v in prop::collection::vec(0u8..4, 2..10)) {
            prop_assert!((2..10).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn map_and_oneof_compose(
            v in prop_oneof![
                (0u32..10).prop_map(|n| n * 2),
                (100u32..110).prop_map(|n| n + 1),
            ],
        ) {
            prop_assert!(
                (v % 2 == 0 && v < 20) || (101..111).contains(&v),
                "value {v} outside both alternatives"
            );
        }

        #[test]
        fn tuples_and_index_compose(
            pair in (0u32..5, 10u32..20),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(pair.0 < 5 && (10..20).contains(&pair.1));
            prop_assert!(idx.index(7) < 7);
        }
    }

    #[test]
    fn test_rng_is_deterministic_per_name() {
        use rand::Rng;
        let a: u64 = crate::test_rng("x").gen();
        let b: u64 = crate::test_rng("x").gen();
        let c: u64 = crate::test_rng("y").gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
