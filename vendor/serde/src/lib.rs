//! Vendored minimal stand-in for the `serde` crate.
//!
//! The build environment has no crates-io access, so the workspace vendors a
//! small serialization framework that is source-compatible with the slice of
//! serde the marnet crates use: `#[derive(Serialize, Deserialize)]` on
//! non-generic structs and enums, plus `serde_json::{to_string,
//! to_string_pretty, from_str}`.
//!
//! Instead of serde's visitor-based streaming model, everything funnels
//! through the JSON-like [`Value`] tree. Map-like collections serialize with
//! **sorted keys** so artifacts are byte-stable regardless of hash-map
//! iteration order — a property the `marnet-lab` determinism guarantees rely
//! on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like tree value: the data model all (de)serialization goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (used for negative values).
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered set of key–value pairs (field order for structs).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The pairs of an object, or `None`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The elements of an array, or `None`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an `f64` if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(v) => Some(v as f64),
            Value::UInt(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(v) => Some(v),
            Value::Int(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as an `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Error produced by deserialization.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: &str) -> Self {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Looks up a field in an object's pairs (derive-generated code helper).
pub fn object_get<'a>(pairs: &'a [(String, Value)], key: &str) -> Result<&'a Value, Error> {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::new(&format!("missing field `{key}`")))
}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn serialize_value(&self) -> Value;
}

/// Deserialization out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

// --- primitive impls -------------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_u64()
                    .ok_or_else(|| Error::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::new(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_i64()
                    .ok_or_else(|| Error::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::new(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::new("expected number"))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().map(|f| f as f32).ok_or_else(|| Error::new("expected number"))
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| Error::new("expected string"))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Supports `&'static str` fields in derived types (static catalog
    /// tables). The string is leaked; only configuration-sized data should
    /// ever deserialize through this.
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::new("expected string"))?;
        Ok(Box::leak(s.to_string().into_boxed_str()))
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::new("expected single-char string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new("expected single-char string")),
        }
    }
}

// --- container impls -------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        T::deserialize_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(inner) => inner.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::new("expected array"))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::new("expected array"))?;
                let expected = [$($idx),+].len();
                if arr.len() != expected {
                    return Err(Error::new("wrong tuple length"));
                }
                Ok(($($name::deserialize_value(&arr[$idx])?,)+))
            }
        }
    )*};
}
ser_de_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Renders a serialized key for use in a JSON object position.
///
/// JSON object keys must be strings: string values pass through, integers
/// and unit enum variants stringify, anything else is rejected.
fn key_string(v: &Value) -> String {
    match v {
        Value::String(s) => s.clone(),
        Value::UInt(n) => n.to_string(),
        Value::Int(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key: {other:?}"),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(&k.serialize_value()), v.serialize_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<K: Serialize + std::hash::Hash + Eq, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(&k.serialize_value()), v.serialize_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::new("expected object"))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::deserialize_value(val)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::new("expected object"))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::deserialize_value(val)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        assert_eq!(Some(3u32).serialize_value(), Value::UInt(3));
        assert_eq!(Option::<u32>::deserialize_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::deserialize_value(&Value::UInt(7)).unwrap(), Some(7));
    }

    #[test]
    fn maps_serialize_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        m.insert("c".to_string(), 3u32);
        let Value::Object(pairs) = m.serialize_value() else { panic!("not an object") };
        let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["a", "b", "c"]);
    }

    #[test]
    fn tuple_round_trip() {
        let v = (1.5f64, 2u64).serialize_value();
        let back: (f64, u64) = Deserialize::deserialize_value(&v).unwrap();
        assert_eq!(back, (1.5, 2));
    }

    #[test]
    fn signed_negative_values() {
        assert_eq!((-3i64).serialize_value(), Value::Int(-3));
        assert_eq!(3i64.serialize_value(), Value::UInt(3));
        assert_eq!(i64::deserialize_value(&Value::Int(-3)).unwrap(), -3);
    }
}
