//! Vendored minimal stand-in for the `rand_core` crate.
//!
//! The build environment has no network access and no crates-io mirror, so
//! the workspace vendors the tiny slice of the `rand` ecosystem API that the
//! marnet crates actually use. The traits here are API-compatible with
//! `rand_core` 0.6 for that slice: [`RngCore`] and [`SeedableRng`]
//! (including the PCG32-based `seed_from_u64` expansion used upstream, so
//! seed-derived streams match the documented behaviour).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator: uniformly distributed raw words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A random number generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// The seed type, a fixed-size byte array.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it to a full seed with
    /// the same PCG32 expansion `rand_core` 0.6 uses.
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6_364_136_223_846_793_005;
            const INC: u64 = 11_634_580_027_462_260_723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let word = pcg32(&mut state);
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy([u8; 32]);
    impl SeedableRng for Dummy {
        type Seed = [u8; 32];
        fn from_seed(seed: Self::Seed) -> Self {
            Dummy(seed)
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_seed_sensitive() {
        let a = Dummy::seed_from_u64(1).0;
        let b = Dummy::seed_from_u64(1).0;
        let c = Dummy::seed_from_u64(2).0;
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, [0u8; 32], "expansion must not leave the seed empty");
    }
}
