//! Vendored stand-in for `serde_derive`.
//!
//! The build environment has no crates-io access, so this proc macro
//! hand-parses the item token stream (no `syn`/`quote`) and generates
//! implementations of the vendored `serde::Serialize` / `serde::Deserialize`
//! traits, which use a JSON-like [`serde::Value`] data model.
//!
//! Supported shapes — the ones the workspace actually uses:
//! named structs, tuple structs (including newtypes), unit structs, and
//! enums with unit, tuple, and named-field variants. Generic types and
//! `#[serde(...)]` attributes are not supported.

#![warn(missing_docs)]

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn ident_of(tok: &TokenTree) -> Option<String> {
    match tok {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

fn is_punct(tok: &TokenTree, ch: char) -> bool {
    matches!(tok, TokenTree::Punct(p) if p.as_char() == ch)
}

/// Advances `i` past any leading `#[...]` attributes and a `pub` /
/// `pub(...)` visibility qualifier.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        if *i < toks.len() && is_punct(&toks[*i], '#') {
            *i += 2; // '#' followed by the bracketed attribute group
            continue;
        }
        if *i < toks.len() && ident_of(&toks[*i]).as_deref() == Some("pub") {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
            continue;
        }
        break;
    }
}

/// Parses `name: Type` fields out of a brace-delimited group.
fn parse_named_fields(g: &Group) -> Vec<String> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = ident_of(&toks[i]).expect("expected field name");
        fields.push(name);
        i += 1;
        assert!(is_punct(&toks[i], ':'), "expected ':' after field name");
        i += 1;
        // Skip the type, tracking angle-bracket depth so commas inside
        // `Vec<(A, B)>`-style types don't terminate the field early.
        let mut depth = 0i32;
        while i < toks.len() {
            if is_punct(&toks[i], '<') {
                depth += 1;
            } else if is_punct(&toks[i], '>') {
                depth -= 1;
            } else if is_punct(&toks[i], ',') && depth == 0 {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    fields
}

/// Counts top-level comma-separated types in a paren-delimited group.
fn count_tuple_fields(g: &Group) -> usize {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    let mut last_was_comma = false;
    for tok in &toks {
        if is_punct(tok, '<') {
            depth += 1;
        } else if is_punct(tok, '>') {
            depth -= 1;
        } else if is_punct(tok, ',') && depth == 0 {
            count += 1;
            last_was_comma = true;
            continue;
        }
        last_was_comma = false;
    }
    if last_was_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(g: &Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = ident_of(&toks[i]).expect("expected variant name");
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = VariantFields::Named(parse_named_fields(g));
                i += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = VariantFields::Tuple(count_tuple_fields(g));
                i += 1;
                f
            }
            _ => VariantFields::Unit,
        };
        variants.push(Variant { name, fields });
        // Skip an optional `= discriminant` up to the separating comma.
        while i < toks.len() && !is_punct(&toks[i], ',') {
            i += 1;
        }
        i += 1;
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kw = ident_of(&toks[i]).expect("expected `struct` or `enum`");
    i += 1;
    let name = ident_of(&toks[i]).expect("expected item name");
    i += 1;
    assert!(
        !matches!(toks.get(i), Some(t) if is_punct(t, '<')),
        "serde_derive (vendored): generic types are not supported: {name}"
    );
    let kind = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_tuple_fields(g))
            }
            _ => ItemKind::UnitStruct,
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g))
            }
            _ => panic!("enum {name} has no body"),
        },
        other => panic!("cannot derive for `{other}` items"),
    };
    Item { name, kind }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", entries.join(", "))
        }
        ItemKind::TupleStruct(1) => "::serde::Serialize::serialize_value(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", entries.join(", "))
        }
        ItemKind::UnitStruct => "::serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::String(\
                             ::std::string::String::from(\"{vn}\"))"
                        ),
                        VariantFields::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::serialize_value(__f0))])"
                        ),
                        VariantFields::Tuple(n) => {
                            let pats: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let vals: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::serialize_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Array(::std::vec![{}]))])",
                                pats.join(", "),
                                vals.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let pats = fields.join(", ");
                            let vals: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::serialize_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {pats} }} => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Object(::std::vec![{}]))])",
                                vals.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize_value(\
                         ::serde::object_get(__obj, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::Error::new(\"expected object for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        ItemKind::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(\
             ::serde::Deserialize::deserialize_value(__v)?))"
        ),
        ItemKind::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize_value(&__arr[{i}])?"))
                .collect();
            format!(
                "let __arr = __v.as_array().ok_or_else(|| \
                 ::serde::Error::new(\"expected array for {name}\"))?;\n\
                 if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::Error::new(\"wrong tuple length for {name}\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        ItemKind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        ItemKind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0})", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::deserialize_value(__inner)?))"
                        )),
                        VariantFields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::deserialize_value(&__arr[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                 let __arr = __inner.as_array().ok_or_else(|| \
                                 ::serde::Error::new(\"expected array for {name}::{vn}\"))?;\n\
                                 if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                                 ::serde::Error::new(\"wrong arity for {name}::{vn}\")); }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({}))\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                        VariantFields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::deserialize_value(\
                                         ::serde::object_get(__fields, \"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                 let __fields = __inner.as_object().ok_or_else(|| \
                                 ::serde::Error::new(\"expected object for {name}::{vn}\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vn} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit}\n\
                 __other => ::std::result::Result::Err(::serde::Error::new(\
                 &::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                 let (__tag, __inner) = &__pairs[0];\n\
                 match __tag.as_str() {{\n\
                 {tagged}\n\
                 __other => ::std::result::Result::Err(::serde::Error::new(\
                 &::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::Error::new(\
                 \"expected string or single-key object for {name}\")),\n\
                 }}",
                unit = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(",\n"))
                },
                tagged = if tagged_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", tagged_arms.join(",\n"))
                },
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(__v: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl must parse")
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl must parse")
}
