//! Vendored minimal stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `Throughput`, `black_box`, `criterion_group!`,
//! `criterion_main!` — backed by a simple wall-clock loop: a short warm-up
//! sizes the measurement batch, then the mean time per iteration is printed
//! together with derived throughput. When invoked with `--test` (as
//! `cargo test --benches` does), every routine runs exactly once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
    /// The routine processes this many elements per iteration.
    Elements(u64),
}

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    test_mode: bool,
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode, measure_for: Duration::from_millis(200) }
    }
}

impl Criterion {
    /// Benchmarks a single routine.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.test_mode, self.measure_for, None, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            test_mode: self.test_mode,
            measure_for: self.measure_for,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    test_mode: bool,
    measure_for: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the per-benchmark sample size (accepted for API compatibility;
    /// the measurement window is time-based here).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks one routine within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.test_mode, self.measure_for, self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Runs and times the routine under test.
pub struct Bencher {
    test_mode: bool,
    measure_for: Duration,
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, storing the mean nanoseconds per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.ns_per_iter = 0.0;
            return;
        }
        // Warm-up: run until ~50 ms elapse to size the measurement batch.
        let warmup = Duration::from_millis(50);
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < warmup {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((self.measure_for.as_secs_f64() / per_iter).ceil() as u64).max(3);
        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        self.ns_per_iter = start.elapsed().as_secs_f64() * 1e9 / batch as f64;
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn run_one<F>(
    id: &str,
    test_mode: bool,
    measure_for: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher { test_mode, measure_for, ns_per_iter: 0.0 };
    f(&mut bencher);
    if test_mode {
        println!("test {id} ... ok (ran once in --test mode)");
        return;
    }
    let ns = bencher.ns_per_iter;
    let extra = match throughput {
        Some(Throughput::Bytes(bytes)) if ns > 0.0 => {
            let gib = bytes as f64 / ns * 1e9 / (1024.0 * 1024.0 * 1024.0);
            format!("  thrpt: {gib:.3} GiB/s")
        }
        Some(Throughput::Elements(n)) if ns > 0.0 => {
            let eps = n as f64 / ns * 1e9;
            format!("  thrpt: {eps:.0} elem/s")
        }
        _ => String::new(),
    };
    println!("{id:<50} time: {}{extra}", format_time(ns));
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Runs this benchmark group (generated by `criterion_group!`).
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_in_test_mode_runs_once() {
        let mut count = 0u32;
        let mut b =
            Bencher { test_mode: true, measure_for: Duration::from_millis(1), ns_per_iter: 0.0 };
        b.iter(|| count += 1);
        assert_eq!(count, 1);
    }

    #[test]
    fn format_time_scales() {
        assert!(format_time(5.0).ends_with("ns"));
        assert!(format_time(5e4).ends_with("µs"));
        assert!(format_time(5e7).ends_with("ms"));
        assert!(format_time(5e10).ends_with('s'));
    }
}
