//! Uplink/downlink asymmetry catalogs and helpers (§IV-D).
//!
//! The paper's argument: access links are provisioned download-heavy
//! (fixed ISPs at ratios 3.31-8.22, mobile at 1.81-3.20), usage is drifting
//! the same way (download:upload volume ~10:1 in the 1990s, ~3:1 in 2012,
//! 2.70:1 in 2016) — but MAR offloading *reverses* the traffic profile,
//! pushing video up and pulling only results down. This module records the
//! quoted numbers and builds asymmetric duplex links for the experiments.

use marnet_sim::link::{Bandwidth, LinkParams};
use marnet_sim::queue::QueueConfig;
use marnet_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// One access offer in the asymmetry catalog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessOffer {
    /// Provider/offer label.
    pub name: &'static str,
    /// Access family.
    pub kind: AccessKind,
    /// Downlink rate in Mb/s.
    pub down_mbps: f64,
    /// Uplink rate in Mb/s.
    pub up_mbps: f64,
}

/// Broad family of an access offer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Fixed broadband (ADSL/cable/fiber).
    Fixed,
    /// Mobile broadband (3G/4G).
    Mobile,
}

impl AccessOffer {
    /// Downlink:uplink ratio.
    pub fn ratio(&self) -> f64 {
        self.down_mbps / self.up_mbps
    }

    /// `true` if the offer is (near-)symmetric (ratio ≤ 1.1).
    pub fn is_symmetric(&self) -> bool {
        self.ratio() <= 1.1
    }
}

/// The §IV-D catalog: representative offers with the quoted ratios.
///
/// The fixed entries bracket the reported 3.31-8.22 ratios of the top-6
/// fastest US ISPs (exactly one symmetric), the Orange fiber offer
/// (500/200), and the mobile entries bracket the reported 1.81-3.20 with a
/// 2.49 average.
pub fn catalog() -> Vec<AccessOffer> {
    vec![
        AccessOffer {
            name: "US fixed ISP A (symmetric)",
            kind: AccessKind::Fixed,
            down_mbps: 150.0,
            up_mbps: 150.0,
        },
        AccessOffer {
            name: "US fixed ISP B",
            kind: AccessKind::Fixed,
            down_mbps: 200.0,
            up_mbps: 60.4,
        },
        AccessOffer {
            name: "US fixed ISP C",
            kind: AccessKind::Fixed,
            down_mbps: 180.0,
            up_mbps: 40.0,
        },
        AccessOffer {
            name: "US fixed ISP D",
            kind: AccessKind::Fixed,
            down_mbps: 120.0,
            up_mbps: 20.0,
        },
        AccessOffer {
            name: "US fixed ISP E (cable)",
            kind: AccessKind::Fixed,
            down_mbps: 100.0,
            up_mbps: 12.2,
        },
        AccessOffer {
            name: "Orange fiber (FR)",
            kind: AccessKind::Fixed,
            down_mbps: 500.0,
            up_mbps: 200.0,
        },
        AccessOffer {
            name: "US mobile ISP 1",
            kind: AccessKind::Mobile,
            down_mbps: 21.0,
            up_mbps: 11.6,
        },
        AccessOffer {
            name: "US mobile ISP 2",
            kind: AccessKind::Mobile,
            down_mbps: 20.0,
            up_mbps: 8.9,
        },
        AccessOffer {
            name: "US mobile ISP 3",
            kind: AccessKind::Mobile,
            down_mbps: 18.0,
            up_mbps: 6.4,
        },
        AccessOffer {
            name: "US mobile ISP 4",
            kind: AccessKind::Mobile,
            down_mbps: 16.0,
            up_mbps: 5.0,
        },
    ]
}

/// The historical download:upload *usage* ratio the paper traces (§IV-D-2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UsageRatio {
    /// Calendar year.
    pub year: u32,
    /// Download volume divided by upload volume.
    pub down_over_up: f64,
    /// What drove it.
    pub era: &'static str,
}

/// The usage-ratio history quoted in §IV-D-2.
pub fn usage_history() -> Vec<UsageRatio> {
    vec![
        UsageRatio { year: 1995, down_over_up: 10.0, era: "mail + web surfing" },
        UsageRatio {
            year: 2012,
            down_over_up: 3.0,
            era: "peer-to-peer & cloud storage grow uploads",
        },
        UsageRatio { year: 2016, down_over_up: 2.70, era: "streaming recession of P2P" },
    ]
}

/// Builds the two directions of an asymmetric access link: `down_mbps` down,
/// `down_mbps / ratio` up, shared one-way delay, and the §VI-H oversized
/// uplink buffer that makes the Fig. 3 pathology bite.
pub fn asymmetric_pair(
    down_mbps: f64,
    ratio: f64,
    one_way_delay: SimDuration,
    uplink_buffer_packets: usize,
) -> (LinkParams, LinkParams) {
    assert!(ratio >= 1.0, "asymmetry ratio must be ≥ 1, got {ratio}");
    let down = LinkParams::new(Bandwidth::from_mbps(down_mbps), one_way_delay)
        .with_queue(QueueConfig::DropTail { cap_packets: 300 });
    let up = LinkParams::new(Bandwidth::from_mbps(down_mbps / ratio), one_way_delay)
        .with_queue(QueueConfig::DropTail { cap_packets: uplink_buffer_packets });
    (down, up)
}

/// Byte ratio uploaded:downloaded for a MAR offloading session, given the
/// per-frame uplink payload and downlink result sizes — the "reversed
/// asymmetry" number the conclusion highlights.
pub fn mar_upload_ratio(uplink_bytes_per_frame: u64, downlink_bytes_per_frame: u64) -> f64 {
    assert!(downlink_bytes_per_frame > 0, "downlink bytes must be positive");
    uplink_bytes_per_frame as f64 / downlink_bytes_per_frame as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_ratios_match_the_quoted_spread() {
        let cat = catalog();
        let fixed: Vec<&AccessOffer> = cat
            .iter()
            .filter(|o| o.kind == AccessKind::Fixed && o.name.starts_with("US"))
            .collect();
        // Exactly one symmetric among the US fixed ISPs.
        assert_eq!(fixed.iter().filter(|o| o.is_symmetric()).count(), 1);
        // The rest span ~3.31 to ~8.22.
        let ratios: Vec<f64> =
            fixed.iter().filter(|o| !o.is_symmetric()).map(|o| o.ratio()).collect();
        let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ratios.iter().cloned().fold(0.0, f64::max);
        assert!((min - 3.31).abs() < 0.05, "min ratio {min}");
        assert!((max - 8.22).abs() < 0.05, "max ratio {max}");
    }

    #[test]
    fn mobile_ratios_average_near_quoted() {
        let cat = catalog();
        let mobile: Vec<f64> =
            cat.iter().filter(|o| o.kind == AccessKind::Mobile).map(|o| o.ratio()).collect();
        assert_eq!(mobile.len(), 4);
        let avg = mobile.iter().sum::<f64>() / mobile.len() as f64;
        assert!((avg - 2.49).abs() < 0.15, "avg mobile ratio {avg}");
        assert!(mobile.iter().all(|&r| (1.81..=3.21).contains(&r)), "{mobile:?}");
    }

    #[test]
    fn usage_history_trends_down() {
        let h = usage_history();
        assert!(h.windows(2).all(|w| w[0].down_over_up > w[1].down_over_up));
        assert_eq!(h.last().unwrap().down_over_up, 2.70);
    }

    #[test]
    fn asymmetric_pair_builds_rates_and_buffers() {
        let (down, up) = asymmetric_pair(10.0, 5.0, SimDuration::from_millis(10), 1000);
        assert_eq!(down.rate.as_mbps(), 10.0);
        assert_eq!(up.rate.as_mbps(), 2.0);
        assert_eq!(up.queue, QueueConfig::DropTail { cap_packets: 1000 });
        assert_eq!(down.delay, up.delay);
    }

    #[test]
    #[should_panic]
    fn ratio_below_one_panics() {
        let _ = asymmetric_pair(10.0, 0.5, SimDuration::ZERO, 10);
    }

    #[test]
    fn mar_reverses_the_profile() {
        // A CloudRidAR-style offload: ~40 KB of features up, ~1 KB of pose
        // results down, per frame → upload-dominated by ~40x while access
        // links assume the opposite.
        let r = mar_upload_ratio(40_000, 1_000);
        assert!(r > 10.0);
        let typical_link = 2.49; // download-favoured
        assert!(r * typical_link > 25.0, "the mismatch compounds");
    }
}
