//! # marnet-radio — wireless access-network models
//!
//! §IV of the paper surveys the access networks a MAR device can use —
//! HSPA+, LTE, LTE-Direct, WiFi (802.11n/ac), WiFi-Direct and the 5G KPI
//! targets — quoting both *theoretical* rates and *measured* behaviour
//! (OpenSignal/SpeedTest corpora and academic studies). Those measurement
//! campaigns are not reproducible here, so this crate encodes their reported
//! numbers as calibrated stochastic models:
//!
//! * [`profiles`] — the catalog of technologies with theoretical and
//!   measured throughput/latency, and samplers that turn a profile into
//!   [`marnet_sim::link::LinkParams`] for the simulator;
//! * [`variance`] — throughput variance processes (§IV-A-1 notes abrupt
//!   order-of-magnitude swings on HSPA+), including a link-modulator actor;
//! * [`dcf`] — the 802.11 DCF airtime model reproducing the *performance
//!   anomaly* of Fig. 2 (Heusse et al.), both analytically and as a
//!   packet-level shared-medium actor;
//! * [`coverage`] — availability/handover traces (WiFi present 98.9% of the
//!   time but usable only 53.8%, §IV-A-4);
//! * [`asymmetry`] — uplink/downlink asymmetry catalogs (§IV-D).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod asymmetry;
pub mod coverage;
pub mod dcf;
pub mod profiles;
pub mod variance;

pub use profiles::{LinkDirection, RadioProfile, RadioTechnology};
