//! Coverage and handover traces (§IV-A-4, §VI-D).
//!
//! The Wi2Me study the paper cites found that in a medium-sized French city
//! WiFi was *present* 98.9% of the time but an actual Internet connection was
//! available only 53.8% of the time, because open APs are sparse, association
//! and captive portals take seconds, and handover leaves multi-second gaps.
//! Cellular (3G) coverage was 99.23%.
//!
//! [`CoverageTrace`] generates alternating connected/disconnected intervals
//! with those duty cycles, and [`CoverageActor`] drives a pair of simulator
//! links up and down accordingly — the substrate for the E12 multipath
//! policy experiment ("WiFi all the time, 4G for handover", etc.).

use marnet_sim::engine::{Actor, Event, SimCtx};
use marnet_sim::link::LinkId;
use marnet_sim::time::{SimDuration, SimTime};
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// One interval of a coverage trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageInterval {
    /// Interval start.
    pub from: SimTime,
    /// Interval end (exclusive).
    pub to: SimTime,
    /// Whether the network is usable during the interval.
    pub usable: bool,
}

/// Parameters of the alternating-renewal coverage process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageModel {
    /// Long-run fraction of time the network is usable.
    pub usable_fraction: f64,
    /// Mean duration of a usable period.
    pub mean_usable: SimDuration,
    /// Extra unusable time tacked onto each gap for (re)association and
    /// handover — the "several seconds gaps" of §IV-A-4.
    pub handover_gap: SimDuration,
}

impl CoverageModel {
    /// The Wi2Me walking-user WiFi model: usable 53.8% of the time, with
    /// connection periods of ~30 s and multi-second handover gaps.
    pub fn wifi_urban_walk() -> Self {
        CoverageModel {
            usable_fraction: 0.538,
            mean_usable: SimDuration::from_secs(30),
            handover_gap: SimDuration::from_secs(3),
        }
    }

    /// Cellular coverage: usable 98% of the time with long connected spells
    /// (the paper quotes 3G coverage of 99.23% and LTE population coverage
    /// of 98%; gaps are tunnels/elevators).
    pub fn cellular() -> Self {
        CoverageModel {
            usable_fraction: 0.98,
            mean_usable: SimDuration::from_secs(300),
            handover_gap: SimDuration::from_millis(500),
        }
    }

    /// A stationary user on a personal AP: always usable.
    pub fn always_on() -> Self {
        CoverageModel {
            usable_fraction: 1.0,
            mean_usable: SimDuration::from_secs(3600),
            handover_gap: SimDuration::ZERO,
        }
    }

    /// Mean duration of an unusable gap implied by the duty cycle
    /// (excluding the fixed handover add-on).
    pub fn mean_gap(&self) -> SimDuration {
        if self.usable_fraction >= 1.0 {
            return SimDuration::ZERO;
        }
        let ratio = (1.0 - self.usable_fraction) / self.usable_fraction;
        self.mean_usable.mul_f64(ratio)
    }

    /// Generates a trace covering `[0, horizon)`. Interval lengths are
    /// exponential around the configured means (alternating renewal
    /// process), starting in the usable state.
    pub fn generate(&self, horizon: SimTime, rng: &mut ChaCha12Rng) -> CoverageTrace {
        let mut intervals = Vec::new();
        let mut t = SimTime::ZERO;
        let mut usable = true;
        let mean_gap = self.mean_gap();
        while t < horizon {
            let mean = if usable { self.mean_usable } else { mean_gap + self.handover_gap };
            let len = if mean == SimDuration::ZERO {
                horizon - t
            } else {
                // Exponential with the given mean; clamp away zero-length.
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                SimDuration::from_secs_f64((-u.ln() * mean.as_secs_f64()).max(1e-3))
            };
            let end = t.saturating_add(len).min(horizon);
            intervals.push(CoverageInterval { from: t, to: end, usable });
            t = end;
            usable = !usable;
        }
        CoverageTrace { intervals }
    }
}

/// A concrete sequence of usable/unusable intervals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageTrace {
    intervals: Vec<CoverageInterval>,
}

impl CoverageTrace {
    /// Builds a trace from explicit intervals.
    ///
    /// # Panics
    ///
    /// Panics if intervals are not contiguous from time zero.
    pub fn from_intervals(intervals: Vec<CoverageInterval>) -> Self {
        let mut t = SimTime::ZERO;
        for iv in &intervals {
            assert_eq!(iv.from, t, "intervals must be contiguous");
            assert!(iv.to >= iv.from, "interval ends before it starts");
            t = iv.to;
        }
        CoverageTrace { intervals }
    }

    /// A trace that is always usable until `horizon`.
    pub fn always(horizon: SimTime) -> Self {
        CoverageTrace {
            intervals: vec![CoverageInterval { from: SimTime::ZERO, to: horizon, usable: true }],
        }
    }

    /// The intervals of the trace.
    pub fn intervals(&self) -> &[CoverageInterval] {
        &self.intervals
    }

    /// Whether the network is usable at instant `t` (false past the end).
    pub fn usable_at(&self, t: SimTime) -> bool {
        self.intervals.iter().find(|iv| t >= iv.from && t < iv.to).is_some_and(|iv| iv.usable)
    }

    /// Fraction of `[0, horizon)` that is usable.
    pub fn usable_fraction(&self) -> f64 {
        let total: f64 = self.intervals.iter().map(|iv| (iv.to - iv.from).as_secs_f64()).sum();
        if total == 0.0 {
            return 0.0;
        }
        let usable: f64 = self
            .intervals
            .iter()
            .filter(|iv| iv.usable)
            .map(|iv| (iv.to - iv.from).as_secs_f64())
            .sum();
        usable / total
    }

    /// Number of usable→unusable transitions (handover events).
    pub fn gap_count(&self) -> usize {
        self.intervals.windows(2).filter(|w| w[0].usable && !w[1].usable).count()
    }
}

/// Actor that applies a [`CoverageTrace`] to a set of links, bringing them
/// up and down as the trace dictates.
#[derive(Debug)]
pub struct CoverageActor {
    trace: CoverageTrace,
    links: Vec<LinkId>,
    next: usize,
}

impl CoverageActor {
    /// Creates an actor driving `links` with `trace`.
    pub fn new(trace: CoverageTrace, links: Vec<LinkId>) -> Self {
        CoverageActor { trace, links, next: 0 }
    }

    fn apply(&mut self, ctx: &mut SimCtx) {
        while self.next < self.trace.intervals.len() {
            let iv = self.trace.intervals[self.next];
            if iv.from > ctx.now() {
                ctx.schedule_timer(iv.from - ctx.now(), 0);
                return;
            }
            for &l in &self.links {
                ctx.set_link_up(l, iv.usable);
            }
            self.next += 1;
        }
    }
}

impl Actor for CoverageActor {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        if matches!(ev, Event::Start | Event::Timer { .. }) {
            self.apply(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marnet_sim::rng::derive_rng;

    #[test]
    fn generated_trace_matches_duty_cycle() {
        let model = CoverageModel::wifi_urban_walk();
        let mut rng = derive_rng(11, "coverage");
        let trace = model.generate(SimTime::from_secs(20_000), &mut rng);
        let frac = trace.usable_fraction();
        assert!((frac - 0.538).abs() < 0.08, "usable fraction {frac}");
        assert!(trace.gap_count() > 50);
    }

    #[test]
    fn cellular_is_mostly_up() {
        let mut rng = derive_rng(12, "coverage2");
        let trace = CoverageModel::cellular().generate(SimTime::from_secs(100_000), &mut rng);
        let frac = trace.usable_fraction();
        assert!(frac > 0.93, "cellular usable fraction {frac}");
    }

    #[test]
    fn always_on_has_no_gaps() {
        let mut rng = derive_rng(13, "coverage3");
        let trace = CoverageModel::always_on().generate(SimTime::from_secs(1000), &mut rng);
        assert_eq!(trace.usable_fraction(), 1.0);
        assert_eq!(trace.gap_count(), 0);
    }

    #[test]
    fn usable_at_lookup() {
        let trace = CoverageTrace::from_intervals(vec![
            CoverageInterval { from: SimTime::ZERO, to: SimTime::from_secs(10), usable: true },
            CoverageInterval {
                from: SimTime::from_secs(10),
                to: SimTime::from_secs(15),
                usable: false,
            },
            CoverageInterval {
                from: SimTime::from_secs(15),
                to: SimTime::from_secs(30),
                usable: true,
            },
        ]);
        assert!(trace.usable_at(SimTime::from_secs(5)));
        assert!(!trace.usable_at(SimTime::from_secs(12)));
        assert!(trace.usable_at(SimTime::from_secs(20)));
        assert!(!trace.usable_at(SimTime::from_secs(31)));
        assert_eq!(trace.gap_count(), 1);
        let frac = trace.usable_fraction();
        assert!((frac - 25.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn non_contiguous_intervals_panic() {
        let _ = CoverageTrace::from_intervals(vec![CoverageInterval {
            from: SimTime::from_secs(1),
            to: SimTime::from_secs(2),
            usable: true,
        }]);
    }

    #[test]
    fn coverage_actor_toggles_links() {
        use marnet_sim::engine::Simulator;
        use marnet_sim::link::{Bandwidth, LinkParams};

        struct Idle;
        impl Actor for Idle {
            fn on_event(&mut self, _: &mut SimCtx, _: Event) {}
        }
        let mut sim = Simulator::new(1);
        let a = sim.add_actor(Idle);
        let b = sim.add_actor(Idle);
        let l = sim.add_link(a, b, LinkParams::new(Bandwidth::from_mbps(1.0), SimDuration::ZERO));
        let trace = CoverageTrace::from_intervals(vec![
            CoverageInterval { from: SimTime::ZERO, to: SimTime::from_secs(1), usable: true },
            CoverageInterval {
                from: SimTime::from_secs(1),
                to: SimTime::from_secs(2),
                usable: false,
            },
            CoverageInterval {
                from: SimTime::from_secs(2),
                to: SimTime::from_secs(3),
                usable: true,
            },
        ]);
        sim.add_actor(CoverageActor::new(trace, vec![l]));
        sim.run_until(SimTime::from_millis(500));
        assert!(sim.ctx().link_is_up(l));
        sim.run_until(SimTime::from_millis(1500));
        assert!(!sim.ctx().link_is_up(l));
        sim.run_until(SimTime::from_millis(2500));
        assert!(sim.ctx().link_is_up(l));
    }

    #[test]
    fn mean_gap_matches_duty_cycle() {
        let m = CoverageModel {
            usable_fraction: 0.5,
            mean_usable: SimDuration::from_secs(10),
            handover_gap: SimDuration::ZERO,
        };
        assert_eq!(m.mean_gap(), SimDuration::from_secs(10));
        assert_eq!(CoverageModel::always_on().mean_gap(), SimDuration::ZERO);
    }
}
