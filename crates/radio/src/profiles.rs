//! The wireless technology catalog of §IV-A, with theoretical and measured
//! characteristics, and samplers that produce simulator link parameters.
//!
//! All numbers are the ones quoted in the paper (its references \[26\]-\[42\]):
//! OpenSignal/SpeedTest corpus averages, the Singapore cellular study, the
//! NGMN 5G White Paper KPIs, and the LTE-Direct/WiFi-Direct specifications.

use marnet_sim::link::{Bandwidth, Jitter, LinkParams, LossModel};
use marnet_sim::queue::QueueConfig;
use marnet_sim::time::SimDuration;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which direction of an access link is being described.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkDirection {
    /// Network → device.
    Downlink,
    /// Device → network. MAR offloading stresses this direction (§IV-D).
    Uplink,
}

/// The wireless access technologies surveyed in §IV-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RadioTechnology {
    /// HSPA+ ("3.5G"). Theoretically 84-168 Mb/s down; measured around
    /// 0.66-3.48 Mb/s with 110-131 ms latency (§IV-A-1).
    HspaPlus,
    /// LTE. Theoretically 326 Mb/s down / 75 Mb/s up; measured around
    /// 6.6-19.6 Mb/s down with 66-85 ms latency (§IV-A-2).
    Lte,
    /// LTE-Direct device-to-device: ~1 km range, ~1 Gb/s, in-band (§IV-A-3).
    LteDirect,
    /// 802.11n WiFi: up to 600 Mb/s theoretical, ~6.7 Mb/s measured
    /// (§IV-A-4).
    Wifi80211n,
    /// 802.11ac WiFi: up to 1300 Mb/s theoretical, ~33.4 Mb/s measured
    /// (§IV-A-4).
    Wifi80211ac,
    /// WiFi-Direct device-to-device: ~200 m range, ~500 Mb/s (§IV-A-5).
    WifiDirect,
    /// The NGMN 5G White Paper AR use-case KPIs: 300/50 Mb/s with 10 ms
    /// end-to-end latency, seamless 0-100 km/h (§IV-C).
    FiveG,
}

impl RadioTechnology {
    /// All technologies, in the order the paper presents them.
    pub const ALL: [RadioTechnology; 7] = [
        RadioTechnology::HspaPlus,
        RadioTechnology::Lte,
        RadioTechnology::LteDirect,
        RadioTechnology::Wifi80211n,
        RadioTechnology::Wifi80211ac,
        RadioTechnology::WifiDirect,
        RadioTechnology::FiveG,
    ];

    /// Whether this is a device-to-device (no-infrastructure) technology.
    pub fn is_d2d(self) -> bool {
        matches!(self, RadioTechnology::LteDirect | RadioTechnology::WifiDirect)
    }

    /// The measured/specified characteristics for this technology.
    pub fn profile(self) -> RadioProfile {
        profile(self)
    }
}

impl fmt::Display for RadioTechnology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RadioTechnology::HspaPlus => "HSPA+",
            RadioTechnology::Lte => "LTE",
            RadioTechnology::LteDirect => "LTE-Direct",
            RadioTechnology::Wifi80211n => "802.11n",
            RadioTechnology::Wifi80211ac => "802.11ac",
            RadioTechnology::WifiDirect => "WiFi-Direct",
            RadioTechnology::FiveG => "5G (NGMN KPI)",
        };
        f.write_str(s)
    }
}

/// An inclusive `[low, high]` range of some measured quantity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Range {
    /// Lower end of the observed range.
    pub low: f64,
    /// Upper end of the observed range.
    pub high: f64,
}

impl Range {
    /// A range between `low` and `high`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(low <= high, "inverted range {low}..{high}");
        Range { low, high }
    }

    /// A degenerate single-value range.
    pub fn exact(v: f64) -> Self {
        Range { low: v, high: v }
    }

    /// The midpoint of the range.
    pub fn mid(self) -> f64 {
        (self.low + self.high) / 2.0
    }

    /// Samples uniformly within the range.
    pub fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        if self.low == self.high {
            self.low
        } else {
            rng.gen_range(self.low..=self.high)
        }
    }
}

/// Measured and theoretical characteristics of one access technology.
///
/// Rates are in Mb/s, latencies are end-to-end round-trip in milliseconds
/// (the paper's measurement corpora report RTT-like "latency").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadioProfile {
    /// The technology this profile describes.
    pub technology: RadioTechnology,
    /// Advertised peak downlink rate (Mb/s).
    pub theoretical_down_mbps: f64,
    /// Advertised peak uplink rate (Mb/s).
    pub theoretical_up_mbps: f64,
    /// Measured downlink throughput range (Mb/s).
    pub measured_down_mbps: Range,
    /// Measured uplink throughput range (Mb/s).
    pub measured_up_mbps: Range,
    /// Measured round-trip latency range (ms).
    pub latency_ms: Range,
    /// Typical random packet loss probability on the access link.
    pub loss: f64,
    /// Radio range in meters for D2D technologies (`None` for
    /// infrastructure networks).
    pub range_m: Option<f64>,
}

impl RadioProfile {
    /// Ratio between advertised and measured (midpoint) downlink rate —
    /// the "disparity" §IV-A-4 discusses.
    pub fn hype_factor(&self) -> f64 {
        self.theoretical_down_mbps / self.measured_down_mbps.mid()
    }

    /// Measured downlink:uplink asymmetry ratio at the midpoints.
    pub fn asymmetry_ratio(&self) -> f64 {
        self.measured_down_mbps.mid() / self.measured_up_mbps.mid()
    }

    /// Whether the midpoint RTT meets the paper's 75 ms round-trip budget
    /// for seamless MAR (§III-B).
    pub fn meets_mar_latency_budget(&self) -> bool {
        self.latency_ms.mid() <= 75.0
    }

    /// Whether the midpoint uplink sustains at least the paper's ~10 Mb/s
    /// minimal video feed (§III-B) on the direction MAR offloading uses.
    pub fn meets_mar_uplink_budget(&self) -> bool {
        self.measured_up_mbps.mid() >= 10.0
    }

    /// Samples concrete link parameters for one direction of this access
    /// network, drawing throughput and latency from the measured ranges.
    ///
    /// The one-way propagation delay is taken as half the sampled RTT; the
    /// uplink queue defaults to the oversized buffer of §VI-H.
    pub fn sample_link_params<R: Rng>(&self, dir: LinkDirection, rng: &mut R) -> LinkParams {
        let mbps = match dir {
            LinkDirection::Downlink => self.measured_down_mbps.sample(rng),
            LinkDirection::Uplink => self.measured_up_mbps.sample(rng),
        };
        let rtt_ms = self.latency_ms.sample(rng);
        let queue = match dir {
            LinkDirection::Downlink => QueueConfig::DropTail { cap_packets: 300 },
            LinkDirection::Uplink => QueueConfig::bloated_uplink(),
        };
        LinkParams::new(Bandwidth::from_mbps(mbps), SimDuration::from_millis_f64(rtt_ms / 2.0))
            .with_jitter(Jitter::Gaussian { sigma: SimDuration::from_millis_f64(rtt_ms * 0.05) })
            .with_loss(LossModel::Bernoulli { p: self.loss })
            .with_queue(queue)
    }

    /// Link parameters at the midpoints of the measured ranges
    /// (deterministic; used by calibration tests and Table II scenarios).
    pub fn nominal_link_params(&self, dir: LinkDirection) -> LinkParams {
        let mbps = match dir {
            LinkDirection::Downlink => self.measured_down_mbps.mid(),
            LinkDirection::Uplink => self.measured_up_mbps.mid(),
        };
        let queue = match dir {
            LinkDirection::Downlink => QueueConfig::DropTail { cap_packets: 300 },
            LinkDirection::Uplink => QueueConfig::bloated_uplink(),
        };
        LinkParams::new(
            Bandwidth::from_mbps(mbps),
            SimDuration::from_millis_f64(self.latency_ms.mid() / 2.0),
        )
        .with_loss(LossModel::Bernoulli { p: self.loss })
        .with_queue(queue)
    }
}

/// The calibrated catalog, one profile per technology (§IV-A numbers).
pub fn catalog() -> Vec<RadioProfile> {
    RadioTechnology::ALL.iter().map(|&t| profile(t)).collect()
}

fn profile(t: RadioTechnology) -> RadioProfile {
    match t {
        // §IV-A-1: theoretical 84-168 down / 22 up (consumer 21-42);
        // measured US: 0.66-3.48 Mb/s down, 109.94-131.22 ms; Singapore:
        // ~7 down / ~1.5 up, latency spikes to 800 ms.
        RadioTechnology::HspaPlus => RadioProfile {
            technology: t,
            theoretical_down_mbps: 168.0,
            theoretical_up_mbps: 22.0,
            measured_down_mbps: Range::new(0.66, 7.0),
            measured_up_mbps: Range::new(0.5, 1.5),
            latency_ms: Range::new(109.94, 131.22),
            loss: 0.01,
            range_m: None,
        },
        // §IV-A-2: theoretical 326 down / 75 up; measured US 6.56-12.26
        // down (OpenSignal) and 19.61/7.94 (SpeedTest); latency 66.06-85.03.
        RadioTechnology::Lte => RadioProfile {
            technology: t,
            theoretical_down_mbps: 326.0,
            theoretical_up_mbps: 75.0,
            measured_down_mbps: Range::new(6.56, 19.61),
            measured_up_mbps: Range::new(2.0, 7.94),
            latency_ms: Range::new(66.06, 85.03),
            loss: 0.005,
            range_m: None,
        },
        // §IV-A-3: ~1 km radius, ~1 Gb/s, "theoretically lower latencies";
        // not deployed, so measured == nominal spec derated.
        RadioTechnology::LteDirect => RadioProfile {
            technology: t,
            theoretical_down_mbps: 1000.0,
            theoretical_up_mbps: 1000.0,
            measured_down_mbps: Range::new(200.0, 600.0),
            measured_up_mbps: Range::new(200.0, 600.0),
            latency_ms: Range::new(5.0, 20.0),
            loss: 0.005,
            range_m: Some(1000.0),
        },
        // §IV-A-4: theoretical 600; OpenSignal measured ~6.7 down; average
        // reported 802.11 latency ~150 ms, a few ms on a personal AP.
        RadioTechnology::Wifi80211n => RadioProfile {
            technology: t,
            theoretical_down_mbps: 600.0,
            theoretical_up_mbps: 600.0,
            measured_down_mbps: Range::new(4.0, 10.0),
            measured_up_mbps: Range::new(4.0, 10.0),
            latency_ms: Range::new(20.0, 150.0),
            loss: 0.01,
            range_m: None,
        },
        // §IV-A-4: theoretical 1300; measured ~33.4 down.
        RadioTechnology::Wifi80211ac => RadioProfile {
            technology: t,
            theoretical_down_mbps: 1300.0,
            theoretical_up_mbps: 1300.0,
            measured_down_mbps: Range::new(20.0, 50.0),
            measured_up_mbps: Range::new(20.0, 50.0),
            // §IV-A-4: average reported 802.11 latency is ~150 ms, though a
            // controlled personal AP drops to a few ms (the Table II local
            // scenario models that case explicitly).
            latency_ms: Range::new(10.0, 150.0),
            loss: 0.005,
            range_m: None,
        },
        // §IV-A-5: 200 m range, 500 Mb/s, strongly mobility dependent.
        RadioTechnology::WifiDirect => RadioProfile {
            technology: t,
            theoretical_down_mbps: 500.0,
            theoretical_up_mbps: 500.0,
            measured_down_mbps: Range::new(40.0, 250.0),
            measured_up_mbps: Range::new(40.0, 250.0),
            latency_ms: Range::new(2.0, 15.0),
            loss: 0.01,
            range_m: Some(200.0),
        },
        // §IV-C: NGMN 5G AR KPIs — 300 down / 50 up, 10 ms end-to-end.
        RadioTechnology::FiveG => RadioProfile {
            technology: t,
            theoretical_down_mbps: 1000.0,
            theoretical_up_mbps: 500.0,
            measured_down_mbps: Range::new(100.0, 300.0),
            measured_up_mbps: Range::new(25.0, 50.0),
            latency_ms: Range::new(8.0, 12.0),
            loss: 0.001,
            range_m: None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marnet_sim::rng::derive_rng;

    #[test]
    fn catalog_covers_all_technologies() {
        let c = catalog();
        assert_eq!(c.len(), RadioTechnology::ALL.len());
        for (p, &t) in c.iter().zip(RadioTechnology::ALL.iter()) {
            assert_eq!(p.technology, t);
            assert!(p.measured_down_mbps.low > 0.0);
            assert!(p.latency_ms.low > 0.0);
        }
    }

    #[test]
    fn measured_rates_are_below_theoretical() {
        for p in catalog() {
            assert!(
                p.measured_down_mbps.high <= p.theoretical_down_mbps,
                "{}: measured exceeds theoretical",
                p.technology
            );
            assert!(p.hype_factor() >= 1.0, "{}", p.technology);
        }
    }

    #[test]
    fn only_5g_and_d2d_meet_the_mar_budgets() {
        // §IV concludes current infrastructure networks miss the 75 ms /
        // 10 Mb/s uplink budgets; 5G KPIs and (undeployed) D2D links meet
        // them. This is the paper's core motivating observation.
        for p in catalog() {
            let meets = p.meets_mar_latency_budget() && p.meets_mar_uplink_budget();
            let expected = matches!(
                p.technology,
                RadioTechnology::FiveG | RadioTechnology::LteDirect | RadioTechnology::WifiDirect
            );
            assert_eq!(meets, expected, "{}", p.technology);
        }
    }

    #[test]
    fn hspa_fails_latency_lte_borderline() {
        let hspa = RadioTechnology::HspaPlus.profile();
        assert!(!hspa.meets_mar_latency_budget());
        let lte = RadioTechnology::Lte.profile();
        assert!(!lte.meets_mar_latency_budget());
        // But LTE is "noticeable enough to enable some real-time apps":
        // its best-case latency is under the 100 ms interactive budget.
        assert!(lte.latency_ms.low < 100.0);
    }

    #[test]
    fn sampled_params_stay_in_range() {
        let mut rng = derive_rng(3, "profiles.test");
        let p = RadioTechnology::Lte.profile();
        for _ in 0..100 {
            let up = p.sample_link_params(LinkDirection::Uplink, &mut rng);
            let mbps = up.rate.as_mbps();
            assert!(
                mbps >= p.measured_up_mbps.low - 1e-9 && mbps <= p.measured_up_mbps.high + 1e-9
            );
            let one_way_ms = up.delay.as_millis_f64();
            assert!(one_way_ms >= p.latency_ms.low / 2.0 - 1e-9);
            assert!(one_way_ms <= p.latency_ms.high / 2.0 + 1e-9);
        }
    }

    #[test]
    fn uplink_gets_the_bloated_buffer() {
        let mut rng = derive_rng(3, "profiles.test2");
        let p = RadioTechnology::Lte.profile();
        let up = p.sample_link_params(LinkDirection::Uplink, &mut rng);
        assert_eq!(up.queue, QueueConfig::DropTail { cap_packets: 1000 });
        let down = p.sample_link_params(LinkDirection::Downlink, &mut rng);
        assert_eq!(down.queue, QueueConfig::DropTail { cap_packets: 300 });
    }

    #[test]
    fn d2d_flags_and_ranges() {
        assert!(RadioTechnology::LteDirect.is_d2d());
        assert!(RadioTechnology::WifiDirect.is_d2d());
        assert!(!RadioTechnology::Lte.is_d2d());
        assert_eq!(RadioTechnology::LteDirect.profile().range_m, Some(1000.0));
        assert_eq!(RadioTechnology::WifiDirect.profile().range_m, Some(200.0));
        assert_eq!(RadioTechnology::FiveG.profile().range_m, None);
    }

    #[test]
    fn range_sampling() {
        let mut rng = derive_rng(1, "range");
        let r = Range::new(2.0, 4.0);
        for _ in 0..50 {
            let v = r.sample(&mut rng);
            assert!((2.0..=4.0).contains(&v));
        }
        assert_eq!(Range::exact(3.0).sample(&mut rng), 3.0);
        assert_eq!(r.mid(), 3.0);
    }

    #[test]
    #[should_panic]
    fn inverted_range_panics() {
        let _ = Range::new(4.0, 2.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(RadioTechnology::HspaPlus.to_string(), "HSPA+");
        assert_eq!(RadioTechnology::Wifi80211ac.to_string(), "802.11ac");
    }
}
