//! Throughput-variance processes for wireless links.
//!
//! §IV-A-1 observes that cellular throughput "exhibit\[s\] large variations
//! over time, with abrupt changes of several orders of magnitude", and §IV-C
//! argues that no congestion controller is prompt enough to track them —
//! hence the paper's requirement that 5G bound rate *variance*, not just
//! mean rate. These processes drive a simulator link's rate over time.

use marnet_sim::engine::{Actor, ActorId, Event, SimCtx};
use marnet_sim::link::{Bandwidth, LinkId};
use marnet_sim::time::{SimDuration, SimTime};
use rand::Rng;
use rand_chacha::ChaCha12Rng;

/// A stochastic data-rate process sampled at link-update instants.
pub trait RateProcess {
    /// The rate at virtual time `t`. Successive calls must use
    /// non-decreasing `t`.
    fn rate_at(&mut self, t: SimTime) -> Bandwidth;
}

/// A constant rate (the degenerate process).
#[derive(Debug, Clone, Copy)]
pub struct ConstantRate(pub Bandwidth);

impl RateProcess for ConstantRate {
    fn rate_at(&mut self, _t: SimTime) -> Bandwidth {
        self.0
    }
}

/// AR(1) process on the log-rate: smooth lognormal wander around a median.
///
/// `log10(rate_t) = rho * log10(rate_{t-1}) + (1-rho) * log10(median) + eps`,
/// with `eps ~ N(0, sigma)`. `rho` close to 1 gives slowly-varying rates;
/// `sigma` around 0.3 gives the half-order-of-magnitude swings seen in the
/// cellular measurement studies.
#[derive(Debug)]
pub struct Ar1LogRate {
    median: f64,
    sigma: f64,
    rho: f64,
    current_log: f64,
    rng: ChaCha12Rng,
}

impl Ar1LogRate {
    /// Creates the process around `median` with innovation `sigma` (in
    /// decades) and autocorrelation `rho`.
    ///
    /// # Panics
    ///
    /// Panics if `median` is not positive, or `rho` outside `[0, 1)`.
    pub fn new(median: Bandwidth, sigma: f64, rho: f64, rng: ChaCha12Rng) -> Self {
        let m = median.as_bps() as f64;
        assert!(m > 0.0, "median must be positive");
        assert!((0.0..1.0).contains(&rho), "rho must be in [0,1): {rho}");
        Ar1LogRate { median: m.log10(), sigma, rho, current_log: m.log10(), rng }
    }

    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl RateProcess for Ar1LogRate {
    fn rate_at(&mut self, _t: SimTime) -> Bandwidth {
        let eps = self.gaussian() * self.sigma;
        self.current_log = self.rho * self.current_log + (1.0 - self.rho) * self.median + eps;
        Bandwidth::from_bps(10f64.powf(self.current_log).max(1.0) as u64)
    }
}

/// Two-state Markov rate: a good state and a collapsed state, producing the
/// abrupt order-of-magnitude drops of §IV-A-1.
#[derive(Debug)]
pub struct MarkovRate {
    good: Bandwidth,
    bad: Bandwidth,
    /// Per-step probability of leaving the good state.
    p_drop: f64,
    /// Per-step probability of recovering from the bad state.
    p_recover: f64,
    in_bad: bool,
    rng: ChaCha12Rng,
}

impl MarkovRate {
    /// Creates a good/bad switching process.
    pub fn new(
        good: Bandwidth,
        bad: Bandwidth,
        p_drop: f64,
        p_recover: f64,
        rng: ChaCha12Rng,
    ) -> Self {
        MarkovRate { good, bad, p_drop, p_recover, in_bad: false, rng }
    }
}

impl RateProcess for MarkovRate {
    fn rate_at(&mut self, _t: SimTime) -> Bandwidth {
        if self.in_bad {
            if self.rng.gen_bool(self.p_recover.clamp(0.0, 1.0)) {
                self.in_bad = false;
            }
        } else if self.rng.gen_bool(self.p_drop.clamp(0.0, 1.0)) {
            self.in_bad = true;
        }
        if self.in_bad {
            self.bad
        } else {
            self.good
        }
    }
}

/// A piecewise-constant scripted rate, for figure scenarios that need exact
/// rate changes at exact times (e.g. Fig. 4's two throughput-drop events).
#[derive(Debug, Clone)]
pub struct ScriptedRate {
    /// `(from_time, rate)` steps, in increasing time order.
    steps: Vec<(SimTime, Bandwidth)>,
}

impl ScriptedRate {
    /// Creates a scripted process from `(time, rate)` steps.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty or not time-sorted.
    pub fn new(steps: Vec<(SimTime, Bandwidth)>) -> Self {
        assert!(!steps.is_empty(), "need at least one step");
        assert!(steps.windows(2).all(|w| w[0].0 <= w[1].0), "steps must be sorted");
        ScriptedRate { steps }
    }
}

impl RateProcess for ScriptedRate {
    fn rate_at(&mut self, t: SimTime) -> Bandwidth {
        let mut rate = self.steps[0].1;
        for &(from, r) in &self.steps {
            if t >= from {
                rate = r;
            } else {
                break;
            }
        }
        rate
    }
}

/// An actor that periodically re-samples a [`RateProcess`] and applies it to
/// one or two simulator links (e.g. both directions of an access network).
pub struct LinkModulator {
    links: Vec<LinkId>,
    process: Box<dyn RateProcess>,
    interval: SimDuration,
    /// Scale factors applied per link (e.g. uplink = 0.3 × process rate to
    /// keep the asymmetry ratio while both directions fade together).
    scales: Vec<f64>,
}

impl std::fmt::Debug for LinkModulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinkModulator")
            .field("links", &self.links)
            .field("interval", &self.interval)
            .finish()
    }
}

impl LinkModulator {
    /// Modulates `links` every `interval` with the given process, all links
    /// getting the same rate.
    pub fn new(links: Vec<LinkId>, process: Box<dyn RateProcess>, interval: SimDuration) -> Self {
        let scales = vec![1.0; links.len()];
        LinkModulator { links, process, interval, scales }
    }

    /// Sets per-link scale factors, builder style.
    ///
    /// # Panics
    ///
    /// Panics if the number of scales differs from the number of links.
    #[must_use]
    pub fn with_scales(mut self, scales: Vec<f64>) -> Self {
        assert_eq!(scales.len(), self.links.len(), "one scale per link");
        self.scales = scales;
        self
    }

    fn apply(&mut self, ctx: &mut SimCtx) {
        let rate = self.process.rate_at(ctx.now());
        for (&link, &scale) in self.links.iter().zip(&self.scales) {
            let scaled = Bandwidth::from_bps((rate.as_bps() as f64 * scale) as u64);
            ctx.set_link_rate(link, scaled);
        }
    }
}

impl Actor for LinkModulator {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        match ev {
            Event::Start | Event::Timer { .. } => {
                self.apply(ctx);
                ctx.schedule_timer(self.interval, 0);
            }
            _ => {}
        }
    }
}

/// Convenience: spawns a [`LinkModulator`] into a simulator.
pub fn modulate_links(
    sim: &mut marnet_sim::engine::Simulator,
    links: Vec<LinkId>,
    process: Box<dyn RateProcess>,
    interval: SimDuration,
) -> ActorId {
    sim.add_actor(LinkModulator::new(links, process, interval))
}

#[cfg(test)]
mod tests {
    use super::*;
    use marnet_sim::rng::derive_rng;

    #[test]
    fn constant_is_constant() {
        let mut p = ConstantRate(Bandwidth::from_mbps(5.0));
        assert_eq!(p.rate_at(SimTime::ZERO), Bandwidth::from_mbps(5.0));
        assert_eq!(p.rate_at(SimTime::from_secs(100)), Bandwidth::from_mbps(5.0));
    }

    #[test]
    fn ar1_wanders_around_median() {
        let mut p = Ar1LogRate::new(Bandwidth::from_mbps(10.0), 0.15, 0.9, derive_rng(1, "ar1"));
        let mut sum_log = 0.0;
        let n = 5000;
        for i in 0..n {
            let r = p.rate_at(SimTime::from_millis(i));
            sum_log += (r.as_bps() as f64).log10();
        }
        let mean_log = sum_log / n as f64;
        // Median is 10 Mb/s = 1e7 bps → log10 = 7.
        assert!((mean_log - 7.0).abs() < 0.2, "mean log rate {mean_log}");
    }

    #[test]
    fn ar1_varies() {
        let mut p = Ar1LogRate::new(Bandwidth::from_mbps(10.0), 0.3, 0.8, derive_rng(2, "ar1b"));
        let rates: Vec<u64> =
            (0..100).map(|i| p.rate_at(SimTime::from_millis(i)).as_bps()).collect();
        let min = *rates.iter().min().unwrap() as f64;
        let max = *rates.iter().max().unwrap() as f64;
        assert!(max / min > 2.0, "expected noticeable variance: {min}..{max}");
    }

    #[test]
    fn markov_produces_both_states() {
        let mut p = MarkovRate::new(
            Bandwidth::from_mbps(10.0),
            Bandwidth::from_kbps(100.0),
            0.1,
            0.3,
            derive_rng(3, "markov"),
        );
        let mut good = 0;
        let mut bad = 0;
        for i in 0..2000 {
            match p.rate_at(SimTime::from_millis(i)).as_mbps() {
                m if m > 1.0 => good += 1,
                _ => bad += 1,
            }
        }
        assert!(good > 0 && bad > 0, "good={good} bad={bad}");
        // Stationary bad fraction = p_drop / (p_drop + p_recover) = 0.25.
        let frac = bad as f64 / 2000.0;
        assert!((frac - 0.25).abs() < 0.1, "bad fraction {frac}");
    }

    #[test]
    fn scripted_steps() {
        let mut p = ScriptedRate::new(vec![
            (SimTime::ZERO, Bandwidth::from_mbps(10.0)),
            (SimTime::from_secs(5), Bandwidth::from_mbps(2.0)),
            (SimTime::from_secs(10), Bandwidth::from_mbps(6.0)),
        ]);
        assert_eq!(p.rate_at(SimTime::from_secs(1)).as_mbps(), 10.0);
        assert_eq!(p.rate_at(SimTime::from_secs(5)).as_mbps(), 2.0);
        assert_eq!(p.rate_at(SimTime::from_secs(7)).as_mbps(), 2.0);
        assert_eq!(p.rate_at(SimTime::from_secs(60)).as_mbps(), 6.0);
    }

    #[test]
    #[should_panic]
    fn scripted_requires_sorted_steps() {
        let _ = ScriptedRate::new(vec![
            (SimTime::from_secs(5), Bandwidth::from_mbps(2.0)),
            (SimTime::ZERO, Bandwidth::from_mbps(10.0)),
        ]);
    }

    #[test]
    fn modulator_updates_link_rate() {
        use marnet_sim::engine::Simulator;
        use marnet_sim::link::LinkParams;

        struct Idle;
        impl Actor for Idle {
            fn on_event(&mut self, _: &mut SimCtx, _: Event) {}
        }
        let mut sim = Simulator::new(9);
        let a = sim.add_actor(Idle);
        let b = sim.add_actor(Idle);
        let l = sim.add_link(a, b, LinkParams::new(Bandwidth::from_mbps(1.0), SimDuration::ZERO));
        let script = ScriptedRate::new(vec![
            (SimTime::ZERO, Bandwidth::from_mbps(10.0)),
            (SimTime::from_secs(1), Bandwidth::from_mbps(3.0)),
        ]);
        modulate_links(&mut sim, vec![l], Box::new(script), SimDuration::from_millis(100));
        sim.run_until(SimTime::from_millis(500));
        assert_eq!(sim.ctx().link_rate(l).as_mbps(), 10.0);
        sim.run_until(SimTime::from_millis(1500));
        assert_eq!(sim.ctx().link_rate(l).as_mbps(), 3.0);
    }

    #[test]
    fn modulator_scales_per_link() {
        use marnet_sim::engine::Simulator;
        use marnet_sim::link::LinkParams;

        struct Idle;
        impl Actor for Idle {
            fn on_event(&mut self, _: &mut SimCtx, _: Event) {}
        }
        let mut sim = Simulator::new(9);
        let a = sim.add_actor(Idle);
        let b = sim.add_actor(Idle);
        let down = sim.add_link(a, b, LinkParams::new(Bandwidth::ZERO, SimDuration::ZERO));
        let up = sim.add_link(b, a, LinkParams::new(Bandwidth::ZERO, SimDuration::ZERO));
        let m = LinkModulator::new(
            vec![down, up],
            Box::new(ConstantRate(Bandwidth::from_mbps(10.0))),
            SimDuration::from_millis(100),
        )
        .with_scales(vec![1.0, 0.25]);
        sim.add_actor(m);
        sim.run_until(SimTime::from_millis(50));
        assert_eq!(sim.ctx().link_rate(down).as_mbps(), 10.0);
        assert_eq!(sim.ctx().link_rate(up).as_mbps(), 2.5);
    }
}
