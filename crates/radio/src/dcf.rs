//! 802.11 DCF airtime model and the *performance anomaly* (Fig. 2).
//!
//! Heusse et al. showed that CSMA/CA's per-*packet* fairness becomes
//! per-*airtime* unfairness: a station that falls back to a low PHY rate
//! occupies the medium longer per frame, dragging every other station's
//! throughput down to roughly its own. §IV-A-4 of the paper reproduces this
//! as a core obstacle for WiFi-based MAR offloading.
//!
//! Two models are provided and cross-checked in the E3 experiment:
//!
//! * [`Dot11Params::shared_throughput_mbps`] — the closed-form model: with
//!   per-packet fair access every saturated station delivers one frame per
//!   round, so each gets `payload / Σᵢ T(rᵢ)`;
//! * [`WifiCell`] — a packet-level shared-medium actor that arbitrates
//!   transmissions frame by frame, from which the same collapse emerges.

use marnet_sim::engine::{Actor, Event, SimCtx};
use marnet_sim::link::LinkId;
use marnet_sim::packet::{Packet, Payload};
use marnet_sim::time::SimDuration;
use std::collections::VecDeque;

/// 802.11 MAC/PHY timing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dot11Params {
    /// Slot time.
    pub slot: SimDuration,
    /// Short interframe space.
    pub sifs: SimDuration,
    /// DCF interframe space.
    pub difs: SimDuration,
    /// Minimum contention window (slots); mean backoff is `cw_min/2` slots.
    pub cw_min: u32,
    /// PLCP preamble + header duration.
    pub plcp: SimDuration,
    /// ACK frame duration (sent at a basic rate).
    pub ack: SimDuration,
    /// MAC header + FCS bytes sent at the data rate.
    pub mac_header_bytes: u32,
}

impl Dot11Params {
    /// 802.11g OFDM parameters (the 54/18/6 Mb/s zones of Fig. 2).
    pub fn dot11g() -> Self {
        Dot11Params {
            slot: SimDuration::from_micros(9),
            sifs: SimDuration::from_micros(10),
            difs: SimDuration::from_micros(28),
            cw_min: 15,
            plcp: SimDuration::from_micros(20),
            ack: SimDuration::from_micros(34), // PLCP + 14-byte ACK at 24 Mb/s
            mac_header_bytes: 36,
        }
    }

    /// Mean per-frame fixed overhead: DIFS + mean backoff + PLCP + SIFS + ACK.
    pub fn overhead(&self) -> SimDuration {
        self.difs + self.slot * u64::from(self.cw_min) / 2 + self.plcp + self.sifs + self.ack
    }

    /// Total medium occupancy for one data frame of `payload_bytes` at
    /// `rate_mbps`, including MAC header and all fixed overheads.
    ///
    /// # Panics
    ///
    /// Panics if `rate_mbps` is not positive.
    pub fn frame_time(&self, rate_mbps: f64, payload_bytes: u32) -> SimDuration {
        assert!(rate_mbps > 0.0, "PHY rate must be positive");
        let bits = f64::from((payload_bytes + self.mac_header_bytes) * 8);
        let tx = SimDuration::from_secs_f64(bits / (rate_mbps * 1e6));
        self.overhead() + tx
    }

    /// Throughput of a *single* saturated station at `rate_mbps` (Mb/s of
    /// payload).
    pub fn solo_throughput_mbps(&self, rate_mbps: f64, payload_bytes: u32) -> f64 {
        let t = self.frame_time(rate_mbps, payload_bytes).as_secs_f64();
        f64::from(payload_bytes) * 8.0 / t / 1e6
    }

    /// Per-station throughput when all `rates_mbps` stations are saturated.
    ///
    /// DCF gives each station one transmission opportunity per contention
    /// round, so every station — fast or slow — delivers `payload` bytes per
    /// `Σᵢ T(rᵢ)` seconds. This *equal throughput at the slowest pace* is
    /// the performance anomaly.
    ///
    /// ```
    /// use marnet_radio::dcf::Dot11Params;
    /// let p = Dot11Params::dot11g();
    /// let fast_alone = p.solo_throughput_mbps(54.0, 1500);
    /// let together = p.shared_throughput_mbps(&[54.0, 6.0], 1500);
    /// // The fast station collapses to near the slow station's level.
    /// assert!(together < fast_alone / 3.0);
    /// ```
    pub fn shared_throughput_mbps(&self, rates_mbps: &[f64], payload_bytes: u32) -> f64 {
        if rates_mbps.is_empty() {
            return 0.0;
        }
        let cycle: f64 =
            rates_mbps.iter().map(|&r| self.frame_time(r, payload_bytes).as_secs_f64()).sum();
        f64::from(payload_bytes) * 8.0 / cycle / 1e6
    }
}

impl Default for Dot11Params {
    fn default() -> Self {
        Dot11Params::dot11g()
    }
}

/// A station attached to a [`WifiCell`].
#[derive(Debug, Clone, Copy)]
pub struct WifiStation {
    /// PHY rate in Mb/s (distance dependent: 54 near the AP, 6 at the edge).
    pub phy_rate_mbps: f64,
    /// Link the cell forwards this station's frames onto once they win the
    /// medium (typically a fast wired link from the AP onwards).
    pub out: LinkId,
}

/// Message actors send to a [`WifiCell`] to submit a frame for the medium.
#[derive(Debug, Clone)]
pub struct WifiSubmit {
    /// Index of the submitting station (position in the construction list).
    pub station: usize,
    /// The frame to transmit.
    pub packet: Packet,
}

/// Message changing a station's PHY rate (models the station moving between
/// coverage zones, as User B does in Fig. 2).
#[derive(Debug, Clone, Copy)]
pub struct WifiSetRate {
    /// Station index.
    pub station: usize,
    /// New PHY rate in Mb/s.
    pub phy_rate_mbps: f64,
}

/// Packet-level shared-medium arbiter: one transmission at a time,
/// round-robin transmission opportunities (ideal DCF without collisions).
#[derive(Debug)]
pub struct WifiCell {
    params: Dot11Params,
    stations: Vec<WifiStation>,
    queues: Vec<VecDeque<Packet>>,
    busy: bool,
    /// Next station to get a transmission opportunity.
    next: usize,
    /// Frame currently occupying the medium.
    in_flight: Option<(usize, Packet)>,
    /// Per-station queue cap (frames beyond it are dropped, saturating
    /// sources just keep it full).
    queue_cap: usize,
}

impl WifiCell {
    /// Creates a cell with the given stations.
    pub fn new(params: Dot11Params, stations: Vec<WifiStation>) -> Self {
        let n = stations.len();
        WifiCell {
            params,
            stations,
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            busy: false,
            next: 0,
            in_flight: None,
            queue_cap: 100,
        }
    }

    fn try_start(&mut self, ctx: &mut SimCtx) {
        if self.busy {
            return;
        }
        // Round-robin scan for a backlogged station.
        for i in 0..self.queues.len() {
            let idx = (self.next + i) % self.queues.len();
            if let Some(pkt) = self.queues[idx].pop_front() {
                self.next = (idx + 1) % self.queues.len();
                self.busy = true;
                let airtime = self.params.frame_time(self.stations[idx].phy_rate_mbps, pkt.size);
                self.in_flight = Some((idx, pkt));
                ctx.schedule_timer(airtime, 0);
                return;
            }
        }
    }
}

impl Actor for WifiCell {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        match ev {
            Event::Message { mut msg, .. } => {
                if let Some(submit) = msg.take::<WifiSubmit>() {
                    let q = &mut self.queues[submit.station];
                    if q.len() < self.queue_cap {
                        q.push_back(submit.packet);
                    }
                    self.try_start(ctx);
                } else if let Some(set) = msg.take::<WifiSetRate>() {
                    self.stations[set.station].phy_rate_mbps = set.phy_rate_mbps;
                }
            }
            Event::Timer { .. } => {
                if let Some((idx, pkt)) = self.in_flight.take() {
                    ctx.transmit(self.stations[idx].out, pkt);
                }
                self.busy = false;
                self.try_start(ctx);
            }
            _ => {}
        }
    }
}

/// Convenience payload constructor for submitting a frame to a cell.
pub fn submit(station: usize, packet: Packet) -> Payload {
    Payload::new(WifiSubmit { station, packet })
}

#[cfg(test)]
mod tests {
    use super::*;
    use marnet_sim::engine::{ActorId, Simulator};
    use marnet_sim::link::{Bandwidth, LinkParams};
    use marnet_sim::time::SimTime;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn frame_time_scales_with_rate() {
        let p = Dot11Params::dot11g();
        let fast = p.frame_time(54.0, 1500);
        let slow = p.frame_time(6.0, 1500);
        assert!(slow > fast * 4, "slow={slow} fast={fast}");
        // 1536 bytes at 54 Mb/s = ~227 us + ~160 us overhead.
        assert!(fast.as_micros_f64() > 300.0 && fast.as_micros_f64() < 500.0, "{fast}");
    }

    #[test]
    fn solo_throughput_is_below_phy_rate() {
        let p = Dot11Params::dot11g();
        let x54 = p.solo_throughput_mbps(54.0, 1500);
        let x6 = p.solo_throughput_mbps(6.0, 1500);
        assert!(x54 < 54.0 && x54 > 20.0, "x54={x54}");
        assert!(x6 < 6.0 && x6 > 3.0, "x6={x6}");
    }

    #[test]
    fn anomaly_equalizes_throughput_downward() {
        // The Fig. 2 story: A at 54 Mb/s, B moves 54 → 18 → 6.
        let p = Dot11Params::dot11g();
        let both_fast = p.shared_throughput_mbps(&[54.0, 54.0], 1500);
        let b_mid = p.shared_throughput_mbps(&[54.0, 18.0], 1500);
        let b_slow = p.shared_throughput_mbps(&[54.0, 6.0], 1500);
        // Equal split when symmetric.
        let solo = p.solo_throughput_mbps(54.0, 1500);
        assert!((both_fast - solo / 2.0).abs() < 0.5, "both_fast={both_fast} solo={solo}");
        // Monotone collapse as B slows down.
        assert!(b_mid < both_fast && b_slow < b_mid);
        // A's throughput ends up close to what B alone would achieve at
        // 6 Mb/s — within a factor ~2 (Heusse et al.'s headline result).
        let b_solo_slow = p.solo_throughput_mbps(6.0, 1500);
        assert!(b_slow < b_solo_slow, "shared {b_slow} vs slow solo {b_solo_slow}");
        assert!(b_slow > b_solo_slow / 2.5);
    }

    #[test]
    fn shared_empty_is_zero() {
        assert_eq!(Dot11Params::dot11g().shared_throughput_mbps(&[], 1500), 0.0);
    }

    /// Saturating source that keeps `station`'s queue at the cell non-empty.
    struct Saturator {
        cell: ActorId,
        station: usize,
        flow: u64,
    }
    impl Actor for Saturator {
        fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
            if matches!(ev, Event::Start | Event::Timer { .. }) {
                for _ in 0..4 {
                    let id = ctx.next_packet_id();
                    let pkt = Packet::new(id, self.flow, 1500, ctx.now());
                    ctx.send_message(self.cell, submit(self.station, pkt));
                }
                ctx.schedule_timer(SimDuration::from_millis(1), 0);
            }
        }
    }

    struct CountingSink {
        bytes_by_flow: Rc<RefCell<Vec<u64>>>,
    }
    impl Actor for CountingSink {
        fn on_event(&mut self, _ctx: &mut SimCtx, ev: Event) {
            if let Event::Packet { packet, .. } = ev {
                let mut b = self.bytes_by_flow.borrow_mut();
                let f = packet.flow as usize;
                if f >= b.len() {
                    b.resize(f + 1, 0);
                }
                b[f] += u64::from(packet.size);
            }
        }
    }

    fn run_cell(rates: [f64; 2], secs: u64) -> Vec<u64> {
        let bytes = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(5);
        let cell = sim.reserve_actor();
        let sink = sim.add_actor(CountingSink { bytes_by_flow: Rc::clone(&bytes) });
        // Fast wired side so the medium is the bottleneck.
        let wired = LinkParams::new(Bandwidth::from_gbps(1.0), SimDuration::from_micros(100))
            .with_queue(marnet_sim::queue::QueueConfig::DropTail { cap_packets: 10_000 });
        let out0 = sim.add_link(cell, sink, wired.clone());
        let out1 = sim.add_link(cell, sink, wired);
        sim.install_actor(
            cell,
            WifiCell::new(
                Dot11Params::dot11g(),
                vec![
                    WifiStation { phy_rate_mbps: rates[0], out: out0 },
                    WifiStation { phy_rate_mbps: rates[1], out: out1 },
                ],
            ),
        );
        sim.add_actor(Saturator { cell, station: 0, flow: 0 });
        sim.add_actor(Saturator { cell, station: 1, flow: 1 });
        sim.run_until(SimTime::from_secs(secs));
        let b = bytes.borrow().clone();
        b
    }

    #[test]
    fn packet_level_cell_matches_analytic_model() {
        let p = Dot11Params::dot11g();
        let secs = 5;
        let bytes = run_cell([54.0, 6.0], secs);
        let a_mbps = bytes[0] as f64 * 8.0 / secs as f64 / 1e6;
        let b_mbps = bytes[1] as f64 * 8.0 / secs as f64 / 1e6;
        let predicted = p.shared_throughput_mbps(&[54.0, 6.0], 1500);
        // Per-packet fairness: both stations land on the predicted value.
        assert!((a_mbps - predicted).abs() / predicted < 0.15, "A={a_mbps} pred={predicted}");
        assert!((b_mbps - predicted).abs() / predicted < 0.15, "B={b_mbps} pred={predicted}");
    }

    #[test]
    fn packet_level_cell_fast_pair_is_faster() {
        let fast = run_cell([54.0, 54.0], 3);
        let degraded = run_cell([54.0, 6.0], 3);
        assert!(
            fast[0] > degraded[0] * 3,
            "fast A {} should dwarf degraded A {}",
            fast[0],
            degraded[0]
        );
    }
}
