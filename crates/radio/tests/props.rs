//! Property-based tests for the wireless models: profile sampling stays in
//! the quoted ranges, the DCF anomaly formula behaves, coverage traces are
//! well-formed, and rate processes stay positive.

use marnet_radio::coverage::CoverageModel;
use marnet_radio::dcf::Dot11Params;
use marnet_radio::profiles::{LinkDirection, RadioTechnology};
use marnet_radio::variance::{Ar1LogRate, MarkovRate, RateProcess};
use marnet_sim::link::Bandwidth;
use marnet_sim::rng::derive_rng;
use marnet_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #[test]
    fn sampled_links_stay_within_quoted_ranges(seed in 0u64..500, tech_idx in 0usize..7) {
        let tech = RadioTechnology::ALL[tech_idx];
        let p = tech.profile();
        let mut rng = derive_rng(seed, "props.radio");
        for dir in [LinkDirection::Uplink, LinkDirection::Downlink] {
            let lp = p.sample_link_params(dir, &mut rng);
            let mbps = lp.rate.as_mbps();
            let range = match dir {
                LinkDirection::Uplink => p.measured_up_mbps,
                LinkDirection::Downlink => p.measured_down_mbps,
            };
            prop_assert!(mbps >= range.low - 1e-9 && mbps <= range.high + 1e-9);
            let rtt = lp.delay.as_millis_f64() * 2.0;
            prop_assert!(rtt >= p.latency_ms.low - 1e-6 && rtt <= p.latency_ms.high + 1e-6);
        }
    }

    /// The anomaly: adding any station can only reduce per-station
    /// throughput, and slowing any station can only reduce it further.
    #[test]
    fn dcf_shared_throughput_is_monotone(
        rates in prop::collection::vec(1.0f64..54.0, 1..6),
        extra in 1.0f64..54.0,
    ) {
        let p = Dot11Params::dot11g();
        let base = p.shared_throughput_mbps(&rates, 1500);
        let mut more = rates.clone();
        more.push(extra);
        prop_assert!(p.shared_throughput_mbps(&more, 1500) < base);
        // Slowing station 0 to 1 Mb/s cannot help anyone.
        let mut slower = rates.clone();
        slower[0] = 1.0;
        prop_assert!(p.shared_throughput_mbps(&slower, 1500) <= base + 1e-9);
        // Per-station throughput never exceeds solo throughput of the
        // fastest member.
        let best = rates.iter().cloned().fold(0.0, f64::max);
        prop_assert!(base <= p.solo_throughput_mbps(best, 1500) + 1e-9);
    }

    #[test]
    fn coverage_traces_are_contiguous_and_bounded(
        seed in 0u64..200,
        frac in 0.1f64..0.99,
        mean_s in 5u64..120,
    ) {
        let model = CoverageModel {
            usable_fraction: frac,
            mean_usable: SimDuration::from_secs(mean_s),
            handover_gap: SimDuration::from_secs(1),
        };
        let mut rng = derive_rng(seed, "props.coverage");
        let horizon = SimTime::from_secs(5_000);
        let trace = model.generate(horizon, &mut rng);
        // Contiguity from zero to the horizon.
        let mut t = SimTime::ZERO;
        for iv in trace.intervals() {
            prop_assert_eq!(iv.from, t);
            prop_assert!(iv.to >= iv.from);
            t = iv.to;
        }
        prop_assert_eq!(t, horizon);
        let f = trace.usable_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn rate_processes_stay_positive(seed in 0u64..200, steps in 10u64..500) {
        let mut ar1 = Ar1LogRate::new(
            Bandwidth::from_mbps(10.0),
            0.4,
            0.85,
            derive_rng(seed, "props.ar1"),
        );
        let mut markov = MarkovRate::new(
            Bandwidth::from_mbps(10.0),
            Bandwidth::from_kbps(50.0),
            0.1,
            0.2,
            derive_rng(seed, "props.markov"),
        );
        for i in 0..steps {
            let t = SimTime::from_millis(i * 100);
            prop_assert!(ar1.rate_at(t).as_bps() > 0);
            let m = markov.rate_at(t);
            prop_assert!(
                m == Bandwidth::from_mbps(10.0) || m == Bandwidth::from_kbps(50.0)
            );
        }
    }
}
