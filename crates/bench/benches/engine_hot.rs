//! Hot-path benchmarks for the event core: the throughput gate behind the
//! zero-alloc scheduling work. `engine_events_per_sec` is the headline
//! number (simulator events per wall-clock second on the E11 recovery
//! scenario); `multipath_duplication` doubles the packet volume over a
//! second path; `timer_cancel_churn` isolates the indexed heap's
//! schedule/cancel cycle, the pattern every retransmission timer follows.
//!
//! `cargo bench -p marnet-bench --bench engine_hot` measures;
//! `cargo bench -p marnet-bench --bench engine_hot -- --test` smoke-runs
//! every routine once (CI). JSON numbers for regression tracking come from
//! `cargo run --release -p marnet-bench --bin perf_report`.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use marnet_bench::scenarios::{run_recovery_counted, RecoveryMechanism};
use marnet_core::fec::{xor_into, xor_into_scalar};
use marnet_sim::engine::Simulator;
use marnet_sim::time::{SimDuration, SimTime};
use marnet_telemetry::event::{TraceEvent, TraceKind};
use marnet_telemetry::recorder::TraceSink;

/// Virtual seconds of AR traffic per iteration. Short enough for a sane
/// Criterion batch, long enough to dwarf scenario setup.
const SIM_SECS: u64 = 5;

/// Events one `run_recovery` iteration processes, measured once so the
/// throughput annotation reflects events rather than iterations.
fn events_per_iter(mechanism: RecoveryMechanism) -> u64 {
    run_recovery_counted(40, 0.05, mechanism, SIM_SECS, 11).1
}

/// Deadline-gated ARQ + FEC on a lossy 40 ms path: the full sender →
/// link → receiver → feedback pipeline the perf work targets.
fn bench_engine_events_per_sec(c: &mut Criterion) {
    let mechanism = RecoveryMechanism::ArqFecK8;
    let events = events_per_iter(mechanism);
    let mut g = c.benchmark_group("engine_events_per_sec");
    g.throughput(Throughput::Elements(events));
    g.bench_function("run_recovery/arq+fec-k8", |b| {
        b.iter(|| black_box(run_recovery_counted(40, 0.05, mechanism, SIM_SECS, 11)))
    });
    g.finish();
}

/// Blind duplication over a second path: twice the packets, twice the
/// pressure on the link queues and the receiver's dedup path.
fn bench_multipath_duplication(c: &mut Criterion) {
    let mechanism = RecoveryMechanism::Duplicate;
    let events = events_per_iter(mechanism);
    let mut g = c.benchmark_group("multipath_duplication");
    g.throughput(Throughput::Elements(events));
    g.bench_function("run_recovery/duplicate", |b| {
        b.iter(|| black_box(run_recovery_counted(40, 0.05, mechanism, SIM_SECS, 11)))
    });
    g.finish();
}

/// Schedule-then-cancel churn: arm a batch of timers, cancel them all,
/// fire one sentinel. The indexed heap must remove each cancelled timer
/// in O(log n) without leaving residue for later pops to step over.
fn bench_timer_cancel_churn(c: &mut Criterion) {
    use marnet_sim::engine::{Actor, Event, SimCtx};

    const BATCH: usize = 1_000;

    struct Churner;
    impl Actor for Churner {
        fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
            if matches!(ev, Event::Start) {
                let handles: Vec<_> = (0..BATCH)
                    .map(|i| ctx.schedule_timer(SimDuration::from_millis(i as u64 + 1), 1))
                    .collect();
                for h in handles {
                    ctx.cancel_timer(h);
                }
                ctx.schedule_timer(SimDuration::from_millis(1), 2);
            }
        }
    }

    let mut g = c.benchmark_group("timer_cancel_churn");
    g.throughput(Throughput::Elements(BATCH as u64));
    g.bench_function("schedule_cancel_1k", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(7);
            sim.add_actor(Churner);
            black_box(sim.run_until(SimTime::from_secs(1)))
        })
    });
    g.finish();
}

/// XOR parity accumulation over one FEC group of reference frames:
/// the unrolled u64-lane `xor_into` against the byte-at-a-time scalar
/// reference it must match bit-for-bit. The 6 001-byte block keeps a
/// ragged 1-byte tail in play so the lane path's remainder handling is
/// part of the measured loop.
fn bench_fec_parity_throughput(c: &mut Criterion) {
    const K: usize = 8;
    const BLOCK: usize = 6_001;

    let blocks: Vec<Vec<u8>> =
        (0..K).map(|i| (0..BLOCK).map(|j| (i * 31 + j) as u8).collect()).collect();
    let mut g = c.benchmark_group("fec_parity_throughput");
    g.throughput(Throughput::Bytes((K * BLOCK) as u64));
    g.bench_function("xor_into/unrolled", |b| {
        let mut parity = Vec::with_capacity(BLOCK);
        b.iter(|| {
            parity.clear();
            for block in &blocks {
                xor_into(&mut parity, black_box(block));
            }
            black_box(parity.len())
        })
    });
    g.bench_function("xor_into/scalar", |b| {
        let mut parity = Vec::with_capacity(BLOCK);
        b.iter(|| {
            parity.clear();
            for block in &blocks {
                xor_into_scalar(&mut parity, black_box(block));
            }
            black_box(parity.len())
        })
    });
    g.finish();
}

/// The recorder's per-event cost in each [`TraceSink`] mode: `off` is the
/// one-load-one-branch floor every untraced run pays, `ring` the plain
/// ring-buffer reference path, `chunked` the double-buffered sink the
/// engine enables for live tracing. Capacity exceeds the batch so the
/// bench measures recording, not wrap-around rotation.
fn bench_recorder_record_hot(c: &mut Criterion) {
    const BATCH: u64 = 4_096;
    const CAPACITY: usize = 1 << 13;

    let mut g = c.benchmark_group("recorder_record_hot");
    g.throughput(Throughput::Elements(BATCH));
    for (label, make) in [
        ("off", TraceSink::default as fn() -> TraceSink),
        ("ring", || TraceSink::ring(CAPACITY)),
        ("chunked", || TraceSink::chunked(CAPACITY)),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut sink = make();
                for i in 0..BATCH {
                    sink.emit_with(|| TraceEvent {
                        t: i,
                        comp: 1,
                        kind: TraceKind::PacketEnqueue,
                        aux: 0,
                        a: i,
                        b: i << 32 | 1_500,
                    });
                }
                black_box(sink.is_enabled())
            })
        });
    }
    g.finish();
}

criterion_group!(
    engine_hot,
    bench_engine_events_per_sec,
    bench_multipath_duplication,
    bench_timer_cancel_churn,
    bench_fec_parity_throughput,
    bench_recorder_record_hot,
);
criterion_main!(engine_hot);
