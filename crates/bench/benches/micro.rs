//! Criterion micro-benchmarks for the protocol building blocks: XOR FEC
//! coding, the degradation scheduler's tick, the congestion controller,
//! and the multipath selector.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use marnet_core::class::StreamKind;
use marnet_core::congestion::{CongestionConfig, DelayCongestionController};
use marnet_core::degradation::DegradationScheduler;
use marnet_core::fec::{recover_single, XorEncoder};
use marnet_core::message::ArMessage;
use marnet_core::multipath::{MultipathPolicy, MultipathScheduler, PathRole, PathSnapshot};
use marnet_sim::time::{SimDuration, SimTime};

fn bench_fec(c: &mut Criterion) {
    let mut g = c.benchmark_group("fec");
    let block = vec![0xa5u8; 1200];
    g.throughput(Throughput::Bytes(1200 * 8));
    g.bench_function("encode_k8_1200B", |b| {
        b.iter(|| {
            let mut enc = XorEncoder::new(8);
            let mut parity = None;
            for _ in 0..8 {
                parity = enc.push(black_box(&block));
            }
            black_box(parity)
        })
    });
    let blocks: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 1200]).collect();
    let mut enc = XorEncoder::new(8);
    let mut parity = Vec::new();
    for b in &blocks {
        if let Some(p) = enc.push(b) {
            parity = p;
        }
    }
    g.throughput(Throughput::Bytes(1200));
    g.bench_function("recover_single_k8_1200B", |b| {
        let survivors: Vec<&[u8]> = blocks[1..].iter().map(|v| v.as_slice()).collect();
        b.iter(|| black_box(recover_single(black_box(&survivors), &parity, 1200)))
    });
    g.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    c.bench_function("degradation_tick_100_messages", |b| {
        b.iter(|| {
            let mut s = DegradationScheduler::new(SimDuration::from_millis(150), 6.0);
            for i in 0..100 {
                let kind = match i % 4 {
                    0 => StreamKind::Metadata,
                    1 => StreamKind::Sensor,
                    2 => StreamKind::VideoReference,
                    _ => StreamKind::VideoInter,
                };
                s.submit(ArMessage::new(i, kind, 1200, SimTime::ZERO));
            }
            black_box(s.tick(SimTime::from_millis(5), 20_000.0))
        })
    });
}

fn bench_congestion(c: &mut Criterion) {
    c.bench_function("congestion_feedback", |b| {
        let mut ctrl = DelayCongestionController::new(CongestionConfig::default());
        let mut t = 0u64;
        b.iter(|| {
            t += 15;
            ctrl.on_feedback(
                SimDuration::from_millis(20 + (t % 7)),
                0,
                Some(200_000.0),
                SimTime::from_millis(t),
            )
        })
    });
}

fn bench_multipath(c: &mut Criterion) {
    c.bench_function("multipath_select_aggregate", |b| {
        let mut mp = MultipathScheduler::new(MultipathPolicy::Aggregate, true);
        let snaps = vec![
            PathSnapshot {
                role: PathRole::Wifi,
                up: true,
                srtt: Some(SimDuration::from_millis(12)),
                rate: 500_000.0,
            },
            PathSnapshot {
                role: PathRole::Cellular,
                up: true,
                srtt: Some(SimDuration::from_millis(40)),
                rate: 200_000.0,
            },
        ];
        let (class, prio) = StreamKind::VideoInter.default_class();
        b.iter(|| black_box(mp.select(&snaps, class, prio, 1200)))
    });
}

criterion_group!(benches, bench_fec, bench_scheduler, bench_congestion, bench_multipath);
criterion_main!(benches);
