//! Criterion macro-benchmarks: simulator event throughput, a full TCP
//! transfer, one second of the AR protocol, and the placement solvers —
//! the costs that bound how much experiment a CPU-second buys.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use marnet_bench::scenarios::{run_fairness, run_table2, Table2Scenario};
use marnet_edge::placement::synthetic_metro;
use marnet_sim::engine::{Actor, Event, SimCtx, Simulator};
use marnet_sim::link::{Bandwidth, LinkParams};
use marnet_sim::packet::Packet;
use marnet_sim::rng::derive_rng;
use marnet_sim::time::{SimDuration, SimTime};
use marnet_transport::nic::TxPath;
use marnet_transport::tcp::{DataSource, Reno, TcpConfig, TcpReceiver, TcpSender};

/// Raw engine throughput: a ping-pong pair exchanging packets as fast as
/// the links allow.
fn bench_engine(c: &mut Criterion) {
    struct Echo {
        out: marnet_sim::link::LinkId,
    }
    impl Actor for Echo {
        fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
            if let Event::Packet { packet, .. } = ev {
                ctx.transmit(self.out, packet);
            }
        }
    }
    struct Kick {
        out: marnet_sim::link::LinkId,
    }
    impl Actor for Kick {
        fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
            match ev {
                Event::Start => {
                    let id = ctx.next_packet_id();
                    ctx.transmit(self.out, Packet::new(id, 0, 100, ctx.now()));
                }
                Event::Packet { packet, .. } => ctx.transmit(self.out, packet),
                _ => {}
            }
        }
    }

    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("ping_pong_100k_events", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(1);
            let a = sim.reserve_actor();
            let e = sim.reserve_actor();
            let p = LinkParams::new(Bandwidth::from_gbps(10.0), SimDuration::from_micros(1));
            let fwd = sim.add_link(a, e, p.clone());
            let rev = sim.add_link(e, a, p);
            sim.install_actor(a, Kick { out: fwd });
            sim.install_actor(e, Echo { out: rev });
            sim.set_event_limit(100_000);
            black_box(sim.run_until(SimTime::MAX))
        })
    });
    g.finish();
}

/// A complete 1 MB TCP transfer over a 20 Mb/s, 20 ms-RTT path.
fn bench_tcp_transfer(c: &mut Criterion) {
    let mut g = c.benchmark_group("tcp");
    g.sample_size(20);
    g.bench_function("tcp_1mb_transfer", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(2);
            let s = sim.reserve_actor();
            let r = sim.reserve_actor();
            let p = LinkParams::new(Bandwidth::from_mbps(20.0), SimDuration::from_millis(10));
            let fwd = sim.add_link(s, r, p.clone());
            let rev = sim.add_link(r, s, p);
            let cfg = TcpConfig { data: DataSource::Finite(1_000_000), ..Default::default() };
            let sender = TcpSender::new(1, TxPath::Link(fwd), cfg, Box::new(Reno::new(1460)));
            let stats = sender.stats();
            sim.install_actor(s, sender);
            sim.install_actor(r, TcpReceiver::new(1, TxPath::Link(rev)));
            sim.run_until(SimTime::from_secs(30));
            let done = stats.borrow().completed_at;
            black_box(done)
        })
    });
    g.finish();
}

/// One Table II scenario end to end (50 probes).
fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("scenario");
    g.sample_size(20);
    g.bench_function("table2_cloud_wifi_50_probes", |b| {
        b.iter(|| black_box(run_table2(Table2Scenario::CloudServerWifi, 50, 400, 400, 1)))
    });
    g.finish();
}

/// Five seconds of AR protocol + one competing TCP flow.
fn bench_ar_second(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol");
    g.sample_size(10);
    g.bench_function("ar_vs_tcp_5s", |b| {
        b.iter(|| black_box(run_fairness(10.0, 1, true, SimDuration::from_millis(15), 5, 3)))
    });
    g.finish();
}

/// Placement solvers on a 150-user instance.
fn bench_placement(c: &mut Criterion) {
    let mut rng = derive_rng(5, "bench.placement");
    let p = synthetic_metro(150, 20, 25.0, SimDuration::from_millis(20), &mut rng);
    let mut g = c.benchmark_group("placement");
    g.sample_size(20);
    g.bench_function("greedy_150u_20s", |b| b.iter(|| black_box(p.solve_greedy())));
    g.bench_function("exact_150u_20s", |b| b.iter(|| black_box(p.solve_exact())));
    g.finish();
}

criterion_group!(
    benches,
    bench_engine,
    bench_tcp_transfer,
    bench_table2,
    bench_ar_second,
    bench_placement
);
criterion_main!(benches);
