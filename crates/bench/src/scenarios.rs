//! Shared experiment topologies, reused by the binaries and the
//! integration tests.

use marnet_core::class::{Priority, StreamKind};
use marnet_core::config::{ArConfig, OutageConfig};
use marnet_core::congestion::CongestionConfig;
use marnet_core::endpoint::{
    ArReceiver, ArReceiverStats, ArSender, ArSenderStats, Delivered, SenderPathConfig, Submit,
};
use marnet_core::message::ArMessage;
use marnet_core::multipath::{MultipathPolicy, PathRole};
use marnet_core::recovery::RecoveryPolicy;
use marnet_edge::session::RestartableServer;
use marnet_faults::inject::FaultInjector;
use marnet_faults::schedule::FaultSpec;
use marnet_flow::fluid::{FluidNetwork, FluidStats};
use marnet_flow::hybrid::Coupling;
use marnet_flow::workload::{BackgroundWorkload, WorkloadConfig, WorkloadStats};
use marnet_radio::coverage::{CoverageActor, CoverageModel};
use marnet_sim::engine::{Actor, ActorId, Event, SimCtx, Simulator};
use marnet_sim::link::{Bandwidth, LinkParams, LossModel};
use marnet_sim::packet::{Payload, PayloadPool};
use marnet_sim::queue::QueueConfig;
use marnet_sim::region::{Fidelity, RegionMap};
use marnet_sim::rng::derive_rng;
use marnet_sim::time::{SimDuration, SimTime};
use marnet_telemetry::{MetricsRegistry, TelemetryCapture, TelemetryOptions};
use marnet_transport::nic::{Nic, TxPath};
use marnet_transport::probe::{ProbeClient, ProbeServer, ProbeStats};
use marnet_transport::tcp::{
    DataSource, Reno, TcpConfig, TcpReceiver, TcpReceiverStats, TcpSender,
};
use marnet_transport::udp::{UdpSink, UdpSinkStats, UdpSource};
use std::cell::RefCell;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Table II scenarios
// ---------------------------------------------------------------------------

/// The four measurement scenarios of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Table2Scenario {
    /// Server in the same room, direct WiFi: measured 8 ms.
    LocalServerWifi,
    /// Google Cloud (Taiwan) over campus WiFi: measured 36 ms.
    CloudServerWifi,
    /// University server behind the campus interconnect: measured 72 ms.
    UniversityServerWifi,
    /// Google Cloud over LTE: measured 120 ms.
    CloudServerLte,
}

impl Table2Scenario {
    /// All four, in table order.
    pub const ALL: [Table2Scenario; 4] = [
        Table2Scenario::LocalServerWifi,
        Table2Scenario::CloudServerWifi,
        Table2Scenario::UniversityServerWifi,
        Table2Scenario::CloudServerLte,
    ];

    /// The platform / connection labels of the table row.
    pub fn labels(self) -> (&'static str, &'static str, u64) {
        match self {
            Table2Scenario::LocalServerWifi => ("Local Server", "WiFi", 8),
            Table2Scenario::CloudServerWifi => ("Cloud Server", "WiFi", 36),
            Table2Scenario::UniversityServerWifi => ("University Server", "WiFi", 72),
            Table2Scenario::CloudServerLte => ("Cloud Server", "LTE", 120),
        }
    }

    /// Per-hop one-way delays of the path, client → server.
    ///
    /// Each scenario is a chain of hops; the middleboxes of the university
    /// path (Eduroam↔campus interconnect, firewalls — the paper's
    /// explanation for the surprising 72 ms) appear as extra hops.
    fn hops(self) -> Vec<(Bandwidth, SimDuration)> {
        match self {
            // Personal AP in the same room.
            Table2Scenario::LocalServerWifi => {
                vec![(Bandwidth::from_mbps(100.0), SimDuration::from_micros(3950))]
            }
            // Campus WiFi (Eduroam) + metro/undersea hop to Taiwan.
            Table2Scenario::CloudServerWifi => vec![
                (Bandwidth::from_mbps(40.0), SimDuration::from_micros(4900)),
                (Bandwidth::from_gbps(1.0), SimDuration::from_millis(13)),
            ],
            // Campus WiFi + Eduroam↔university interconnect with firewalls
            // and a congested segment: short distance, long delay.
            Table2Scenario::UniversityServerWifi => vec![
                (Bandwidth::from_mbps(40.0), SimDuration::from_micros(4900)),
                (Bandwidth::from_mbps(200.0), SimDuration::from_millis(12)), // firewall chain
                (Bandwidth::from_mbps(100.0), SimDuration::from_millis(19)), // congested segment
            ],
            // LTE RAN+core, then the same WAN hop to the cloud.
            Table2Scenario::CloudServerLte => vec![
                (Bandwidth::from_mbps(10.0), SimDuration::from_micros(46_500)),
                (Bandwidth::from_gbps(1.0), SimDuration::from_millis(13)),
            ],
        }
    }
}

/// A forwarding hop: receives on one side, retransmits on the other.
#[derive(Debug)]
struct Forwarder {
    next: marnet_sim::link::LinkId,
}

impl Actor for Forwarder {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        if let Event::Packet { packet, .. } = ev {
            ctx.transmit(self.next, packet);
        }
    }
}

/// Runs one Table II scenario: `probes` offload transactions of
/// `request_bytes` up / `response_bytes` down; returns the RTT samples.
pub fn run_table2(
    scenario: Table2Scenario,
    probes: u64,
    request_bytes: u32,
    response_bytes: u32,
    seed: u64,
) -> Rc<RefCell<ProbeStats>> {
    run_table2_instrumented(
        scenario,
        probes,
        request_bytes,
        response_bytes,
        seed,
        &TelemetryOptions::disabled(),
    )
    .0
}

/// [`run_table2`], additionally returning the number of simulator events
/// processed — the offload row of the `perf_report` matrix.
pub fn run_table2_counted(
    scenario: Table2Scenario,
    probes: u64,
    request_bytes: u32,
    response_bytes: u32,
    seed: u64,
) -> (Rc<RefCell<ProbeStats>>, u64) {
    let (stats, events, _) = run_table2_instrumented(
        scenario,
        probes,
        request_bytes,
        response_bytes,
        seed,
        &TelemetryOptions::disabled(),
    );
    (stats, events)
}

/// [`run_table2`] with optional flight-recorder and metrics capture.
///
/// With everything off (the default options) this is exactly `run_table2`:
/// the simulator's trace hooks stay on the disabled branch and no registry
/// is created, so results are byte-identical.
pub fn run_table2_instrumented(
    scenario: Table2Scenario,
    probes: u64,
    request_bytes: u32,
    response_bytes: u32,
    seed: u64,
    telemetry: &TelemetryOptions,
) -> (Rc<RefCell<ProbeStats>>, u64, TelemetryCapture) {
    let mut sim = Simulator::new(seed);
    if let Some(cap) = telemetry.trace_capacity {
        sim.enable_flight_recorder(cap);
    }
    let registry = if telemetry.metrics {
        let reg = MetricsRegistry::new();
        sim.enable_metrics(&reg);
        Some(reg)
    } else {
        None
    };
    let hops = scenario.hops();
    let n = hops.len();
    // Actors: client, (n-1) forwarders each way, server.
    let client = sim.reserve_actor();
    let server = sim.reserve_actor();
    let fwd_nodes: Vec<ActorId> = (0..n.saturating_sub(1)).map(|_| sim.reserve_actor()).collect();
    let rev_nodes: Vec<ActorId> = (0..n.saturating_sub(1)).map(|_| sim.reserve_actor()).collect();

    // Forward chain client → server.
    let mut fwd_links = Vec::new();
    for (i, (rate, delay)) in hops.iter().enumerate() {
        let from = if i == 0 { client } else { fwd_nodes[i - 1] };
        let to = if i == n - 1 { server } else { fwd_nodes[i] };
        fwd_links.push(sim.add_link(from, to, LinkParams::new(*rate, *delay)));
    }
    // Reverse chain server → client (same hops mirrored).
    let mut rev_links = Vec::new();
    for (i, (rate, delay)) in hops.iter().enumerate().rev() {
        let from = if i == n - 1 { server } else { rev_nodes[i] };
        let to = if i == 0 { client } else { rev_nodes[i - 1] };
        rev_links.push(sim.add_link(from, to, LinkParams::new(*rate, *delay)));
    }
    for (i, &node) in fwd_nodes.iter().enumerate() {
        sim.install_actor(node, Forwarder { next: fwd_links[i + 1] });
    }
    // rev_links was built from the far end; rev_nodes[i] forwards toward
    // the client on the mirrored link of hop i.
    for (i, &node) in rev_nodes.iter().enumerate() {
        let link_towards_client = rev_links[n - 1 - i];
        sim.install_actor(node, Forwarder { next: link_towards_client });
    }

    let mut probe = ProbeClient::new(
        1,
        TxPath::Link(fwd_links[0]),
        request_bytes,
        SimDuration::from_millis(50),
        probes,
    );
    if let Some(reg) = &registry {
        probe = probe.with_rtt_series(reg, "table2");
    }
    let stats = probe.stats();
    sim.install_actor(client, probe);
    sim.install_actor(server, ProbeServer::new(1, TxPath::Link(rev_links[0]), response_bytes));
    let events = sim.run_until(SimTime::from_secs(probes / 20 + 30));

    let metrics = registry.map(|reg| {
        sim.publish_link_metrics(&reg);
        reg.snapshot()
    });
    let capture = TelemetryCapture { events: sim.take_trace(), metrics };
    (stats, events, capture)
}

// ---------------------------------------------------------------------------
// Fig. 3: antiparallel TCP on an asymmetric link
// ---------------------------------------------------------------------------

/// Outcome of the Fig. 3 experiment.
#[derive(Debug)]
pub struct Fig3Outcome {
    /// Download goodput stats (its meter holds the timeline).
    pub download: Rc<RefCell<TcpReceiverStats>>,
    /// Upload goodput stats, one per upload flow.
    pub uploads: Vec<Rc<RefCell<TcpReceiverStats>>>,
    /// When each upload started, seconds.
    pub upload_starts: Vec<f64>,
}

/// Builds the Fig. 3 topology: an asymmetric access link (`down_mbps` /
/// `up_mbps`, oversized uplink buffer) carrying one long download and
/// `uploads` staggered uploads, and runs it for `secs`.
pub fn run_fig3(
    down_mbps: f64,
    up_mbps: f64,
    uplink_buffer: usize,
    uploads: usize,
    secs: u64,
    seed: u64,
) -> Fig3Outcome {
    let mut sim = Simulator::new(seed);
    let cpe = sim.reserve_actor(); // client-side gateway
    let bras = sim.reserve_actor(); // ISP-side gateway
    let (down_params, up_params) = marnet_radio::asymmetry::asymmetric_pair(
        down_mbps,
        down_mbps / up_mbps,
        SimDuration::from_millis(15),
        uplink_buffer,
    );
    let down = sim.add_link(bras, cpe, down_params);
    let up = sim.add_link(cpe, bras, up_params);

    let mut client_nic = Nic::new(up);
    let mut isp_nic = Nic::new(down);

    // Flow 1: the download (sender on the ISP side).
    let dl_sender = sim.reserve_actor();
    let dl_receiver = sim.reserve_actor();
    let s = TcpSender::new(1, TxPath::Nic(bras), TcpConfig::default(), Box::new(Reno::new(1460)));
    sim.install_actor(dl_sender, s);
    let r = TcpReceiver::new(1, TxPath::Nic(cpe));
    let download = r.stats();
    sim.install_actor(dl_receiver, r);
    isp_nic.add_route(1, dl_sender);
    client_nic.add_route(1, dl_receiver);

    // Uploads: staggered starts, client side.
    let mut upload_stats = Vec::new();
    let mut upload_starts = Vec::new();
    for u in 0..uploads {
        let conn = 100 + u as u64;
        let start = (secs as f64) * (u as f64 + 1.0) / (uploads as f64 + 2.0);
        upload_starts.push(start);
        let ul_sender = sim.reserve_actor();
        let ul_receiver = sim.reserve_actor();
        let cfg = TcpConfig {
            data: DataSource::Unlimited,
            start_at: SimTime::from_secs_f64(start),
            ..TcpConfig::default()
        };
        let s = TcpSender::new(conn, TxPath::Nic(cpe), cfg, Box::new(Reno::new(1460)));
        sim.install_actor(ul_sender, s);
        let r = TcpReceiver::new(conn, TxPath::Nic(bras));
        upload_stats.push(r.stats());
        sim.install_actor(ul_receiver, r);
        client_nic.add_route(conn, ul_sender);
        isp_nic.add_route(conn, ul_receiver);
    }

    sim.install_actor(cpe, client_nic);
    sim.install_actor(bras, isp_nic);
    sim.run_until(SimTime::from_secs(secs));
    Fig3Outcome { download, uploads: upload_stats, upload_starts }
}

// ---------------------------------------------------------------------------
// Fairness: AR protocol vs TCP on a shared bottleneck (E14)
// ---------------------------------------------------------------------------

/// Outcome of a fairness run.
#[derive(Debug)]
pub struct FairnessOutcome {
    /// AR receiver stats (bytes arrived at the far end).
    pub ar: Rc<RefCell<ArReceiverStats>>,
    /// AR sender stats.
    pub ar_sender: Rc<RefCell<ArSenderStats>>,
    /// Per-TCP-flow receiver stats.
    pub tcp: Vec<Rc<RefCell<TcpReceiverStats>>>,
}

/// A saturating AR application: offers more than the link fits so the
/// protocol's congestion control decides the rate.
#[derive(Debug)]
struct GreedyArApp {
    sender: ActorId,
    next_id: u64,
}

impl Actor for GreedyArApp {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        if matches!(ev, Event::Start | Event::Timer { .. }) {
            let now = ctx.now();
            // 30 FPS of 12 KB droppable frames + metadata ≈ 2.9 Mb/s offered.
            let frame = ArMessage::new(self.next_id, StreamKind::VideoInter, 12_000, now)
                .with_deadline(now + SimDuration::from_millis(200));
            let meta = ArMessage::new(self.next_id + 1, StreamKind::Metadata, 100, now);
            self.next_id += 2;
            ctx.send_message(self.sender, Payload::new(Submit(frame)));
            ctx.send_message(self.sender, Payload::new(Submit(meta)));
            ctx.schedule_timer(SimDuration::from_millis(33), 0);
        }
    }
}

/// Runs one AR flow against `n_tcp` Reno flows over a shared bottleneck.
///
/// `react_to_loss` toggles the AR protocol's loss-based fairness fallback
/// (§VI-B's trade-off knob); `latency_threshold` is the delay-congestion
/// trigger.
pub fn run_fairness(
    bottleneck_mbps: f64,
    n_tcp: usize,
    react_to_loss: bool,
    latency_threshold: SimDuration,
    secs: u64,
    seed: u64,
) -> FairnessOutcome {
    let cfg = ArConfig {
        congestion: CongestionConfig {
            latency_threshold,
            react_to_loss,
            max_rate: bottleneck_mbps * 1e6,
            ..CongestionConfig::default()
        },
        ..ArConfig::default()
    };
    run_fairness_with_config(bottleneck_mbps, n_tcp, &cfg, secs, seed)
}

/// [`run_fairness`] with the full AR protocol configuration supplied by the
/// caller — the policy-search entry point (`marnet-lab train` compiles a
/// candidate `PolicyParams` into the config it passes here).
pub fn run_fairness_with_config(
    bottleneck_mbps: f64,
    n_tcp: usize,
    cfg: &ArConfig,
    secs: u64,
    seed: u64,
) -> FairnessOutcome {
    run_fairness_config_instrumented(
        bottleneck_mbps,
        n_tcp,
        cfg,
        secs,
        seed,
        &TelemetryOptions::disabled(),
    )
    .0
}

/// [`run_fairness_with_config`] with optional telemetry capture; the
/// shared body behind every fairness entry point (`marnet-lab racecheck`
/// uses the captured trace to localize tie-order divergences).
pub fn run_fairness_config_instrumented(
    bottleneck_mbps: f64,
    n_tcp: usize,
    cfg: &ArConfig,
    secs: u64,
    seed: u64,
    telemetry: &TelemetryOptions,
) -> (FairnessOutcome, u64, TelemetryCapture) {
    let mut sim = Simulator::new(seed);
    if let Some(cap) = telemetry.trace_capacity {
        sim.enable_flight_recorder(cap);
    }
    let registry = if telemetry.metrics {
        let reg = MetricsRegistry::new();
        sim.enable_metrics(&reg);
        Some(reg)
    } else {
        None
    };
    let left = sim.reserve_actor();
    let right = sim.reserve_actor();
    let params =
        LinkParams::new(Bandwidth::from_mbps(bottleneck_mbps), SimDuration::from_millis(10))
            .with_queue(QueueConfig::DropTail { cap_packets: 100 });
    let fwd = sim.add_link(left, right, params.clone());
    let rev = sim.add_link(right, left, params);
    let mut left_nic = Nic::new(fwd);
    let mut right_nic = Nic::new(rev);

    // The AR flow.
    let ar_snd = sim.reserve_actor();
    let ar_rcv = sim.reserve_actor();
    let app = sim.reserve_actor();
    let sender = ArSender::new(
        1,
        cfg.clone(),
        vec![SenderPathConfig { role: PathRole::Wifi, tx: TxPath::Nic(left), link: Some(fwd) }],
    );
    let ar_sender = sender.stats();
    sim.install_actor(ar_snd, sender);
    let receiver = ArReceiver::new(1, cfg.feedback_interval, vec![TxPath::Nic(right)]);
    let ar = receiver.stats();
    sim.install_actor(ar_rcv, receiver);
    sim.install_actor(app, GreedyArApp { sender: ar_snd, next_id: 0 });
    left_nic.add_route(1, ar_snd);
    right_nic.add_route(1, ar_rcv);

    // TCP competitors. Each flow starts at a distinct prime-microsecond
    // offset: independent hosts never transmit in the same nanosecond, and
    // a shared t = 0 burst would make the bottleneck's queue order — and
    // with it each flow's ack-clock phase — an artifact of the event
    // queue's tie-break instead of the model (`marnet-lab racecheck`
    // perturbs exactly that order and flagged the phase-locked variant).
    let mut tcp = Vec::new();
    for i in 0..n_tcp {
        let conn = 10 + i as u64;
        let s_id = sim.reserve_actor();
        let r_id = sim.reserve_actor();
        let cfg_tcp = TcpConfig {
            start_at: SimTime::from_micros(137 * (i as u64 + 1)),
            ..TcpConfig::default()
        };
        let s = TcpSender::new(conn, TxPath::Nic(left), cfg_tcp, Box::new(Reno::new(1460)));
        sim.install_actor(s_id, s);
        let r = TcpReceiver::new(conn, TxPath::Nic(right));
        tcp.push(r.stats());
        sim.install_actor(r_id, r);
        left_nic.add_route(conn, s_id);
        right_nic.add_route(conn, r_id);
    }

    sim.install_actor(left, left_nic);
    sim.install_actor(right, right_nic);
    let events = sim.run_until(SimTime::from_secs(secs));
    let metrics = registry.map(|reg| {
        sim.publish_link_metrics(&reg);
        reg.snapshot()
    });
    let capture = TelemetryCapture { events: sim.take_trace(), metrics };
    (FairnessOutcome { ar, ar_sender, tcp }, events, capture)
}

// ---------------------------------------------------------------------------
// Queueing policies on the uplink (E13)
// ---------------------------------------------------------------------------

/// Outcome of a queueing-policy run.
#[derive(Debug)]
pub struct QueueingOutcome {
    /// Per-MAR-stream sink stats (one-way latency histograms), in flow
    /// order.
    pub mar: Vec<Rc<RefCell<UdpSinkStats>>>,
    /// Per-bulk-upload receiver stats, in flow order.
    pub bulk: Vec<Rc<RefCell<TcpReceiverStats>>>,
}

/// `n_mar` paced 1.5 Mb/s MAR streams and `n_bulk` greedy TCP uploads
/// share a `up_mbps` uplink governed by `queue`; returns every flow's
/// outcome. With `(1, 1)` this is the paper's E13 household; larger
/// counts give the multi-tenant uplink E17-style scenarios reuse.
pub fn run_queueing(
    up_mbps: f64,
    queue: QueueConfig,
    mar_prio: u8,
    n_mar: usize,
    n_bulk: usize,
    secs: u64,
    seed: u64,
) -> QueueingOutcome {
    run_queueing_instrumented(
        up_mbps,
        queue,
        mar_prio,
        n_mar,
        n_bulk,
        secs,
        seed,
        &TelemetryOptions::disabled(),
    )
    .0
}

/// [`run_queueing`], additionally returning the number of simulator events
/// processed — the dense-cell row of the `perf_report` matrix.
pub fn run_queueing_counted(
    up_mbps: f64,
    queue: QueueConfig,
    mar_prio: u8,
    n_mar: usize,
    n_bulk: usize,
    secs: u64,
    seed: u64,
) -> (QueueingOutcome, u64) {
    let (outcome, events, _) = run_queueing_instrumented(
        up_mbps,
        queue,
        mar_prio,
        n_mar,
        n_bulk,
        secs,
        seed,
        &TelemetryOptions::disabled(),
    );
    (outcome, events)
}

/// [`run_queueing`] with optional flight-recorder and metrics capture.
#[allow(clippy::too_many_arguments)]
pub fn run_queueing_instrumented(
    up_mbps: f64,
    queue: QueueConfig,
    mar_prio: u8,
    n_mar: usize,
    n_bulk: usize,
    secs: u64,
    seed: u64,
    telemetry: &TelemetryOptions,
) -> (QueueingOutcome, u64, TelemetryCapture) {
    let mut sim = Simulator::new(seed);
    if let Some(cap) = telemetry.trace_capacity {
        sim.enable_flight_recorder(cap);
    }
    let registry = if telemetry.metrics {
        let reg = MetricsRegistry::new();
        sim.enable_metrics(&reg);
        Some(reg)
    } else {
        None
    };
    let cpe = sim.reserve_actor();
    let isp = sim.reserve_actor();
    let up = sim.add_link(
        cpe,
        isp,
        LinkParams::new(Bandwidth::from_mbps(up_mbps), SimDuration::from_millis(10))
            .with_queue(queue),
    );
    let down = sim.add_link(
        isp,
        cpe,
        LinkParams::new(Bandwidth::from_mbps(up_mbps * 4.0), SimDuration::from_millis(10)),
    );
    let mut cpe_nic = Nic::new(up);
    let mut isp_nic = Nic::new(down);

    // MAR streams: 1200-byte packets at 1.5 Mb/s each, flows 1..=n_mar.
    let mut mar = Vec::new();
    for i in 0..n_mar {
        let flow = 1 + i as u64;
        let mar_src = sim.reserve_actor();
        let mar_sink_id = sim.reserve_actor();
        sim.install_actor(
            mar_src,
            UdpSource::with_rate_mbps(flow, TxPath::Nic(cpe), 1200, 1.5).with_prio(mar_prio),
        );
        let sink = UdpSink::new(flow);
        mar.push(sink.stats());
        sim.install_actor(mar_sink_id, sink);
        isp_nic.add_route(flow, mar_sink_id);
    }

    // Bulk TCP uploads, classified into the lowest band.
    let mut bulk = Vec::new();
    for j in 0..n_bulk {
        let flow = 1 + n_mar as u64 + j as u64;
        let bulk_s = sim.reserve_actor();
        let bulk_r = sim.reserve_actor();
        let bulk_cfg = TcpConfig { prio: 3, ..TcpConfig::default() };
        let s = TcpSender::new(flow, TxPath::Nic(cpe), bulk_cfg, Box::new(Reno::new(1460)));
        sim.install_actor(bulk_s, s);
        let r = TcpReceiver::new(flow, TxPath::Nic(isp));
        bulk.push(r.stats());
        sim.install_actor(bulk_r, r);
        cpe_nic.add_route(flow, bulk_s);
        isp_nic.add_route(flow, bulk_r);
    }

    sim.install_actor(cpe, cpe_nic);
    sim.install_actor(isp, isp_nic);
    let events = sim.run_until(SimTime::from_secs(secs));
    let metrics = registry.map(|reg| {
        sim.publish_link_metrics(&reg);
        reg.snapshot()
    });
    let capture = TelemetryCapture { events: sim.take_trace(), metrics };
    (QueueingOutcome { mar, bulk }, events, capture)
}

// ---------------------------------------------------------------------------
// Loss recovery (E11)
// ---------------------------------------------------------------------------

/// The seven §VI-C recovery mechanisms of the E11 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryMechanism {
    /// No recovery at all: what the network drops stays dropped.
    None,
    /// Deadline-gated ARQ (retransmit only if it can still arrive in budget).
    ArqGated,
    /// Unconditional ARQ, deadline or not.
    ArqAlways,
    /// XOR FEC over groups of 4.
    FecK4,
    /// XOR FEC over groups of 8.
    FecK8,
    /// Deadline-gated ARQ plus XOR FEC over groups of 8.
    ArqFecK8,
    /// Blind duplication over a second path.
    Duplicate,
}

impl RecoveryMechanism {
    /// All seven, in table order.
    pub const ALL: [RecoveryMechanism; 7] = [
        RecoveryMechanism::None,
        RecoveryMechanism::ArqGated,
        RecoveryMechanism::ArqAlways,
        RecoveryMechanism::FecK4,
        RecoveryMechanism::FecK8,
        RecoveryMechanism::ArqFecK8,
        RecoveryMechanism::Duplicate,
    ];

    /// The stable label used in tables and artifacts.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryMechanism::None => "none",
            RecoveryMechanism::ArqGated => "arq-gated",
            RecoveryMechanism::ArqAlways => "arq-always",
            RecoveryMechanism::FecK4 => "fec-k4",
            RecoveryMechanism::FecK8 => "fec-k8",
            RecoveryMechanism::ArqFecK8 => "arq+fec-k8",
            RecoveryMechanism::Duplicate => "duplicate",
        }
    }

    /// Parses a [`RecoveryMechanism::label`] back.
    pub fn from_label(label: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|m| m.label() == label)
    }

    /// The `(recovery policy, FEC group, duplicate)` knobs this mechanism
    /// sets on [`ArConfig`].
    fn knobs(self) -> (RecoveryPolicy, Option<usize>, bool) {
        let off = RecoveryPolicy { enabled: false, ..Default::default() };
        match self {
            RecoveryMechanism::None => (off, None, false),
            RecoveryMechanism::ArqGated => (RecoveryPolicy::default(), None, false),
            RecoveryMechanism::ArqAlways => {
                (RecoveryPolicy { deadline_gated: false, ..Default::default() }, None, false)
            }
            RecoveryMechanism::FecK4 => (off, Some(4), false),
            RecoveryMechanism::FecK8 => (off, Some(8), false),
            RecoveryMechanism::ArqFecK8 => (RecoveryPolicy::default(), Some(8), false),
            RecoveryMechanism::Duplicate => (off, None, true),
        }
    }
}

/// Outcome of one E11 recovery run, as percentages of offered frames.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryOutcome {
    /// Frames that arrived within the 75 ms budget, % of offered.
    pub delivered_in_budget_pct: f64,
    /// Frames that arrived at all, % of offered.
    pub delivered_total_pct: f64,
    /// Bytes on the wire beyond the goodput, %.
    pub overhead_pct: f64,
}

/// 30 FPS stream of recovery-class reference-frame-like messages.
///
/// With `droppable` the frames carry [`Priority::DropNotDelay`] — video is
/// only useful on time, so the degradation scheduler may shed stale frames
/// — while keeping the recovery class (losses are NACKed and repaired
/// within the deadline). The recovery scenarios (§VI-C) keep the default
/// `Priority::Highest` so every frame queues.
#[derive(Debug)]
struct RefStream {
    sender: ActorId,
    next_id: u64,
    bytes: u32,
    droppable: bool,
    /// Recycled [`Submit`] payloads — one frame per 33 ms tick, zero
    /// steady-state allocations.
    submit_pool: PayloadPool<Submit>,
}

impl RefStream {
    fn new(sender: ActorId, bytes: u32, droppable: bool) -> Self {
        RefStream { sender, next_id: 0, bytes, droppable, submit_pool: PayloadPool::new() }
    }
}

impl Actor for RefStream {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        if matches!(ev, Event::Start | Event::Timer { .. }) {
            let now = ctx.now();
            let mut m = ArMessage::new(self.next_id, StreamKind::VideoReference, self.bytes, now)
                .with_deadline(now + SimDuration::from_millis(75));
            if self.droppable {
                m = m.with_priority(Priority::DropNotDelay(0));
            }
            self.next_id += 1;
            let m = &m;
            let payload = self.submit_pool.prepare(|| Submit(m.clone()), |s| s.0 = m.clone());
            ctx.send_message(self.sender, payload);
            ctx.schedule_timer(SimDuration::from_millis(33), 0);
        }
    }
}

/// Runs one §VI-C recovery configuration: 30 FPS of 6 KB reference frames
/// with a 75 ms deadline over a lossy `rtt_ms` path, recovered by
/// `mechanism`, for `secs` of virtual time.
pub fn run_recovery(
    rtt_ms: u64,
    loss: f64,
    mechanism: RecoveryMechanism,
    secs: u64,
    seed: u64,
) -> RecoveryOutcome {
    run_recovery_counted(rtt_ms, loss, mechanism, secs, seed).0
}

/// [`run_recovery`], additionally returning the number of simulator events
/// processed — the denominator of the `engine_events_per_sec` benchmark and
/// the `perf_report` allocs-per-event figure.
pub fn run_recovery_counted(
    rtt_ms: u64,
    loss: f64,
    mechanism: RecoveryMechanism,
    secs: u64,
    seed: u64,
) -> (RecoveryOutcome, u64) {
    let (outcome, events, _) = run_recovery_instrumented(
        rtt_ms,
        loss,
        mechanism,
        secs,
        seed,
        &TelemetryOptions::disabled(),
    );
    (outcome, events)
}

/// [`run_recovery_counted`] with optional flight-recorder and metrics
/// capture; with the default (disabled) options it is byte-identical to the
/// uninstrumented run.
pub fn run_recovery_instrumented(
    rtt_ms: u64,
    loss: f64,
    mechanism: RecoveryMechanism,
    secs: u64,
    seed: u64,
    telemetry: &TelemetryOptions,
) -> (RecoveryOutcome, u64, TelemetryCapture) {
    run_recovery_with_pooling(rtt_ms, loss, mechanism, secs, seed, telemetry, true)
}

/// [`run_recovery_instrumented`] with an explicit payload-pooling switch.
/// `pooling: false` forces every hot-path buffer to a fresh allocation; the
/// identity tests compare both modes byte-for-byte to prove the pools are
/// observationally inert (see [`ArConfig::pooling`]).
#[allow(clippy::too_many_arguments)]
pub fn run_recovery_with_pooling(
    rtt_ms: u64,
    loss: f64,
    mechanism: RecoveryMechanism,
    secs: u64,
    seed: u64,
    telemetry: &TelemetryOptions,
    pooling: bool,
) -> (RecoveryOutcome, u64, TelemetryCapture) {
    let (recovery, fec_group, duplicate) = mechanism.knobs();
    let cfg = ArConfig {
        recovery,
        fec_group,
        duplicate_recovery: duplicate,
        pooling,
        ..ArConfig::default()
    };
    run_recovery_config_instrumented(rtt_ms, loss, &cfg, secs, seed, telemetry)
}

/// [`run_recovery`] with the full AR protocol configuration supplied by
/// the caller — the policy-search entry point. The second (duplication)
/// path is installed when the config duplicates the recovery class.
pub fn run_recovery_with_config(
    rtt_ms: u64,
    loss: f64,
    cfg: &ArConfig,
    secs: u64,
    seed: u64,
) -> RecoveryOutcome {
    run_recovery_config_instrumented(rtt_ms, loss, cfg, secs, seed, &TelemetryOptions::disabled()).0
}

/// [`run_recovery_with_config`] with optional telemetry capture; the shared
/// body behind every recovery entry point.
pub fn run_recovery_config_instrumented(
    rtt_ms: u64,
    loss: f64,
    cfg: &ArConfig,
    secs: u64,
    seed: u64,
    telemetry: &TelemetryOptions,
) -> (RecoveryOutcome, u64, TelemetryCapture) {
    let duplicate = cfg.duplicate_recovery;
    let pooling = cfg.pooling;
    let mut sim = Simulator::new(seed);
    if let Some(cap) = telemetry.trace_capacity {
        sim.enable_flight_recorder(cap);
    }
    let registry = if telemetry.metrics {
        let reg = MetricsRegistry::new();
        sim.enable_metrics(&reg);
        Some(reg)
    } else {
        None
    };
    let snd = sim.reserve_actor();
    let rcv = sim.reserve_actor();
    let one_way = SimDuration::from_millis_f64(rtt_ms as f64 / 2.0);
    let up = sim.add_link(
        snd,
        rcv,
        LinkParams::new(Bandwidth::from_mbps(20.0), one_way)
            .with_loss(LossModel::Bernoulli { p: loss }),
    );
    let up2 = sim.add_link(
        snd,
        rcv,
        LinkParams::new(Bandwidth::from_mbps(20.0), one_way)
            .with_loss(LossModel::Bernoulli { p: loss }),
    );
    let down = sim.add_link(rcv, snd, LinkParams::new(Bandwidth::from_mbps(20.0), one_way));
    let mut paths =
        vec![SenderPathConfig { role: PathRole::Wifi, tx: TxPath::Link(up), link: Some(up) }];
    if duplicate {
        paths.push(SenderPathConfig {
            role: PathRole::Cellular,
            tx: TxPath::Link(up2),
            link: Some(up2),
        });
    }
    let sender = ArSender::new(1, cfg.clone(), paths);
    let sstats = sender.stats();
    sim.install_actor(snd, sender);
    let mut receiver =
        ArReceiver::new(1, cfg.feedback_interval, vec![TxPath::Link(down), TxPath::Link(down)]);
    receiver.set_pooling(pooling);
    let rstats = receiver.stats();
    sim.install_actor(rcv, receiver);
    sim.add_actor(RefStream::new(snd, 6_000, false));
    let events = sim.run_until(SimTime::from_secs(secs));

    let offered = (secs * 30) as f64;
    let r = rstats.borrow();
    let s = sstats.borrow();
    let ks = r.by_kind.get(&StreamKind::VideoReference);
    let delivered = ks.map_or(0, |k| k.delivered) as f64;
    let hits = ks.map_or(0, |k| k.deadline_hits) as f64;
    let goodput_bytes = delivered * 6_000.0;
    let sent_bytes: u64 = s.total_sent_bytes();
    let outcome = RecoveryOutcome {
        delivered_in_budget_pct: hits / offered * 100.0,
        delivered_total_pct: delivered / offered * 100.0,
        overhead_pct: (sent_bytes as f64 / goodput_bytes.max(1.0) - 1.0) * 100.0,
    };
    let metrics = registry.map(|reg| {
        sim.publish_link_metrics(&reg);
        s.publish_usage(&reg, "core.class");
        reg.counter("core.recovery.fec_recovered").add(r.fec_recovered);
        reg.counter("core.recovery.duplicates").add(r.duplicates);
        reg.counter("core.recovery.abandoned_holes").add(r.abandoned_holes);
        reg.snapshot()
    });
    let capture = TelemetryCapture { events: sim.take_trace(), metrics };
    (outcome, events, capture)
}

// ---------------------------------------------------------------------------
// Fault injection and recovery SLOs (marnet-faults)
// ---------------------------------------------------------------------------

/// Which fault the chaos scenario injects two seconds into the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultScenario {
    /// Both directions of the access link go dark (AP power loss): the
    /// sender's watchdog sees every path down immediately.
    LinkOutage,
    /// The edge server process dies with its session state while the link
    /// stays up: only feedback silence reveals the failure, and recovering
    /// requires re-establishing the session with the restarted peer's new
    /// epoch — the hardened stack's resync; the baseline keeps talking
    /// into the dead session and never recovers.
    EdgeCrash,
    /// The edge server reboots but keeps its session state (a warm
    /// restart): no epoch bump, so the half-second sequence gap is NACKed
    /// at the old epoch and abandoned once the deadlines have passed.
    EdgeReboot,
}

impl FaultScenario {
    /// All three, in artifact order.
    pub const ALL: [FaultScenario; 3] =
        [FaultScenario::LinkOutage, FaultScenario::EdgeCrash, FaultScenario::EdgeReboot];

    /// The stable label used in tables and artifacts.
    pub fn label(self) -> &'static str {
        match self {
            FaultScenario::LinkOutage => "link-outage",
            FaultScenario::EdgeCrash => "edge-crash",
            FaultScenario::EdgeReboot => "edge-reboot",
        }
    }

    /// Parses a [`FaultScenario::label`] back.
    pub fn from_label(label: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|s| s.label() == label)
    }
}

/// Outcome of one fault-injection run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultsOutcome {
    /// Frames that arrived within the 75 ms budget, % of offered (whole run).
    pub delivered_in_budget_pct: f64,
    /// Frames that arrived at all, % of offered (whole run).
    pub delivered_total_pct: f64,
    /// In-budget % over the stress window (fault onset → onset + 1.5 s) —
    /// the QoE-under-fault figure.
    pub qoe_under_fault_pct: f64,
    /// Time from the fault clearing to the first in-budget delivery at or
    /// after the clear — the time-to-QoE-restored SLO. `None` when QoE
    /// never recovers before the horizon (censored).
    pub recovery_ms: Option<f64>,
    /// Retransmissions performed inside the fault window.
    pub retransmits_during_fault: u64,
    /// Retransmissions over the whole run.
    pub retransmits: u64,
    /// Outages declared by the sender's watchdog.
    pub outages_detected: u64,
    /// Recovery probes sent while the peer was unreachable.
    pub recovery_probes: u64,
    /// Session re-establishments after an edge restart.
    pub session_resyncs: u64,
}

/// Shared observations of the [`QoeMonitor`].
#[derive(Debug, Default)]
struct QoeLog {
    /// First in-budget delivery at or after the fault clears.
    restored_at: Option<SimTime>,
    /// In-budget deliveries of frames created inside the stress window.
    window_hits: u64,
}

/// Delivery target that watches for QoE restoration after the fault.
#[derive(Debug)]
struct QoeMonitor {
    fault_at: SimTime,
    fault_end: SimTime,
    window_end: SimTime,
    log: Rc<RefCell<QoeLog>>,
}

impl Actor for QoeMonitor {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        if let Event::Message { msg, .. } = ev {
            if let Some(d) = msg.map_ref(|d: &Delivered| *d) {
                if !d.within_deadline {
                    return;
                }
                let mut log = self.log.borrow_mut();
                if d.created >= self.fault_at && d.created < self.window_end {
                    log.window_hits += 1;
                }
                // An in-budget frame reaching the user after the fault
                // cleared IS restored QoE — including a frame created
                // during the outage that the scheduler retained (nothing
                // arrives between onset and clear: the link or the peer is
                // down, so this cannot fire early).
                if ctx.now() >= self.fault_end && log.restored_at.is_none() {
                    log.restored_at = Some(ctx.now());
                }
            }
        }
    }
}

/// Samples the sender's retransmission counter at the fault boundaries so
/// the outcome can report retransmissions *inside* the fault window.
#[derive(Debug)]
struct RetransmitSampler {
    stats: Rc<RefCell<ArSenderStats>>,
    fault_at: SimTime,
    fault_end: SimTime,
    window: Rc<RefCell<[u64; 2]>>,
}

impl Actor for RetransmitSampler {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        match ev {
            Event::Start => {
                ctx.schedule_timer(self.fault_at - ctx.now(), 0);
                ctx.schedule_timer(self.fault_end - ctx.now(), 1);
            }
            Event::Timer { tag } => {
                self.window.borrow_mut()[tag as usize & 1] = self.stats.borrow().retransmits;
            }
            _ => {}
        }
    }
}

/// [`run_faults_instrumented`] without telemetry capture.
pub fn run_faults(
    scenario: FaultScenario,
    hardened: bool,
    fault_ms: u64,
    secs: u64,
    seed: u64,
) -> FaultsOutcome {
    run_faults_instrumented(scenario, hardened, fault_ms, secs, seed, &TelemetryOptions::disabled())
        .0
}

/// Runs the chaos scenario: 30 FPS of 15 KB droppable recovery-class
/// frames with a 75 ms deadline over a clean 20 ms RTT path, hit by
/// `scenario` at t = 2 s for `fault_ms`, for `secs` (> 2) of virtual time.
///
/// `hardened` selects the protocol stack under test: the hardened arm runs
/// deadline-gated ARQ plus [`OutageConfig::hardened`] (watchdog detection,
/// outage-aware degradation, probe-based recovery); the baseline arm is the
/// naive stack — ungated ARQ, blind to outages. The whole run is a function
/// of `(scenario, hardened, fault_ms, secs, seed)`: byte-identical
/// artifacts at any thread count.
pub fn run_faults_instrumented(
    scenario: FaultScenario,
    hardened: bool,
    fault_ms: u64,
    secs: u64,
    seed: u64,
    telemetry: &TelemetryOptions,
) -> (FaultsOutcome, u64, TelemetryCapture) {
    // The baseline arm is the pre-hardening stack: ARQ without the
    // deadline gate, no watchdog, no outage-aware degradation and no
    // session re-establishment — after a cold edge restart it keeps
    // stamping the dead epoch, which the restarted peer discards. The
    // hardened arm gates retransmissions on the deadline and runs the
    // watchdog / outage degradation / probe / resync loop.
    let (recovery, outage) = if hardened {
        (RecoveryPolicy::default(), OutageConfig::hardened())
    } else {
        (RecoveryPolicy { deadline_gated: false, ..Default::default() }, OutageConfig::default())
    };
    let cfg = ArConfig { recovery, outage, fec_group: None, ..ArConfig::default() };
    run_faults_config_instrumented(scenario, &cfg, fault_ms, secs, seed, telemetry)
}

/// [`run_faults`] with the full AR protocol configuration supplied by the
/// caller — the policy-search entry point (the portfolio runs candidates
/// with the hardened outage profile plus their searched recovery knobs).
pub fn run_faults_with_config(
    scenario: FaultScenario,
    cfg: &ArConfig,
    fault_ms: u64,
    secs: u64,
    seed: u64,
) -> FaultsOutcome {
    run_faults_config_instrumented(
        scenario,
        cfg,
        fault_ms,
        secs,
        seed,
        &TelemetryOptions::disabled(),
    )
    .0
}

/// [`run_faults_with_config`] with optional telemetry capture; the shared
/// body behind every fault-injection entry point.
pub fn run_faults_config_instrumented(
    scenario: FaultScenario,
    cfg: &ArConfig,
    fault_ms: u64,
    secs: u64,
    seed: u64,
    telemetry: &TelemetryOptions,
) -> (FaultsOutcome, u64, TelemetryCapture) {
    let fault_at = SimTime::from_secs(2);
    let fault_end = fault_at + SimDuration::from_millis(fault_ms);
    let horizon = SimTime::from_secs(secs);
    let mut sim = Simulator::new(seed);
    if let Some(cap) = telemetry.trace_capacity {
        sim.enable_flight_recorder(cap);
    }
    let registry = if telemetry.metrics {
        let reg = MetricsRegistry::new();
        sim.enable_metrics(&reg);
        Some(reg)
    } else {
        None
    };
    let snd = sim.reserve_actor();
    let rcv = sim.reserve_actor();
    let monitor = sim.reserve_actor();
    let one_way = SimDuration::from_millis(10);
    // A light residual loss keeps the ARQ machinery honest (the retransmit
    // bound is measured against real repairs, not an idle counter) and
    // gives replicates seed-to-seed variance.
    let up = sim.add_link(
        snd,
        rcv,
        LinkParams::new(Bandwidth::from_mbps(20.0), one_way)
            .with_loss(LossModel::Bernoulli { p: 0.003 }),
    );
    let down = sim.add_link(rcv, snd, LinkParams::new(Bandwidth::from_mbps(20.0), one_way));
    let sender = ArSender::new(
        1,
        cfg.clone(),
        vec![SenderPathConfig { role: PathRole::Wifi, tx: TxPath::Link(up), link: Some(up) }],
    );
    let sstats = sender.stats();
    sim.install_actor(snd, sender);
    let receiver = ArReceiver::new(1, cfg.feedback_interval, vec![TxPath::Link(down)])
        .with_delivery_target(monitor);
    let rstats = receiver.stats();
    let spec = match scenario {
        FaultScenario::LinkOutage => {
            sim.install_actor(rcv, receiver);
            FaultSpec::new().outage(vec![up, down], fault_at, SimDuration::from_millis(fault_ms))
        }
        FaultScenario::EdgeCrash => {
            sim.install_actor(rcv, RestartableServer::new(receiver));
            FaultSpec::new().edge_crash(rcv, fault_at, SimDuration::from_millis(fault_ms), true)
        }
        FaultScenario::EdgeReboot => {
            sim.install_actor(rcv, RestartableServer::new(receiver));
            FaultSpec::new().edge_crash(rcv, fault_at, SimDuration::from_millis(fault_ms), false)
        }
    };
    sim.add_actor(FaultInjector::new(spec.compile(seed, horizon)));
    let log = Rc::new(RefCell::new(QoeLog::default()));
    sim.install_actor(
        monitor,
        QoeMonitor {
            fault_at,
            fault_end,
            window_end: fault_at + SimDuration::from_millis(1500),
            log: Rc::clone(&log),
        },
    );
    let window = Rc::new(RefCell::new([0u64; 2]));
    sim.add_actor(RetransmitSampler {
        stats: Rc::clone(&sstats),
        fault_at,
        fault_end,
        window: Rc::clone(&window),
    });
    sim.add_actor(RefStream::new(snd, 15_000, true));
    let events = sim.run_until(horizon);

    let offered = (secs * 30) as f64;
    let window_offered = 1.5 * 30.0;
    let r = rstats.borrow();
    let s = sstats.borrow();
    let ks = r.by_kind.get(&StreamKind::VideoReference);
    let delivered = ks.map_or(0, |k| k.delivered) as f64;
    let hits = ks.map_or(0, |k| k.deadline_hits) as f64;
    let lg = log.borrow();
    let w = window.borrow();
    let outcome = FaultsOutcome {
        delivered_in_budget_pct: hits / offered * 100.0,
        delivered_total_pct: delivered / offered * 100.0,
        qoe_under_fault_pct: lg.window_hits as f64 / window_offered * 100.0,
        recovery_ms: lg.restored_at.map(|t| t.saturating_since(fault_end).as_millis_f64()),
        retransmits_during_fault: w[1].saturating_sub(w[0]),
        retransmits: s.retransmits,
        outages_detected: s.outages_detected,
        recovery_probes: s.recovery_probes,
        session_resyncs: s.session_resyncs,
    };
    let metrics = registry.map(|reg| {
        sim.publish_link_metrics(&reg);
        s.publish_usage(&reg, "core.class");
        reg.counter("core.faults.retransmits").add(s.retransmits);
        reg.counter("core.faults.outages_detected").add(s.outages_detected);
        reg.counter("core.faults.recovery_probes").add(s.recovery_probes);
        reg.counter("core.faults.session_resyncs").add(s.session_resyncs);
        reg.snapshot()
    });
    let capture = TelemetryCapture { events: sim.take_trace(), metrics };
    (outcome, events, capture)
}

// ---------------------------------------------------------------------------
// Multipath commute (E12)
// ---------------------------------------------------------------------------

/// Outcome of a multipath-policy commute run.
#[derive(Debug)]
pub struct MultipathOutcome {
    /// Receiver stats (deliveries, deadline ratio).
    pub receiver: Rc<RefCell<ArReceiverStats>>,
    /// Sender stats (cellular bytes = the LTE bill).
    pub sender: Rc<RefCell<ArSenderStats>>,
}

/// A commuting MAR user: WiFi with urban-walk coverage + always-on LTE,
/// running the given §VI-D policy for `secs`.
pub fn run_multipath_commute(policy: MultipathPolicy, secs: u64, seed: u64) -> MultipathOutcome {
    let cfg = ArConfig { policy, ..ArConfig::default() };
    run_multipath_commute_with_config(&cfg, secs, seed)
}

/// [`run_multipath_commute`] with the full AR protocol configuration
/// supplied by the caller — the policy-search entry point.
pub fn run_multipath_commute_with_config(cfg: &ArConfig, secs: u64, seed: u64) -> MultipathOutcome {
    run_multipath_commute_config_instrumented(cfg, secs, seed, &TelemetryOptions::disabled()).0
}

/// [`run_multipath_commute_with_config`] with optional telemetry capture;
/// the shared body behind every commute entry point (`marnet-lab
/// racecheck` uses the captured trace to localize tie-order divergences).
pub fn run_multipath_commute_config_instrumented(
    cfg: &ArConfig,
    secs: u64,
    seed: u64,
    telemetry: &TelemetryOptions,
) -> (MultipathOutcome, u64, TelemetryCapture) {
    let mut sim = Simulator::new(seed);
    if let Some(cap) = telemetry.trace_capacity {
        sim.enable_flight_recorder(cap);
    }
    let registry = if telemetry.metrics {
        let reg = MetricsRegistry::new();
        sim.enable_metrics(&reg);
        Some(reg)
    } else {
        None
    };
    let snd = sim.reserve_actor();
    let rcv = sim.reserve_actor();
    let app = sim.reserve_actor();

    // WiFi path: fast but intermittent.
    let wifi_up = sim.add_link(
        snd,
        rcv,
        LinkParams::new(Bandwidth::from_mbps(25.0), SimDuration::from_millis(10)),
    );
    let wifi_down = sim.add_link(
        rcv,
        snd,
        LinkParams::new(Bandwidth::from_mbps(25.0), SimDuration::from_millis(10)),
    );
    // LTE path: slower, higher RTT, always there.
    let lte_up = sim.add_link(
        snd,
        rcv,
        LinkParams::new(Bandwidth::from_mbps(6.0), SimDuration::from_millis(35)),
    );
    let lte_down = sim.add_link(
        rcv,
        snd,
        LinkParams::new(Bandwidth::from_mbps(12.0), SimDuration::from_millis(35)),
    );

    // Coverage traces.
    let mut rng = derive_rng(seed, "commute.wifi");
    let wifi_trace = CoverageModel::wifi_urban_walk().generate(SimTime::from_secs(secs), &mut rng);
    sim.add_actor(CoverageActor::new(wifi_trace, vec![wifi_up, wifi_down]));
    let mut rng = derive_rng(seed, "commute.lte");
    let lte_trace = CoverageModel::cellular().generate(SimTime::from_secs(secs), &mut rng);
    sim.add_actor(CoverageActor::new(lte_trace, vec![lte_up, lte_down]));

    let sender = ArSender::new(
        1,
        cfg.clone(),
        vec![
            SenderPathConfig {
                role: PathRole::Wifi,
                tx: TxPath::Link(wifi_up),
                link: Some(wifi_up),
            },
            SenderPathConfig {
                role: PathRole::Cellular,
                tx: TxPath::Link(lte_up),
                link: Some(lte_up),
            },
        ],
    );
    let sender_stats = sender.stats();
    sim.install_actor(snd, sender);
    let receiver = ArReceiver::new(
        1,
        cfg.feedback_interval,
        vec![TxPath::Link(wifi_down), TxPath::Link(lte_down)],
    );
    let receiver_stats = receiver.stats();
    sim.install_actor(rcv, receiver);
    sim.install_actor(app, GreedyArApp { sender: snd, next_id: 0 });

    let events = sim.run_until(SimTime::from_secs(secs));
    let metrics = registry.map(|reg| {
        sim.publish_link_metrics(&reg);
        reg.snapshot()
    });
    let capture = TelemetryCapture { events: sim.take_trace(), metrics };
    (MultipathOutcome { receiver: receiver_stats, sender: sender_stats }, events, capture)
}

// ---------------------------------------------------------------------------
// City-scale hybrid fidelity (E17)
// ---------------------------------------------------------------------------

/// Nominal cell downlink capacity: the packet-level boundary link and the
/// fluid foreground class's per-flow cap.
pub const CITYSCALE_CELL_MBPS: f64 = 40.0;
/// Paced MAR stream rate inside the cell.
pub const CITYSCALE_MAR_MBPS: f64 = 6.0;
/// MAR stream packet size in bytes.
pub const CITYSCALE_MAR_PACKET_BYTES: u32 = 1_200;
/// Per-background-flow cap: the client's access-link rate, so per-client
/// access links need not exist in the fluid graph.
pub const CITYSCALE_ACCESS_MBPS: f64 = 2.0;
/// Bytes per background transfer.
pub const CITYSCALE_TRANSFER_BYTES: u64 = 50_000;
/// Mean exponential think time between a client's transfers.
pub const CITYSCALE_THINK_MS: u64 = 2_000;

/// Analytic offered background load in Gb/s: each client cycles through
/// an exponential think (mean [`CITYSCALE_THINK_MS`]) and one
/// [`CITYSCALE_TRANSFER_BYTES`] transfer, which takes
/// `bytes·8 / access_rate` when the backhaul is unloaded.
pub fn cityscale_offered_gbps(clients: u64) -> f64 {
    let transfer_s = CITYSCALE_TRANSFER_BYTES as f64 * 8.0 / (CITYSCALE_ACCESS_MBPS * 1e6);
    let cycle_s = CITYSCALE_THINK_MS as f64 / 1e3 + transfer_s;
    clients as f64 * CITYSCALE_TRANSFER_BYTES as f64 * 8.0 / cycle_s / 1e9
}

/// Outcome of a city-scale hybrid run.
#[derive(Debug)]
pub struct CityscaleOutcome {
    /// MAR sink stats inside the packet-level cell (QoE: one-way latency
    /// histogram and delivery meter).
    pub mar: Rc<RefCell<UdpSinkStats>>,
    /// Background client population stats (offered/completed transfers).
    pub background: Rc<RefCell<WorkloadStats>>,
    /// Fluid tier aggregates (flow conservation, recompute count).
    pub fluid: Rc<RefCell<FluidStats>>,
    /// The fidelity partition the scenario was built from.
    pub regions: RegionMap,
}

/// E17: one packet-level MAR cell surrounded by `clients` flow-level
/// background clients sharing a `backhaul_gbps` metro backhaul.
///
/// The cell is a [`CITYSCALE_CELL_MBPS`] downlink carrying a paced
/// [`CITYSCALE_MAR_MBPS`] MAR stream from the edge to a sink. In the
/// fluid graph the same downlink is a standing foreground class capped at
/// the cell rate, competing max-min fairly with the background class on
/// the backhaul; after every recompute the foreground's allocation is
/// pushed to the packet tier as the downlink's available rate (via the
/// NIC, exercising the message coupling path). As offered background load
/// approaches the backhaul capacity the foreground share collapses below
/// the MAR stream's rate and the cell's queue — and with it the QoE —
/// degrades: the paper's metro-scale capacity argument, measured.
pub fn run_cityscale(clients: u64, backhaul_gbps: f64, secs: u64, seed: u64) -> CityscaleOutcome {
    run_cityscale_counted(clients, backhaul_gbps, secs, seed).0
}

/// [`run_cityscale`], additionally returning the number of simulator
/// events processed — the denominator of the `flow_events_per_sec`
/// benchmark.
pub fn run_cityscale_counted(
    clients: u64,
    backhaul_gbps: f64,
    secs: u64,
    seed: u64,
) -> (CityscaleOutcome, u64) {
    let (outcome, events, _) = run_cityscale_instrumented(
        clients,
        backhaul_gbps,
        secs,
        seed,
        &TelemetryOptions::disabled(),
    );
    (outcome, events)
}

/// [`run_cityscale_counted`] with optional flight-recorder and metrics
/// capture; with the default (disabled) options it is byte-identical to
/// the uninstrumented run.
pub fn run_cityscale_instrumented(
    clients: u64,
    backhaul_gbps: f64,
    secs: u64,
    seed: u64,
    telemetry: &TelemetryOptions,
) -> (CityscaleOutcome, u64, TelemetryCapture) {
    let mut sim = Simulator::new(seed);
    if let Some(cap) = telemetry.trace_capacity {
        sim.enable_flight_recorder(cap);
    }
    let registry = if telemetry.metrics {
        let reg = MetricsRegistry::new();
        sim.enable_metrics(&reg);
        Some(reg)
    } else {
        None
    };

    // Packet-level focus region: the cell. The edge NIC owns the
    // downlink; the MAR source paces packets through it to the sink.
    let edge = sim.reserve_actor();
    let ue = sim.reserve_actor();
    let mar_src = sim.reserve_actor();
    let down = sim.add_link(
        edge,
        ue,
        LinkParams::new(Bandwidth::from_mbps(CITYSCALE_CELL_MBPS), SimDuration::from_millis(5))
            .with_queue(QueueConfig::DropTail { cap_packets: 400 }),
    );
    sim.install_actor(
        mar_src,
        UdpSource::with_rate_mbps(
            1,
            TxPath::Nic(edge),
            CITYSCALE_MAR_PACKET_BYTES,
            CITYSCALE_MAR_MBPS,
        ),
    );
    let sink = UdpSink::new(1);
    let mar = sink.stats();
    sim.install_actor(ue, sink);
    sim.install_actor(edge, Nic::new(down));

    // Flow-level background region: the metro backhaul and the client
    // population.
    let net_id = sim.reserve_actor();
    let wl_id = sim.reserve_actor();

    let mut regions = RegionMap::new();
    let cell = regions.add_region("cell", Fidelity::Packet);
    let metro = regions.add_region("metro", Fidelity::Fluid);
    for actor in [edge, ue, mar_src] {
        regions.assign(actor, cell);
    }
    for actor in [net_id, wl_id] {
        regions.assign(actor, metro);
    }
    regions.mark_boundary(down);

    let mut net = FluidNetwork::new();
    let backhaul = net.add_link(Bandwidth::from_gbps(backhaul_gbps));
    let background = net.add_class(&[backhaul], Some(Bandwidth::from_mbps(CITYSCALE_ACCESS_MBPS)));
    let foreground = net.add_class(&[backhaul], Some(Bandwidth::from_mbps(CITYSCALE_CELL_MBPS)));
    net.add_standing_flows(foreground, 1);
    // The boundary link's available rate tracks the foreground class's
    // max-min share, delivered as RateUpdate messages to the owning NIC.
    net.couple_class(foreground, Coupling::notify(down, edge));
    let fluid = net.stats();
    sim.install_actor(net_id, net);

    let wl = BackgroundWorkload::new(WorkloadConfig {
        clients,
        class: background,
        network: net_id,
        think_mean: SimDuration::from_millis(CITYSCALE_THINK_MS),
        transfer_bytes: CITYSCALE_TRANSFER_BYTES,
        label: "cityscale/bg".into(),
    });
    let background_stats = wl.stats();
    sim.install_actor(wl_id, wl);

    let events = sim.run_until(SimTime::from_secs(secs));

    let metrics = registry.map(|reg| {
        sim.publish_link_metrics(&reg);
        let fl = fluid.borrow();
        reg.counter("flow.started").add(fl.started);
        reg.counter("flow.finished").add(fl.finished);
        reg.counter("flow.recomputes").add(fl.recomputes);
        let bg = background_stats.borrow();
        reg.counter("flow.workload.offered").add(bg.offered);
        reg.counter("flow.workload.completed").add(bg.completed);
        reg.snapshot()
    });
    let capture = TelemetryCapture { events: sim.take_trace(), metrics };
    let outcome = CityscaleOutcome { mar, background: background_stats, fluid, regions };
    (outcome, events, capture)
}

#[cfg(test)]
mod tests {
    use super::*;
    use marnet_telemetry::TraceKind;

    #[test]
    fn table2_rtts_match_the_paper_rows() {
        for scenario in Table2Scenario::ALL {
            let (_, _, expected_ms) = scenario.labels();
            let stats = run_table2(scenario, 100, 400, 400, 3);
            let st = stats.borrow();
            assert_eq!(st.received, 100, "{scenario:?} lost probes");
            let mut h = st.rtt_ms.clone();
            let median = h.median().unwrap();
            let err = (median - expected_ms as f64).abs() / expected_ms as f64;
            assert!(err < 0.15, "{scenario:?}: median {median} vs paper {expected_ms}");
        }
    }

    #[test]
    fn fig3_uploads_starve_the_download() {
        let out = run_fig3(10.0, 1.0, 1000, 2, 60, 5);
        let dl = out.download.borrow();
        // Before the first upload starts the download fills the pipe; after
        // the uploads saturate the uplink, ACKs drown and goodput collapses.
        let before = dl.goodput_meter.mean_mbps(2.0, out.upload_starts[0]);
        let after = dl.goodput_meter.mean_mbps(out.upload_starts[1] + 5.0, 60.0);
        assert!(before > 7.0, "clean download {before} Mb/s");
        assert!(after < before * 0.5, "uploads must crush the download: {before} → {after} Mb/s");
    }

    #[test]
    fn fairness_ar_shares_with_tcp() {
        // In loss-only mode (delay signal effectively disabled) the AR
        // protocol competes like an AIMD flow and holds its share; the
        // delay-sensitive mode's starvation is measured by the E14 sweep.
        let out = run_fairness(10.0, 1, true, SimDuration::from_secs(10), 30, 7);
        let ar_bytes = out.ar.borrow().received_bytes as f64;
        let tcp_bytes = out.tcp[0].borrow().goodput_bytes as f64;
        assert!(ar_bytes > 0.0 && tcp_bytes > 0.0);
        // With the loss fallback on, neither flow should be starved: the
        // weaker side keeps at least ~15% of the pipe.
        let share = ar_bytes / (ar_bytes + tcp_bytes);
        assert!((0.1..=0.9).contains(&share), "AR share {share}");
    }

    #[test]
    fn queueing_priority_protects_mar_latency() {
        let bloated = run_queueing(2.0, QueueConfig::bloated_uplink(), 0, 1, 1, 30, 9);
        let prio = run_queueing(
            2.0,
            QueueConfig::StrictPriority { bands: 4, cap_packets_per_band: 250 },
            0,
            1,
            1,
            30,
            9,
        );
        let bl = bloated.mar[0].borrow().latency_ms.clone();
        let pr = prio.mar[0].borrow().latency_ms.clone();
        let mut bl2 = bl.clone();
        let mut pr2 = pr.clone();
        let bloat_p95 = bl2.p95().unwrap();
        let prio_p95 = pr2.p95().unwrap();
        assert!(
            prio_p95 < bloat_p95 / 4.0,
            "priority queueing must slash MAR p95: {bloat_p95} → {prio_p95} ms"
        );
        // And the bulk upload still makes progress under priority queueing.
        assert!(prio.bulk[0].borrow().goodput_bytes > 1_000_000);
    }

    #[test]
    fn multipath_policies_trade_lte_bytes_for_availability() {
        let secs = 120;
        let wifi_only = run_multipath_commute(MultipathPolicy::WifiOnly, secs, 21);
        let preferred = run_multipath_commute(MultipathPolicy::WifiPreferred, secs, 21);
        let aggregate = run_multipath_commute(MultipathPolicy::Aggregate, secs, 21);
        let lte = |o: &MultipathOutcome| o.sender.borrow().cellular_bytes;
        let delivered = |o: &MultipathOutcome| {
            o.receiver.borrow().by_kind.values().map(|k| k.delivered).sum::<u64>()
        };
        // LTE usage: WifiOnly ≤ WifiPreferred ≤ Aggregate (policy 1 barely
        // touches LTE, policy 3 uses it all the time).
        assert!(lte(&wifi_only) < lte(&preferred), "{} vs {}", lte(&wifi_only), lte(&preferred));
        assert!(lte(&preferred) < lte(&aggregate));
        // Delivery: WifiOnly loses the most (gaps drop its video).
        assert!(delivered(&wifi_only) < delivered(&preferred));
    }

    #[test]
    fn fault_scenario_labels_round_trip() {
        for sc in FaultScenario::ALL {
            assert_eq!(FaultScenario::from_label(sc.label()), Some(sc));
        }
        assert_eq!(FaultScenario::from_label("meteor-strike"), None);
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let a = run_faults(FaultScenario::LinkOutage, true, 500, 6, 42);
        let b = run_faults(FaultScenario::LinkOutage, true, 500, 6, 42);
        assert_eq!(a, b, "same inputs must reproduce the outcome bit for bit");
    }

    #[test]
    fn hardened_stack_beats_baseline_on_link_outage_recovery() {
        let baseline = run_faults(FaultScenario::LinkOutage, false, 500, 6, 42);
        let hardened = run_faults(FaultScenario::LinkOutage, true, 500, 6, 42);
        let b_ms = baseline.recovery_ms.expect("baseline recovers from a pure link outage");
        let h_ms = hardened.recovery_ms.expect("hardened recovers from a pure link outage");
        // Freshest-frame retention: the hardened arm banks the newest frame
        // during the outage and sends it the instant the link returns.
        assert!(h_ms < b_ms, "hardened {h_ms} ms must beat baseline {b_ms} ms");
        assert!(h_ms < 75.0, "QoE restored within one frame budget: {h_ms} ms");
        assert!(hardened.outages_detected >= 1, "watchdog engaged");
        assert!(hardened.recovery_probes >= 1, "probes paced by backoff");
        assert!(hardened.qoe_under_fault_pct >= baseline.qoe_under_fault_pct);
        assert_eq!(baseline.outages_detected, 0, "baseline is blind to the outage");
    }

    #[test]
    fn cold_edge_crash_is_fatal_without_session_resync() {
        let baseline = run_faults(FaultScenario::EdgeCrash, false, 500, 6, 42);
        let hardened = run_faults(FaultScenario::EdgeCrash, true, 500, 6, 42);
        // The baseline keeps stamping the dead epoch after the cold
        // restart; the fresh incarnation discards every packet and QoE
        // never returns (censored at the horizon).
        assert_eq!(baseline.recovery_ms, None, "baseline must never recover");
        assert_eq!(baseline.session_resyncs, 0);
        let h_ms = hardened.recovery_ms.expect("resync restores the session");
        assert!(h_ms < 150.0, "hardened recovery {h_ms} ms");
        assert_eq!(hardened.session_resyncs, 1);
        assert!(hardened.delivered_in_budget_pct > baseline.delivered_in_budget_pct + 30.0);
    }

    #[test]
    fn warm_edge_reboot_is_benign_for_both_arms() {
        let baseline = run_faults(FaultScenario::EdgeReboot, false, 500, 6, 42);
        let hardened = run_faults(FaultScenario::EdgeReboot, true, 500, 6, 42);
        // No state loss → no epoch bump → no resync needed; both arms
        // recover within about one frame budget and hardening costs
        // nothing. The half-second hole is NACKed but its deadlines are
        // long past, so recovery abandons it instead of storming.
        for (label, o) in [("baseline", &baseline), ("hardened", &hardened)] {
            let ms = o.recovery_ms.unwrap_or(f64::INFINITY);
            assert!(ms < 75.0, "{label} recovery {ms} ms");
            assert_eq!(o.session_resyncs, 0, "{label} must not resync");
            assert!(o.retransmits <= 64, "{label} retransmits bounded: {}", o.retransmits);
        }
    }

    /// Trace-based regression for the scripted 500 ms outage: the flight
    /// recorder must show the watchdog engaging outage degradation within
    /// one RTT of the injected fault, resolving shortly after it clears,
    /// and retransmissions staying bounded throughout.
    #[test]
    fn outage_trace_degradation_engages_within_one_rtt() {
        let telemetry = TelemetryOptions { trace_capacity: Some(1 << 15), metrics: false };
        let (outcome, _, capture) =
            run_faults_instrumented(FaultScenario::LinkOutage, true, 500, 6, 42, &telemetry);
        let events = &capture.events;
        let first = |kind: TraceKind| {
            events.iter().find(|e| e.kind == kind).map(|e| e.t).unwrap_or_else(|| {
                panic!("trace must contain a {} event", kind.name());
            })
        };
        let inject = first(TraceKind::FaultInject);
        let detect = first(TraceKind::OutageDetect);
        // A feedback packet still in flight at the cut can briefly resolve
        // the first detection; the resolve that ends the outage is the last.
        let resolve = events
            .iter()
            .filter(|e| e.kind == TraceKind::OutageResolve)
            .map(|e| e.t)
            .max()
            .expect("trace must contain an outage-resolve event");
        let rtt_nanos = 20_000_000;
        assert!(detect >= inject, "detection follows injection");
        assert!(
            detect - inject <= rtt_nanos,
            "outage degradation must engage within one RTT: {} ns",
            detect - inject
        );
        let fault_end = inject + 500_000_000;
        assert!(
            resolve > fault_end && resolve - fault_end <= 50_000_000,
            "outage resolves within a few feedback intervals of the clear"
        );
        // Degradation actually shed superseded frames during the fault.
        assert!(
            events
                .iter()
                .any(|e| e.kind == TraceKind::ClassDegrade && e.t >= inject && e.t < fault_end),
            "retention must shed superseded frames during the outage"
        );
        // Bounded recovery: no retransmission storm accompanies the outage.
        assert_eq!(outcome.retransmits_during_fault, 0, "nothing to retransmit while dark");
        assert!(outcome.retransmits <= 64, "whole-run retransmits bounded");
    }

    #[test]
    fn cityscale_background_load_degrades_cell_qoe() {
        // Light load: offered ≈ 0.4 Gb/s on a 1 Gb/s backhaul — the
        // foreground keeps its full cell rate and MAR latency stays at
        // propagation + serialization. Overload: offered ≈ 3.6 Gb/s —
        // the foreground share collapses below the MAR stream's 6 Mb/s
        // and queueing delay dominates.
        let light = run_cityscale(2_000, 1.0, 6, 13);
        let heavy = run_cityscale(20_000, 1.0, 6, 13);
        let light_p95 = light.mar.borrow().latency_ms.clone().p95().unwrap();
        let heavy_p95 = heavy.mar.borrow().latency_ms.clone().p95().unwrap();
        assert!(light_p95 < 20.0, "unloaded cell p95 {light_p95} ms");
        assert!(
            heavy_p95 > light_p95 * 4.0,
            "overload must inflate MAR p95: {light_p95} → {heavy_p95} ms"
        );
        // The background tier actually ran at scale and conserved flows.
        let bg = heavy.background.borrow();
        assert!(bg.offered > 10_000, "offered {}", bg.offered);
        let fl = heavy.fluid.borrow();
        assert_eq!(fl.started, bg.offered);
        assert!(fl.finished <= fl.started);
        // The partition is recorded: the cell is packet-level, the fluid
        // tier fluid, and the downlink is the (only) boundary.
        assert_eq!(heavy.regions.boundaries().len(), 1);
    }

    #[test]
    fn cityscale_replays_bit_identically() {
        let fingerprint = |o: &CityscaleOutcome| {
            let mar = o.mar.borrow();
            let bg = o.background.borrow();
            (
                mar.packets,
                mar.bytes,
                mar.latency_ms.values().to_vec(),
                bg.offered,
                bg.completed,
                bg.duration_ms.values().to_vec(),
                o.fluid.borrow().recomputes,
            )
        };
        let a = run_cityscale(5_000, 1.0, 4, 29);
        let b = run_cityscale(5_000, 1.0, 4, 29);
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }
}
