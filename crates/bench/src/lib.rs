//! # marnet-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the
//! index). Every binary prints the regenerated rows/series to stdout and
//! writes a machine-readable JSON artifact to `results/<name>.json`.
//!
//! Run them all with `cargo run -p marnet-bench --bin <name>`; the
//! Criterion micro-benchmarks live under `benches/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod scenarios;

use marnet_telemetry::{TelemetryOptions, DEFAULT_TRACE_CAPACITY};
use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// Telemetry/parallelism CLI flags shared by the experiment binaries:
/// `--trace <path>`, `--metrics` and `--threads <n>`, all off by default so
/// existing artifacts stay byte-identical.
#[derive(Debug, Clone, Default)]
pub struct TelemetryFlags {
    /// What the scenario should capture.
    pub options: TelemetryOptions,
    /// Where to write the binary trace, when `--trace` was given.
    pub trace_path: Option<PathBuf>,
    /// Worker threads for embarrassingly parallel scenario grids
    /// (`--threads <n>`, default 1).
    pub threads: usize,
}

/// Parses [`TelemetryFlags`] from `std::env::args`, ignoring flags it does
/// not know (binaries with extra flags parse those separately).
///
/// # Panics
///
/// Panics on a `--trace` or `--threads` flag with a missing or (for
/// `--threads`) non-numeric value — experiment binaries fail loudly.
pub fn parse_telemetry_flags() -> TelemetryFlags {
    let mut flags = TelemetryFlags { threads: 1, ..TelemetryFlags::default() };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace" => {
                let path = args.next().expect("--trace requires a file path");
                flags.trace_path = Some(PathBuf::from(path));
                flags.options.trace_capacity = Some(DEFAULT_TRACE_CAPACITY);
            }
            "--metrics" => flags.options.metrics = true,
            "--threads" => {
                let n = args.next().expect("--threads requires a count");
                flags.threads = n.parse().expect("--threads value must be a number");
            }
            _ => {}
        }
    }
    flags.threads = flags.threads.max(1);
    flags
}

/// Writes recorded trace events to `path` and reports the artifact, or does
/// nothing if no trace was requested.
///
/// # Panics
///
/// Panics if the trace file cannot be written.
pub fn write_trace(flags: &TelemetryFlags, events: &[marnet_telemetry::TraceEvent]) {
    if let Some(path) = &flags.trace_path {
        marnet_telemetry::file::write_file(path, events).expect("write trace file");
        println!("\n[trace] {} ({} events)", path.display(), events.len());
    }
}

/// Prints a Markdown-ish table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<width$}", width = widths.get(i).copied().unwrap_or(4)))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!("|{}|", widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|"));
    for row in rows {
        line(row);
    }
}

/// Writes a JSON artifact under `results/`, creating the directory.
///
/// The write is atomic: the body lands in a temp file next to the target
/// which is then renamed into place, so a crash mid-write can never leave
/// a truncated artifact behind.
///
/// # Panics
///
/// Panics if the artifact cannot be serialized or written — experiment
/// binaries should fail loudly rather than drop results.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = PathBuf::from("results");
    fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    let body = serde_json::to_string_pretty(value).expect("serialize results");
    let tmp = dir.join(format!(".{name}.json.tmp"));
    fs::write(&tmp, body).expect("write results");
    fs::rename(&tmp, &path).expect("publish results");
    println!("\n[artifact] {}", path.display());
}

/// Formats a float with the given precision; NaN prints as `-` and
/// negative zero is normalised — including values that only *round* to
/// zero at the requested precision (e.g. `fmt(-0.04, 1)`).
pub fn fmt(v: f64, prec: usize) -> String {
    if v.is_nan() {
        return "-".to_string();
    }
    let s = format!("{v:.prec$}");
    // Normalise after rounding: "-0", "-0.00", ... have no non-zero digit.
    if let Some(rest) = s.strip_prefix('-') {
        if rest.chars().all(|c| c == '0' || c == '.') {
            return rest.to_string();
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_precision() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(10.0, 0), "10");
        assert_eq!(fmt(f64::NAN, 2), "-");
        assert_eq!(fmt(-0.0, 1), "0.0");
        // Values that only round to zero must not print a minus sign...
        assert_eq!(fmt(-0.04, 1), "0.0");
        assert_eq!(fmt(-0.0004, 2), "0.00");
        assert_eq!(fmt(-0.4, 0), "0");
        // ...while genuinely negative results keep theirs.
        assert_eq!(fmt(-0.06, 1), "-0.1");
        assert_eq!(fmt(-1.0, 1), "-1.0");
    }

    #[test]
    fn write_json_is_atomic_and_readable() {
        let dir = std::env::temp_dir().join(format!("marnet_bench_wj_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let prev = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        write_json("atomic_check", &vec![1u64, 2, 3]);
        let body = fs::read_to_string("results/atomic_check.json").unwrap();
        assert!(body.contains('1') && body.contains('3'));
        assert!(!PathBuf::from("results/.atomic_check.json.tmp").exists());
        std::env::set_current_dir(prev).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn table_printing_does_not_panic() {
        print_table(
            "t",
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
