//! Event-core performance report: `results/BENCH_sim.json`.
//!
//! Runs a five-scenario matrix — the E11 recovery pair, the Table II
//! offload loop, a 1000-flow dense cell, and the E17 city-scale hybrid —
//! under a counting allocator and records, per scenario:
//!
//! * **events/sec** — best of `reps` wall-clock rounds (best-of filters
//!   scheduler noise; the mean is reported alongside),
//! * **allocs/event** — allocator calls per simulator event,
//! * **peak heap proxy** — the high-water mark of live allocated bytes, and
//! * **trace overhead** — the same workload with the flight recorder on,
//!   as a percentage slowdown (a ratio of two rates measured in the same
//!   process, so runner speed cancels out).
//!
//! A small scenario (`--smoke`) runs in CI to catch panics and gross
//! regressions without burning minutes on a shared runner. Smoke-scale
//! absolute numbers are warm-up-dominated (each rep builds a fresh
//! simulator, actors and pools for a couple of virtual seconds) and are
//! not comparable to the full run.
//!
//! `--ratchet <path>` turns the matrix into a regression gate: every row
//! is compared against the per-mode entry in the ratchet file
//! (`results/PERF_RATCHET.json`), the run fails on a regression beyond
//! the documented slack, and any improvement tightens the stored bar so
//! the gate only ever ratchets forward. `--max-trace-overhead-pct <p>`
//! additionally bounds the headline (arq+fec-k8) recording overhead.
//!
//! The committed `results/BENCH_sim.json` also carries the pre-overhaul
//! baseline (BinaryHeap + tombstone set, deep-cloned payloads) measured on
//! the same machine as the post numbers, so the speedup ratio is
//! apples-to-apples; absolute numbers on other machines will differ.

// The one sanctioned escape from the workspace `unsafe_code` deny: a
// counting GlobalAlloc cannot be written without implementing an unsafe
// trait. Nothing here dereferences raw pointers beyond forwarding to
// `System`.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

use marnet_bench::scenarios::{
    run_cityscale_counted, run_cityscale_instrumented, run_queueing_counted,
    run_queueing_instrumented, run_recovery_counted, run_recovery_instrumented, run_table2_counted,
    run_table2_instrumented, RecoveryMechanism, Table2Scenario,
};
use marnet_sim::queue::QueueConfig;
use marnet_telemetry::{TelemetryOptions, DEFAULT_TRACE_CAPACITY};
use serde::Value;

/// Builds a JSON object with declaration-ordered fields — the vendored
/// `serde` has no `json!` macro, so the report assembles [`Value`] trees
/// by hand.
fn obj(pairs: &[(&str, Value)]) -> Value {
    Value::Object(pairs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect())
}

/// A float rounded to three decimals (allocs/event, ratios).
fn f3(v: f64) -> Value {
    Value::Float((v * 1000.0).round() / 1000.0)
}

/// A float rounded to one decimal (percentages).
fn f1(v: f64) -> Value {
    Value::Float((v * 10.0).round() / 10.0)
}

/// A whole-number rate as an integer JSON value.
fn rate(v: f64) -> Value {
    Value::UInt(v.round().max(0.0) as u64)
}

/// Allocator wrapper counting calls and tracking live bytes.
///
/// Multi-MiB blocks (the 32 MiB flight-recorder ring, the city-scale event
/// heap) additionally recycle through a small free-list instead of going
/// straight back to `System`: glibc serves blocks that size via
/// `mmap`/`munmap`, so without recycling every rep re-faults thousands of
/// fresh pages to first-touch its buffers and the trace-tax ratio
/// degenerates into a page-fault benchmark (measured ~16 % "overhead" of
/// which ~¾ was first-touch cost, not recording). Keeping the pages warm
/// across reps makes the matrix measure steady-state cost — which is what
/// a long-lived traced process pays. The counters are maintained
/// identically either way: a cache hit still counts as an allocation and
/// as live bytes.
struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicI64 = AtomicI64::new(0);
static PEAK: AtomicI64 = AtomicI64::new(0);

/// Only blocks at least this large recycle (smaller ones stay in glibc's
/// arenas, which already reuse warm memory).
const CACHE_MIN_BYTES: usize = 1 << 20;
/// Retired blocks kept warm: `(ptr, size, align)`, empty slots are zero.
const CACHE_SLOTS: usize = 8;

/// Spin-locked free-list of retired large blocks. A mutex would allocate
/// on contention paths in some std versions; inside a `GlobalAlloc` the
/// critical section must be allocation-free.
struct BlockCache {
    lock: std::sync::atomic::AtomicBool,
    slots: std::cell::UnsafeCell<[(usize, usize, usize); CACHE_SLOTS]>,
}

// Safety: `slots` is only touched while `lock` is held (see `with`).
unsafe impl Sync for BlockCache {}

static CACHE: BlockCache = BlockCache {
    lock: std::sync::atomic::AtomicBool::new(false),
    slots: std::cell::UnsafeCell::new([(0, 0, 0); CACHE_SLOTS]),
};

/// Round-robin eviction cursor for a full cache.
static CACHE_CLOCK: AtomicU64 = AtomicU64::new(0);

impl BlockCache {
    /// Runs `f` on the slot array under the spin lock.
    fn with<R>(&self, f: impl FnOnce(&mut [(usize, usize, usize); CACHE_SLOTS]) -> R) -> R {
        while self.lock.swap(true, Ordering::Acquire) {
            std::hint::spin_loop();
        }
        // Safety: the lock above gives exclusive access to the array.
        let r = f(unsafe { &mut *self.slots.get() });
        self.lock.store(false, Ordering::Release);
        r
    }

    /// Takes a cached block matching `l` exactly (size and align — a block
    /// must be freed with the same layout it was allocated with).
    fn take(&self, l: Layout) -> Option<*mut u8> {
        self.with(|slots| {
            for s in slots.iter_mut() {
                if s.0 != 0 && s.1 == l.size() && s.2 == l.align() {
                    let p = s.0 as *mut u8;
                    *s = (0, 0, 0);
                    return Some(p);
                }
            }
            None
        })
    }

    /// Stashes a retired block. When the cache is full the oldest slot is
    /// evicted (round-robin) and returned for the caller to free — slots
    /// must not clog with sizes that stopped recurring.
    fn put(&self, p: *mut u8, l: Layout) -> Option<(*mut u8, Layout)> {
        self.with(|slots| {
            for s in slots.iter_mut() {
                if s.0 == 0 {
                    *s = (p as usize, l.size(), l.align());
                    return None;
                }
            }
            let i = CACHE_CLOCK.fetch_add(1, Ordering::Relaxed) as usize % CACHE_SLOTS;
            let (ep, es, ea) = slots[i];
            slots[i] = (p as usize, l.size(), l.align());
            // Safety: the evicted entry was stored from a real allocation
            // with exactly this layout.
            Some((ep as *mut u8, unsafe { Layout::from_size_align_unchecked(es, ea) }))
        })
    }
}

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        let live = LIVE.fetch_add(l.size() as i64, Ordering::Relaxed) + l.size() as i64;
        PEAK.fetch_max(live, Ordering::Relaxed);
        if l.size() >= CACHE_MIN_BYTES {
            if let Some(p) = CACHE.take(l) {
                return p;
            }
        }
        System.alloc(l)
    }

    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        LIVE.fetch_sub(l.size() as i64, Ordering::Relaxed);
        if l.size() >= CACHE_MIN_BYTES {
            if let Some((ep, el)) = CACHE.put(p, l) {
                System.dealloc(ep, el);
            }
            return;
        }
        System.dealloc(p, l)
    }
}

#[global_allocator]
static ALLOCATOR: Counting = Counting;

/// One matrix row: how to run a scenario with the recorder off and on.
struct Workload {
    label: &'static str,
    scenario: String,
    /// Untimed warm-up round: fault in code paths and allocator arenas.
    warm: Box<dyn Fn()>,
    /// One timed round, recorder off; returns the event count.
    run: Box<dyn Fn() -> u64>,
    /// One timed tax-scale round, recorder off. The recording tax is a
    /// ratio of two rates, so it needs runs long enough for wall-clock
    /// noise to cancel; small scenarios use a stretched virtual duration
    /// here while keeping `run` at its baseline-comparable scale.
    tax_off: Box<dyn Fn() -> u64>,
    /// One timed tax-scale round with the flight recorder on; returns the
    /// event count and asserts the trace actually captured something.
    tax_on: Box<dyn Fn() -> u64>,
}

/// One measured workload.
struct Measurement {
    label: &'static str,
    scenario: String,
    events: u64,
    best_events_per_sec: f64,
    mean_events_per_sec: f64,
    allocs_per_event: f64,
    peak_heap_bytes: i64,
    /// Best event rate with the recorder on, and the resulting tax.
    traced_events_per_sec: f64,
    trace_overhead_pct: f64,
}

/// Pre-overhaul numbers (BinaryHeap + tombstone set, deep-cloned payloads)
/// for the full workload, measured on the same machine via an interleaved
/// pre/post run of the identical measurement loop. Event counts matched
/// the current core exactly, so the ratio is per-event. The
/// cityscale-hybrid row's baseline is the pre-pooling full run committed
/// with the flow tier (PR 7).
struct Baseline {
    label: &'static str,
    best_events_per_sec: f64,
    allocs_per_event: f64,
    peak_heap_bytes: i64,
}

const BASELINES: [Baseline; 3] = [
    Baseline {
        label: "arq+fec-k8",
        best_events_per_sec: 3.28e6,
        allocs_per_event: 1.915,
        peak_heap_bytes: 389_120,
    },
    Baseline {
        label: "duplicate",
        best_events_per_sec: 3.42e6,
        allocs_per_event: 1.418,
        peak_heap_bytes: 374_784,
    },
    Baseline {
        label: "cityscale-hybrid",
        best_events_per_sec: 2_150_173.0,
        allocs_per_event: 2.656,
        peak_heap_bytes: 24_676_585,
    },
];

/// Regression slack applied against the ratchet file. Allocations and heap
/// are near-deterministic, so their slack is tight; wall-clock throughput
/// on a shared runner is not, so its bar is deliberately loose — it
/// catches "the engine got 2x slower", not single-digit noise.
const ALLOC_SLACK: f64 = 0.02;
const RATE_FLOOR_FRAC: f64 = 0.5;
const PEAK_SLACK_FRAC: f64 = 1.25;

fn measure(w: &Workload, reps: usize, traced_reps: usize) -> Measurement {
    (w.warm)();

    let mut best = 0.0f64;
    let mut sum = 0.0f64;
    let mut total_events = 0u64;
    let a0 = ALLOCS.load(Ordering::Relaxed);
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    for _ in 0..reps {
        let t0 = Instant::now();
        let ev = (w.run)();
        let dt = t0.elapsed().as_secs_f64();
        assert!(ev > 0, "{}: scenario must process events", w.label);
        let rate = ev as f64 / dt;
        best = best.max(rate);
        sum += rate;
        total_events += ev;
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - a0;
    let peak = PEAK.load(Ordering::Relaxed);

    // Recording tax: interleaved recorder-off/recorder-on rounds at tax
    // scale. Each pair compares two runs adjacent in time (so machine
    // drift cancels within the pair), the order inside a pair alternates
    // (so a monotonic slowdown across the loop biases neither side), and
    // the reported tax is the median pair ratio (so one descheduled run
    // does not flip the result).
    let mut pair_pcts: Vec<f64> = Vec::with_capacity(traced_reps);
    (w.tax_on)(); // warm the trace-path code before timing it
    let time = |f: &dyn Fn() -> u64| {
        let t0 = Instant::now();
        let ev = f();
        ev as f64 / t0.elapsed().as_secs_f64()
    };
    for _ in 0..traced_reps {
        // Palindrome order (off, on, on, off) is symmetric under linear
        // drift, and the per-side best-of-two discards a one-sided
        // descheduling hiccup.
        let off_a = time(&*w.tax_off);
        let on_a = time(&*w.tax_on);
        let on_b = time(&*w.tax_on);
        let off_b = time(&*w.tax_off);
        pair_pcts.push((off_a.max(off_b) / on_a.max(on_b) - 1.0) * 100.0);
    }
    pair_pcts.sort_by(|a, b| a.total_cmp(b));
    let trace_overhead_pct = if pair_pcts.len() % 2 == 1 {
        pair_pcts[pair_pcts.len() / 2]
    } else {
        let hi = pair_pcts.len() / 2;
        (pair_pcts[hi - 1] + pair_pcts[hi]) / 2.0
    };

    Measurement {
        label: w.label,
        scenario: w.scenario.clone(),
        events: total_events / reps as u64,
        best_events_per_sec: best,
        mean_events_per_sec: sum / reps as f64,
        allocs_per_event: allocs as f64 / total_events as f64,
        peak_heap_bytes: peak,
        traced_events_per_sec: best / (1.0 + trace_overhead_pct / 100.0),
        trace_overhead_pct,
    }
}

/// The five-scenario matrix at the given scale.
fn workloads(smoke: bool) -> Vec<Workload> {
    fn trace() -> TelemetryOptions {
        TelemetryOptions { trace_capacity: Some(DEFAULT_TRACE_CAPACITY), metrics: false }
    }
    let recovery_secs: u64 = if smoke { 2 } else { 30 };
    // The full recovery/offload rounds finish in single-digit
    // milliseconds; the tax ratio needs tens of milliseconds per round to
    // rise above timer noise, so those rows stretch their virtual
    // duration for the tax runs only.
    // Sized so the stretched tax runs stay below the flight-recorder ring
    // capacity: a wrapped ring pays an O(capacity) rotation inside the
    // timed region, which is the lab's out-of-budget regime, not the
    // steady state the tax quantifies.
    let tax_secs: u64 = if smoke { 4 } else { 450 };
    let probes: u64 = if smoke { 200 } else { 2_000 };
    let tax_probes: u64 = if smoke { 400 } else { 20_000 };
    let cell_secs: u64 = if smoke { 2 } else { 10 };
    let (flow_clients, flow_secs): (u64, u64) = if smoke { (20_000, 2) } else { (100_000, 10) };

    let recovery = |mechanism: RecoveryMechanism| Workload {
        label: mechanism.label(),
        scenario: format!(
            "run_recovery(rtt=40ms, loss=5%, {mechanism:?}, {recovery_secs} virtual sec, seed 11)"
        ),
        warm: Box::new(move || {
            run_recovery_counted(40, 0.05, mechanism, recovery_secs.min(3), 11);
        }),
        run: Box::new(move || run_recovery_counted(40, 0.05, mechanism, recovery_secs, 11).1),
        tax_off: Box::new(move || run_recovery_counted(40, 0.05, mechanism, tax_secs, 11).1),
        tax_on: Box::new(move || {
            let (_, ev, capture) =
                run_recovery_instrumented(40, 0.05, mechanism, tax_secs, 11, &trace());
            assert!(!capture.events.is_empty(), "recorder must capture events");
            ev
        }),
    };

    // The dense cell: 900 MAR streams plus 100 bulk uploads through one
    // strict-FIFO uplink — 1000 routed flows through a single NIC pair.
    let cell = QueueConfig::bloated_uplink();

    vec![
        recovery(RecoveryMechanism::ArqFecK8),
        recovery(RecoveryMechanism::Duplicate),
        Workload {
            label: "offload-wifi",
            scenario: format!(
                "run_table2(CloudServerWifi, probes={probes}, 400 B up/down, seed 42)"
            ),
            warm: Box::new(move || {
                run_table2_counted(Table2Scenario::CloudServerWifi, probes.min(40), 400, 400, 42);
            }),
            run: Box::new(move || {
                run_table2_counted(Table2Scenario::CloudServerWifi, probes, 400, 400, 42).1
            }),
            tax_off: Box::new(move || {
                run_table2_counted(Table2Scenario::CloudServerWifi, tax_probes, 400, 400, 42).1
            }),
            tax_on: Box::new(move || {
                let (_, ev, capture) = run_table2_instrumented(
                    Table2Scenario::CloudServerWifi,
                    tax_probes,
                    400,
                    400,
                    42,
                    &trace(),
                );
                assert!(!capture.events.is_empty(), "recorder must capture events");
                ev
            }),
        },
        Workload {
            label: "cell-1k",
            scenario: format!(
                "run_queueing(2 Gb/s uplink, drop-tail 1000, 900 MAR + 100 bulk flows, \
                 {cell_secs} virtual sec, seed 7)"
            ),
            warm: Box::new({
                let cell = cell.clone();
                move || {
                    run_queueing_counted(2_000.0, cell.clone(), 0, 900, 100, cell_secs.min(1), 7);
                }
            }),
            run: Box::new({
                let cell = cell.clone();
                move || run_queueing_counted(2_000.0, cell.clone(), 0, 900, 100, cell_secs, 7).1
            }),
            tax_off: Box::new({
                let cell = cell.clone();
                move || run_queueing_counted(2_000.0, cell.clone(), 0, 900, 100, cell_secs, 7).1
            }),
            tax_on: Box::new(move || {
                let (_, ev, capture) = run_queueing_instrumented(
                    2_000.0,
                    cell.clone(),
                    0,
                    900,
                    100,
                    cell_secs,
                    7,
                    &trace(),
                );
                assert!(!capture.events.is_empty(), "recorder must capture events");
                ev
            }),
        },
        Workload {
            label: "cityscale-hybrid",
            scenario: format!(
                "run_cityscale(clients={flow_clients}, backhaul=10 Gb/s, {flow_secs} virtual \
                 sec, seed 42)"
            ),
            warm: Box::new(move || {
                run_cityscale_counted(flow_clients, 10.0, flow_secs.min(2), 42);
            }),
            run: Box::new(move || run_cityscale_counted(flow_clients, 10.0, flow_secs, 42).1),
            tax_off: Box::new(move || run_cityscale_counted(flow_clients, 10.0, flow_secs, 42).1),
            tax_on: Box::new(move || {
                let (_, ev, capture) =
                    run_cityscale_instrumented(flow_clients, 10.0, flow_secs, 42, &trace());
                assert!(!capture.events.is_empty(), "recorder must capture events");
                ev
            }),
        },
    ]
}

fn json_entry(m: &Measurement, smoke: bool) -> Value {
    let mut pairs = vec![
        ("mechanism", Value::String(m.label.to_string())),
        ("scenario", Value::String(m.scenario.clone())),
        ("events_per_run", Value::UInt(m.events)),
        ("events_per_sec_best", rate(m.best_events_per_sec)),
        ("events_per_sec_mean", rate(m.mean_events_per_sec)),
        ("allocs_per_event", f3(m.allocs_per_event)),
        ("peak_heap_bytes", Value::Int(m.peak_heap_bytes)),
        ("events_per_sec_best_recording", rate(m.traced_events_per_sec)),
        ("trace_overhead_pct", f1(m.trace_overhead_pct)),
    ];
    // Pre-overhaul baselines were measured at full scale; smoke numbers
    // are not comparable, so the speedup block only appears in full mode.
    if !smoke {
        if let Some(b) = BASELINES.iter().find(|b| b.label == m.label) {
            pairs.push(("baseline_events_per_sec_best", rate(b.best_events_per_sec)));
            pairs.push(("baseline_allocs_per_event", f3(b.allocs_per_event)));
            pairs.push(("baseline_peak_heap_bytes", Value::Int(b.peak_heap_bytes)));
            pairs.push((
                "speedup_vs_baseline",
                Value::Float(
                    (m.best_events_per_sec / b.best_events_per_sec * 100.0).round() / 100.0,
                ),
            ));
        }
    }
    obj(&pairs)
}

/// Applies the ratchet gate: compares each row against `path`'s entry for
/// this mode, records failures, tightens the stored bar on improvement,
/// and writes the file back. Returns the regression messages (empty =
/// pass).
fn apply_ratchet(path: &str, mode: &str, measurements: &[Measurement]) -> Vec<String> {
    let root: Value = match std::fs::read_to_string(path) {
        Ok(body) => serde_json::from_str(&body).expect("ratchet file must be valid JSON"),
        Err(_) => Value::Object(vec![("schema".to_string(), Value::UInt(1))]),
    };
    let lookup = |label: &str| -> Option<Value> {
        let section = root.as_object()?.iter().find(|(k, _)| k == mode)?.1.as_object()?;
        section.iter().find(|(k, _)| k == label).map(|(_, v)| v.clone())
    };
    let field = |e: &Value, k: &str| -> Option<f64> {
        e.as_object()?.iter().find(|(key, _)| key == k)?.1.as_f64()
    };

    let mut failures = Vec::new();
    let mut section: Vec<(String, Value)> = Vec::new();
    for m in measurements {
        let (mut best, mut allocs, mut peak) =
            (m.best_events_per_sec, m.allocs_per_event, m.peak_heap_bytes as f64);
        if let Some(e) = lookup(m.label) {
            let r_best = field(&e, "events_per_sec_best").unwrap_or(0.0);
            let r_allocs = field(&e, "allocs_per_event").unwrap_or(f64::INFINITY);
            let r_peak = field(&e, "peak_heap_bytes").unwrap_or(f64::INFINITY);
            if m.allocs_per_event > r_allocs + ALLOC_SLACK {
                failures.push(format!(
                    "{}: allocs/event {:.3} regressed past ratchet {:.3} (+{ALLOC_SLACK} slack)",
                    m.label, m.allocs_per_event, r_allocs
                ));
            }
            // Wall-clock gates only apply at full scale: the smoke matrix
            // runs on shared CI machines whose absolute speed is
            // arbitrary, while allocs/event and peak-heap are
            // deterministic on any runner.
            if mode == "full" && m.best_events_per_sec < r_best * RATE_FLOOR_FRAC {
                failures.push(format!(
                    "{}: {:.2} Mev/s fell below {:.0}% of ratchet {:.2} Mev/s",
                    m.label,
                    m.best_events_per_sec / 1e6,
                    RATE_FLOOR_FRAC * 100.0,
                    r_best / 1e6
                ));
            }
            if (m.peak_heap_bytes as f64) > r_peak * PEAK_SLACK_FRAC {
                failures.push(format!(
                    "{}: peak heap {} B exceeds {:.0}% of ratchet {:.0} B",
                    m.label,
                    m.peak_heap_bytes,
                    PEAK_SLACK_FRAC * 100.0,
                    r_peak
                ));
            }
            // Each field ratchets forward independently: the stored bar
            // only ever tightens.
            best = best.max(r_best);
            allocs = allocs.min(r_allocs);
            peak = peak.min(r_peak);
        }
        section.push((
            m.label.to_string(),
            obj(&[
                ("events_per_sec_best", rate(best)),
                ("allocs_per_event", f3(allocs)),
                ("peak_heap_bytes", Value::UInt(peak.round().max(0.0) as u64)),
            ]),
        ));
    }

    // Rebuild the root preserving the other mode's section.
    let mut pairs: Vec<(String, Value)> = vec![("schema".to_string(), Value::UInt(1))];
    if let Some(root_pairs) = root.as_object() {
        for (k, v) in root_pairs {
            if k != "schema" && k != mode {
                pairs.push((k.clone(), v.clone()));
            }
        }
    }
    pairs.push((mode.to_string(), Value::Object(section)));
    pairs.sort_by(|a, b| (a.0 != "schema").cmp(&(b.0 != "schema")).then(a.0.cmp(&b.0)));
    let body =
        serde_json::to_string_pretty(&Value::Object(pairs)).expect("serialize ratchet") + "\n";
    std::fs::write(path, body).expect("write ratchet file");
    println!("ratchet      {path} [{mode}] updated");
    failures
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut max_trace_overhead_pct: Option<f64> = None;
    let mut ratchet_path: Option<String> = None;
    {
        let mut argv = std::env::args().skip(1);
        while let Some(a) = argv.next() {
            match a.as_str() {
                "--max-trace-overhead-pct" => {
                    let v = argv.next().expect("--max-trace-overhead-pct requires a value");
                    max_trace_overhead_pct =
                        Some(v.parse().expect("--max-trace-overhead-pct value must be a number"));
                }
                "--ratchet" => {
                    ratchet_path = Some(argv.next().expect("--ratchet requires a file path"));
                }
                _ => {}
            }
        }
    }
    let reps = if smoke { 1 } else { 5 };
    // The recording-tax ratio stabilises quickly; three traced rounds are
    // enough even in full mode.
    // Each tax sample is a ratio of best-of-two ~100 ms runs per side,
    // and the reported tax is the median over five such samples — the
    // combination that filters this container's scheduling jitter down
    // to single digits.
    let traced_reps = if smoke { 1 } else { 5 };

    let matrix = workloads(smoke);
    let measurements: Vec<Measurement> =
        matrix.iter().map(|w| measure(w, reps, traced_reps)).collect();

    for m in &measurements {
        println!(
            "{:<16} {:>9} events/run  best {:>6.2} Mev/s  mean {:>6.2} Mev/s  \
             {:.3} allocs/event  peak {} KiB  trace tax {:.1}%",
            m.label,
            m.events,
            m.best_events_per_sec / 1e6,
            m.mean_events_per_sec / 1e6,
            m.allocs_per_event,
            m.peak_heap_bytes / 1024,
            m.trace_overhead_pct,
        );
    }

    // Headline flight-recorder tax: the arq+fec-k8 row, as before.
    let headline = &measurements[0];
    let overhead_pct = headline.trace_overhead_pct;
    println!(
        "trace tax    recorder on {:>6.2} Mev/s vs off {:>6.2} Mev/s  overhead {:.1}%",
        headline.traced_events_per_sec / 1e6,
        headline.best_events_per_sec / 1e6,
        overhead_pct,
    );

    let flow = measurements.last().expect("matrix is non-empty");
    let entries: Vec<Value> = measurements.iter().map(|m| json_entry(m, smoke)).collect();
    let report = obj(&[
        (
            "benchmark",
            Value::String(format!(
                "perf matrix: 5 scenarios x (events/s, allocs/event, peak heap, trace tax), \
                 counting allocator, best of {reps} reps (trace tax over {traced_reps})"
            )),
        ),
        ("smoke", Value::Bool(smoke)),
        ("measurements", Value::Array(entries)),
        (
            "flow_tier",
            obj(&[
                ("scenario", Value::String(flow.scenario.clone())),
                ("flow_events_per_sec", rate(flow.best_events_per_sec)),
            ]),
        ),
        (
            "trace_overhead",
            obj(&[
                ("mechanism", Value::String(headline.label.to_string())),
                ("events_per_sec_best_recording", rate(headline.traced_events_per_sec)),
                ("overhead_pct", f1(overhead_pct)),
            ]),
        ),
    ]);

    std::fs::create_dir_all("results").expect("create results dir");
    let path = "results/BENCH_sim.json";
    let body = serde_json::to_string_pretty(&report).expect("serialize report") + "\n";
    std::fs::write(path, body).expect("write BENCH_sim.json");
    println!("wrote {path}");

    let mut failed = false;
    if let Some(rp) = &ratchet_path {
        let failures = apply_ratchet(rp, if smoke { "smoke" } else { "full" }, &measurements);
        for f in &failures {
            eprintln!("PERF REGRESSION: {f}");
        }
        failed |= !failures.is_empty();
    }

    if let Some(bound) = max_trace_overhead_pct {
        if overhead_pct > bound {
            eprintln!(
                "PERF REGRESSION: flight-recorder overhead {overhead_pct:.1}% exceeds the \
                 --max-trace-overhead-pct bound of {bound}%"
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
