//! Event-core performance report: `results/BENCH_sim.json`.
//!
//! Runs the E11 recovery scenario (the `engine_events_per_sec` Criterion
//! workload) under a counting allocator and records, per mechanism:
//!
//! * **events/sec** — best of `REPS` wall-clock rounds (best-of filters
//!   scheduler noise; the mean is reported alongside),
//! * **allocs/event** — allocator calls per simulator event, and
//! * **peak heap proxy** — the high-water mark of live allocated bytes.
//!
//! A small scenario (`--smoke`) runs in CI to catch panics and gross
//! regressions without burning minutes on a shared runner.
//!
//! The report also measures the flight-recorder tax: the same workload with
//! the recorder ring enabled, against the default disabled path (whose cost
//! vs. hook-free code is one predictable branch per hook — the 2%
//! acceptance bound on `events_per_sec_best` vs. the committed baseline
//! polices that). `--max-trace-overhead-pct <p>` turns the recording
//! overhead into a hard failure, for CI.
//!
//! The committed `results/BENCH_sim.json` also carries the pre-overhaul
//! baseline (BinaryHeap + tombstone set, deep-cloned payloads) measured on
//! the same machine as the post numbers, so the speedup ratio is
//! apples-to-apples; absolute numbers on other machines will differ.

// The one sanctioned escape from the workspace `unsafe_code` deny: a
// counting GlobalAlloc cannot be written without implementing an unsafe
// trait. Nothing here dereferences raw pointers beyond forwarding to
// `System`.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

use marnet_bench::scenarios::{
    run_cityscale_counted, run_recovery_counted, run_recovery_instrumented, RecoveryMechanism,
};
use marnet_telemetry::{TelemetryOptions, DEFAULT_TRACE_CAPACITY};

/// Allocator wrapper counting calls and tracking live bytes.
struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicI64 = AtomicI64::new(0);
static PEAK: AtomicI64 = AtomicI64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        let live = LIVE.fetch_add(l.size() as i64, Ordering::Relaxed) + l.size() as i64;
        PEAK.fetch_max(live, Ordering::Relaxed);
        System.alloc(l)
    }

    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        LIVE.fetch_sub(l.size() as i64, Ordering::Relaxed);
        System.dealloc(p, l)
    }
}

#[global_allocator]
static ALLOCATOR: Counting = Counting;

/// One measured workload.
struct Measurement {
    label: &'static str,
    events: u64,
    best_events_per_sec: f64,
    mean_events_per_sec: f64,
    allocs_per_event: f64,
    peak_heap_bytes: i64,
}

/// Pre-overhaul numbers (BinaryHeap + tombstone set, deep-cloned payloads)
/// for the full 30 s x 5 reps workload, measured on the same machine via an
/// interleaved pre/post run of the identical measurement loop. Event counts
/// matched the current core exactly, so the ratio is per-event.
struct Baseline {
    label: &'static str,
    best_events_per_sec: f64,
    allocs_per_event: f64,
    peak_heap_bytes: i64,
}

const BASELINES: [Baseline; 2] = [
    Baseline {
        label: "arq+fec-k8",
        best_events_per_sec: 3.28e6,
        allocs_per_event: 1.915,
        peak_heap_bytes: 389_120,
    },
    Baseline {
        label: "duplicate",
        best_events_per_sec: 3.42e6,
        allocs_per_event: 1.418,
        peak_heap_bytes: 374_784,
    },
];

fn measure(mechanism: RecoveryMechanism, secs: u64, reps: usize) -> Measurement {
    // Warm-up round: fault in code paths and allocator arenas.
    let (_, events) = run_recovery_counted(40, 0.05, mechanism, secs.min(3), 11);
    assert!(events > 0, "scenario must process events");

    let mut best = 0.0f64;
    let mut sum = 0.0f64;
    let mut total_events = 0u64;
    let a0 = ALLOCS.load(Ordering::Relaxed);
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    for _ in 0..reps {
        let t0 = Instant::now();
        let (_, ev) = run_recovery_counted(40, 0.05, mechanism, secs, 11);
        let dt = t0.elapsed().as_secs_f64();
        let rate = ev as f64 / dt;
        best = best.max(rate);
        sum += rate;
        total_events += ev;
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - a0;
    Measurement {
        label: mechanism.label(),
        events: total_events / reps as u64,
        best_events_per_sec: best,
        mean_events_per_sec: sum / reps as f64,
        allocs_per_event: allocs as f64 / total_events as f64,
        peak_heap_bytes: PEAK.load(Ordering::Relaxed),
    }
}

/// The flow-tier workload: the E17 hybrid scenario (one packet-level MAR
/// cell, `clients` fluid background clients on a 10 Gb/s backhaul). Its
/// event stream is dominated by fluid flow starts/completions and
/// recomputes, so its rate is the `flow_events_per_sec` figure.
fn measure_cityscale(clients: u64, secs: u64, reps: usize) -> Measurement {
    let (_, events) = run_cityscale_counted(clients, 10.0, secs.min(2), 42);
    assert!(events > 0, "hybrid scenario must process events");

    let mut best = 0.0f64;
    let mut sum = 0.0f64;
    let mut total_events = 0u64;
    let a0 = ALLOCS.load(Ordering::Relaxed);
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    for _ in 0..reps {
        let t0 = Instant::now();
        let (_, ev) = run_cityscale_counted(clients, 10.0, secs, 42);
        let dt = t0.elapsed().as_secs_f64();
        let rate = ev as f64 / dt;
        best = best.max(rate);
        sum += rate;
        total_events += ev;
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - a0;
    Measurement {
        label: "cityscale-hybrid",
        events: total_events / reps as u64,
        best_events_per_sec: best,
        mean_events_per_sec: sum / reps as f64,
        allocs_per_event: allocs as f64 / total_events as f64,
        peak_heap_bytes: PEAK.load(Ordering::Relaxed),
    }
}

/// Best-of-`reps` event rate for the same workload with the flight
/// recorder ring enabled (the recording-tax measurement).
fn measure_traced(mechanism: RecoveryMechanism, secs: u64, reps: usize) -> f64 {
    let opts = TelemetryOptions { trace_capacity: Some(DEFAULT_TRACE_CAPACITY), metrics: false };
    let mut best = 0.0f64;
    for _ in 0..reps {
        let t0 = Instant::now();
        let (_, ev, capture) = run_recovery_instrumented(40, 0.05, mechanism, secs, 11, &opts);
        let dt = t0.elapsed().as_secs_f64();
        assert!(!capture.events.is_empty(), "recorder must capture events");
        best = best.max(ev as f64 / dt);
    }
    best
}

fn json_entry(m: &Measurement, smoke: bool) -> String {
    let baseline = (!smoke).then(|| BASELINES.iter().find(|b| b.label == m.label)).flatten();
    let baseline_block = match baseline {
        Some(b) => format!(
            concat!(
                ",\n",
                "      \"baseline_events_per_sec_best\": {:.0},\n",
                "      \"baseline_allocs_per_event\": {:.3},\n",
                "      \"baseline_peak_heap_bytes\": {},\n",
                "      \"speedup_vs_baseline\": {:.2}\n"
            ),
            b.best_events_per_sec,
            b.allocs_per_event,
            b.peak_heap_bytes,
            m.best_events_per_sec / b.best_events_per_sec,
        ),
        None => "\n".to_string(),
    };
    format!(
        concat!(
            "    {{\n",
            "      \"mechanism\": \"{}\",\n",
            "      \"events_per_run\": {},\n",
            "      \"events_per_sec_best\": {:.0},\n",
            "      \"events_per_sec_mean\": {:.0},\n",
            "      \"allocs_per_event\": {:.3},\n",
            "      \"peak_heap_bytes\": {}{}",
            "    }}"
        ),
        m.label,
        m.events,
        m.best_events_per_sec,
        m.mean_events_per_sec,
        m.allocs_per_event,
        m.peak_heap_bytes,
        baseline_block,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let max_trace_overhead_pct: Option<f64> = {
        let mut argv = std::env::args().skip(1);
        let mut bound = None;
        while let Some(a) = argv.next() {
            if a == "--max-trace-overhead-pct" {
                let v = argv.next().expect("--max-trace-overhead-pct requires a value");
                bound = Some(v.parse().expect("--max-trace-overhead-pct value must be a number"));
            }
        }
        bound
    };
    let (secs, reps) = if smoke { (2, 1) } else { (30, 5) };
    // Flow-tier workload scale: full mode runs the acceptance-bar 10⁵
    // clients; smoke keeps CI fast while still crossing the saturation knee.
    let (flow_clients, flow_secs) = if smoke { (20_000, 2) } else { (100_000, 10) };

    let measurements = [
        measure(RecoveryMechanism::ArqFecK8, secs, reps),
        measure(RecoveryMechanism::Duplicate, secs, reps),
        measure_cityscale(flow_clients, flow_secs, reps),
    ];

    for m in &measurements {
        println!(
            "{:<12} {:>9} events/run  best {:>6.2} Mev/s  mean {:>6.2} Mev/s  \
             {:.3} allocs/event  peak {} KiB",
            m.label,
            m.events,
            m.best_events_per_sec / 1e6,
            m.mean_events_per_sec / 1e6,
            m.allocs_per_event,
            m.peak_heap_bytes / 1024,
        );
    }

    // Flight-recorder tax on the first workload: disabled path vs. ring on.
    let traced_best = measure_traced(RecoveryMechanism::ArqFecK8, secs, reps);
    let disabled_best = measurements[0].best_events_per_sec;
    let overhead_pct = (disabled_best / traced_best - 1.0) * 100.0;
    println!(
        "trace tax    recorder on {:>6.2} Mev/s vs off {:>6.2} Mev/s  overhead {:.1}%",
        traced_best / 1e6,
        disabled_best / 1e6,
        overhead_pct,
    );

    let entries: Vec<String> = measurements.iter().map(|m| json_entry(m, smoke)).collect();
    let body = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"engine_events_per_sec (run_recovery, rtt=40ms, loss=5%, \
             {} virtual sec x {} reps, seed 11)\",\n",
            "  \"smoke\": {},\n",
            "  \"measurements\": [\n{}\n  ],\n",
            "  \"flow_tier\": {{\n",
            "    \"scenario\": \"run_cityscale(clients={}, backhaul=10 Gb/s, {} virtual sec x \
             {} reps, seed 42)\",\n",
            "    \"clients\": {},\n",
            "    \"flow_events_per_sec\": {:.0}\n",
            "  }},\n",
            "  \"trace_overhead\": {{\n",
            "    \"mechanism\": \"arq+fec-k8\",\n",
            "    \"events_per_sec_best_recording\": {:.0},\n",
            "    \"overhead_pct\": {:.1}\n",
            "  }}\n",
            "}}\n"
        ),
        secs,
        reps,
        smoke,
        entries.join(",\n"),
        flow_clients,
        flow_secs,
        reps,
        flow_clients,
        measurements[2].best_events_per_sec,
        traced_best,
        overhead_pct,
    );

    std::fs::create_dir_all("results").expect("create results dir");
    let path = "results/BENCH_sim.json";
    std::fs::write(path, body).expect("write BENCH_sim.json");
    println!("wrote {path}");

    if let Some(bound) = max_trace_overhead_pct {
        assert!(
            overhead_pct <= bound,
            "flight-recorder overhead {overhead_pct:.1}% exceeds the --max-trace-overhead-pct \
             bound of {bound}%"
        );
    }
}
