//! Event-core performance report: `results/BENCH_sim.json`.
//!
//! Runs the E11 recovery scenario (the `engine_events_per_sec` Criterion
//! workload) under a counting allocator and records, per mechanism:
//!
//! * **events/sec** — best of `REPS` wall-clock rounds (best-of filters
//!   scheduler noise; the mean is reported alongside),
//! * **allocs/event** — allocator calls per simulator event, and
//! * **peak heap proxy** — the high-water mark of live allocated bytes.
//!
//! A small scenario (`--smoke`) runs in CI to catch panics and gross
//! regressions without burning minutes on a shared runner.
//!
//! The committed `results/BENCH_sim.json` also carries the pre-overhaul
//! baseline (BinaryHeap + tombstone set, deep-cloned payloads) measured on
//! the same machine as the post numbers, so the speedup ratio is
//! apples-to-apples; absolute numbers on other machines will differ.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

use marnet_bench::scenarios::{run_recovery_counted, RecoveryMechanism};

/// Allocator wrapper counting calls and tracking live bytes.
struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicI64 = AtomicI64::new(0);
static PEAK: AtomicI64 = AtomicI64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        let live = LIVE.fetch_add(l.size() as i64, Ordering::Relaxed) + l.size() as i64;
        PEAK.fetch_max(live, Ordering::Relaxed);
        System.alloc(l)
    }

    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        LIVE.fetch_sub(l.size() as i64, Ordering::Relaxed);
        System.dealloc(p, l)
    }
}

#[global_allocator]
static ALLOCATOR: Counting = Counting;

/// One measured workload.
struct Measurement {
    label: &'static str,
    events: u64,
    best_events_per_sec: f64,
    mean_events_per_sec: f64,
    allocs_per_event: f64,
    peak_heap_bytes: i64,
}

/// Pre-overhaul numbers (BinaryHeap + tombstone set, deep-cloned payloads)
/// for the full 30 s x 5 reps workload, measured on the same machine via an
/// interleaved pre/post run of the identical measurement loop. Event counts
/// matched the current core exactly, so the ratio is per-event.
struct Baseline {
    label: &'static str,
    best_events_per_sec: f64,
    allocs_per_event: f64,
    peak_heap_bytes: i64,
}

const BASELINES: [Baseline; 2] = [
    Baseline {
        label: "arq+fec-k8",
        best_events_per_sec: 3.28e6,
        allocs_per_event: 1.915,
        peak_heap_bytes: 389_120,
    },
    Baseline {
        label: "duplicate",
        best_events_per_sec: 3.42e6,
        allocs_per_event: 1.418,
        peak_heap_bytes: 374_784,
    },
];

fn measure(mechanism: RecoveryMechanism, secs: u64, reps: usize) -> Measurement {
    // Warm-up round: fault in code paths and allocator arenas.
    let (_, events) = run_recovery_counted(40, 0.05, mechanism, secs.min(3), 11);
    assert!(events > 0, "scenario must process events");

    let mut best = 0.0f64;
    let mut sum = 0.0f64;
    let mut total_events = 0u64;
    let a0 = ALLOCS.load(Ordering::Relaxed);
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    for _ in 0..reps {
        let t0 = Instant::now();
        let (_, ev) = run_recovery_counted(40, 0.05, mechanism, secs, 11);
        let dt = t0.elapsed().as_secs_f64();
        let rate = ev as f64 / dt;
        best = best.max(rate);
        sum += rate;
        total_events += ev;
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - a0;
    Measurement {
        label: mechanism.label(),
        events: total_events / reps as u64,
        best_events_per_sec: best,
        mean_events_per_sec: sum / reps as f64,
        allocs_per_event: allocs as f64 / total_events as f64,
        peak_heap_bytes: PEAK.load(Ordering::Relaxed),
    }
}

fn json_entry(m: &Measurement, smoke: bool) -> String {
    let baseline = (!smoke).then(|| BASELINES.iter().find(|b| b.label == m.label)).flatten();
    let baseline_block = match baseline {
        Some(b) => format!(
            concat!(
                ",\n",
                "      \"baseline_events_per_sec_best\": {:.0},\n",
                "      \"baseline_allocs_per_event\": {:.3},\n",
                "      \"baseline_peak_heap_bytes\": {},\n",
                "      \"speedup_vs_baseline\": {:.2}\n"
            ),
            b.best_events_per_sec,
            b.allocs_per_event,
            b.peak_heap_bytes,
            m.best_events_per_sec / b.best_events_per_sec,
        ),
        None => "\n".to_string(),
    };
    format!(
        concat!(
            "    {{\n",
            "      \"mechanism\": \"{}\",\n",
            "      \"events_per_run\": {},\n",
            "      \"events_per_sec_best\": {:.0},\n",
            "      \"events_per_sec_mean\": {:.0},\n",
            "      \"allocs_per_event\": {:.3},\n",
            "      \"peak_heap_bytes\": {}{}",
            "    }}"
        ),
        m.label,
        m.events,
        m.best_events_per_sec,
        m.mean_events_per_sec,
        m.allocs_per_event,
        m.peak_heap_bytes,
        baseline_block,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (secs, reps) = if smoke { (2, 1) } else { (30, 5) };

    let measurements = [
        measure(RecoveryMechanism::ArqFecK8, secs, reps),
        measure(RecoveryMechanism::Duplicate, secs, reps),
    ];

    for m in &measurements {
        println!(
            "{:<12} {:>9} events/run  best {:>6.2} Mev/s  mean {:>6.2} Mev/s  \
             {:.3} allocs/event  peak {} KiB",
            m.label,
            m.events,
            m.best_events_per_sec / 1e6,
            m.mean_events_per_sec / 1e6,
            m.allocs_per_event,
            m.peak_heap_bytes / 1024,
        );
    }

    let entries: Vec<String> = measurements.iter().map(|m| json_entry(m, smoke)).collect();
    let body = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"engine_events_per_sec (run_recovery, rtt=40ms, loss=5%, \
             {} virtual sec x {} reps, seed 11)\",\n",
            "  \"smoke\": {},\n",
            "  \"measurements\": [\n{}\n  ]\n",
            "}}\n"
        ),
        secs,
        reps,
        smoke,
        entries.join(",\n"),
    );

    std::fs::create_dir_all("results").expect("create results dir");
    let path = "results/BENCH_sim.json";
    std::fs::write(path, body).expect("write BENCH_sim.json");
    println!("wrote {path}");
}
