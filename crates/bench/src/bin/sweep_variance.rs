//! Extension (§IV-A-1, §IV-C) — throughput variance as a first-class
//! adversary. The paper observes cellular throughput "exhibit\[s\] large
//! variations over time, with abrupt changes of several orders of
//! magnitude" and demands that 5G bound the *variance*, because "no
//! congestion control algorithm is prompt enough". This sweep runs the same
//! MAR flow over links with identical mean rate but increasing variance.

use marnet_bench::{fmt, print_table, write_json};
use marnet_core::class::StreamKind;
use marnet_core::config::ArConfig;
use marnet_core::endpoint::{ArReceiver, ArSender, SenderPathConfig, Submit};
use marnet_core::message::ArMessage;
use marnet_core::multipath::PathRole;
use marnet_radio::variance::{modulate_links, Ar1LogRate, ConstantRate, MarkovRate, RateProcess};
use marnet_sim::engine::{Actor, ActorId, Event, SimCtx, Simulator};
use marnet_sim::link::{Bandwidth, LinkParams};
use marnet_sim::packet::Payload;
use marnet_sim::rng::derive_rng;
use marnet_sim::time::{SimDuration, SimTime};
use marnet_transport::nic::TxPath;
use serde::Serialize;

struct App {
    sender: ActorId,
    next_id: u64,
}

impl Actor for App {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        if matches!(ev, Event::Start | Event::Timer { .. }) {
            let now = ctx.now();
            let m = ArMessage::new(self.next_id, StreamKind::VideoInter, 6_000, now)
                .with_deadline(now + SimDuration::from_millis(100));
            let meta = ArMessage::new(self.next_id + 1, StreamKind::Metadata, 100, now);
            self.next_id += 2;
            ctx.send_message(self.sender, Payload::new(Submit(m)));
            ctx.send_message(self.sender, Payload::new(Submit(meta)));
            ctx.schedule_timer(SimDuration::from_millis(33), 0);
        }
    }
}

#[derive(Serialize)]
struct Row {
    link_model: String,
    video_delivered: u64,
    video_deadline_hit_pct: f64,
    video_p95_ms: f64,
    meta_delivered: u64,
    delay_congestion_events: u64,
}

fn run(label: &str, process: Box<dyn RateProcess>, secs: u64) -> Row {
    let mut sim = Simulator::new(29);
    let snd = sim.reserve_actor();
    let rcv = sim.reserve_actor();
    let up = sim.add_link(
        snd,
        rcv,
        LinkParams::new(Bandwidth::from_mbps(6.0), SimDuration::from_millis(20)),
    );
    let down = sim.add_link(
        rcv,
        snd,
        LinkParams::new(Bandwidth::from_mbps(6.0), SimDuration::from_millis(20)),
    );
    modulate_links(&mut sim, vec![up], process, SimDuration::from_millis(200));
    let cfg = ArConfig::default();
    let sender = ArSender::new(
        1,
        cfg.clone(),
        vec![SenderPathConfig { role: PathRole::Wifi, tx: TxPath::Link(up), link: Some(up) }],
    );
    let sstats = sender.stats();
    sim.install_actor(snd, sender);
    let receiver = ArReceiver::new(1, cfg.feedback_interval, vec![TxPath::Link(down)]);
    let rstats = receiver.stats();
    sim.install_actor(rcv, receiver);
    sim.add_actor(App { sender: snd, next_id: 0 });
    sim.run_until(SimTime::from_secs(secs));
    let r = rstats.borrow();
    let s = sstats.borrow();
    let video = r.by_kind.get(&StreamKind::VideoInter);
    Row {
        link_model: label.to_string(),
        video_delivered: video.map_or(0, |k| k.delivered),
        video_deadline_hit_pct: video.map_or(0.0, |k| {
            if k.deadline_hits + k.deadline_misses == 0 {
                0.0
            } else {
                k.deadline_hits as f64 / (k.deadline_hits + k.deadline_misses) as f64 * 100.0
            }
        }),
        video_p95_ms: video
            .map(|k| k.latency_ms.clone())
            .and_then(|mut h| h.p95())
            .unwrap_or(f64::NAN),
        meta_delivered: r.by_kind.get(&StreamKind::Metadata).map_or(0, |k| k.delivered),
        delay_congestion_events: s.delay_congestion_events,
    }
}

fn main() {
    let secs = 60;
    let mean = Bandwidth::from_mbps(6.0);
    let rows = vec![
        run("constant 6 Mb/s", Box::new(ConstantRate(mean)), secs),
        run(
            "AR(1) lognormal, σ=0.15 dec",
            Box::new(Ar1LogRate::new(mean, 0.15, 0.9, derive_rng(29, "var.mild"))),
            secs,
        ),
        run(
            "AR(1) lognormal, σ=0.35 dec",
            Box::new(Ar1LogRate::new(mean, 0.35, 0.9, derive_rng(29, "var.heavy"))),
            secs,
        ),
        run(
            "Markov 6 Mb/s ↔ 100 kb/s (HSPA+-like)",
            Box::new(MarkovRate::new(
                mean,
                Bandwidth::from_kbps(100.0),
                0.05,
                0.25,
                derive_rng(29, "var.markov"),
            )),
            secs,
        ),
    ];

    let offered = secs * 1000 / 33;
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.link_model.clone(),
                format!("{} / {offered}", r.video_delivered),
                format!("{}%", fmt(r.video_deadline_hit_pct, 1)),
                fmt(r.video_p95_ms, 1),
                r.meta_delivered.to_string(),
                r.delay_congestion_events.to_string(),
            ]
        })
        .collect();
    print_table(
        "Extension — same mean rate, rising variance (offered ≈ 1.5 Mb/s video)",
        &["Link model", "Video delivered", "≤deadline", "Video p95 ms", "Meta ok", "Delay events"],
        &table,
    );
    println!(
        "\nReading: the mean is not the message. With identical average\n\
         capacity, variance alone erodes deadline compliance — the abrupt\n\
         order-of-magnitude Markov drops (the §IV-A-1 HSPA+ behaviour) cost\n\
         the most, even though the controller reacts within an RTT. This is\n\
         the quantitative form of the paper's demand that 5G bound *rate\n\
         variance*, not just peak rate (§IV-C)."
    );
    write_json("sweep_variance", &rows);
}
