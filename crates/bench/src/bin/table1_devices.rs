//! E1 — regenerates **Table I**: the devices of a MAR ecosystem, plus a
//! derived column: can the device run a 30 FPS vision pipeline locally
//! (the §III-B feasibility check the table motivates)?

use marnet_app::compute::{ComputeModel, FrameWork};
use marnet_app::device;
use marnet_bench::{fmt, print_table, write_json};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    platform: String,
    computing_power: String,
    compute_gflops: f64,
    storage: String,
    battery: String,
    network: String,
    portability: String,
    local_vision_feasible: bool,
    local_vision_ms_per_frame: f64,
}

fn main() {
    let model = ComputeModel::new(30.0, FrameWork::vision_pipeline());
    let mut rows = Vec::new();
    for spec in device::catalog() {
        let est = model.p_local(&spec);
        let storage = match spec.storage_gb {
            (lo, Some(hi)) => format!("{lo:.0}-{hi:.0} GB"),
            (lo, None) => format!("{lo:.0}+ GB (unlimited)"),
        };
        let battery = match spec.battery_hours {
            Some((lo, hi)) => format!("{lo:.0}-{hi:.0}h"),
            None => "mains".to_string(),
        };
        let network = if spec.network.is_empty() && spec.wired {
            "Ethernet/Fiber".to_string()
        } else {
            let mut ifaces: Vec<String> = spec.network.iter().map(|t| t.to_string()).collect();
            if spec.wired {
                ifaces.push("Ethernet".to_string());
            }
            ifaces.join("/")
        };
        rows.push(Row {
            platform: spec.class.to_string(),
            computing_power: spec.computing_power.to_string(),
            compute_gflops: spec.compute_gflops,
            storage,
            battery,
            network,
            portability: spec.portability.to_string(),
            local_vision_feasible: est.feasible(),
            local_vision_ms_per_frame: est.per_frame.as_millis_f64(),
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.platform.clone(),
                r.computing_power.clone(),
                fmt(r.compute_gflops, 0),
                r.storage.clone(),
                r.battery.clone(),
                r.network.clone(),
                r.portability.clone(),
                if r.local_vision_feasible { "yes" } else { "no" }.to_string(),
                fmt(r.local_vision_ms_per_frame, 1),
            ]
        })
        .collect();
    print_table(
        "Table I — devices of a MAR ecosystem (+ local 30 FPS vision feasibility)",
        &[
            "Platform",
            "Computing power",
            "GFLOPS",
            "Storage",
            "Battery",
            "Network access",
            "Portability",
            "30FPS vision?",
            "ms/frame local",
        ],
        &table,
    );
    println!(
        "\nTable I's trade-off, quantified: every device portable enough for\n\
         ubiquitous MAR fails the 33 ms/frame vision budget locally — the\n\
         paper's case for offloading."
    );
    write_json("table1_devices", &rows);
}
