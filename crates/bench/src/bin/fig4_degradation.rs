//! E5 — regenerates **Fig. 4**: TCP's congestion window versus the AR
//! protocol's graceful degradation, over a link whose capacity drops twice
//! (the figure's two loss events).
//!
//! The AR flow carries the figure's four sub-streams — connection metadata
//! (critical/highest), sensor data (full best effort / delay-not-drop),
//! video reference frames (recovery/highest) and video interframes (full
//! best effort / lowest) — and the application reacts to QoS signals by
//! reducing interframe quality first and reference-frame quality only in
//! the deepest phase.

use marnet_bench::{fmt, print_table, write_json};
use marnet_core::class::{StreamKind, ALL_STREAM_KINDS};
use marnet_core::config::ArConfig;
use marnet_core::degradation::QosSignal;
use marnet_core::endpoint::{ArReceiver, ArSender, SenderPathConfig, Submit};
use marnet_core::message::ArMessage;
use marnet_core::multipath::PathRole;
use marnet_radio::variance::{modulate_links, ScriptedRate};
use marnet_sim::engine::{Actor, ActorId, Event, SimCtx, Simulator};
use marnet_sim::link::{Bandwidth, LinkParams};
use marnet_sim::packet::Payload;
use marnet_sim::time::{SimDuration, SimTime};
use marnet_transport::nic::TxPath;
use marnet_transport::tcp::{Reno, TcpConfig, TcpReceiver, TcpSender};
use serde::Serialize;

const PHASE_SECS: u64 = 20;
const RATES_MBPS: [f64; 3] = [8.0, 2.0, 0.6];

/// The Fig. 4 application: four sub-streams, quality scaled on QoS signals.
struct Fig4App {
    sender: ActorId,
    next_id: u64,
    frame: u64,
    inter_bytes: u32,
    ref_bytes: u32,
    degrades: u64,
    consecutive_degrades: u32,
}

impl Actor for Fig4App {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        match ev {
            Event::Start | Event::Timer { .. } => {
                let now = ctx.now();
                let deadline = now + SimDuration::from_millis(150);
                let is_ref = self.frame.is_multiple_of(10);
                self.frame += 1;
                let mut send = |id: u64, kind: StreamKind, bytes: u32, dl: bool| {
                    let mut m = ArMessage::new(id, kind, bytes, now);
                    if dl {
                        m = m.with_deadline(deadline);
                    }
                    ctx.send_message(self.sender, Payload::new(Submit(m)));
                };
                let id = self.next_id;
                self.next_id += 4;
                if is_ref {
                    send(id, StreamKind::VideoReference, self.ref_bytes, true);
                } else {
                    send(id, StreamKind::VideoInter, self.inter_bytes, true);
                }
                send(id + 1, StreamKind::Sensor, 400, true);
                send(id + 2, StreamKind::Metadata, 100, false);
                ctx.schedule_timer(SimDuration::from_millis(33), 0);
            }
            Event::Message { msg, .. } => {
                if let Some(sig) = msg.map_ref(|s: &QosSignal| *s) {
                    match sig {
                        QosSignal::Degrade { severity, .. } => {
                            self.degrades += 1;
                            self.consecutive_degrades += 1;
                            // Interframes are the first adjustable variable;
                            // reference frames only under severe or
                            // *persistent* congestion ("temporarily reduce
                            // the quality and number of reference frames").
                            self.inter_bytes = (self.inter_bytes * 7 / 10).max(800);
                            if severity >= 2 || self.consecutive_degrades > 15 {
                                self.ref_bytes = (self.ref_bytes * 8 / 10).max(4_000);
                            }
                        }
                        QosSignal::Headroom { .. } => {
                            self.consecutive_degrades = 0;
                            self.inter_bytes = (self.inter_bytes * 11 / 10).min(16_000);
                            self.ref_bytes = (self.ref_bytes * 21 / 20).min(20_000);
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

#[derive(Serialize)]
struct PhaseRow {
    phase: usize,
    link_mbps: f64,
    tcp_cwnd_kb_mean: f64,
    tcp_goodput_mbps: f64,
    ar_meta_kbps: f64,
    ar_sensor_kbps: f64,
    ar_ref_kbps: f64,
    ar_inter_kbps: f64,
    ar_meta_delivered: u64,
}

fn scripted() -> ScriptedRate {
    ScriptedRate::new(vec![
        (SimTime::ZERO, Bandwidth::from_mbps(RATES_MBPS[0])),
        (SimTime::from_secs(PHASE_SECS), Bandwidth::from_mbps(RATES_MBPS[1])),
        (SimTime::from_secs(2 * PHASE_SECS), Bandwidth::from_mbps(RATES_MBPS[2])),
    ])
}

fn main() {
    let total = 3 * PHASE_SECS;

    // --- TCP baseline -----------------------------------------------------
    let mut sim = Simulator::new(4);
    let s = sim.reserve_actor();
    let r = sim.reserve_actor();
    let fwd = sim.add_link(
        s,
        r,
        LinkParams::new(Bandwidth::from_mbps(RATES_MBPS[0]), SimDuration::from_millis(15)),
    );
    let rev = sim.add_link(
        r,
        s,
        LinkParams::new(Bandwidth::from_mbps(RATES_MBPS[0]), SimDuration::from_millis(15)),
    );
    modulate_links(&mut sim, vec![fwd], Box::new(scripted()), SimDuration::from_millis(100));
    let sender =
        TcpSender::new(1, TxPath::Link(fwd), TcpConfig::default(), Box::new(Reno::new(1460)));
    let tcp_stats = sender.stats();
    sim.install_actor(s, sender);
    let receiver = TcpReceiver::new(1, TxPath::Link(rev));
    let tcp_rx = receiver.stats();
    sim.install_actor(r, receiver);
    sim.run_until(SimTime::from_secs(total));

    // --- AR protocol ------------------------------------------------------
    let mut sim = Simulator::new(4);
    let snd = sim.reserve_actor();
    let rcv = sim.reserve_actor();
    let app = sim.reserve_actor();
    let up = sim.add_link(
        snd,
        rcv,
        LinkParams::new(Bandwidth::from_mbps(RATES_MBPS[0]), SimDuration::from_millis(15)),
    );
    let down = sim.add_link(
        rcv,
        snd,
        LinkParams::new(Bandwidth::from_mbps(RATES_MBPS[0]), SimDuration::from_millis(15)),
    );
    modulate_links(&mut sim, vec![up], Box::new(scripted()), SimDuration::from_millis(100));
    let cfg = ArConfig::default();
    let sender = ArSender::new(
        1,
        cfg.clone(),
        vec![SenderPathConfig { role: PathRole::Wifi, tx: TxPath::Link(up), link: Some(up) }],
    )
    .with_qos_target(app);
    let ar_stats = sender.stats();
    sim.install_actor(snd, sender);
    let receiver = ArReceiver::new(1, cfg.feedback_interval, vec![TxPath::Link(down)]);
    let ar_rx = receiver.stats();
    sim.install_actor(rcv, receiver);
    sim.install_actor(
        app,
        Fig4App {
            sender: snd,
            next_id: 0,
            frame: 0,
            inter_bytes: 16_000,
            ref_bytes: 20_000,
            degrades: 0,
            consecutive_degrades: 0,
        },
    );
    sim.run_until(SimTime::from_secs(total));

    // --- Per-phase summary --------------------------------------------------
    let tcp = tcp_stats.borrow();
    let tcp_rxb = tcp_rx.borrow();
    let ar = ar_stats.borrow();
    let arx = ar_rx.borrow();
    let kbps = |kind: StreamKind, from: f64, to: f64| {
        ar.send_meters.get(&kind).map_or(0.0, |m| m.mean_mbps(from, to) * 1000.0)
    };
    let mut rows = Vec::new();
    for (phase, &link_mbps) in RATES_MBPS.iter().enumerate() {
        let from = (phase as u64 * PHASE_SECS) as f64 + 4.0;
        let to = ((phase as u64 + 1) * PHASE_SECS) as f64;
        let cwnd = tcp.cwnd_series.window_mean(from, to).unwrap_or(0.0) / 1000.0;
        rows.push(PhaseRow {
            phase: phase + 1,
            link_mbps,
            tcp_cwnd_kb_mean: cwnd,
            tcp_goodput_mbps: tcp_rxb.goodput_meter.mean_mbps(from, to),
            ar_meta_kbps: kbps(StreamKind::Metadata, from, to),
            ar_sensor_kbps: kbps(StreamKind::Sensor, from, to),
            ar_ref_kbps: kbps(StreamKind::VideoReference, from, to),
            ar_inter_kbps: kbps(StreamKind::VideoInter, from, to),
            ar_meta_delivered: 0, // filled below from totals
        });
    }
    let meta_total = arx.by_kind.get(&StreamKind::Metadata).map_or(0, |k| k.delivered);
    if let Some(last) = rows.last_mut() {
        last.ar_meta_delivered = meta_total;
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.phase.to_string(),
                fmt(r.link_mbps, 1),
                fmt(r.tcp_cwnd_kb_mean, 1),
                fmt(r.tcp_goodput_mbps, 2),
                fmt(r.ar_meta_kbps, 1),
                fmt(r.ar_sensor_kbps, 1),
                fmt(r.ar_ref_kbps, 0),
                fmt(r.ar_inter_kbps, 0),
            ]
        })
        .collect();
    print_table(
        "Fig. 4 — TCP congestion window vs AR graceful degradation (3 phases)",
        &[
            "Phase",
            "Link Mb/s",
            "TCP cwnd KB",
            "TCP Mb/s",
            "AR meta kb/s",
            "AR sensor kb/s",
            "AR ref kb/s",
            "AR inter kb/s",
        ],
        &table,
    );
    println!(
        "\nAR deliveries: metadata {} (never shed), dropped-by-kind {:?},\n\
         degrade signals {}.",
        meta_total,
        ALL_STREAM_KINDS
            .iter()
            .map(|k| (k.to_string(), ar.dropped_msgs(*k)))
            .filter(|(_, v)| *v > 0)
            .collect::<Vec<_>>(),
        ar.degrade_signals
    );
    println!(
        "\nShape check: TCP halves its window and sends *the same bytes,\n\
         later*; the AR flow keeps metadata at full cadence through both\n\
         congestion events, trims interframes and sensors first, and touches\n\
         reference frames only in the deepest phase — Fig. 4's story."
    );
    write_json("fig4_degradation", &rows);
}
