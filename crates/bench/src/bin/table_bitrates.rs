//! E15 — regenerates the §III-B bandwidth-estimate ladder: retina-scaled
//! raw information rate, raw/compressed 4K video, and the ~10 Mb/s minimal
//! AR-usable feed.

use marnet_app::video::{eye_scaled_rate, VideoConfig, MIN_AR_VIDEO};
use marnet_bench::{fmt, print_table, write_json};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    step: String,
    paper_value: String,
    computed: String,
    note: String,
}

fn main() {
    let mut rows = Vec::new();

    let low = eye_scaled_rate(60.0).as_bps() as f64 / 1e9;
    let high = eye_scaled_rate(70.0).as_bps() as f64 / 1e9;
    rows.push(Row {
        step: "Eye → camera FOV raw estimate".into(),
        paper_value: "9-12 Gb/s".into(),
        computed: format!("{}-{} Gb/s", fmt(low, 1), fmt(high, 1)),
        note: "foveal 6-10 Mb/s scaled by (FOV/2°)²".into(),
    });

    let uhd = VideoConfig::uhd_4k_60();
    let raw = uhd.raw_bitrate().as_bps() as f64 / 1e9;
    rows.push(Row {
        step: "Uncompressed 4K 60FPS 12bpp".into(),
        paper_value: "711 Mb/s (printed)".into(),
        computed: format!("{} Gb/s", fmt(raw, 2)),
        note: "3840×2160×12×60 bits = 5.97 Gb/s; the paper's 711 appears \
               to be megaBYTES/s (746 MB/s) — see EXPERIMENTS.md E15"
            .into(),
    });

    let compressed = uhd.with_compression(240.0);
    rows.push(Row {
        step: "Lossy-compressed 4K".into(),
        paper_value: "20-30 Mb/s".into(),
        computed: format!("{} Mb/s at 240:1", fmt(compressed.bitrate().as_mbps(), 1)),
        note: "H.264/H.265-class ratios".into(),
    });

    let minimal = VideoConfig::ar_minimal();
    rows.push(Row {
        step: "Minimal AR-usable feed".into(),
        paper_value: "~10 Mb/s".into(),
        computed: format!(
            "{} Mb/s (720p30 at 33:1); floor constant {} Mb/s",
            fmt(minimal.bitrate().as_mbps(), 2),
            fmt(MIN_AR_VIDEO.as_bps() as f64 / 1e6, 0)
        ),
        note: "enough detail for advanced AR operations".into(),
    });

    let (ref_b, inter_b) = minimal.gop_frame_sizes();
    rows.push(Row {
        step: "Minimal feed GoP".into(),
        paper_value: "-".into(),
        computed: format!("{ref_b} B ref / {inter_b} B inter, GoP {}", minimal.gop),
        note: "the Fig. 4 sub-stream sizes".into(),
    });

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.step.clone(), r.paper_value.clone(), r.computed.clone(), r.note.clone()])
        .collect();
    print_table(
        "§III-B — bandwidth estimates for MAR video",
        &["Step", "Paper", "Computed", "Note"],
        &table,
    );
    write_json("table_bitrates", &rows);
}
