//! E8 — regenerates the §IV-D asymmetry analysis: provisioned
//! downlink:uplink ratios of fixed and mobile ISPs, the historical usage
//! ratio, and the MAR-offloading traffic profile that *reverses* it.

use marnet_app::strategy::OffloadStrategy;
use marnet_bench::{fmt, print_table, write_json};
use marnet_radio::asymmetry::{catalog, mar_upload_ratio, usage_history, AccessKind};
use serde::Serialize;

#[derive(Serialize)]
struct Summary {
    fixed_ratio_range: (f64, f64),
    fixed_symmetric_count: usize,
    mobile_ratio_avg: f64,
    usage_down_over_up_2016: f64,
    mar_up_over_down_by_strategy: Vec<(String, f64)>,
}

fn main() {
    let offers = catalog();
    let rows: Vec<Vec<String>> = offers
        .iter()
        .map(|o| {
            vec![
                o.name.to_string(),
                format!("{:?}", o.kind),
                fmt(o.down_mbps, 0),
                fmt(o.up_mbps, 1),
                fmt(o.ratio(), 2),
                if o.is_symmetric() { "yes" } else { "no" }.into(),
            ]
        })
        .collect();
    print_table(
        "§IV-D — access offers: provisioned down:up ratios",
        &["Offer", "Kind", "Down Mb/s", "Up Mb/s", "Ratio", "Symmetric"],
        &rows,
    );

    let hist: Vec<Vec<String>> = usage_history()
        .iter()
        .map(|u| vec![u.year.to_string(), fmt(u.down_over_up, 2), u.era.to_string()])
        .collect();
    print_table("§IV-D-2 — download:upload usage ratio over time", &["Year", "D/U", "Era"], &hist);

    // MAR reverses the profile: per-frame up vs down bytes per strategy.
    let mut mar_rows = Vec::new();
    let mut mar_json = Vec::new();
    for s in OffloadStrategy::canonical() {
        let up = s.uplink_bytes_per_frame();
        let down = s.downlink_bytes_per_frame();
        if down == 0 {
            continue;
        }
        let ratio = mar_upload_ratio(up, down);
        mar_rows.push(vec![s.to_string(), up.to_string(), down.to_string(), fmt(ratio, 1)]);
        mar_json.push((s.to_string(), ratio));
    }
    print_table(
        "MAR offloading traffic: bytes per frame, uplink-dominated",
        &["Strategy", "Up B/frame", "Down B/frame", "Up/Down"],
        &mar_rows,
    );

    let fixed: Vec<f64> = offers
        .iter()
        .filter(|o| o.kind == AccessKind::Fixed && !o.is_symmetric() && o.name.starts_with("US"))
        .map(|o| o.ratio())
        .collect();
    let mobile: Vec<f64> =
        offers.iter().filter(|o| o.kind == AccessKind::Mobile).map(|o| o.ratio()).collect();
    let summary = Summary {
        fixed_ratio_range: (
            fixed.iter().cloned().fold(f64::INFINITY, f64::min),
            fixed.iter().cloned().fold(0.0, f64::max),
        ),
        fixed_symmetric_count: offers
            .iter()
            .filter(|o| o.kind == AccessKind::Fixed && o.is_symmetric())
            .count(),
        mobile_ratio_avg: mobile.iter().sum::<f64>() / mobile.len() as f64,
        usage_down_over_up_2016: usage_history().last().unwrap().down_over_up,
        mar_up_over_down_by_strategy: mar_json,
    };
    println!(
        "\nLinks are provisioned {:.2}-{:.2}:1 down-heavy (mobile avg {:.2}:1),\n\
         usage runs ~{:.2}:1 down-heavy — and MAR offloading pushes 2.5-25x\n\
         MORE bytes *up* than down. The mismatch is structural.",
        summary.fixed_ratio_range.0,
        summary.fixed_ratio_range.1,
        summary.mobile_ratio_avg,
        summary.usage_down_over_up_2016,
    );
    write_json("table_asymmetry", &summary);
}
