//! E7 — regenerates the §IV-A wireless survey: theoretical vs measured
//! throughput and latency per access technology, with the MAR-budget
//! verdicts the section draws, plus sampled link realizations from the
//! calibrated stochastic models.

use marnet_bench::{fmt, print_table, write_json};
use marnet_radio::profiles::{catalog, LinkDirection};
use marnet_sim::rng::derive_rng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    technology: String,
    theoretical_down_mbps: f64,
    measured_down_mbps: (f64, f64),
    measured_up_mbps: (f64, f64),
    latency_ms: (f64, f64),
    hype_factor: f64,
    meets_latency_budget: bool,
    meets_uplink_budget: bool,
    sampled_up_mbps_mean: f64,
    sampled_rtt_ms_mean: f64,
}

fn main() {
    let mut rng = derive_rng(7, "table_wireless");
    let mut rows = Vec::new();
    for p in catalog() {
        // Empirical check of the samplers against the quoted ranges.
        let mut up_sum = 0.0;
        let mut rtt_sum = 0.0;
        const N: usize = 200;
        for _ in 0..N {
            let lp = p.sample_link_params(LinkDirection::Uplink, &mut rng);
            up_sum += lp.rate.as_mbps();
            rtt_sum += lp.delay.as_millis_f64() * 2.0;
        }
        rows.push(Row {
            technology: p.technology.to_string(),
            theoretical_down_mbps: p.theoretical_down_mbps,
            measured_down_mbps: (p.measured_down_mbps.low, p.measured_down_mbps.high),
            measured_up_mbps: (p.measured_up_mbps.low, p.measured_up_mbps.high),
            latency_ms: (p.latency_ms.low, p.latency_ms.high),
            hype_factor: p.hype_factor(),
            meets_latency_budget: p.meets_mar_latency_budget(),
            meets_uplink_budget: p.meets_mar_uplink_budget(),
            sampled_up_mbps_mean: up_sum / N as f64,
            sampled_rtt_ms_mean: rtt_sum / N as f64,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.technology.clone(),
                fmt(r.theoretical_down_mbps, 0),
                format!("{}-{}", fmt(r.measured_down_mbps.0, 1), fmt(r.measured_down_mbps.1, 1)),
                format!("{}-{}", fmt(r.measured_up_mbps.0, 1), fmt(r.measured_up_mbps.1, 1)),
                format!("{}-{}", fmt(r.latency_ms.0, 0), fmt(r.latency_ms.1, 0)),
                format!("{}x", fmt(r.hype_factor, 0)),
                if r.meets_latency_budget { "yes" } else { "no" }.into(),
                if r.meets_uplink_budget { "yes" } else { "no" }.into(),
                fmt(r.sampled_up_mbps_mean, 1),
                fmt(r.sampled_rtt_ms_mean, 0),
            ]
        })
        .collect();
    print_table(
        "§IV-A — wireless access technologies: theoretical vs measured",
        &[
            "Technology",
            "Theo down Mb/s",
            "Meas down Mb/s",
            "Meas up Mb/s",
            "RTT ms",
            "Hype",
            "≤75ms?",
            "≥10Mb/s up?",
            "sampled up",
            "sampled RTT",
        ],
        &table,
    );
    println!(
        "\nThe §IV conclusion, as data: every deployed infrastructure network\n\
         misses at least one of the MAR budgets; only the (undeployed) D2D\n\
         modes and the 5G KPI targets clear both."
    );
    write_json("table_wireless", &rows);
}
