//! Ablation (DESIGN.md §5.2) — what does each piece of graceful degradation
//! buy? The same overloaded MAR flow runs with: (a) the full scheduler,
//! (b) shedding disabled (everything is delayed, TCP-style), (c) shedding
//! without QoS feedback (the app never lowers quality), and (d) no
//! degradation *and* no pacing budget discipline (naive).

use marnet_bench::{fmt, print_table, write_json};
use marnet_core::class::StreamKind;
use marnet_core::config::ArConfig;
use marnet_core::degradation::QosSignal;
use marnet_core::endpoint::{ArReceiver, ArSender, SenderPathConfig, Submit};
use marnet_core::message::ArMessage;
use marnet_core::multipath::PathRole;
use marnet_sim::engine::{Actor, ActorId, Event, SimCtx, Simulator};
use marnet_sim::link::{Bandwidth, LinkParams};
use marnet_sim::packet::Payload;
use marnet_sim::time::{SimDuration, SimTime};
use marnet_transport::nic::TxPath;
use serde::Serialize;

/// Offered ≈ 4 Mb/s of video into a 1.5 Mb/s link.
struct OverloadApp {
    sender: ActorId,
    next_id: u64,
    frame: u64,
    inter_bytes: u32,
    adaptive: bool,
}

impl Actor for OverloadApp {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        match ev {
            Event::Start | Event::Timer { .. } => {
                let now = ctx.now();
                let deadline = now + SimDuration::from_millis(100);
                let is_ref = self.frame.is_multiple_of(10);
                self.frame += 1;
                let kind = if is_ref { StreamKind::VideoReference } else { StreamKind::VideoInter };
                let bytes = if is_ref { 20_000 } else { self.inter_bytes };
                let id = self.next_id;
                self.next_id += 2;
                let m = ArMessage::new(id, kind, bytes, now).with_deadline(deadline);
                ctx.send_message(self.sender, Payload::new(Submit(m)));
                let meta = ArMessage::new(id + 1, StreamKind::Metadata, 100, now);
                ctx.send_message(self.sender, Payload::new(Submit(meta)));
                ctx.schedule_timer(SimDuration::from_millis(33), 0);
            }
            Event::Message { msg, .. } => {
                if !self.adaptive {
                    return;
                }
                if let Some(sig) = msg.map_ref(|s: &QosSignal| *s) {
                    match sig {
                        QosSignal::Degrade { .. } => {
                            self.inter_bytes = (self.inter_bytes * 7 / 10).max(1_000);
                        }
                        QosSignal::Headroom { .. } => {
                            self.inter_bytes = (self.inter_bytes * 11 / 10).min(15_000);
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

#[derive(Serialize)]
struct Row {
    variant: String,
    meta_delivered: u64,
    meta_p95_ms: f64,
    video_delivered: u64,
    video_deadline_hit_pct: f64,
    bytes_shed: u64,
}

fn run(variant: &str, cfg: ArConfig, adaptive: bool, secs: u64) -> Row {
    let mut sim = Simulator::new(19);
    let snd = sim.reserve_actor();
    let rcv = sim.reserve_actor();
    let app = sim.reserve_actor();
    let up = sim.add_link(
        snd,
        rcv,
        LinkParams::new(Bandwidth::from_mbps(1.5), SimDuration::from_millis(10)),
    );
    let down = sim.add_link(
        rcv,
        snd,
        LinkParams::new(Bandwidth::from_mbps(1.5), SimDuration::from_millis(10)),
    );
    let sender = ArSender::new(
        1,
        cfg.clone(),
        vec![SenderPathConfig { role: PathRole::Wifi, tx: TxPath::Link(up), link: Some(up) }],
    )
    .with_qos_target(app);
    let sstats = sender.stats();
    sim.install_actor(snd, sender);
    let receiver = ArReceiver::new(1, cfg.feedback_interval, vec![TxPath::Link(down)]);
    let rstats = receiver.stats();
    sim.install_actor(rcv, receiver);
    sim.install_actor(
        app,
        OverloadApp { sender: snd, next_id: 0, frame: 0, inter_bytes: 15_000, adaptive },
    );
    sim.run_until(SimTime::from_secs(secs));
    let r = rstats.borrow();
    let s = sstats.borrow();
    let meta = r.by_kind.get(&StreamKind::Metadata);
    let video: (u64, u64, u64) = [StreamKind::VideoReference, StreamKind::VideoInter]
        .iter()
        .filter_map(|k| r.by_kind.get(k))
        .fold((0, 0, 0), |acc, k| {
            (acc.0 + k.delivered, acc.1 + k.deadline_hits, acc.2 + k.deadline_misses)
        });
    Row {
        variant: variant.to_string(),
        meta_delivered: meta.map_or(0, |k| k.delivered),
        meta_p95_ms: meta
            .map(|k| k.latency_ms.clone())
            .and_then(|mut h| h.p95())
            .unwrap_or(f64::NAN),
        video_delivered: video.0,
        video_deadline_hit_pct: if video.1 + video.2 == 0 {
            0.0
        } else {
            video.1 as f64 / (video.1 + video.2) as f64 * 100.0
        },
        bytes_shed: s.dropped_bytes(),
    }
}

fn main() {
    let secs = 30;
    let full = ArConfig::default();
    // Backlog-pressure shedding disabled (deadline-late messages are still
    // shed — droppable classes are defined by their deadlines): the
    // scheduler degenerates to delay-everything-until-late.
    let no_shed = ArConfig {
        stale_after: SimDuration::from_secs(3_600),
        backlog_ticks: 1e9,
        ..ArConfig::default()
    };
    let rows = vec![
        run("full graceful degradation", full.clone(), true, secs),
        run("shedding, no app adaptation", full.clone(), false, secs),
        run("late-only shedding (no backlog control)", no_shed.clone(), false, secs),
    ];

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.variant.clone(),
                r.meta_delivered.to_string(),
                fmt(r.meta_p95_ms, 1),
                r.video_delivered.to_string(),
                format!("{}%", fmt(r.video_deadline_hit_pct, 1)),
                r.bytes_shed.to_string(),
            ]
        })
        .collect();
    print_table(
        "Ablation — graceful degradation under 2.7x overload (1.5 Mb/s link, 30 s)",
        &["Variant", "Meta ok", "Meta p95 ms", "Video ok", "Video ≤deadline", "Bytes shed"],
        &table,
    );
    println!(
        "\nReading: with shedding on, metadata stays fast and the video that\n\
         does go out is on time; app adaptation additionally *fits* the\n\
         stream to the link (more frames survive, 20x less is shed). Without\n\
         backlog control the queue holds everything until it is already\n\
         late — metadata crawls behind stale video and almost nothing meets\n\
         its deadline, which is the TCP-ish behaviour Fig. 4 contrasts."
    );
    write_json("ablation_degradation", &rows);
}
