//! Extension (§VI-G) — the privacy bill: what redaction + encryption cost
//! each device class per frame, against the 75 ms budget, and the residual
//! leakage each policy leaves. The paper requires full redaction before any
//! D2D offload; this table shows which devices can afford to comply.

use marnet_app::device::DeviceClass;
use marnet_bench::{fmt, print_table, write_json};
use marnet_privacy::anonymize::{sample_street_scene, FrameRegions};
use marnet_privacy::crypto::{best_cipher, handshake_time};
use marnet_privacy::policy::{apply, PrivacyPolicy};
use marnet_sim::rng::derive_rng;
use marnet_sim::time::SimDuration;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    device: String,
    policy: String,
    added_latency_ms: f64,
    leakage: f64,
    d2d_compliant: bool,
    fits_33ms_frame: bool,
}

fn main() {
    // A representative busy street scene (mean of 500 sampled frames).
    let mut rng = derive_rng(3, "table_privacy");
    let mut acc = FrameRegions::default();
    const N: u32 = 500;
    for _ in 0..N {
        let s = sample_street_scene(&mut rng);
        acc.faces += s.faces;
        acc.plates += s.plates;
        acc.street_plates += s.street_plates;
    }
    let scene = FrameRegions {
        faces: acc.faces / N,
        plates: acc.plates / N,
        street_plates: acc.street_plates / N,
    };
    let frame_bytes = 40_000u64;

    let policies = [
        ("none", PrivacyPolicy::none()),
        ("first-party (encrypt only)", PrivacyPolicy::first_party()),
        ("paranoid (full redact + encrypt)", PrivacyPolicy::paranoid()),
    ];
    let devices = [DeviceClass::SmartGlasses, DeviceClass::Smartphone, DeviceClass::Laptop];

    let mut rows = Vec::new();
    for device in devices {
        for (label, policy) in &policies {
            let v = apply(policy, device, frame_bytes, &scene);
            rows.push(Row {
                device: device.spec().class.to_string(),
                policy: label.to_string(),
                added_latency_ms: v.added_latency.as_millis_f64(),
                leakage: v.leakage,
                d2d_compliant: policy.d2d_compliant(),
                fits_33ms_frame: v.added_latency < SimDuration::from_millis(33),
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.device.clone(),
                r.policy.clone(),
                fmt(r.added_latency_ms, 2),
                fmt(r.leakage, 1),
                if r.d2d_compliant { "yes" } else { "no" }.into(),
                if r.fits_33ms_frame { "yes" } else { "no" }.into(),
            ]
        })
        .collect();
    print_table(
        "§VI-G extension — privacy cost per 40 KB frame (avg street scene)",
        &["Device", "Policy", "Added ms/frame", "Leakage", "D2D-safe", "≤33 ms/frame"],
        &table,
    );

    println!("\nHandshake cost after a WiFi handover (36 ms RTT):");
    for device in devices {
        println!(
            "  {:<14} {} ({:?})",
            device.spec().class.to_string(),
            handshake_time(device, SimDuration::from_millis(36)),
            best_cipher(device)
        );
    }
    println!(
        "\nReading: encryption is cheap everywhere (hardware AES), but the\n\
         *detection* pass behind redaction costs vision-level compute — on\n\
         smart glasses the D2D-compliance prerequisite alone blows the frame\n\
         budget, the §VI-G chicken-and-egg: you must offload to afford the\n\
         privacy pass that makes offloading safe."
    );
    write_json("table_privacy", &rows);
}
