//! E13 — sweeps the §VI-H uplink queueing policies: the oversized FIFO
//! ("usually oversized (around 1000 packets), dramatically increasing the
//! overall latency") vs CoDel, FQ-CoDel and latency (strict-priority)
//! queueing, for a paced MAR stream sharing the uplink with a greedy
//! TCP upload.

use marnet_bench::scenarios::run_queueing;
use marnet_bench::{fmt, print_table, write_json};
use marnet_sim::queue::QueueConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    queue: String,
    mar_latency_median_ms: f64,
    mar_latency_p95_ms: f64,
    mar_delivery_pct: f64,
    bulk_goodput_mbps: f64,
}

fn main() {
    let secs = 40u64;
    let configs: Vec<(&str, QueueConfig, u8)> = vec![
        ("DropTail 1000 (status quo)", QueueConfig::bloated_uplink(), 0),
        ("DropTail 50 (small FIFO)", QueueConfig::DropTail { cap_packets: 50 }, 0),
        ("CoDel", QueueConfig::codel_default(), 0),
        ("FQ-CoDel", QueueConfig::fq_codel_default(), 0),
        (
            "Strict priority (MAR in band 0)",
            QueueConfig::StrictPriority { bands: 4, cap_packets_per_band: 250 },
            0,
        ),
    ];

    let mut rows = Vec::new();
    for (label, queue, prio) in configs {
        let out = run_queueing(2.0, queue, prio, 1, 1, secs, 7);
        let mar = out.mar[0].borrow();
        let mut h = mar.latency_ms.clone();
        // Offered: 1.5 Mb/s in 1200 B packets.
        let offered = 1.5e6 / (1200.0 * 8.0) * secs as f64;
        rows.push(Row {
            queue: label.to_string(),
            mar_latency_median_ms: h.median().unwrap_or(f64::NAN),
            mar_latency_p95_ms: h.p95().unwrap_or(f64::NAN),
            mar_delivery_pct: mar.packets as f64 / offered * 100.0,
            bulk_goodput_mbps: out.bulk[0].borrow().goodput_bytes as f64 * 8.0 / secs as f64 / 1e6,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.queue.clone(),
                fmt(r.mar_latency_median_ms, 1),
                fmt(r.mar_latency_p95_ms, 1),
                format!("{}%", fmt(r.mar_delivery_pct, 1)),
                fmt(r.bulk_goodput_mbps, 2),
            ]
        })
        .collect();
    print_table(
        "E13 — uplink queueing for a 1.5 Mb/s MAR stream + greedy upload on a 2 Mb/s uplink",
        &["Queue", "MAR median ms", "MAR p95 ms", "MAR delivered", "Bulk Mb/s"],
        &table,
    );
    println!(
        "\nShape check: the 1000-packet FIFO inflicts seconds of one-way\n\
         latency (bufferbloat); CoDel/FQ-CoDel cut it to tens of ms while\n\
         the upload keeps most of its goodput; strict priority gives MAR\n\
         near-propagation latency — §VI-H's 'latency queuing + FQ-CoDel'\n\
         recommendation, with the paper's caveat that plain fair queueing\n\
         can starve long flows visible in the bulk column."
    );
    write_json("sweep_queueing", &rows);
}
