//! Extension (§III-B, Eq. 2) — "caching and prefetching mechanisms can
//! reduce the network overhead of P_local+externalDB". Sweeps device cache
//! size (the `x` of Eq. 2, realised as a measured LRU hit ratio under
//! Zipf-ish MAR browser traffic) and spatial prefetching, and converts the
//! hit ratio into per-frame DB overhead and end-to-end feasibility.

use marnet_app::compute::{ComputeModel, DbAccess, FrameWork, NetParams};
use marnet_app::db::{db_overhead_per_frame, LruCache, RequestGenerator};
use marnet_app::device::DeviceClass;
use marnet_bench::{fmt, print_table, write_json};
use marnet_sim::link::Bandwidth;
use marnet_sim::rng::derive_rng;
use marnet_sim::time::SimDuration;
use serde::Serialize;

const OBJECT_BYTES: u64 = 50_000;
const CATALOG: u64 = 20_000;

#[derive(Serialize)]
struct Row {
    cache_mb: f64,
    prefetch: bool,
    hit_ratio: f64,
    db_overhead_ms_per_frame: f64,
    p_local_db_ms: f64,
    feasible_30fps: bool,
}

fn measure_hit_ratio(cache_mb: f64, prefetch: bool, seed: u64) -> f64 {
    let mut cache = LruCache::new((cache_mb * 1e6) as u64);
    let mut gen = RequestGenerator::new(CATALOG, 1.2, 0.3, derive_rng(seed, "caching.gen"));
    for _ in 0..60_000 {
        let id = gen.next_request();
        if !cache.access(id) {
            cache.insert(id, OBJECT_BYTES);
            if prefetch {
                // Spatial prefetch: neighbouring objects (adjacent POIs)
                // ride along with each miss.
                cache.prefetch(id.saturating_add(1), OBJECT_BYTES);
                cache.prefetch(id.saturating_sub(1), OBJECT_BYTES);
            }
        }
    }
    cache.hit_ratio()
}

fn main() {
    // The Table II cloud-over-WiFi network.
    let net = NetParams {
        uplink: Bandwidth::from_mbps(8.0),
        downlink: Bandwidth::from_mbps(20.0),
        rtt: SimDuration::from_millis(36),
    };
    let db = DbAccess::browser();
    let tablet = DeviceClass::Tablet.spec();
    // A browser-style app: light local stages (tracking + rendering), the
    // heavy lifting is the DB lookups — Eq. 2's regime.
    let browser_work = FrameWork {
        extraction_gflop: 0.0,
        matching_gflop: 0.0,
        tracking_gflop: 0.05,
        rendering_gflop: 0.15,
    };
    let model = ComputeModel::new(30.0, browser_work).with_db(db);

    let mut rows = Vec::new();
    for &cache_mb in &[1.0, 10.0, 50.0, 200.0, 1_000.0] {
        for prefetch in [false, true] {
            let hit = measure_hit_ratio(cache_mb, prefetch, 5);
            let overhead = db_overhead_per_frame(
                db.requests_per_frame,
                hit,
                db.object_bytes,
                net.downlink.as_bps(),
                net.rtt,
            );
            // The device runs only the light local stages (a Glimpse-style
            // split) so the DB term dominates Eq. 2.
            let est = model.p_local_external_db(&tablet, &net, hit);
            rows.push(Row {
                cache_mb,
                prefetch,
                hit_ratio: hit,
                db_overhead_ms_per_frame: overhead.as_millis_f64(),
                p_local_db_ms: est.per_frame.as_millis_f64(),
                feasible_30fps: est.feasible(),
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                fmt(r.cache_mb, 0),
                if r.prefetch { "yes" } else { "no" }.into(),
                format!("{}%", fmt(r.hit_ratio * 100.0, 1)),
                fmt(r.db_overhead_ms_per_frame, 1),
                fmt(r.p_local_db_ms, 1),
                if r.feasible_30fps { "yes" } else { "no" }.into(),
            ]
        })
        .collect();
    print_table(
        "Extension — Eq. 2's x: cache size & prefetch vs per-frame DB overhead (1 GB catalog, 36 ms RTT)",
        &["Cache MB", "Prefetch", "Hit ratio", "DB ms/frame", "P_local+DB ms", "30 FPS?"],
        &table,
    );
    println!(
        "\nReading: with a token cache every frame pays ~1.5 misses ×\n\
         (36 ms RTT + 20 ms transfer) of DB overhead — far over budget. The\n\
         hit ratio climbs with the cached share of the catalog, and spatial\n\
         prefetching pays exactly when the cache is large enough to retain\n\
         the prefetched neighbourhoods (+15 points at the top tier, which is\n\
         what tips the app into 30 FPS feasibility) — the quantitative form\n\
         of the paper's remark that 'caching and prefetching mechanisms can\n\
         reduce the network overhead'."
    );
    write_json("sweep_caching", &rows);
}
