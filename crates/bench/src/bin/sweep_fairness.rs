//! E14 — sweeps the §VI-B fairness trade-off: the AR protocol's
//! delay-based congestion signal against 1-4 loss-based TCP flows on a
//! shared bottleneck. The latency threshold is the ablation knob: a tight
//! threshold keeps queues (and MAR latency) low but concedes bandwidth to
//! TCP — the Vegas problem the paper cites; loosening it (towards
//! loss-only) buys fairness at the cost of queueing delay.

use marnet_bench::scenarios::run_fairness;
use marnet_bench::{fmt, print_table, write_json};
use marnet_sim::stats::jain_index;
use marnet_sim::time::SimDuration;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    mode: String,
    n_tcp: usize,
    ar_mbps: f64,
    tcp_mbps_each: f64,
    fair_share_mbps: f64,
    jain: f64,
    ar_share_of_fair: f64,
    delay_events: u64,
    loss_events: u64,
}

fn main() {
    let bottleneck = 12.0;
    let secs = 30;
    let modes: Vec<(&str, bool, SimDuration)> = vec![
        ("delay-sensitive (15 ms)", true, SimDuration::from_millis(15)),
        ("delay-relaxed (60 ms)", true, SimDuration::from_millis(60)),
        ("loss-only", true, SimDuration::from_secs(10)),
        ("delay-only (no loss fallback)", false, SimDuration::from_millis(15)),
    ];

    let mut rows = Vec::new();
    for (label, react_to_loss, threshold) in modes {
        for n_tcp in [1usize, 2, 4] {
            let out = run_fairness(bottleneck, n_tcp, react_to_loss, threshold, secs, 23);
            let ar_mbps = out.ar.borrow().received_bytes as f64 * 8.0 / secs as f64 / 1e6;
            let tcp_each: Vec<f64> = out
                .tcp
                .iter()
                .map(|t| t.borrow().goodput_bytes as f64 * 8.0 / secs as f64 / 1e6)
                .collect();
            let tcp_mean = tcp_each.iter().sum::<f64>() / tcp_each.len() as f64;
            let fair = bottleneck / (n_tcp as f64 + 1.0);
            let mut alloc = tcp_each.clone();
            alloc.push(ar_mbps);
            let s = out.ar_sender.borrow();
            rows.push(Row {
                mode: label.to_string(),
                n_tcp,
                ar_mbps,
                tcp_mbps_each: tcp_mean,
                fair_share_mbps: fair,
                jain: jain_index(&alloc),
                ar_share_of_fair: ar_mbps / fair,
                delay_events: s.delay_congestion_events,
                loss_events: s.loss_congestion_events,
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mode.clone(),
                r.n_tcp.to_string(),
                fmt(r.ar_mbps, 2),
                fmt(r.tcp_mbps_each, 2),
                fmt(r.fair_share_mbps, 2),
                fmt(r.jain, 3),
                fmt(r.ar_share_of_fair, 2),
            ]
        })
        .collect();
    print_table(
        &format!("E14 — AR flow vs n TCP flows on a {bottleneck} Mb/s bottleneck"),
        &["Congestion mode", "TCPs", "AR Mb/s", "TCP Mb/s each", "Fair Mb/s", "Jain", "AR/fair"],
        &table,
    );
    println!(
        "\nShape check: the delay-sensitive mode is starved by queue-filling\n\
         TCP (AR/fair ≪ 1 — the Vegas problem of §VI-B); relaxing the\n\
         threshold buys back bandwidth; loss-only competes like AIMD. The\n\
         'trade-off between latency and bandwidth requirements' is this\n\
         table's diagonal."
    );
    write_json("sweep_fairness", &rows);
}
