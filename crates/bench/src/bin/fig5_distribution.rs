//! E6 — regenerates **Fig. 5**: the four approaches to distributing MAR
//! computation (multipath multi-server, home-WiFi D2D, LTE-Direct D2D,
//! WiFi-Direct D2D), compared on loop latency, deadline compliance and
//! LTE usage, plus the §VI-E server-selection/synchronisation analysis.

use marnet_bench::{fmt, print_table, write_json};
use marnet_edge::scenarios::{run_scenario, DistributionScenario};
use marnet_edge::selection::{select_per_path, select_single, InterServerMatrix};
use marnet_sim::time::SimDuration;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scenario: String,
    loops: usize,
    loop_median_ms: f64,
    loop_p95_ms: f64,
    within_75ms: f64,
    critical_median_ms: f64,
    cellular_mbytes: f64,
}

fn main() {
    let mut rows = Vec::new();
    for scenario in DistributionScenario::ALL {
        let mut out = run_scenario(scenario, 42, 30);
        let s = out.sender.borrow();
        let cellular = s.cellular_bytes as f64 / 1e6;
        drop(s);
        rows.push(Row {
            scenario: scenario.to_string(),
            loops: out.loop_latency_ms.count(),
            loop_median_ms: out.loop_latency_ms.median().unwrap_or(f64::NAN),
            loop_p95_ms: out.loop_latency_ms.p95().unwrap_or(f64::NAN),
            within_75ms: out.within_budget(),
            critical_median_ms: out.critical_latency_ms.median().unwrap_or(f64::NAN),
            cellular_mbytes: cellular,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                r.loops.to_string(),
                fmt(r.loop_median_ms, 1),
                fmt(r.loop_p95_ms, 1),
                format!("{}%", fmt(r.within_75ms * 100.0, 1)),
                fmt(r.critical_median_ms, 1),
                fmt(r.cellular_mbytes, 1),
            ]
        })
        .collect();
    print_table(
        "Fig. 5 — distribution architectures (30 s MAR session each)",
        &["Scenario", "Loops", "Loop med ms", "Loop p95 ms", "≤75 ms", "Critical med ms", "LTE MB"],
        &table,
    );

    // §VI-E: per-path servers vs one shared server, priced with a sync
    // round (using the 5a scenario's options).
    let out = run_scenario(DistributionScenario::MultipathMultiServer, 42, 5);
    let matrix = InterServerMatrix::new(
        vec!["university".into(), "cloud".into()],
        vec![
            vec![SimDuration::ZERO, SimDuration::from_millis(25)],
            vec![SimDuration::from_millis(25), SimDuration::ZERO],
        ],
    );
    // Make every server visible from every path for the single-server case.
    let mut options = out.options.clone();
    let all: Vec<_> = options.iter().flatten().cloned().collect();
    for per_path in &mut options {
        for o in &all {
            if !per_path.iter().any(|e| e.name == o.name) {
                let mut worse = o.clone();
                // Reaching the "other" path's server detours: +40 ms.
                worse.rtt += SimDuration::from_millis(40);
                per_path.push(worse);
            }
        }
    }
    let per_path = select_per_path(&options, &matrix);
    let single = select_single(&options);
    println!("\n§VI-E server selection on the 5a topology:");
    println!(
        "  per-path: {:?}, sync {} → fan-in {}",
        per_path.per_path,
        per_path.sync,
        per_path.fan_in_latency()
    );
    println!("  single:   {:?} → fan-in {}", single.per_path, single.fan_in_latency());

    println!(
        "\nShape check: nearby executors (5b home PC, then 5a university)\n\
         give the lowest critical-path latency; the D2D helpers keep LTE\n\
         bytes near zero for latency traffic; the weak phone helper (5c/5d)\n\
         still serves critical data fast but pushes heavy frames to the\n\
         cloud path."
    );
    write_json("fig5_distribution", &rows);
}
