//! E4 — regenerates **Fig. 3** (from Heusse et al., reproduced by the
//! paper): the impact of uploads on a TCP download sharing an asymmetric
//! access link with an oversized uplink buffer. Staggered uploads start;
//! the download's ACKs drown in the uplink queue; download goodput
//! collapses far below what the downlink could carry.

use marnet_bench::scenarios::run_fig3;
use marnet_bench::{fmt, print_table, write_json};
use serde::Serialize;

#[derive(Serialize)]
struct Phase {
    active_uploads: usize,
    from_s: f64,
    to_s: f64,
    download_mbps: f64,
    uploads_total_mbps: f64,
}

#[derive(Serialize)]
struct Output {
    down_mbps: f64,
    up_mbps: f64,
    uplink_buffer_packets: usize,
    phases: Vec<Phase>,
    download_series: Vec<(f64, f64)>,
}

fn main() {
    let (down, up, buffer, uploads, secs) = (10.0, 1.0, 1000, 3, 100);
    let out = run_fig3(down, up, buffer, uploads, secs, 42);
    let dl = out.download.borrow();

    // Phase boundaries: [start, first upload), [u1, u2), ...
    let mut bounds = vec![1.0];
    bounds.extend(out.upload_starts.iter().copied());
    bounds.push(secs as f64);

    let mut phases = Vec::new();
    for k in 0..bounds.len() - 1 {
        let (from, to) = (bounds[k] + 2.0, bounds[k + 1]);
        if to <= from {
            continue;
        }
        let ul_total: f64 =
            out.uploads.iter().map(|u| u.borrow().goodput_meter.mean_mbps(from, to)).sum();
        phases.push(Phase {
            active_uploads: k,
            from_s: from,
            to_s: to,
            download_mbps: dl.goodput_meter.mean_mbps(from, to),
            uploads_total_mbps: ul_total,
        });
    }

    let table: Vec<Vec<String>> = phases
        .iter()
        .map(|p| {
            vec![
                p.active_uploads.to_string(),
                format!("{}-{}", fmt(p.from_s, 0), fmt(p.to_s, 0)),
                fmt(p.download_mbps, 2),
                fmt(p.uploads_total_mbps, 2),
            ]
        })
        .collect();
    print_table(
        "Fig. 3 — download goodput vs number of concurrent uploads (10/1 Mb/s link, 1000-pkt uplink buffer)",
        &["Uploads", "Window s", "Download Mb/s", "Uploads Mb/s"],
        &table,
    );

    println!(
        "\nDownload goodput timeline (2 s buckets, upload starts at {:?} s):",
        out.upload_starts
    );
    let series = dl.goodput_meter.series_mbps();
    for (t, mbps) in series.iter().step_by(20) {
        let bar = "#".repeat((mbps * 4.0) as usize);
        println!("  t={t:>5.0}s {mbps:>6.2} Mb/s {bar}");
    }
    println!(
        "\nShape check: with 0 uploads the download fills the 10 Mb/s downlink;\n\
         each upload deepens the uplink queue the download's ACKs must cross,\n\
         and goodput collapses to a small fraction — the paper's case for\n\
         MAR-aware uplink queueing (§IV-D, §VI-H)."
    );
    write_json(
        "fig3_asymmetry",
        &Output {
            down_mbps: down,
            up_mbps: up,
            uplink_buffer_packets: buffer,
            phases,
            download_series: series,
        },
    );
}
