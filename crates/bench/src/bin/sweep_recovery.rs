//! E11 — sweeps the §VI-C loss-recovery trade-off: deadline-gated ARQ vs
//! XOR FEC vs duplication, over an RTT × loss grid, at 30 FPS with the
//! 75 ms budget. Includes the paper's analytic 37.5 ms rule and the
//! FEC overhead/residual-loss frontier.
//!
//! The topology lives in [`marnet_bench::scenarios::run_recovery`] so the
//! `marnet-lab` replicated version of this sweep runs the same code; this
//! binary is the single-seed quick look.

use marnet_bench::scenarios::{run_recovery_instrumented, RecoveryMechanism};
use marnet_bench::{fmt, parse_telemetry_flags, print_table, write_json, write_trace};
use marnet_core::fec;
use marnet_telemetry::MetricsSnapshot;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    mechanism: String,
    rtt_ms: u64,
    loss_pct: f64,
    delivered_in_budget_pct: f64,
    delivered_total_pct: f64,
    overhead_pct: f64,
}

#[derive(Serialize)]
struct MetricsRow {
    mechanism: String,
    rtt_ms: u64,
    metrics: MetricsSnapshot,
}

fn main() {
    let flags = parse_telemetry_flags();
    let rtts = [20u64, 36, 60, 120];
    let loss = 0.03;

    let mut all = Vec::new();
    let mut events = Vec::new();
    let mut metrics = Vec::new();
    for mechanism in RecoveryMechanism::ALL {
        for &rtt in &rtts {
            let (out, _, capture) =
                run_recovery_instrumented(rtt, loss, mechanism, 30, 11, &flags.options);
            events.extend(capture.events);
            if let Some(snap) = capture.metrics {
                metrics.push(MetricsRow {
                    mechanism: mechanism.label().to_string(),
                    rtt_ms: rtt,
                    metrics: snap,
                });
            }
            all.push(Row {
                mechanism: mechanism.label().to_string(),
                rtt_ms: rtt,
                loss_pct: loss * 100.0,
                delivered_in_budget_pct: out.delivered_in_budget_pct,
                delivered_total_pct: out.delivered_total_pct,
                overhead_pct: out.overhead_pct,
            });
        }
    }

    let table: Vec<Vec<String>> = all
        .iter()
        .map(|r| {
            vec![
                r.mechanism.clone(),
                format!("{} ms", r.rtt_ms),
                format!("{}%", fmt(r.delivered_in_budget_pct, 1)),
                format!("{}%", fmt(r.delivered_total_pct, 1)),
                format!("{}%", fmt(r.overhead_pct, 1)),
            ]
        })
        .collect();
    print_table(
        "E11 — recovery mechanisms at 3% loss, 30 FPS reference frames, 75 ms budget",
        &["Mechanism", "RTT", "In budget", "Delivered", "Byte overhead"],
        &table,
    );

    // The analytic §VI-C rule and FEC frontier.
    println!("\n§VI-C analytic checks:");
    println!(
        "  Retransmission viable iff RTT ≤ 37.5 ms (one retransmit within\n\
         a 75 ms budget at 30 FPS): gate passes at 20/36 ms, refuses at 60+."
    );
    println!("  XOR FEC frontier at p = {loss}:");
    for k in [1usize, 2, 4, 8, 16] {
        println!(
            "    k={k:>2}: overhead {:>5}%  residual message loss {:>6}%",
            fmt(fec::overhead(k) * 100.0, 1),
            fmt(fec::residual_loss(k, loss) * 100.0, 3)
        );
    }
    println!(
        "\nShape check: below 37.5 ms RTT the deadline-gated ARQ matches\n\
         always-ARQ; above it, gated ARQ stops wasting bytes on hopeless\n\
         retransmissions and FEC/duplication become the only ways to lift\n\
         in-budget delivery — at their respective byte costs."
    );
    write_json("sweep_recovery", &all);
    write_trace(&flags, &events);
    if flags.options.metrics {
        write_json("sweep_recovery_metrics", &metrics);
    }
}
