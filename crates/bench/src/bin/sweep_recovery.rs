//! E11 — sweeps the §VI-C loss-recovery trade-off: deadline-gated ARQ vs
//! XOR FEC vs duplication, over an RTT × loss grid, at 30 FPS with the
//! 75 ms budget. Includes the paper's analytic 37.5 ms rule and the
//! FEC overhead/residual-loss frontier.

use marnet_bench::{fmt, print_table, write_json};
use marnet_core::class::StreamKind;
use marnet_core::config::ArConfig;
use marnet_core::endpoint::{ArReceiver, ArSender, SenderPathConfig, Submit};
use marnet_core::fec;
use marnet_core::message::ArMessage;
use marnet_core::multipath::PathRole;
use marnet_core::recovery::RecoveryPolicy;
use marnet_sim::engine::{Actor, ActorId, Event, SimCtx, Simulator};
use marnet_sim::link::{Bandwidth, LinkParams, LossModel};
use marnet_sim::packet::Payload;
use marnet_sim::time::{SimDuration, SimTime};
use marnet_transport::nic::TxPath;
use serde::Serialize;

/// 30 FPS stream of recovery-class reference-frame-like messages.
struct RefStream {
    sender: ActorId,
    next_id: u64,
}

impl Actor for RefStream {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        if matches!(ev, Event::Start | Event::Timer { .. }) {
            let now = ctx.now();
            let m = ArMessage::new(self.next_id, StreamKind::VideoReference, 6_000, now)
                .with_deadline(now + SimDuration::from_millis(75));
            self.next_id += 1;
            ctx.send_message(self.sender, Payload::new(Submit(m)));
            ctx.schedule_timer(SimDuration::from_millis(33), 0);
        }
    }
}

#[derive(Serialize)]
struct Row {
    mechanism: String,
    rtt_ms: u64,
    loss_pct: f64,
    delivered_in_budget_pct: f64,
    delivered_total_pct: f64,
    overhead_pct: f64,
}

#[allow(clippy::too_many_arguments)]
fn run(
    rtt_ms: u64,
    loss: f64,
    recovery: RecoveryPolicy,
    fec_group: Option<usize>,
    duplicate: bool,
    secs: u64,
    seed: u64,
) -> Row {
    let mut sim = Simulator::new(seed);
    let snd = sim.reserve_actor();
    let rcv = sim.reserve_actor();
    let one_way = SimDuration::from_millis_f64(rtt_ms as f64 / 2.0);
    let up = sim.add_link(
        snd,
        rcv,
        LinkParams::new(Bandwidth::from_mbps(20.0), one_way)
            .with_loss(LossModel::Bernoulli { p: loss }),
    );
    let up2 = sim.add_link(
        snd,
        rcv,
        LinkParams::new(Bandwidth::from_mbps(20.0), one_way)
            .with_loss(LossModel::Bernoulli { p: loss }),
    );
    let down = sim.add_link(rcv, snd, LinkParams::new(Bandwidth::from_mbps(20.0), one_way));
    let cfg = ArConfig { recovery, fec_group, duplicate_recovery: duplicate, ..ArConfig::default() };
    let mut paths =
        vec![SenderPathConfig { role: PathRole::Wifi, tx: TxPath::Link(up), link: Some(up) }];
    if duplicate {
        paths.push(SenderPathConfig {
            role: PathRole::Cellular,
            tx: TxPath::Link(up2),
            link: Some(up2),
        });
    }
    let sender = ArSender::new(1, cfg.clone(), paths);
    let sstats = sender.stats();
    sim.install_actor(snd, sender);
    let receiver = ArReceiver::new(
        1,
        cfg.feedback_interval,
        vec![TxPath::Link(down), TxPath::Link(down)],
    );
    let rstats = receiver.stats();
    sim.install_actor(rcv, receiver);
    sim.add_actor(RefStream { sender: snd, next_id: 0 });
    sim.run_until(SimTime::from_secs(secs));

    let offered = (secs * 30) as f64;
    let r = rstats.borrow();
    let s = sstats.borrow();
    let ks = r.by_kind.get(&StreamKind::VideoReference);
    let delivered = ks.map_or(0, |k| k.delivered) as f64;
    let hits = ks.map_or(0, |k| k.deadline_hits) as f64;
    let goodput_bytes = delivered * 6_000.0;
    let sent_bytes: u64 = s.sent_bytes_by_kind.values().sum();
    Row {
        mechanism: String::new(),
        rtt_ms,
        loss_pct: loss * 100.0,
        delivered_in_budget_pct: hits / offered * 100.0,
        delivered_total_pct: delivered / offered * 100.0,
        overhead_pct: (sent_bytes as f64 / goodput_bytes.max(1.0) - 1.0) * 100.0,
    }
}

fn main() {
    let mechanisms: Vec<(&str, RecoveryPolicy, Option<usize>, bool)> = vec![
        ("none", RecoveryPolicy { enabled: false, ..Default::default() }, None, false),
        ("arq-gated", RecoveryPolicy::default(), None, false),
        (
            "arq-always",
            RecoveryPolicy { deadline_gated: false, ..Default::default() },
            None,
            false,
        ),
        ("fec-k4", RecoveryPolicy { enabled: false, ..Default::default() }, Some(4), false),
        ("fec-k8", RecoveryPolicy { enabled: false, ..Default::default() }, Some(8), false),
        ("arq+fec-k8", RecoveryPolicy::default(), Some(8), false),
        ("duplicate", RecoveryPolicy { enabled: false, ..Default::default() }, None, true),
    ];
    let rtts = [20u64, 36, 60, 120];
    let loss = 0.03;

    let mut all = Vec::new();
    for (name, policy, fec_group, dup) in &mechanisms {
        for &rtt in &rtts {
            let mut row = run(rtt, loss, *policy, *fec_group, *dup, 30, 11);
            row.mechanism = name.to_string();
            all.push(row);
        }
    }

    let table: Vec<Vec<String>> = all
        .iter()
        .map(|r| {
            vec![
                r.mechanism.clone(),
                format!("{} ms", r.rtt_ms),
                format!("{}%", fmt(r.delivered_in_budget_pct, 1)),
                format!("{}%", fmt(r.delivered_total_pct, 1)),
                format!("{}%", fmt(r.overhead_pct, 1)),
            ]
        })
        .collect();
    print_table(
        "E11 — recovery mechanisms at 3% loss, 30 FPS reference frames, 75 ms budget",
        &["Mechanism", "RTT", "In budget", "Delivered", "Byte overhead"],
        &table,
    );

    // The analytic §VI-C rule and FEC frontier.
    println!("\n§VI-C analytic checks:");
    println!(
        "  Retransmission viable iff RTT ≤ 37.5 ms (one retransmit within\n\
         a 75 ms budget at 30 FPS): gate passes at 20/36 ms, refuses at 60+."
    );
    println!("  XOR FEC frontier at p = {loss}:");
    for k in [1usize, 2, 4, 8, 16] {
        println!(
            "    k={k:>2}: overhead {:>5}%  residual message loss {:>6}%",
            fmt(fec::overhead(k) * 100.0, 1),
            fmt(fec::residual_loss(k, loss) * 100.0, 3)
        );
    }
    println!(
        "\nShape check: below 37.5 ms RTT the deadline-gated ARQ matches\n\
         always-ARQ; above it, gated ARQ stops wasting bytes on hopeless\n\
         retransmissions and FEC/duplication become the only ways to lift\n\
         in-budget delivery — at their respective byte costs."
    );
    write_json("sweep_recovery", &all);
}
