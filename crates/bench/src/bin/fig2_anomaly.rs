//! E3 — regenerates **Fig. 2**: the 802.11 performance anomaly. User A
//! stays in the 54 Mb/s zone; User B walks out through the 18 and 6 Mb/s
//! zones; A's throughput collapses to B's pace. Cross-checked two ways:
//! the Heusse et al. closed-form airtime model and the packet-level
//! shared-medium simulation.

use marnet_bench::{fmt, print_table, write_json};
use marnet_radio::dcf::{submit, Dot11Params, WifiCell, WifiSetRate, WifiStation};
use marnet_sim::engine::{Actor, ActorId, Event, SimCtx, Simulator};
use marnet_sim::link::{Bandwidth, LinkParams};
use marnet_sim::packet::{Packet, Payload};
use marnet_sim::queue::QueueConfig;
use marnet_sim::stats::RateMeter;
use marnet_sim::time::{SimDuration, SimTime};
use serde::Serialize;
use std::cell::RefCell;
use std::rc::Rc;

const FRAME: u32 = 1500;

#[derive(Serialize)]
struct Row {
    b_zone_mbps: f64,
    analytic_per_station_mbps: f64,
    simulated_a_mbps: f64,
    simulated_b_mbps: f64,
    a_solo_mbps: f64,
}

/// Saturating traffic source for one station.
struct Saturator {
    cell: ActorId,
    station: usize,
    flow: u64,
}

impl Actor for Saturator {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        if matches!(ev, Event::Start | Event::Timer { .. }) {
            for _ in 0..4 {
                let id = ctx.next_packet_id();
                let pkt = Packet::new(id, self.flow, FRAME, ctx.now());
                ctx.send_message(self.cell, submit(self.station, pkt));
            }
            ctx.schedule_timer(SimDuration::from_millis(1), 0);
        }
    }
}

/// Changes B's PHY rate on schedule (walking between zones).
struct Walker {
    cell: ActorId,
    schedule: Vec<(SimTime, f64)>,
    next: usize,
}

impl Actor for Walker {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        if matches!(ev, Event::Start | Event::Timer { .. }) {
            while self.next < self.schedule.len() && self.schedule[self.next].0 <= ctx.now() {
                let (_, rate) = self.schedule[self.next];
                ctx.send_message(
                    self.cell,
                    Payload::new(WifiSetRate { station: 1, phy_rate_mbps: rate }),
                );
                self.next += 1;
            }
            if self.next < self.schedule.len() {
                let t = self.schedule[self.next].0;
                ctx.schedule_timer(t.saturating_since(ctx.now()), 0);
            }
        }
    }
}

struct MeterSink {
    meters: Rc<RefCell<Vec<RateMeter>>>,
}

impl Actor for MeterSink {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        if let Event::Packet { packet, .. } = ev {
            let mut m = self.meters.borrow_mut();
            let f = packet.flow as usize;
            m[f].record(ctx.now(), u64::from(packet.size));
        }
    }
}

fn main() {
    let params = Dot11Params::dot11g();
    let zones = [54.0, 18.0, 6.0];
    let phase = 10u64; // seconds per zone

    // Packet-level run: B walks 54 → 18 → 6.
    let meters = Rc::new(RefCell::new(vec![
        RateMeter::new(SimDuration::from_millis(500)),
        RateMeter::new(SimDuration::from_millis(500)),
    ]));
    let mut sim = Simulator::new(13);
    let cell = sim.reserve_actor();
    let sink = sim.add_actor(MeterSink { meters: Rc::clone(&meters) });
    let wired = LinkParams::new(Bandwidth::from_gbps(1.0), SimDuration::from_micros(100))
        .with_queue(QueueConfig::DropTail { cap_packets: 10_000 });
    let out0 = sim.add_link(cell, sink, wired.clone());
    let out1 = sim.add_link(cell, sink, wired);
    sim.install_actor(
        cell,
        WifiCell::new(
            params,
            vec![
                WifiStation { phy_rate_mbps: 54.0, out: out0 },
                WifiStation { phy_rate_mbps: 54.0, out: out1 },
            ],
        ),
    );
    sim.add_actor(Saturator { cell, station: 0, flow: 0 });
    sim.add_actor(Saturator { cell, station: 1, flow: 1 });
    sim.add_actor(Walker {
        cell,
        schedule: vec![(SimTime::from_secs(phase), 18.0), (SimTime::from_secs(2 * phase), 6.0)],
        next: 0,
    });
    sim.run_until(SimTime::from_secs(3 * phase));

    let m = meters.borrow();
    let mut rows = Vec::new();
    for (i, &zone) in zones.iter().enumerate() {
        let from = (i as u64 * phase) as f64 + 2.0;
        let to = ((i as u64 + 1) * phase) as f64 - 1.0;
        rows.push(Row {
            b_zone_mbps: zone,
            analytic_per_station_mbps: params.shared_throughput_mbps(&[54.0, zone], FRAME),
            simulated_a_mbps: m[0].mean_mbps(from, to),
            simulated_b_mbps: m[1].mean_mbps(from, to),
            a_solo_mbps: params.solo_throughput_mbps(54.0, FRAME) / 2.0,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                fmt(r.b_zone_mbps, 0),
                fmt(r.analytic_per_station_mbps, 2),
                fmt(r.simulated_a_mbps, 2),
                fmt(r.simulated_b_mbps, 2),
            ]
        })
        .collect();
    print_table(
        "Fig. 2 — WiFi performance anomaly: A@54 Mb/s while B walks outward",
        &["B zone Mb/s", "Analytic per-station Mb/s", "Sim A Mb/s", "Sim B Mb/s"],
        &table,
    );

    println!("\nA's throughput timeline (500 ms buckets):");
    for (t, mbps) in m[0].series_mbps().iter().step_by(4) {
        let bar = "#".repeat((mbps * 2.0) as usize);
        println!("  t={t:>5.1}s {mbps:>6.2} Mb/s {bar}");
    }
    println!(
        "\nShape check: although A never moves, its throughput steps down with\n\
         B's zone — per-packet fairness equalises *throughput* at the slow\n\
         station's pace (Heusse et al.)."
    );
    write_json("fig2_anomaly", &rows);
}
