//! E9 — sweeps the §III Eq. 1-3 offload-decision space: bandwidth × RTT ×
//! device × strategy, reporting which execution model wins where and where
//! the crossovers fall.

use marnet_app::compute::{ComputeModel, DbAccess, FrameWork, NetParams};
use marnet_app::device::DeviceClass;
use marnet_app::strategy::OffloadStrategy;
use marnet_bench::{fmt, print_table, write_json};
use marnet_sim::link::Bandwidth;
use marnet_sim::time::SimDuration;
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    device: String,
    uplink_mbps: f64,
    rtt_ms: u64,
    winner: String,
    winner_ms: f64,
    feasible: bool,
}

fn main() {
    let work = FrameWork::vision_pipeline();
    let model = ComputeModel::new(30.0, work)
        .with_db(DbAccess::browser())
        .with_deadline(SimDuration::from_millis(75));
    let cloud = DeviceClass::Cloud.spec();

    let uplinks = [0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0];
    let rtts = [4u64, 10, 20, 36, 60, 90, 120];
    let devices = [DeviceClass::SmartGlasses, DeviceClass::Smartphone, DeviceClass::Laptop];

    let mut cells = Vec::new();
    for device_class in devices {
        let device = device_class.spec();
        let mut rows = Vec::new();
        for &rtt in &rtts {
            let mut row = vec![format!("{rtt} ms")];
            for &up in &uplinks {
                let net = NetParams {
                    uplink: Bandwidth::from_mbps(up),
                    downlink: Bandwidth::from_mbps(up * 2.5),
                    rtt: SimDuration::from_millis(rtt),
                };
                let (winner, est) = OffloadStrategy::canonical()
                    .into_iter()
                    .map(|s| {
                        let e = s.evaluate(&model, &device, &cloud, &net);
                        (s, e)
                    })
                    .min_by(|(_, a), (_, b)| a.per_frame.partial_cmp(&b.per_frame).expect("finite"))
                    .expect("non-empty strategies");
                let tag = if !est.feasible() {
                    "∅".to_string()
                } else {
                    match winner {
                        OffloadStrategy::LocalOnly => "L".to_string(),
                        OffloadStrategy::FullOffload { .. } => "F".to_string(),
                        OffloadStrategy::FeatureOffload { .. } => "C".to_string(),
                        OffloadStrategy::TrackingOffload { .. } => "G".to_string(),
                    }
                };
                row.push(format!("{tag} {}", fmt(est.per_frame.as_millis_f64(), 0)));
                cells.push(Cell {
                    device: device_class.spec().class.to_string(),
                    uplink_mbps: up,
                    rtt_ms: rtt,
                    winner: winner.to_string(),
                    winner_ms: est.per_frame.as_millis_f64(),
                    feasible: est.feasible(),
                });
            }
            rows.push(row);
        }
        let mut headers = vec!["RTT \\ uplink".to_string()];
        headers.extend(uplinks.iter().map(|u| format!("{u} Mb/s")));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        print_table(
            &format!(
                "E9 — best strategy & ms/frame on a {} (L=local F=full C=CloudRidAR G=Glimpse ∅=infeasible)",
                device_class.spec().class
            ),
            &header_refs,
            &rows,
        );
    }

    println!(
        "\nShape check: local-only never fits on glasses/phones; Glimpse wins\n\
         on thin uplinks (least bytes), CloudRidAR/full-offload win as the\n\
         pipe fattens; nothing fits once RTT alone exceeds the 75 ms budget\n\
         — the same frontier §III-B and Table II trace."
    );
    write_json("sweep_offload", &cells);
}
