//! E12 — sweeps the §VI-D multipath usage policies over a commute with
//! realistic WiFi coverage (usable ~53.8% of the time, per the Wi2Me study
//! §IV-A-4 cites) and near-ubiquitous LTE: service availability and
//! latency versus the LTE byte bill.

use marnet_bench::scenarios::run_multipath_commute;
use marnet_bench::{fmt, print_table, write_json};
use marnet_core::class::StreamKind;
use marnet_core::multipath::MultipathPolicy;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    policy: String,
    video_delivered: u64,
    metadata_delivered: u64,
    video_latency_p95_ms: f64,
    deadline_hit_pct: f64,
    lte_mbytes: f64,
}

fn main() {
    let secs = 300;
    let policies = [
        ("1 WiFi only (4G for critical handover)", MultipathPolicy::WifiOnly),
        ("2 WiFi preferred, 4G when WiFi is out", MultipathPolicy::WifiPreferred),
        ("3 WiFi and 4G simultaneously", MultipathPolicy::Aggregate),
    ];

    let mut rows = Vec::new();
    for (label, policy) in policies {
        let out = run_multipath_commute(policy, secs, 42);
        let r = out.receiver.borrow();
        let s = out.sender.borrow();
        let video = r.by_kind.get(&StreamKind::VideoInter);
        let meta = r.by_kind.get(&StreamKind::Metadata);
        let p95 = video.map(|k| k.latency_ms.clone()).and_then(|mut h| h.p95()).unwrap_or(f64::NAN);
        rows.push(Row {
            policy: label.to_string(),
            video_delivered: video.map_or(0, |k| k.delivered),
            metadata_delivered: meta.map_or(0, |k| k.delivered),
            video_latency_p95_ms: p95,
            deadline_hit_pct: r.deadline_hit_ratio() * 100.0,
            lte_mbytes: s.cellular_bytes as f64 / 1e6,
        });
    }

    let offered = secs * 30;
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                format!("{} / {offered}", r.video_delivered),
                r.metadata_delivered.to_string(),
                fmt(r.video_latency_p95_ms, 1),
                format!("{}%", fmt(r.deadline_hit_pct, 1)),
                fmt(r.lte_mbytes, 1),
            ]
        })
        .collect();
    print_table(
        &format!("E12 — §VI-D policies over a {secs}s commute (WiFi usable ~54% of the time)"),
        &["Policy", "Video delivered", "Metadata", "Video p95 ms", "Deadline hits", "LTE MB"],
        &table,
    );
    println!(
        "\nShape check: policy 1 spends almost nothing on LTE but loses the\n\
         video stream during every WiFi gap (critical metadata still hops\n\
         over); policy 2 buys near-continuous service for a moderate LTE\n\
         bill; policy 3 pays the most LTE for the most bandwidth and the\n\
         smoothest latency — exactly the §VI-D menu."
    );
    write_json("sweep_multipath", &rows);
}
