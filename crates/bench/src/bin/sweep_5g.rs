//! Extension (§IV-C) — does 5G fix it, and for how long? Runs the full MAR
//! pipeline over each access generation (calibrated §IV-A profiles plus the
//! NGMN 5G KPI profile) and then scales the *application* forward (the
//! paper's "usage will quickly catch up" argument: higher resolutions,
//! stereoscopic feeds) to find where even 5G saturates.

use marnet_bench::{fmt, print_table, write_json};
use marnet_core::class::StreamKind;
use marnet_core::config::ArConfig;
use marnet_core::endpoint::{ArReceiver, ArSender, SenderPathConfig, Submit};
use marnet_core::message::ArMessage;
use marnet_core::multipath::PathRole;
use marnet_radio::profiles::{LinkDirection, RadioTechnology};
use marnet_sim::engine::{Actor, ActorId, Event, SimCtx, Simulator};
use marnet_sim::link::LinkParams;
use marnet_sim::packet::Payload;
use marnet_sim::rng::derive_rng;
use marnet_sim::time::{SimDuration, SimTime};
use marnet_transport::nic::TxPath;
use serde::Serialize;

/// A video uplink at `mbps` offered rate with 75 ms deadlines.
struct App {
    sender: ActorId,
    next_id: u64,
    frame_bytes: u32,
}

impl Actor for App {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        if matches!(ev, Event::Start | Event::Timer { .. }) {
            let now = ctx.now();
            let m = ArMessage::new(self.next_id, StreamKind::VideoInter, self.frame_bytes, now)
                .with_deadline(now + SimDuration::from_millis(75));
            self.next_id += 1;
            ctx.send_message(self.sender, Payload::new(Submit(m)));
            ctx.schedule_timer(SimDuration::from_millis(33), 0);
        }
    }
}

#[derive(Serialize)]
struct Row {
    network: String,
    offered_mbps: f64,
    deadline_hit_pct: f64,
    p95_ms: f64,
}

fn run(tech: RadioTechnology, offered_mbps: f64, secs: u64) -> Row {
    let frame_bytes = (offered_mbps * 1e6 / 30.0 / 8.0) as u32;
    let profile = tech.profile();
    let mut rng = derive_rng(47, "sweep5g");
    let up_params: LinkParams = profile.sample_link_params(LinkDirection::Uplink, &mut rng);
    let down_params: LinkParams = profile.sample_link_params(LinkDirection::Downlink, &mut rng);

    let mut sim = Simulator::new(47);
    let snd = sim.reserve_actor();
    let rcv = sim.reserve_actor();
    let up = sim.add_link(snd, rcv, up_params);
    let down = sim.add_link(rcv, snd, down_params);
    let cfg = ArConfig::default();
    let sender = ArSender::new(
        1,
        cfg.clone(),
        vec![SenderPathConfig { role: PathRole::Wifi, tx: TxPath::Link(up), link: Some(up) }],
    );
    sim.install_actor(snd, sender);
    let receiver = ArReceiver::new(1, cfg.feedback_interval, vec![TxPath::Link(down)]);
    let rstats = receiver.stats();
    sim.install_actor(rcv, receiver);
    sim.add_actor(App { sender: snd, next_id: 0, frame_bytes });
    sim.run_until(SimTime::from_secs(secs));
    let r = rstats.borrow();
    let video = r.by_kind.get(&StreamKind::VideoInter);
    Row {
        network: tech.to_string(),
        offered_mbps,
        deadline_hit_pct: video.map_or(0.0, |k| {
            let total = k.deadline_hits + k.deadline_misses;
            // Frames never delivered also missed their deadline.
            let offered = secs * 1000 / 33;
            k.deadline_hits as f64 / offered.max(total) as f64 * 100.0
        }),
        p95_ms: video.map(|k| k.latency_ms.clone()).and_then(|mut h| h.p95()).unwrap_or(f64::NAN),
    }
}

fn main() {
    let secs = 20;
    let mut rows = Vec::new();

    // Today's 10 Mb/s minimal AR feed on each generation.
    for tech in [
        RadioTechnology::HspaPlus,
        RadioTechnology::Lte,
        RadioTechnology::Wifi80211ac,
        RadioTechnology::FiveG,
    ] {
        rows.push(run(tech, 10.0, secs));
    }
    // Tomorrow's feeds on 5G only: higher resolution, stereo, "several
    // hundreds of Mbps" (§III-B's forward estimate).
    for offered in [25.0, 50.0, 100.0, 200.0] {
        rows.push(run(RadioTechnology::FiveG, offered, secs));
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.network.clone(),
                fmt(r.offered_mbps, 0),
                format!("{}%", fmt(r.deadline_hit_pct, 1)),
                fmt(r.p95_ms, 1),
            ]
        })
        .collect();
    print_table(
        "Extension — MAR video uplink across access generations, then scaled up on 5G",
        &["Network", "Offered Mb/s", "≤75 ms", "p95 ms"],
        &table,
    );
    println!(
        "\nReading: today's 10 Mb/s AR feed fails on HSPA+/LTE (latency and\n\
         uplink), is marginal on 802.11ac, and sails on the 5G KPIs — but\n\
         scaling the application to the paper's forward estimates (stereo,\n\
         higher resolution) saturates even the 5G uplink KPI (50 Mb/s)\n\
         within one generation of content: 'usage will quickly catch up with\n\
         the capabilities of 5G' (§IV-C), measured."
    );
    write_json("sweep_5g", &rows);
}
