//! E2 — regenerates **Table II**: measured link RTT of the CloudRidAR
//! offloading platform in four scenarios, here reproduced with 200 probe
//! transactions per scenario over calibrated simulated paths.

use marnet_bench::scenarios::{run_table2, Table2Scenario};
use marnet_bench::{fmt, print_table, write_json};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    platform: String,
    connection: String,
    paper_rtt_ms: u64,
    measured_median_ms: f64,
    measured_mean_ms: f64,
    measured_p95_ms: f64,
    probes: u64,
    frames_per_second_supportable: f64,
}

fn main() {
    let mut rows = Vec::new();
    for scenario in Table2Scenario::ALL {
        let (platform, connection, paper_ms) = scenario.labels();
        let stats = run_table2(scenario, 200, 400, 400, 42);
        let st = stats.borrow();
        let mut h = st.rtt_ms.clone();
        let median = h.median().unwrap_or(f64::NAN);
        let mean = h.mean().unwrap_or(f64::NAN);
        let p95 = h.p95().unwrap_or(f64::NAN);
        rows.push(Row {
            platform: platform.to_string(),
            connection: connection.to_string(),
            paper_rtt_ms: paper_ms,
            measured_median_ms: median,
            measured_mean_ms: mean,
            measured_p95_ms: p95,
            probes: st.received,
            // The paper notes 36 ms "is enough to send more than 20 frames
            // per second": one transaction per RTT.
            frames_per_second_supportable: 1000.0 / median,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.platform.clone(),
                r.connection.clone(),
                format!("{} ms", r.paper_rtt_ms),
                format!("{} ms", fmt(r.measured_median_ms, 1)),
                format!("{} ms", fmt(r.measured_p95_ms, 1)),
                fmt(r.frames_per_second_supportable, 1),
            ]
        })
        .collect();
    print_table(
        "Table II — offload link RTT in four scenarios (paper vs simulated)",
        &["Platform", "Connection", "Paper RTT", "Median (sim)", "p95 (sim)", "fps supportable"],
        &table,
    );
    println!(
        "\nShape check: local WiFi ≪ cloud-over-WiFi < university (middleboxes\n\
         double the latency despite the shorter distance) < cloud-over-LTE,\n\
         which exceeds the 75 ms MAR budget entirely."
    );
    write_json("table2_rtt", &rows);
}
