//! E2 — regenerates **Table II**: measured link RTT of the CloudRidAR
//! offloading platform in four scenarios, here reproduced with 200 probe
//! transactions per scenario over calibrated simulated paths.
//!
//! Flags (all off by default): `--trace <path>` writes a binary flight
//! recorder trace (all four scenarios concatenated in table order, so the
//! file is byte-identical however the runs are scheduled), `--metrics`
//! writes a per-scenario metrics artifact, `--threads <n>` runs the four
//! scenarios on up to `n` worker threads.

use marnet_bench::scenarios::{run_table2_instrumented, Table2Scenario};
use marnet_bench::{fmt, parse_telemetry_flags, print_table, write_json, write_trace};
use marnet_telemetry::{MetricsSnapshot, TelemetryCapture};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    platform: String,
    connection: String,
    paper_rtt_ms: u64,
    measured_median_ms: f64,
    measured_mean_ms: f64,
    measured_p95_ms: f64,
    probes: u64,
    frames_per_second_supportable: f64,
}

#[derive(Serialize)]
struct MetricsRow {
    platform: String,
    connection: String,
    metrics: MetricsSnapshot,
}

fn run_one(
    scenario: Table2Scenario,
    flags: &marnet_bench::TelemetryFlags,
) -> (Row, TelemetryCapture) {
    let (platform, connection, paper_ms) = scenario.labels();
    let (stats, _events, capture) =
        run_table2_instrumented(scenario, 200, 400, 400, 42, &flags.options);
    let st = stats.borrow();
    let mut h = st.rtt_ms.clone();
    let median = h.median().unwrap_or(f64::NAN);
    let mean = h.mean().unwrap_or(f64::NAN);
    let p95 = h.p95().unwrap_or(f64::NAN);
    let row = Row {
        platform: platform.to_string(),
        connection: connection.to_string(),
        paper_rtt_ms: paper_ms,
        measured_median_ms: median,
        measured_mean_ms: mean,
        measured_p95_ms: p95,
        probes: st.received,
        // The paper notes 36 ms "is enough to send more than 20 frames
        // per second": one transaction per RTT.
        frames_per_second_supportable: 1000.0 / median,
    };
    (row, capture)
}

fn main() {
    let flags = parse_telemetry_flags();

    // Each scenario is its own single-threaded simulator, so the grid is
    // embarrassingly parallel; results are merged in table order, which
    // keeps every artifact (including the trace) byte-identical whatever
    // `--threads` says.
    let mut results: Vec<Option<(Row, TelemetryCapture)>> = Vec::new();
    if flags.threads <= 1 {
        results = Table2Scenario::ALL.iter().map(|s| Some(run_one(*s, &flags))).collect();
    } else {
        results.resize_with(Table2Scenario::ALL.len(), || None);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (i, scenario) in Table2Scenario::ALL.into_iter().enumerate() {
                let flags = &flags;
                handles.push((i, scope.spawn(move || run_one(scenario, flags))));
            }
            for (i, h) in handles {
                results[i] = Some(h.join().expect("scenario worker panicked"));
            }
        });
    }

    let mut rows = Vec::new();
    let mut events = Vec::new();
    let mut metrics = Vec::new();
    for r in results.into_iter().flatten() {
        let (row, capture) = r;
        events.extend(capture.events);
        if let Some(snap) = capture.metrics {
            metrics.push(MetricsRow {
                platform: row.platform.clone(),
                connection: row.connection.clone(),
                metrics: snap,
            });
        }
        rows.push(row);
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.platform.clone(),
                r.connection.clone(),
                format!("{} ms", r.paper_rtt_ms),
                format!("{} ms", fmt(r.measured_median_ms, 1)),
                format!("{} ms", fmt(r.measured_p95_ms, 1)),
                fmt(r.frames_per_second_supportable, 1),
            ]
        })
        .collect();
    print_table(
        "Table II — offload link RTT in four scenarios (paper vs simulated)",
        &["Platform", "Connection", "Paper RTT", "Median (sim)", "p95 (sim)", "fps supportable"],
        &table,
    );
    println!(
        "\nShape check: local WiFi ≪ cloud-over-WiFi < university (middleboxes\n\
         double the latency despite the shorter distance) < cloud-over-LTE,\n\
         which exceeds the 75 ms MAR budget entirely."
    );
    write_json("table2_rtt", &rows);
    write_trace(&flags, &events);
    if flags.options.metrics {
        write_json("table2_rtt_metrics", &metrics);
    }
}
