//! E10 — sweeps the §VI-F edge-datacenter placement problem: number of
//! datacenters required vs the latency budget δ, with greedy vs exact vs
//! lower bound on small instances and greedy scaling on large ones.

use marnet_bench::{fmt, print_table, write_json};
use marnet_edge::placement::synthetic_metro;
use marnet_sim::rng::derive_rng;
use marnet_sim::time::SimDuration;
use serde::Serialize;

#[derive(Serialize)]
struct SmallRow {
    budget_ms: u64,
    greedy: usize,
    exact: usize,
    lower_bound: usize,
    infeasible_users: usize,
}

#[derive(Serialize)]
struct LargeRow {
    budget_ms: u64,
    users: usize,
    sites: usize,
    greedy: usize,
    infeasible_users: usize,
}

fn main() {
    // Small instances: solver-quality comparison.
    let mut small = Vec::new();
    for &budget in &[12u64, 15, 20, 30, 50] {
        let mut rng = derive_rng(101, "placement.small");
        let p = synthetic_metro(150, 20, 25.0, SimDuration::from_millis(budget), &mut rng);
        let greedy = p.solve_greedy();
        let exact = p.solve_exact();
        assert!(p.validate(&greedy) && p.validate(&exact));
        small.push(SmallRow {
            budget_ms: budget,
            greedy: greedy.cost(),
            exact: exact.cost(),
            lower_bound: p.lower_bound(),
            infeasible_users: exact.uncovered.len(),
        });
    }
    let rows: Vec<Vec<String>> = small
        .iter()
        .map(|r| {
            vec![
                format!("{} ms", r.budget_ms),
                r.greedy.to_string(),
                r.exact.to_string(),
                r.lower_bound.to_string(),
                r.infeasible_users.to_string(),
            ]
        })
        .collect();
    print_table(
        "E10a — datacenters needed vs deadline (150 users, 20 sites, 25 km metro)",
        &["Budget δ", "Greedy", "Exact", "Lower bound", "Infeasible users"],
        &rows,
    );

    // Large instance: greedy scaling (the practical regime).
    let mut large = Vec::new();
    for &budget in &[12u64, 15, 20, 30, 50, 75] {
        let mut rng = derive_rng(102, "placement.large");
        let p = synthetic_metro(1000, 60, 30.0, SimDuration::from_millis(budget), &mut rng);
        let sol = p.solve_greedy();
        assert!(p.validate(&sol));
        large.push(LargeRow {
            budget_ms: budget,
            users: 1000,
            sites: 60,
            greedy: sol.cost(),
            infeasible_users: sol.uncovered.len(),
        });
    }
    let rows: Vec<Vec<String>> = large
        .iter()
        .map(|r| {
            vec![
                format!("{} ms", r.budget_ms),
                r.greedy.to_string(),
                r.infeasible_users.to_string(),
                fmt(1000.0 / r.greedy.max(1) as f64, 0),
            ]
        })
        .collect();
    print_table(
        "E10b — greedy placement at metro scale (1000 users, 60 candidate sites)",
        &["Budget δ", "Datacenters", "Infeasible users", "Users per DC"],
        &rows,
    );

    println!(
        "\nShape check: tight AR deadlines force dense edge deployments (the\n\
         §VI-F argument), and the infeasible-user count falls monotonically\n\
         as δ loosens. The datacenter count itself is not monotone: a looser\n\
         budget both widens coverage radii (fewer sites needed for WiFi\n\
         users) *and* admits high-access-RTT LTE users into the constraint\n\
         set, who then demand their own nearby sites — the same tension as\n\
         Table II's LTE row."
    );
    #[derive(Serialize)]
    struct Out {
        small: Vec<SmallRow>,
        large: Vec<LargeRow>,
    }
    write_json("sweep_placement", &Out { small, large });
}
