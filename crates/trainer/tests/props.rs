//! Property tests for the trainer's three contracts: clamping always
//! lands inside the space, search results are a pure function of the
//! seed and budget, and the reported front is genuinely non-dominated.

use marnet_trainer::{
    pareto_front, run_search, select_tuned, Engine, Evaluation, Objectives, PolicyPoint,
    PolicySpace, TrainConfig,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A synthetic, pure evaluator parameterized by landscape coefficients,
/// so each proptest case exercises a different objective surface.
fn synthetic(points: &[PolicyPoint], target_ms: f64, beta_weight: f64) -> Vec<Evaluation> {
    points
        .iter()
        .map(|p| {
            let qoe = 100.0
                - (p.values[0] - target_ms).abs() / 10.0
                - (p.values[4] - 0.6).abs() * beta_weight;
            let fairness = 0.6 + 0.1 * p.values[9];
            let overhead = 5.0 * p.values[6] + 10.0 * p.values[8];
            let mut detail = BTreeMap::new();
            detail.insert("qoe/synthetic".to_string(), qoe);
            Evaluation { objectives: Objectives { qoe, fairness, overhead }, detail }
        })
        .collect()
}

/// Wild inputs for the clamping property: a wide finite range salted
/// with the non-finite and signed-zero special values.
fn wild() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1.0e9f64..1.0e9,
        (0usize..4).prop_map(|i| [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0][i]),
    ]
}

proptest! {
    /// Clamping any finite-or-not vector produces a legal point, and a
    /// legal point always compiles into policy params inside the bounds.
    #[test]
    fn clamping_always_lands_in_the_space(
        raw in prop::collection::vec(wild(), 10),
    ) {
        let space = PolicySpace::ar_default();
        let mut p = PolicyPoint { values: raw };
        space.clamp(&mut p);
        prop_assert!(space.contains(&p));
        let params = space.compile(&p);
        prop_assert!(params.stale_after_ms >= 60.0 && params.stale_after_ms <= 400.0);
        prop_assert!(params.beta >= 0.5 && params.beta <= 0.95);
        // Round-tripping a compiled policy is the identity.
        prop_assert_eq!(space.compile(&space.encode(&params)), params);
    }

    /// Same seed + budget ⇒ bit-identical archive, front and tuned pick,
    /// for both engines and arbitrary landscapes.
    #[test]
    fn search_is_a_pure_function_of_seed_and_budget(
        seed in any::<u64>(),
        engine_ix in 0usize..2,
        target_ms in 60.0f64..400.0,
        beta_weight in 0.0f64..80.0,
    ) {
        let engine = [Engine::Cem, Engine::MuPlusLambdaEs][engine_ix];
        let space = PolicySpace::ar_default();
        let cfg = TrainConfig {
            engine,
            seed,
            generations: 3,
            population: 6,
            elites: 2,
            ..TrainConfig::default()
        };
        let a = run_search(&space, &cfg, |_, pop| synthetic(pop, target_ms, beta_weight));
        let b = run_search(&space, &cfg, |_, pop| synthetic(pop, target_ms, beta_weight));
        prop_assert_eq!(&a.archive, &b.archive);
        prop_assert_eq!(&a.front, &b.front);
        prop_assert_eq!(a.best_index, b.best_index);
        prop_assert_eq!(select_tuned(&a, 0.02), select_tuned(&b, 0.02));
        // Every sampled candidate respects the bounds.
        for e in &a.archive {
            prop_assert!(space.contains(&e.point));
        }
        // The incumbent is always candidate (0, 0) and always feasible,
        // so the tuned pick can never fall below it on the scalarization.
        prop_assert_eq!(&a.archive[0].point, &space.default_point());
        let tuned = select_tuned(&a, 0.02);
        prop_assert!(a.archive[tuned].scalar >= a.archive[0].scalar);
    }

    /// The front reported over arbitrary objective sets is non-dominated,
    /// complete (every non-member is dominated by or duplicates a member),
    /// and stable under permutation of equals.
    #[test]
    fn pareto_front_is_non_dominated_and_complete(
        objs in prop::collection::vec((0.0f64..100.0, 0.0f64..1.0, 0.0f64..50.0), 1..40),
    ) {
        let objectives: Vec<Objectives> = objs
            .iter()
            .map(|&(qoe, fairness, overhead)| Objectives { qoe, fairness, overhead })
            .collect();
        let front = pareto_front(&objectives);
        prop_assert!(!front.is_empty());
        for &a in &front {
            for &b in &front {
                if a != b {
                    prop_assert!(!objectives[a].dominates(&objectives[b]));
                }
            }
        }
        // Completeness: anything off the front is dominated by someone on
        // it, or is an exact duplicate of a front member.
        for (i, o) in objectives.iter().enumerate() {
            if front.contains(&i) {
                continue;
            }
            let covered = front.iter().any(|&f| {
                objectives[f].dominates(o)
                    || (objectives[f].qoe == o.qoe
                        && objectives[f].fairness == o.fairness
                        && objectives[f].overhead == o.overhead)
            });
            prop_assert!(covered, "index {i} is neither on the front nor dominated");
        }
    }
}
