//! The versioned Pareto-front artifact.
//!
//! Schema v1: run provenance (engine, seed, budget, the serialized
//! space and the FNV-1a `train_hash` over the full training spec), the
//! non-dominated front, the incumbent and tuned policies, and the
//! tuned-vs-default comparison table. The encoding is canonical JSON
//! (sorted map keys, shortest-round-trip floats), so a run's artifact is
//! byte-identical across thread counts and platforms; writes go through
//! a temp-file rename like the lab artifacts so readers never observe a
//! torn file.

use crate::objective::Objectives;
use crate::space::{PolicyPoint, PolicySpace};
use marnet_core::policy::PolicyParams;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

/// Current artifact schema version.
pub const SCHEMA_VERSION: u32 = 1;

/// FNV-1a over raw bytes — the workspace's canonical content hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One candidate as stored in the artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontEntry {
    /// Generation the candidate was sampled in.
    pub generation: u32,
    /// Candidate index within its generation.
    pub candidate: u32,
    /// The raw dimension vector.
    pub point: PolicyPoint,
    /// The compiled policy.
    pub params: PolicyParams,
    /// The measured fitness vector.
    pub objectives: Objectives,
    /// Per-scenario detail scalars (`qoe/…`, `overhead/…`).
    pub detail: BTreeMap<String, f64>,
    /// The scalarized fitness the engine ranked by.
    pub scalar: f64,
}

/// One row of the tuned-vs-default comparison table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Metric name (e.g. `qoe/recovery`).
    pub metric: String,
    /// The paper-default policy's value.
    pub default: f64,
    /// The tuned policy's value.
    pub tuned: f64,
}

/// The schema-v1 Pareto-front artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontArtifact {
    /// Schema version of this encoding.
    pub schema_version: u32,
    /// Artifact kind tag, always `"train"`.
    pub experiment: String,
    /// Engine label (`cem` / `es`).
    pub engine: String,
    /// Base seed of the run.
    pub seed: u64,
    /// Generations run.
    pub generations: u32,
    /// Population per generation.
    pub population: u32,
    /// Elite / parent count.
    pub elites: u32,
    /// Replicates per candidate per portfolio scenario.
    pub replicates: u32,
    /// Whether the run used the reduced CI smoke tier.
    pub smoke: bool,
    /// FNV-1a hash over the canonical training spec (space + engine
    /// config + portfolio), hex-encoded; pins the provenance like the
    /// lab's spec hash.
    pub train_hash: String,
    /// The searched space.
    pub space: PolicySpace,
    /// Total candidates evaluated.
    pub evaluations: u32,
    /// Engine-stack canary scalars (the cityscale-hybrid smoke run).
    pub canary: BTreeMap<String, f64>,
    /// The non-dominated front, canonical order.
    pub front: Vec<FrontEntry>,
    /// The paper-default incumbent's measurement.
    pub default: FrontEntry,
    /// The recommended tuned policy (best scalarized fitness subject to
    /// the fairness band and a matched-or-beaten QoE scenario).
    pub tuned: FrontEntry,
    /// Per-metric tuned-vs-default comparison.
    pub comparison: Vec<ComparisonRow>,
}

impl FrontArtifact {
    /// The canonical pretty-printed JSON encoding.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("front artifact serializes")
    }

    /// Writes the artifact atomically (temp file + rename), creating
    /// parent directories as needed.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let file_name = path
            .file_name()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
        let mut tmp = path.to_path_buf();
        tmp.set_file_name(format!(".{}.tmp", file_name.to_string_lossy()));
        fs::write(&tmp, self.to_json())?;
        fs::rename(&tmp, path)
    }

    /// Loads an artifact, rejecting encodings newer than this build
    /// understands.
    pub fn load(path: &Path) -> io::Result<Self> {
        let body = fs::read_to_string(path)?;
        let artifact: FrontArtifact = serde_json::from_str(&body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
        if artifact.schema_version > SCHEMA_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "artifact schema v{} is newer than supported v{SCHEMA_VERSION}",
                    artifact.schema_version
                ),
            ));
        }
        Ok(artifact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::PolicySpace;

    fn entry(scalar: f64) -> FrontEntry {
        let space = PolicySpace::ar_default();
        let point = space.default_point();
        FrontEntry {
            generation: 0,
            candidate: 0,
            params: space.compile(&point),
            point,
            objectives: Objectives { qoe: 90.0, fairness: 0.9, overhead: 12.5 },
            detail: BTreeMap::from([("qoe/recovery".to_string(), 91.0)]),
            scalar,
        }
    }

    fn artifact() -> FrontArtifact {
        FrontArtifact {
            schema_version: SCHEMA_VERSION,
            experiment: "train".to_string(),
            engine: "cem".to_string(),
            seed: 42,
            generations: 2,
            population: 4,
            elites: 2,
            replicates: 2,
            smoke: true,
            train_hash: format!("{:016x}", fnv1a(b"demo")),
            space: PolicySpace::ar_default(),
            evaluations: 8,
            canary: BTreeMap::from([("cityscale_in_budget_pct".to_string(), 99.8)]),
            front: vec![entry(181.0)],
            default: entry(180.0),
            tuned: entry(181.0),
            comparison: vec![ComparisonRow {
                metric: "qoe/recovery".to_string(),
                default: 90.0,
                tuned: 91.0,
            }],
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let a = artifact();
        let json = a.to_json();
        let back: FrontArtifact = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn write_is_atomic_and_load_checks_schema() {
        let dir = std::env::temp_dir();
        let path = dir.join("trainer_artifact_test.json");
        let a = artifact();
        a.write(&path).unwrap();
        assert!(!dir.join(".trainer_artifact_test.json.tmp").exists());
        assert_eq!(FrontArtifact::load(&path).unwrap(), a);

        let mut newer = artifact();
        newer.schema_version = SCHEMA_VERSION + 1;
        let path2 = dir.join("trainer_artifact_newer.json");
        newer.write(&path2).unwrap();
        assert!(FrontArtifact::load(&path2).is_err());
    }

    #[test]
    fn fnv1a_matches_the_workspace_convention() {
        // Offset basis of the empty input.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
