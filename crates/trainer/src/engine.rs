//! The search engines: cross-entropy method (CEM) and a (μ+λ) evolution
//! strategy, both generic over a population evaluator.
//!
//! Determinism contract: candidate `c` of generation `g` is sampled from
//! the ChaCha12 substream `derive_rng(seed, "train/{g}/{c}")` — one
//! stream per candidate, so the population is independent of evaluation
//! order and thread count. The evaluator must be a pure function of
//! `(generation, population)`; under that contract [`run_search`] is a
//! pure function of its inputs and the emitted artifact is byte-identical
//! at any `--threads`.
//!
//! Both engines seed generation 0 with the paper-default incumbent as
//! candidate 0: the search can only match or improve on the incumbent
//! under its own scalarization, and the tuned-vs-default comparison is
//! paired exactly (the evaluator uses common random numbers, see
//! `marnet-lab`'s portfolio).

use crate::objective::{pareto_front, Evaluation, ScalarWeights};
use crate::space::{PolicyPoint, PolicySpace};
use marnet_core::policy::PolicyParams;
use marnet_sim::rng::derive_rng;
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use std::cmp::Ordering;

/// Which search engine drives the outer loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Cross-entropy method: a diagonal Gaussian refit to the elite set
    /// each generation.
    Cem,
    /// (μ+λ) evolution strategy: the μ best survive and spawn λ mutated
    /// offspring with a decaying mutation width.
    MuPlusLambdaEs,
}

impl Engine {
    /// The stable label used in flags and artifacts.
    pub fn label(self) -> &'static str {
        match self {
            Engine::Cem => "cem",
            Engine::MuPlusLambdaEs => "es",
        }
    }

    /// Parses a [`Engine::label`] back.
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "cem" => Some(Engine::Cem),
            "es" => Some(Engine::MuPlusLambdaEs),
            _ => None,
        }
    }
}

/// Budget and hyper-parameters of one search run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// The engine.
    pub engine: Engine,
    /// Base seed; every candidate derives its own substream.
    pub seed: u64,
    /// Number of generations (outer-loop iterations).
    pub generations: u32,
    /// Population per generation (λ); generation 0 includes the incumbent
    /// as candidate 0.
    pub population: u32,
    /// Elite count (CEM) / parent count μ (ES).
    pub elites: u32,
    /// Initial sampling width in the normalized unit cube.
    pub init_sigma: f64,
    /// Floor the per-dimension width never decays below (keeps late
    /// generations exploring).
    pub sigma_floor: f64,
    /// Elite-ranking scalarization weights.
    pub weights: ScalarWeights,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            engine: Engine::Cem,
            seed: 42,
            generations: 8,
            population: 16,
            elites: 4,
            init_sigma: 0.25,
            sigma_floor: 0.02,
            weights: ScalarWeights::default(),
        }
    }
}

/// One evaluated candidate in the archive.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluated {
    /// Generation the candidate was sampled in.
    pub generation: u32,
    /// Candidate index within its generation.
    pub candidate: u32,
    /// The raw vector.
    pub point: PolicyPoint,
    /// The compiled policy.
    pub params: PolicyParams,
    /// What the evaluator measured.
    pub evaluation: Evaluation,
    /// The scalarized fitness the engine ranked it by.
    pub scalar: f64,
}

/// The outcome of [`run_search`].
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// Every evaluated candidate, in `(generation, candidate)` order.
    pub archive: Vec<Evaluated>,
    /// Indices into [`TrainResult::archive`] forming the Pareto front, in
    /// the canonical [`pareto_front`] order.
    pub front: Vec<usize>,
    /// Archive index of the paper-default incumbent (always 0).
    pub default_index: usize,
    /// Archive index of the best candidate by scalarized fitness (ties
    /// resolve to the earliest).
    pub best_index: usize,
}

/// One standard-normal draw (Box–Muller over the substream's uniforms).
fn gaussian(rng: &mut ChaCha12Rng) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples one candidate around `mean` (normalized coordinates) with
/// per-dimension width `sigma`, clamped into the space.
fn sample(space: &PolicySpace, mean: &[f64], sigma: &[f64], rng: &mut ChaCha12Rng) -> PolicyPoint {
    let values = space
        .dims
        .iter()
        .enumerate()
        .map(|(d, dim)| dim.denormalize(mean[d] + sigma[d] * gaussian(rng)))
        .collect();
    PolicyPoint { values }
}

/// Normalized coordinates of a point.
fn normalize(space: &PolicySpace, point: &PolicyPoint) -> Vec<f64> {
    point.values.iter().zip(&space.dims).map(|(v, d)| d.normalize(*v)).collect()
}

/// Ranks `scalars` descending with index tie-break (deterministic).
fn rank_desc(scalars: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scalars.len()).collect();
    idx.sort_by(|&a, &b| scalars[b].total_cmp(&scalars[a]).then(a.cmp(&b)));
    idx
}

/// Runs the configured search. `eval_population` receives the generation
/// number and the sampled population and must return one [`Evaluation`]
/// per candidate, in order; it is called once per generation.
///
/// # Panics
///
/// Panics if the config has a zero budget (`generations`, `population` or
/// `elites`) or the evaluator returns the wrong arity.
pub fn run_search<F>(space: &PolicySpace, cfg: &TrainConfig, mut eval_population: F) -> TrainResult
where
    F: FnMut(u32, &[PolicyPoint]) -> Vec<Evaluation>,
{
    assert!(cfg.generations > 0, "need at least one generation");
    assert!(cfg.population > 0, "need at least one candidate per generation");
    assert!(cfg.elites > 0, "need at least one elite");
    let n = space.len();
    let incumbent = space.default_point();
    let mut archive: Vec<Evaluated> = Vec::new();

    // CEM state: the sampling distribution.
    let mut mean = normalize(space, &incumbent);
    let mut sigma = vec![cfg.init_sigma; n];
    // ES state: the surviving parents (point, scalar).
    let mut parents: Vec<(PolicyPoint, f64)> = Vec::new();

    for g in 0..cfg.generations {
        let population: Vec<PolicyPoint> = (0..cfg.population)
            .map(|c| {
                if g == 0 && c == 0 {
                    return incumbent.clone();
                }
                let mut rng = derive_rng(cfg.seed, &format!("train/{g}/{c}"));
                match cfg.engine {
                    Engine::Cem => sample(space, &mean, &sigma, &mut rng),
                    Engine::MuPlusLambdaEs => {
                        if g == 0 {
                            sample(space, &mean, &sigma, &mut rng)
                        } else {
                            // Decaying mutation width around a uniformly
                            // chosen parent.
                            let width =
                                (cfg.init_sigma * 0.8f64.powi(g as i32)).max(cfg.sigma_floor);
                            let pick = rng.gen_range(0..parents.len());
                            let center = normalize(space, &parents[pick].0);
                            sample(space, &center, &vec![width; n], &mut rng)
                        }
                    }
                }
            })
            .collect();

        let evals = eval_population(g, &population);
        assert_eq!(evals.len(), population.len(), "evaluator arity mismatch in generation {g}");
        let scalars: Vec<f64> =
            evals.iter().map(|e| e.objectives.scalarized(&cfg.weights)).collect();
        for (c, (point, evaluation)) in population.iter().zip(&evals).enumerate() {
            archive.push(Evaluated {
                generation: g,
                candidate: c as u32,
                point: point.clone(),
                params: space.compile(point),
                evaluation: evaluation.clone(),
                scalar: scalars[c],
            });
        }

        // Distribution / parent update from this generation's ranking.
        let ranked = rank_desc(&scalars);
        let elites = &ranked[..(cfg.elites as usize).min(ranked.len())];
        match cfg.engine {
            Engine::Cem => {
                let elite_norms: Vec<Vec<f64>> =
                    elites.iter().map(|&i| normalize(space, &population[i])).collect();
                for d in 0..n {
                    let m =
                        elite_norms.iter().map(|v| v[d]).sum::<f64>() / elite_norms.len() as f64;
                    let var = elite_norms.iter().map(|v| (v[d] - m) * (v[d] - m)).sum::<f64>()
                        / elite_norms.len() as f64;
                    mean[d] = m;
                    sigma[d] = var.sqrt().max(cfg.sigma_floor);
                }
            }
            Engine::MuPlusLambdaEs => {
                // μ best of parents ∪ offspring survive; parents listed
                // first so ties prefer the established survivor.
                let mut pool: Vec<(PolicyPoint, f64)> = parents.clone();
                pool.extend(elites.iter().map(|&i| (population[i].clone(), scalars[i])));
                pool.extend(
                    ranked[(cfg.elites as usize).min(ranked.len())..]
                        .iter()
                        .map(|&i| (population[i].clone(), scalars[i])),
                );
                pool.sort_by(|a, b| b.1.total_cmp(&a.1).then(Ordering::Equal));
                pool.dedup_by(|a, b| a.0 == b.0);
                pool.truncate(cfg.elites as usize);
                parents = pool;
            }
        }
    }

    let objectives: Vec<_> = archive.iter().map(|e| e.evaluation.objectives).collect();
    let front = pareto_front(&objectives);
    let best_index = rank_desc(&archive.iter().map(|e| e.scalar).collect::<Vec<_>>())[0];
    TrainResult { archive, front, default_index: 0, best_index }
}

/// Picks the "tuned" policy the comparison table recommends: the best
/// scalarized candidate among those that (a) do not degrade fairness by
/// more than `fairness_band` below the incumbent and (b) match or beat
/// the incumbent on at least one `qoe/…` detail scalar (falling back to
/// the aggregate QoE objective when the evaluator reported no details).
/// The incumbent itself satisfies both constraints, so a feasible choice
/// always exists.
pub fn select_tuned(result: &TrainResult, fairness_band: f64) -> usize {
    let incumbent = &result.archive[result.default_index];
    let inc_obj = incumbent.evaluation.objectives;
    let qoe_keys: Vec<&String> =
        incumbent.evaluation.detail.keys().filter(|k| k.starts_with("qoe/")).collect();
    let feasible = |e: &Evaluated| {
        if e.evaluation.objectives.fairness < inc_obj.fairness - fairness_band {
            return false;
        }
        if qoe_keys.is_empty() {
            return e.evaluation.objectives.qoe >= inc_obj.qoe;
        }
        qoe_keys.iter().any(|k| {
            e.evaluation.detail.get(*k).is_some_and(|v| *v >= incumbent.evaluation.detail[*k])
        })
    };
    result
        .archive
        .iter()
        .enumerate()
        .filter(|(_, e)| feasible(e))
        .max_by(|(ia, a), (ib, b)| a.scalar.total_cmp(&b.scalar).then(ib.cmp(ia)))
        .map(|(i, _)| i)
        .unwrap_or(result.default_index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Objectives;
    use std::collections::BTreeMap;

    /// A synthetic, pure evaluator: QoE peaks when the staleness horizon
    /// approaches 100 ms and beta approaches 0.6; overhead follows the
    /// FEC choice; fairness dips when ARQ is off.
    fn synthetic(points: &[PolicyPoint]) -> Vec<Evaluation> {
        points
            .iter()
            .map(|p| {
                let qoe =
                    100.0 - (p.values[0] - 100.0).abs() / 10.0 - (p.values[4] - 0.6).abs() * 50.0;
                let fairness = if p.values[9] == 0.0 { 0.6 } else { 0.9 };
                let overhead = 5.0 * p.values[6] + 20.0 * p.values[8];
                let mut detail = BTreeMap::new();
                detail.insert("qoe/synthetic".to_string(), qoe);
                Evaluation { objectives: Objectives { qoe, fairness, overhead }, detail }
            })
            .collect()
    }

    fn small_cfg(engine: Engine) -> TrainConfig {
        TrainConfig { engine, generations: 4, population: 8, elites: 3, ..TrainConfig::default() }
    }

    #[test]
    fn search_is_deterministic() {
        let space = PolicySpace::ar_default();
        for engine in [Engine::Cem, Engine::MuPlusLambdaEs] {
            let a = run_search(&space, &small_cfg(engine), |_, pop| synthetic(pop));
            let b = run_search(&space, &small_cfg(engine), |_, pop| synthetic(pop));
            assert_eq!(a.archive, b.archive);
            assert_eq!(a.front, b.front);
            assert_eq!(a.best_index, b.best_index);
        }
    }

    #[test]
    fn every_candidate_respects_bounds_and_incumbent_leads() {
        let space = PolicySpace::ar_default();
        for engine in [Engine::Cem, Engine::MuPlusLambdaEs] {
            let r = run_search(&space, &small_cfg(engine), |_, pop| synthetic(pop));
            assert_eq!(r.archive.len(), 4 * 8);
            for e in &r.archive {
                assert!(space.contains(&e.point), "{engine:?} emitted {:?}", e.point);
            }
            assert_eq!(r.archive[0].point, space.default_point());
            // The incumbent is in the archive, so the best scalar can
            // never be worse than the incumbent's.
            assert!(r.archive[r.best_index].scalar >= r.archive[0].scalar);
        }
    }

    #[test]
    fn front_is_non_dominated() {
        let space = PolicySpace::ar_default();
        let r = run_search(&space, &small_cfg(Engine::Cem), |_, pop| synthetic(pop));
        assert!(!r.front.is_empty());
        for &a in &r.front {
            for &b in &r.front {
                if a != b {
                    let (oa, ob) =
                        (r.archive[a].evaluation.objectives, r.archive[b].evaluation.objectives);
                    assert!(!oa.dominates(&ob));
                }
            }
        }
    }

    #[test]
    fn cem_improves_on_the_synthetic_landscape() {
        let space = PolicySpace::ar_default();
        let cfg = TrainConfig { generations: 6, population: 16, ..small_cfg(Engine::Cem) };
        let r = run_search(&space, &cfg, |_, pop| synthetic(pop));
        assert!(
            r.archive[r.best_index].scalar > r.archive[0].scalar,
            "search failed to beat the incumbent on an easy landscape"
        );
    }

    #[test]
    fn select_tuned_respects_the_fairness_band() {
        let space = PolicySpace::ar_default();
        let r = run_search(&space, &small_cfg(Engine::Cem), |_, pop| synthetic(pop));
        let tuned = select_tuned(&r, 0.05);
        let (inc, t) = (&r.archive[0], &r.archive[tuned]);
        assert!(t.scalar >= inc.scalar);
        assert!(t.evaluation.objectives.fairness >= inc.evaluation.objectives.fairness - 0.05);
        assert!(t.evaluation.detail["qoe/synthetic"] >= inc.evaluation.detail["qoe/synthetic"]);
    }

    #[test]
    fn engine_labels_round_trip() {
        for e in [Engine::Cem, Engine::MuPlusLambdaEs] {
            assert_eq!(Engine::from_label(e.label()), Some(e));
        }
        assert_eq!(Engine::from_label("sgd"), None);
    }
}
