//! The searchable policy space: typed, bounded dimensions with clamping,
//! and the compilation of a flat candidate vector into
//! [`PolicyParams`] (and from there into an `ArConfig`).
//!
//! Scattered knobs gathered here (one dimension each): the degradation
//! staleness horizon and backlog ladder (`core::degradation`), the
//! delay/jitter congestion thresholds, decrease factor and additive
//! increase (`core::congestion`), the FEC group size (`core::fec`), the
//! §VI-D multipath policy and recovery duplication (`core::multipath`),
//! and the ARQ stance (`core::recovery`).

use marnet_core::multipath::MultipathPolicy;
use marnet_core::policy::{ArqMode, PolicyParams};
use serde::{Deserialize, Serialize};

/// How a dimension's real line maps onto policy values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DimKind {
    /// Any real value in `[lo, hi]`.
    Continuous,
    /// Integers in `[lo, hi]`; clamping rounds to the nearest.
    Integer,
    /// An index into a fixed choice list, `lo = 0`, `hi = choices - 1`;
    /// clamping rounds to the nearest index.
    Categorical,
}

/// One bounded dimension of the search space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dimension {
    /// Stable name (also the artifact key).
    pub name: String,
    /// Lower bound, inclusive.
    pub lo: f64,
    /// Upper bound, inclusive.
    pub hi: f64,
    /// Value semantics.
    pub kind: DimKind,
}

impl Dimension {
    fn new(name: &str, lo: f64, hi: f64, kind: DimKind) -> Self {
        Dimension { name: name.to_string(), lo, hi, kind }
    }

    /// Clamps `v` into the dimension (non-finite values collapse to `lo`;
    /// integer/categorical dimensions round first).
    pub fn clamp(&self, v: f64) -> f64 {
        if !v.is_finite() {
            return self.lo;
        }
        match self.kind {
            DimKind::Continuous => v.clamp(self.lo, self.hi),
            DimKind::Integer | DimKind::Categorical => v.round().clamp(self.lo, self.hi),
        }
    }

    /// Whether `v` is a legal value for this dimension.
    pub fn contains(&self, v: f64) -> bool {
        v.is_finite() && v == self.clamp(v)
    }

    /// Maps a legal value into the normalized unit interval the engines
    /// sample in.
    pub fn normalize(&self, v: f64) -> f64 {
        (v - self.lo) / (self.hi - self.lo)
    }

    /// Maps a unit-interval coordinate back to a (clamped) legal value.
    pub fn denormalize(&self, n: f64) -> f64 {
        self.clamp(self.lo + n * (self.hi - self.lo))
    }
}

/// One candidate: a flat vector, one value per space dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyPoint {
    /// Dimension values, in [`PolicySpace::dims`] order.
    pub values: Vec<f64>,
}

/// The FEC group-size choice list behind the `fec_k` categorical
/// dimension; index 0 disables FEC.
pub const FEC_CHOICES: [Option<usize>; 5] = [None, Some(2), Some(4), Some(8), Some(16)];

/// The multipath-policy choice list behind the `multipath` categorical
/// dimension.
pub const MULTIPATH_CHOICES: [MultipathPolicy; 3] =
    [MultipathPolicy::WifiOnly, MultipathPolicy::WifiPreferred, MultipathPolicy::Aggregate];

/// Stable identifier of the AR degradation-policy space layout.
pub const AR_SPACE_ID: &str = "ar-policy-v1";

/// An ordered, serializable set of dimensions plus the identity of the
/// layout (which fixes how [`PolicySpace::compile`] interprets indices).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicySpace {
    /// Layout identifier; [`AR_SPACE_ID`] for the built-in AR space.
    pub id: String,
    /// The dimensions, in vector order.
    pub dims: Vec<Dimension>,
}

impl PolicySpace {
    /// The built-in space over the AR degradation controllers (ten
    /// dimensions; bounds chosen to bracket the paper defaults by roughly
    /// half an order of magnitude each way while staying physically
    /// meaningful — e.g. the staleness horizon stays above two pacing
    /// ticks and below the point where "stale" loses meaning for 30 FPS
    /// video).
    pub fn ar_default() -> Self {
        use DimKind::{Categorical, Continuous};
        PolicySpace {
            id: AR_SPACE_ID.to_string(),
            dims: vec![
                Dimension::new("stale_after_ms", 60.0, 400.0, Continuous),
                Dimension::new("backlog_ticks", 2.0, 16.0, Continuous),
                Dimension::new("latency_threshold_ms", 5.0, 60.0, Continuous),
                Dimension::new("jitter_threshold_ms", 10.0, 80.0, Continuous),
                Dimension::new("beta", 0.5, 0.95, Continuous),
                Dimension::new("increase_per_rtt", 2_000.0, 60_000.0, Continuous),
                Dimension::new("fec_k", 0.0, (FEC_CHOICES.len() - 1) as f64, Categorical),
                Dimension::new("multipath", 0.0, (MULTIPATH_CHOICES.len() - 1) as f64, Categorical),
                Dimension::new("duplicate_recovery", 0.0, 1.0, Categorical),
                Dimension::new("arq", 0.0, (ArqMode::ALL.len() - 1) as f64, Categorical),
            ],
        }
    }

    /// Number of dimensions.
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// Whether the space has no dimensions.
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// Clamps every coordinate of `point` into its dimension.
    pub fn clamp(&self, point: &mut PolicyPoint) {
        assert_eq!(point.values.len(), self.dims.len(), "point/space arity mismatch");
        for (v, d) in point.values.iter_mut().zip(&self.dims) {
            *v = d.clamp(*v);
        }
    }

    /// Whether every coordinate is a legal value of its dimension.
    pub fn contains(&self, point: &PolicyPoint) -> bool {
        point.values.len() == self.dims.len()
            && point.values.iter().zip(&self.dims).all(|(v, d)| d.contains(*v))
    }

    /// Compiles a (clamped) candidate into [`PolicyParams`].
    ///
    /// # Panics
    ///
    /// Panics if the space is not the [`AR_SPACE_ID`] layout or the point
    /// arity mismatches — both programming errors, not data errors.
    pub fn compile(&self, point: &PolicyPoint) -> PolicyParams {
        assert_eq!(self.id, AR_SPACE_ID, "unknown policy-space layout {:?}", self.id);
        assert_eq!(point.values.len(), self.dims.len(), "point/space arity mismatch");
        let v = &point.values;
        PolicyParams {
            stale_after_ms: v[0],
            backlog_ticks: v[1],
            latency_threshold_ms: v[2],
            jitter_threshold_ms: v[3],
            beta: v[4],
            increase_per_rtt: v[5],
            fec_group: FEC_CHOICES[v[6] as usize],
            multipath: MULTIPATH_CHOICES[v[7] as usize],
            duplicate_recovery: v[8] != 0.0,
            arq: ArqMode::ALL[v[9] as usize],
        }
    }

    /// Encodes a [`PolicyParams`] back into a candidate vector (inverse of
    /// [`PolicySpace::compile`] up to clamping). Used to seed the search
    /// with the paper-default incumbent.
    pub fn encode(&self, params: &PolicyParams) -> PolicyPoint {
        assert_eq!(self.id, AR_SPACE_ID, "unknown policy-space layout {:?}", self.id);
        let fec_idx = FEC_CHOICES
            .iter()
            .position(|c| *c == params.fec_group)
            .expect("fec_group not representable in the search space");
        let mp_idx =
            MULTIPATH_CHOICES.iter().position(|m| *m == params.multipath).expect("multipath");
        let arq_idx = ArqMode::ALL.iter().position(|a| *a == params.arq).expect("arq");
        let mut point = PolicyPoint {
            values: vec![
                params.stale_after_ms,
                params.backlog_ticks,
                params.latency_threshold_ms,
                params.jitter_threshold_ms,
                params.beta,
                params.increase_per_rtt,
                fec_idx as f64,
                mp_idx as f64,
                params.duplicate_recovery as u8 as f64,
                arq_idx as f64,
            ],
        };
        self.clamp(&mut point);
        point
    }

    /// The paper-default candidate (the incumbent every search starts
    /// from).
    pub fn default_point(&self) -> PolicyPoint {
        self.encode(&PolicyParams::default())
    }

    /// FNV-1a hash of the canonical JSON encoding of the space.
    pub fn space_hash(&self) -> u64 {
        let canonical = serde_json::to_string(self).expect("space serializes");
        crate::artifact::fnv1a(canonical.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_point_compiles_to_default_params() {
        let space = PolicySpace::ar_default();
        let p = space.default_point();
        assert!(space.contains(&p));
        assert_eq!(space.compile(&p), PolicyParams::default());
    }

    #[test]
    fn clamping_brings_wild_vectors_in_bounds() {
        let space = PolicySpace::ar_default();
        let mut p = PolicyPoint { values: vec![f64::NAN; space.len()] };
        space.clamp(&mut p);
        assert!(space.contains(&p));
        let mut q =
            PolicyPoint { values: vec![1e9, -1e9, 30.0, 0.0, 0.7, 2_500.0, 3.7, -2.0, 0.4, 9.0] };
        space.clamp(&mut q);
        assert!(space.contains(&q));
        assert_eq!(q.values[6], 4.0); // rounded categorical
        assert_eq!(q.values[7], 0.0); // clamped categorical
        assert_eq!(q.values[8], 0.0); // rounded bool
        assert_eq!(q.values[9], 2.0);
    }

    #[test]
    fn encode_compile_round_trip() {
        let space = PolicySpace::ar_default();
        let params = PolicyParams {
            stale_after_ms: 200.0,
            fec_group: Some(16),
            multipath: MultipathPolicy::Aggregate,
            duplicate_recovery: true,
            arq: ArqMode::Off,
            ..PolicyParams::default()
        };
        assert_eq!(space.compile(&space.encode(&params)), params);
    }

    #[test]
    fn normalization_round_trips_on_continuous_dims() {
        let d = Dimension::new("x", 10.0, 20.0, DimKind::Continuous);
        for v in [10.0, 13.3, 20.0] {
            assert!((d.denormalize(d.normalize(v)) - v).abs() < 1e-12);
        }
        assert_eq!(d.denormalize(2.0), 20.0);
        assert_eq!(d.denormalize(-1.0), 10.0);
    }

    #[test]
    fn space_hash_is_stable_and_discriminating() {
        let a = PolicySpace::ar_default();
        let b = PolicySpace::ar_default();
        assert_eq!(a.space_hash(), b.space_hash());
        let mut c = PolicySpace::ar_default();
        c.dims[0].hi = 500.0;
        assert_ne!(a.space_hash(), c.space_hash());
    }
}
