//! # marnet-trainer — automated search over the degradation policy space
//!
//! The paper (§VI) fixes the *architecture* of the MAR transport —
//! graceful degradation, delay-first congestion control, deadline-gated
//! recovery, cost-aware multipath — but every constant in the
//! implementation was hand-picked. This crate closes the loop from
//! simulator to policy learning: it searches the
//! [`marnet_core::policy::PolicyParams`] space against a deterministic
//! evaluation harness and emits a Pareto front over the three axes the
//! paper trades off:
//!
//! * **QoE** — frames delivered within the latency budget (maximize);
//! * **fairness to TCP** — Jain's index of the AR flow vs competing Reno
//!   flows on a shared bottleneck (maximize);
//! * **overhead** — redundant bytes on the wire (FEC parity, duplication,
//!   retransmissions) plus metered cellular usage (minimize).
//!
//! The split mirrors a FlowForge-style trainer/evaluator design: this
//! crate owns the *outer loop* (parameter space, candidate sampling,
//! distribution updates, Pareto bookkeeping, artifacts) and is generic
//! over the *inner loop* — a population-evaluation closure that the
//! caller (in practice `marnet-lab train`) implements with its
//! multi-threaded Monte-Carlo runner. Determinism is preserved end to
//! end: candidate `c` of generation `g` is sampled from the ChaCha12
//! substream `train/{g}/{c}`, and the evaluator is required to be a pure
//! function of `(generation, population)`, so the whole search — and the
//! JSON artifact serialized from it — is byte-identical at any thread
//! count.

#![forbid(unsafe_code)]

pub mod artifact;
pub mod engine;
pub mod objective;
pub mod space;

pub use artifact::{ComparisonRow, FrontArtifact, FrontEntry, SCHEMA_VERSION};
pub use engine::{run_search, select_tuned, Engine, Evaluated, TrainConfig, TrainResult};
pub use objective::{pareto_front, Evaluation, Objectives, ScalarWeights};
pub use space::{DimKind, Dimension, PolicyPoint, PolicySpace};
