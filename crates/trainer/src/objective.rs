//! Objectives, dominance and Pareto fronts.
//!
//! A candidate's fitness is a three-axis vector: QoE and fairness-to-TCP
//! are maximized, overhead is minimized. The engines need a single
//! number to rank elites, so a fixed linear scalarization is applied on
//! top — but selection pressure and reporting are kept separate: the
//! emitted artifact carries the full non-dominated front, not just the
//! scalar winner.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// The three-objective fitness vector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Objectives {
    /// Frames delivered within the latency budget, % (maximize).
    pub qoe: f64,
    /// Jain's fairness index of the AR flow vs TCP competitors, in
    /// `[1/n, 1]` (maximize).
    pub fairness: f64,
    /// Redundant wire bytes plus metered cellular share, % (minimize).
    pub overhead: f64,
}

impl Objectives {
    /// Pareto dominance: at least as good on every axis and strictly
    /// better on at least one.
    pub fn dominates(&self, other: &Objectives) -> bool {
        let ge = self.qoe >= other.qoe
            && self.fairness >= other.fairness
            && self.overhead <= other.overhead;
        let gt = self.qoe > other.qoe
            || self.fairness > other.fairness
            || self.overhead < other.overhead;
        ge && gt
    }

    /// The fixed linear scalarization the engines rank elites by.
    pub fn scalarized(&self, w: &ScalarWeights) -> f64 {
        w.qoe * self.qoe + w.fairness * self.fairness - w.overhead * self.overhead
    }
}

/// Weights of the elite-ranking scalarization. QoE is in percent
/// (0..100), fairness in `[0.5, 1]` for one competitor, overhead in
/// percent — the defaults put roughly 100 scalar points on each of QoE
/// and fairness and make 4 points of extra overhead cost one point of
/// QoE.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalarWeights {
    /// Weight on the QoE percentage.
    pub qoe: f64,
    /// Weight on the Jain fairness index.
    pub fairness: f64,
    /// Weight (cost) on the overhead percentage.
    pub overhead: f64,
}

impl Default for ScalarWeights {
    fn default() -> Self {
        ScalarWeights { qoe: 1.0, fairness: 100.0, overhead: 0.25 }
    }
}

/// What the evaluator returns for one candidate: the objective vector
/// plus named detail scalars (per-scenario breakdowns for the
/// tuned-vs-default comparison table).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// The fitness vector.
    pub objectives: Objectives,
    /// Named per-scenario scalars (e.g. `qoe/recovery`).
    pub detail: BTreeMap<String, f64>,
}

/// Indices of the non-dominated members of `objs`, in a canonical order:
/// descending QoE, then descending fairness, then ascending overhead,
/// then input order. Exact duplicates of an earlier vector are skipped so
/// re-evaluated incumbents do not litter the front.
pub fn pareto_front(objs: &[Objectives]) -> Vec<usize> {
    let mut front: Vec<usize> = Vec::new();
    'cand: for (i, o) in objs.iter().enumerate() {
        for (j, p) in objs.iter().enumerate() {
            if j != i && (p.dominates(o) || (j < i && p == o)) {
                continue 'cand;
            }
        }
        front.push(i);
    }
    front.sort_by(|&a, &b| {
        objs[b]
            .qoe
            .total_cmp(&objs[a].qoe)
            .then(objs[b].fairness.total_cmp(&objs[a].fairness))
            .then(objs[a].overhead.total_cmp(&objs[b].overhead))
            .then(Ordering::Equal)
            .then(a.cmp(&b))
    });
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(qoe: f64, fairness: f64, overhead: f64) -> Objectives {
        Objectives { qoe, fairness, overhead }
    }

    #[test]
    fn dominance_is_strict_somewhere() {
        assert!(o(90.0, 0.9, 10.0).dominates(&o(80.0, 0.9, 10.0)));
        assert!(o(90.0, 0.9, 10.0).dominates(&o(90.0, 0.9, 12.0)));
        assert!(!o(90.0, 0.9, 10.0).dominates(&o(90.0, 0.9, 10.0)));
        // Trade-offs do not dominate each other.
        assert!(!o(95.0, 0.8, 10.0).dominates(&o(90.0, 0.9, 10.0)));
        assert!(!o(90.0, 0.9, 10.0).dominates(&o(95.0, 0.8, 10.0)));
    }

    #[test]
    fn front_drops_dominated_and_orders_canonically() {
        let objs = [
            o(80.0, 0.9, 20.0), // dominated by 2
            o(95.0, 0.7, 5.0),
            o(90.0, 0.9, 10.0),
            o(85.0, 0.95, 30.0),
        ];
        assert_eq!(pareto_front(&objs), vec![1, 2, 3]);
    }

    #[test]
    fn duplicate_vectors_appear_once() {
        let objs = [o(90.0, 0.9, 10.0), o(90.0, 0.9, 10.0)];
        assert_eq!(pareto_front(&objs), vec![0]);
    }

    #[test]
    fn front_members_are_mutually_non_dominated() {
        let objs = [
            o(80.0, 0.9, 20.0),
            o(95.0, 0.7, 5.0),
            o(90.0, 0.9, 10.0),
            o(90.0, 0.9, 10.0),
            o(99.0, 0.99, 1.0),
        ];
        let front = pareto_front(&objs);
        for &a in &front {
            for &b in &front {
                if a != b {
                    assert!(!objs[a].dominates(&objs[b]));
                }
            }
        }
    }

    #[test]
    fn scalarization_uses_the_weights() {
        let w = ScalarWeights { qoe: 1.0, fairness: 100.0, overhead: 0.25 };
        let s = o(90.0, 0.9, 20.0).scalarized(&w);
        assert!((s - (90.0 + 90.0 - 5.0)).abs() < 1e-12);
    }
}
