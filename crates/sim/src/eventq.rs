//! The engine's event queue: an indexed 4-ary min-heap with true removal.
//!
//! The run loop pops the earliest `(time, seq)` entry; cancellation (timers
//! only) removes the entry from the heap immediately in O(log n) instead of
//! leaving a tombstone behind. This keeps cancel-heavy runs flat in memory —
//! a retransmission timer that is armed and disarmed per packet never
//! outlives its cancellation — and removes the per-pop tombstone lookup the
//! previous `BinaryHeap + HashSet` scheme paid on *every* event.
//!
//! The heap itself orders only 24-byte `(time, seq, slot)` keys; event
//! payloads are parked in a pooled slot slab and never move during sifts.
//! With payloads the size of a `Packet` plus its `Event` wrapper, sifting
//! keys instead of nodes is the difference between one cache line per level
//! and several. Slab slots are recycled through a free list, so steady-state
//! scheduling allocates nothing. Ordering is by `(time, seq)` exactly like
//! the old heap, so the pop order — and therefore every simulation
//! artifact — is bit-for-bit identical.
//!
//! Every entry owns a slab slot; cancellable entries additionally hand out a
//! [`CancelToken`] carrying `(slot, seq)`. The globally unique `seq` guards
//! against slot reuse, so cancelling an already-fired timer is a cheap no-op.

use crate::time::SimTime;

/// Branching factor. A 4-ary heap halves the depth of a binary heap, which
/// wins on dispatch-heavy workloads: pops do a few more comparisons per
/// level but far fewer cache-missing moves.
const D: usize = 4;

/// Sentinel for "no slot" (end of the free list).
const NO_SLOT: u32 = u32::MAX;

/// Sentinel sequence marking a slab slot as free.
const FREE: u64 = u64::MAX;

/// High bit of [`Entry::slot`]: set when the entry is cancellable. Only
/// cancellable entries need their heap position mirrored into the slab
/// (that is what [`EventQueue::cancel`] looks up), so sift moves of plain
/// entries touch nothing but the heap array itself.
const CANCEL_BIT: u32 = 1 << 31;

/// Proof-of-registration for a cancellable entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct CancelToken {
    slot: u32,
    seq: u64,
}

/// A heap element: the ordering key plus the slab slot of its payload.
#[derive(Clone, Copy)]
struct Entry {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl Entry {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }

    /// Slab index, with the cancellable tag stripped.
    #[inline]
    fn slab(&self) -> usize {
        (self.slot & !CANCEL_BIT) as usize
    }
}

struct Slot<T> {
    /// `Some` while the slot is occupied.
    item: Option<T>,
    /// Heap position while occupied (cancellable entries only); next
    /// free-list entry while free.
    pos: u32,
    /// Sequence of the stored entry; [`FREE`] while free.
    seq: u64,
}

/// An indexed 4-ary min-heap over `(time, seq)`.
pub(crate) struct EventQueue<T> {
    heap: Vec<Entry>,
    slots: Vec<Slot<T>>,
    free_head: u32,
    n_cancellable: usize,
}

impl<T> EventQueue<T> {
    pub(crate) fn new() -> Self {
        EventQueue { heap: Vec::new(), slots: Vec::new(), free_head: NO_SLOT, n_cancellable: 0 }
    }

    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Pending cancellable timers (diagnostics; not a tombstone count).
    pub(crate) fn cancellable_len(&self) -> usize {
        self.n_cancellable
    }

    /// Inserts a non-cancellable entry.
    #[inline]
    pub(crate) fn push(&mut self, time: SimTime, seq: u64, item: T) {
        self.insert(time, seq, item, false);
    }

    /// Inserts a cancellable entry and returns its token.
    pub(crate) fn push_cancellable(&mut self, time: SimTime, seq: u64, item: T) -> CancelToken {
        let slot = self.insert(time, seq, item, true);
        self.n_cancellable += 1;
        CancelToken { slot, seq }
    }

    fn insert(&mut self, time: SimTime, seq: u64, item: T, cancellable: bool) -> u32 {
        let pos = self.heap.len() as u32;
        let slot = match self.free_head {
            NO_SLOT => {
                self.slots.push(Slot { item: Some(item), pos, seq });
                (self.slots.len() - 1) as u32
            }
            head => {
                let s = &mut self.slots[head as usize];
                self.free_head = s.pos;
                *s = Slot { item: Some(item), pos, seq };
                head
            }
        };
        let tag = if cancellable { CANCEL_BIT } else { 0 };
        self.heap.push(Entry { time, seq, slot: slot | tag });
        self.sift_up(pos as usize);
        slot
    }

    /// Removes the earliest entry.
    #[cfg(test)]
    pub(crate) fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        if self.heap.is_empty() {
            return None;
        }
        let (entry, item) = self.remove_at(0);
        Some((entry.time, entry.seq, item))
    }

    /// Removes the earliest entry if its time is `<= end` — the run loop's
    /// fused peek-and-pop.
    pub(crate) fn pop_at_most(&mut self, end: SimTime) -> Option<(SimTime, u64, T)> {
        if self.heap.first()?.time > end {
            return None;
        }
        let (entry, item) = self.remove_at(0);
        Some((entry.time, entry.seq, item))
    }

    /// Removes the earliest entry if its time is `<= end` *and* `pred`
    /// accepts it. The run loop uses this to coalesce back-to-back
    /// deliveries on one link: the root is inspected in place, so a
    /// declined peek costs a comparison and no heap movement.
    pub(crate) fn pop_at_most_if(
        &mut self,
        end: SimTime,
        pred: impl FnOnce(SimTime, &T) -> bool,
    ) -> Option<(SimTime, u64, T)> {
        let first = self.heap.first()?;
        if first.time > end {
            return None;
        }
        let time = first.time;
        let root = self.slots[first.slab()].item.as_ref()?;
        if !pred(time, root) {
            return None;
        }
        let (entry, item) = self.remove_at(0);
        Some((entry.time, entry.seq, item))
    }

    /// Removes the entry behind `token` if it is still pending. Returns
    /// `true` if an entry was removed.
    pub(crate) fn cancel(&mut self, token: CancelToken) -> bool {
        let Some(slot) = self.slots.get(token.slot as usize) else {
            return false;
        };
        if slot.seq != token.seq {
            return false; // already fired, already cancelled, or slot reused
        }
        let pos = slot.pos as usize;
        debug_assert_eq!(self.heap[pos].seq, token.seq);
        self.remove_at(pos);
        true
    }

    /// Removes and returns the entry at heap position `pos` and its item,
    /// restoring the heap property and recycling the slab slot.
    fn remove_at(&mut self, pos: usize) -> (Entry, T) {
        let entry = self.heap.swap_remove(pos);
        let slab = entry.slab();
        let slot = &mut self.slots[slab];
        let item = slot.item.take().expect("occupied slot");
        if entry.slot & CANCEL_BIT != 0 {
            self.n_cancellable -= 1;
        }
        // Thread the slot onto the free list.
        *slot = Slot { item: None, pos: self.free_head, seq: FREE };
        self.free_head = slab as u32;
        if pos < self.heap.len() {
            // The swapped-in tail entry may belong above or below `pos`.
            self.update_pos(pos);
            if !self.sift_up(pos) {
                self.sift_down(pos);
            }
        }
        (entry, item)
    }

    /// Records `i` as the heap position of the entry currently stored
    /// there, if that entry is cancellable (no one looks up the position of
    /// a plain entry).
    #[inline]
    fn update_pos(&mut self, i: usize) {
        let slot = self.heap[i].slot;
        if slot & CANCEL_BIT != 0 {
            self.slots[(slot & !CANCEL_BIT) as usize].pos = i as u32;
        }
    }

    /// Moves the entry at `i` up to its place; returns `true` if it moved.
    /// Hole-based: displaced entries shift one level, the moving entry is
    /// written once at its final position.
    fn sift_up(&mut self, mut i: usize) -> bool {
        let entry = self.heap[i];
        let key = entry.key();
        let start = i;
        while i > 0 {
            let parent = (i - 1) / D;
            if key >= self.heap[parent].key() {
                break;
            }
            self.heap[i] = self.heap[parent];
            self.update_pos(i);
            i = parent;
        }
        if i == start {
            return false;
        }
        self.heap[i] = entry;
        self.update_pos(i);
        true
    }

    /// Moves the entry at `i` down to its place (hole-based, as
    /// [`EventQueue::sift_up`]).
    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        let entry = self.heap[i];
        let key = entry.key();
        loop {
            let first_child = i * D + 1;
            if first_child >= len {
                break;
            }
            let mut best = first_child;
            let last_child = (first_child + D).min(len);
            for c in first_child + 1..last_child {
                if self.heap[c].key() < self.heap[best].key() {
                    best = c;
                }
            }
            if self.heap[best].key() >= key {
                break;
            }
            self.heap[i] = self.heap[best];
            self.update_pos(i);
            i = best;
        }
        self.heap[i] = entry;
        self.update_pos(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = EventQueue::new();
        q.push(t(30), 0, "a");
        q.push(t(10), 1, "b");
        q.push(t(10), 2, "c");
        q.push(t(20), 3, "d");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, v)| v)).collect();
        assert_eq!(order, ["b", "c", "d", "a"]);
    }

    #[test]
    fn cancel_removes_immediately() {
        let mut q = EventQueue::new();
        q.push(t(1), 0, 0u32);
        let tok = q.push_cancellable(t(2), 1, 1u32);
        q.push(t(3), 2, 2u32);
        assert_eq!(q.len(), 3);
        assert_eq!(q.cancellable_len(), 1);
        assert!(q.cancel(tok));
        assert_eq!(q.len(), 2);
        assert_eq!(q.cancellable_len(), 0);
        assert!(!q.cancel(tok), "double cancel is a no-op");
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, _, v)| v)).collect();
        assert_eq!(order, [0, 2]);
    }

    #[test]
    fn cancel_after_fire_is_noop_even_with_slot_reuse() {
        let mut q = EventQueue::new();
        let tok = q.push_cancellable(t(1), 0, "x");
        assert_eq!(q.pop().map(|(_, _, v)| v), Some("x"));
        // The slot is free again; a new registration reuses it.
        let tok2 = q.push_cancellable(t(2), 1, "y");
        assert!(!q.cancel(tok), "stale token must not cancel the new entry");
        assert!(q.cancel(tok2));
        assert!(q.is_empty());
    }

    #[test]
    fn slots_are_recycled_not_leaked() {
        let mut q = EventQueue::new();
        for round in 0..1000u64 {
            let tok = q.push_cancellable(t(round + 1), round, round);
            assert!(q.cancel(tok));
        }
        assert!(q.is_empty());
        assert_eq!(q.cancellable_len(), 0);
        assert!(q.slots.len() <= 2, "cancelled slots must be reused, got {}", q.slots.len());
    }

    #[test]
    fn pop_if_inspects_the_root_without_disturbing_it() {
        let mut q = EventQueue::new();
        q.push(t(10), 0, "a");
        q.push(t(20), 1, "b");
        // Declined predicate: nothing removed, order intact.
        assert!(q.pop_at_most_if(t(50), |_, v| *v == "z").is_none());
        assert_eq!(q.len(), 2);
        // Past the horizon: predicate never runs.
        assert!(q.pop_at_most_if(t(5), |_, _| true).is_none());
        // Accepted: pops exactly the root.
        let (time, _, v) = q
            .pop_at_most_if(t(50), |time, v| {
                assert_eq!(time, t(10));
                *v == "a"
            })
            .unwrap();
        assert_eq!((time, v), (t(10), "a"));
        assert_eq!(q.pop().map(|(_, _, v)| v), Some("b"));
    }

    #[test]
    fn interleaved_cancel_preserves_order_of_survivors() {
        // Deterministic pseudo-random interleaving, checked against a naive
        // sorted-vector model.
        let mut q = EventQueue::new();
        let mut model: Vec<(SimTime, u64)> = Vec::new();
        let mut tokens = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut rnd = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for seq in 0..500u64 {
            let time = t(rnd() % 50);
            if seq % 3 == 0 {
                tokens.push((q.push_cancellable(time, seq, seq), time, seq));
            } else {
                q.push(time, seq, seq);
                model.push((time, seq));
            }
        }
        for (i, (tok, time, seq)) in tokens.into_iter().enumerate() {
            if i % 2 == 0 {
                assert!(q.cancel(tok));
            } else {
                model.push((time, seq));
            }
        }
        model.sort();
        let popped: Vec<(SimTime, u64)> =
            std::iter::from_fn(|| q.pop().map(|(time, seq, _)| (time, seq))).collect();
        assert_eq!(popped, model);
    }
}
