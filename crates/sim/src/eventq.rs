//! The engine's event queue: an indexed 4-ary min-heap with true removal.
//!
//! The run loop pops the earliest `(time, phase, ord, seq)` entry; cancellation (timers
//! only) removes the entry from the heap immediately in O(log n) instead of
//! leaving a tombstone behind. This keeps cancel-heavy runs flat in memory —
//! a retransmission timer that is armed and disarmed per packet never
//! outlives its cancellation — and removes the per-pop tombstone lookup the
//! previous `BinaryHeap + HashSet` scheme paid on *every* event.
//!
//! The heap itself orders only 32-byte `(time, ord, seq, slot)` keys; event
//! payloads are parked in a pooled slot slab and never move during sifts.
//! With payloads the size of a `Packet` plus its `Event` wrapper, sifting
//! keys instead of nodes is the difference between one cache line per level
//! and several. Slab slots are recycled through a free list, so steady-state
//! scheduling allocates nothing.
//!
//! Ordering is by `(time, phase, ord, seq)`. The [`Phase`] is intra-instant
//! *semantics*, not a tie — it encodes two orderings every schedule must
//! agree on, both found by `marnet-lab racecheck` as genuine races in the
//! fairness portfolio member:
//!
//! 1. `Drain` before everything: link departures free transmit-queue
//!    capacity, so capacity freed at time `t` is visible to every arrival
//!    at `t`. Without it, a departure/arrival tie at a full drop-tail queue
//!    decides admit-vs-drop by schedule accident.
//! 2. `Carry` before `Spawn`: entries committed to instant `t` from an
//!    earlier instant (timers armed in the past, packets already in
//!    flight) run before entries *spawned within* instant `t` by handlers
//!    running at `t`. An instant's carries are its causal roots; its
//!    spawns are their downstream effects, and no schedule may run an
//!    effect ahead of the roots. Without it, a periodic timer colliding
//!    with a same-instant message (e.g. a 33 ms frame grid meeting a 5 ms
//!    pacing grid at their 165 ms common multiple) decides
//!    this-tick-vs-next-tick admission by schedule accident.
//!
//! Below the phase, `ord` is computed at insertion by the queue's
//! [`TieBreak`] policy from the entry's *scheduling source* (the component
//! whose handler pushed it — see `crate::config`): under the default FIFO
//! policy `ord == 0` for every entry, so the pop order degenerates to the
//! classic `(time, phase, seq)` order — and because every carry was pushed
//! before the instant's first spawn, the phase split is seq-consistent and
//! FIFO pop order is byte-identical to the pre-phase queue. Non-default
//! policies (`Lifo`, `Seeded`) permute only the order of equal-
//! `(time, phase)` entries from *different* sources; same-source ties keep
//! program order through the trailing raw `seq`, which also keeps the
//! order total.
//!
//! Every entry owns a slab slot; cancellable entries additionally hand out a
//! [`CancelToken`] carrying `(slot, seq)`. The globally unique `seq` guards
//! against slot reuse, so cancelling an already-fired timer is a cheap no-op.

use crate::config::TieBreak;
use crate::time::SimTime;

/// Branching factor. A 4-ary heap halves the depth of a binary heap, which
/// wins on dispatch-heavy workloads: pops do a few more comparisons per
/// level but far fewer cache-missing moves.
const D: usize = 4;

/// Sentinel for "no slot" (end of the free list).
const NO_SLOT: u32 = u32::MAX;

/// Sentinel sequence marking a slab slot as free.
const FREE: u64 = u64::MAX;

/// High bit of [`Entry::slot`]: set when the entry is cancellable. Only
/// cancellable entries need their heap position mirrored into the slab
/// (that is what [`EventQueue::cancel`] looks up), so sift moves of plain
/// entries touch nothing but the heap array itself.
const CANCEL_BIT: u32 = 1 << 31;

/// Proof-of-registration for a cancellable entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct CancelToken {
    slot: u32,
    seq: u64,
}

/// Intra-instant ordering phase: which half of a timestamp an entry runs
/// in. Phases outrank the [`TieBreak`]-computed `ord`, so they are engine
/// semantics every policy agrees on — the race detector perturbs only the
/// order *within* a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Phase {
    /// Resource-freeing work: link departures, which dequeue the next
    /// packet and so free a transmit-queue slot. Runs first so capacity
    /// freed at `t` is visible to every arrival at `t`.
    Drain = 0,
    /// Work committed to this instant from an *earlier* instant: timers
    /// armed in the past, packets already in flight. These are the
    /// instant's causal roots and run before anything spawned at it.
    Carry = 1,
    /// Work spawned *within* this instant by a handler running at it:
    /// same-instant messages, zero-delay timers, start events. Runs last;
    /// policies still permute cross-source order inside the phase.
    Spawn = 2,
}

/// A heap element: the ordering key plus the slab slot of its payload.
/// `ord` is the policy-computed tie-break component (zero under FIFO),
/// fixed at insertion so sifts never re-derive it. The `phase` rides in
/// what was padding, so the entry stays 32 bytes.
#[derive(Clone, Copy)]
struct Entry {
    time: SimTime,
    ord: u64,
    seq: u64,
    slot: u32,
    phase: Phase,
}

impl Entry {
    #[inline]
    fn key(&self) -> (SimTime, Phase, u64, u64) {
        (self.time, self.phase, self.ord, self.seq)
    }

    /// Slab index, with the cancellable tag stripped.
    #[inline]
    fn slab(&self) -> usize {
        (self.slot & !CANCEL_BIT) as usize
    }
}

struct Slot<T> {
    /// `Some` while the slot is occupied.
    item: Option<T>,
    /// Heap position while occupied (cancellable entries only); next
    /// free-list entry while free.
    pos: u32,
    /// Sequence of the stored entry; [`FREE`] while free.
    seq: u64,
}

/// An indexed 4-ary min-heap over `(time, phase, ord, seq)`.
pub(crate) struct EventQueue<T> {
    heap: Vec<Entry>,
    slots: Vec<Slot<T>>,
    free_head: u32,
    n_cancellable: usize,
    tie_break: TieBreak,
}

impl<T> EventQueue<T> {
    /// A default-policy (FIFO) queue; production callers go through
    /// [`EventQueue::with_tie_break`] via `Simulator::with_config`.
    #[cfg(test)]
    pub(crate) fn new() -> Self {
        Self::with_tie_break(TieBreak::Fifo)
    }

    pub(crate) fn with_tie_break(tie_break: TieBreak) -> Self {
        EventQueue {
            // marnet-lint: allow(hot-path-alloc): construction-time; `Vec::new` does not allocate
            heap: Vec::new(),
            // marnet-lint: allow(hot-path-alloc): construction-time; `Vec::new` does not allocate
            slots: Vec::new(),
            free_head: NO_SLOT,
            n_cancellable: 0,
            tie_break,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Pending cancellable timers (diagnostics; not a tombstone count).
    pub(crate) fn cancellable_len(&self) -> usize {
        self.n_cancellable
    }

    /// Inserts a non-cancellable entry scheduled by source `src`, in the
    /// given intra-instant [`Phase`].
    #[inline]
    pub(crate) fn push(&mut self, time: SimTime, seq: u64, src: u64, phase: Phase, item: T) {
        self.insert(time, seq, src, phase, item, false);
    }

    /// Inserts a cancellable entry and returns its token. Cancellable
    /// entries are timers; the caller supplies the phase ([`Phase::Carry`]
    /// for a future instant, [`Phase::Spawn`] for a zero-delay timer).
    pub(crate) fn push_cancellable(
        &mut self,
        time: SimTime,
        seq: u64,
        src: u64,
        phase: Phase,
        item: T,
    ) -> CancelToken {
        let slot = self.insert(time, seq, src, phase, item, true);
        self.n_cancellable += 1;
        CancelToken { slot, seq }
    }

    fn insert(
        &mut self,
        time: SimTime,
        seq: u64,
        src: u64,
        phase: Phase,
        item: T,
        cancellable: bool,
    ) -> u32 {
        let pos = self.heap.len() as u32;
        let slot = match self.free_head {
            NO_SLOT => {
                self.slots.push(Slot { item: Some(item), pos, seq });
                (self.slots.len() - 1) as u32
            }
            head => {
                let s = &mut self.slots[head as usize];
                self.free_head = s.pos;
                *s = Slot { item: Some(item), pos, seq };
                head
            }
        };
        let tag = if cancellable { CANCEL_BIT } else { 0 };
        let ord = self.tie_break.ord_of(src);
        self.heap.push(Entry { time, ord, seq, slot: slot | tag, phase });
        self.sift_up(pos as usize);
        slot
    }

    /// Removes the earliest entry.
    #[cfg(test)]
    pub(crate) fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        if self.heap.is_empty() {
            return None;
        }
        let (entry, item) = self.remove_at(0);
        Some((entry.time, entry.seq, item))
    }

    /// Removes the earliest entry if its time is `<= end` — the run loop's
    /// fused peek-and-pop.
    pub(crate) fn pop_at_most(&mut self, end: SimTime) -> Option<(SimTime, u64, T)> {
        if self.heap.first()?.time > end {
            return None;
        }
        let (entry, item) = self.remove_at(0);
        Some((entry.time, entry.seq, item))
    }

    /// Removes the earliest entry if its time is `<= end` *and* `pred`
    /// accepts it. The run loop uses this to coalesce back-to-back
    /// deliveries on one link: the root is inspected in place, so a
    /// declined peek costs a comparison and no heap movement.
    pub(crate) fn pop_at_most_if(
        &mut self,
        end: SimTime,
        pred: impl FnOnce(SimTime, &T) -> bool,
    ) -> Option<(SimTime, u64, T)> {
        let first = self.heap.first()?;
        if first.time > end {
            return None;
        }
        let time = first.time;
        // marnet-lint: allow(panic-path): a heap entry's slab index is live by the insert/remove invariant
        let root = self.slots[first.slab()].item.as_ref()?;
        if !pred(time, root) {
            return None;
        }
        let (entry, item) = self.remove_at(0);
        Some((entry.time, entry.seq, item))
    }

    /// Removes the entry behind `token` if it is still pending. Returns
    /// `true` if an entry was removed.
    pub(crate) fn cancel(&mut self, token: CancelToken) -> bool {
        let Some(slot) = self.slots.get(token.slot as usize) else {
            return false;
        };
        if slot.seq != token.seq {
            return false; // already fired, already cancelled, or slot reused
        }
        let pos = slot.pos as usize;
        // marnet-lint: allow(panic-path): debug-only check; `pos` is maintained by update_pos
        debug_assert_eq!(self.heap[pos].seq, token.seq);
        self.remove_at(pos);
        true
    }

    /// Removes and returns the entry at heap position `pos` and its item,
    /// restoring the heap property and recycling the slab slot.
    fn remove_at(&mut self, pos: usize) -> (Entry, T) {
        let entry = self.heap.swap_remove(pos);
        let slab = entry.slab();
        // marnet-lint: allow(panic-path): a heap entry's slab index is live by the insert/remove invariant
        let slot = &mut self.slots[slab];
        // marnet-lint: allow(panic-path): a slab slot is occupied while its entry is in the heap
        let item = slot.item.take().expect("occupied slot");
        if entry.slot & CANCEL_BIT != 0 {
            self.n_cancellable -= 1;
        }
        // Thread the slot onto the free list.
        *slot = Slot { item: None, pos: self.free_head, seq: FREE };
        self.free_head = slab as u32;
        if pos < self.heap.len() {
            // The swapped-in tail entry may belong above or below `pos`.
            self.update_pos(pos);
            if !self.sift_up(pos) {
                self.sift_down(pos);
            }
        }
        (entry, item)
    }

    /// Records `i` as the heap position of the entry currently stored
    /// there, if that entry is cancellable (no one looks up the position of
    /// a plain entry).
    #[inline]
    fn update_pos(&mut self, i: usize) {
        // marnet-lint: allow(panic-path): callers pass heap positions < len
        let slot = self.heap[i].slot;
        if slot & CANCEL_BIT != 0 {
            // marnet-lint: allow(panic-path): a heap entry's slab index is live by the insert/remove invariant
            self.slots[(slot & !CANCEL_BIT) as usize].pos = i as u32;
        }
    }

    /// Moves the entry at `i` up to its place; returns `true` if it moved.
    /// Hole-based: displaced entries shift one level, the moving entry is
    /// written once at its final position.
    fn sift_up(&mut self, mut i: usize) -> bool {
        // marnet-lint: allow(panic-path): callers pass heap positions < len
        let entry = self.heap[i];
        let key = entry.key();
        let start = i;
        while i > 0 {
            let parent = (i - 1) / D;
            // marnet-lint: allow(panic-path): parent of an in-bounds position is in bounds
            if key >= self.heap[parent].key() {
                break;
            }
            // marnet-lint: allow(panic-path): both positions proved in bounds above
            self.heap[i] = self.heap[parent];
            self.update_pos(i);
            i = parent;
        }
        if i == start {
            return false;
        }
        // marnet-lint: allow(panic-path): `i` only ever moved to in-bounds parents
        self.heap[i] = entry;
        self.update_pos(i);
        true
    }

    /// Moves the entry at `i` down to its place (hole-based, as
    /// [`EventQueue::sift_up`]).
    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        // marnet-lint: allow(panic-path): callers pass heap positions < len
        let entry = self.heap[i];
        let key = entry.key();
        loop {
            let first_child = i * D + 1;
            if first_child >= len {
                break;
            }
            let mut best = first_child;
            let last_child = (first_child + D).min(len);
            for c in first_child + 1..last_child {
                // marnet-lint: allow(panic-path): `c` and `best` bounded by `last_child <= len`
                if self.heap[c].key() < self.heap[best].key() {
                    best = c;
                }
            }
            // marnet-lint: allow(panic-path): `best` bounded by `last_child <= len`
            if self.heap[best].key() >= key {
                break;
            }
            // marnet-lint: allow(panic-path): both positions proved in bounds above
            self.heap[i] = self.heap[best];
            self.update_pos(i);
            i = best;
        }
        // marnet-lint: allow(panic-path): `i` only ever moved to in-bounds children
        self.heap[i] = entry;
        self.update_pos(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = EventQueue::new();
        q.push(t(30), 0, 0, Phase::Spawn, "a");
        q.push(t(10), 1, 1, Phase::Spawn, "b");
        q.push(t(10), 2, 2, Phase::Spawn, "c");
        q.push(t(20), 3, 3, Phase::Spawn, "d");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, v)| v)).collect();
        assert_eq!(order, ["b", "c", "d", "a"]);
    }

    #[test]
    fn lifo_reverses_ties_only() {
        let mut q = EventQueue::with_tie_break(TieBreak::Lifo);
        q.push(t(30), 0, 0, Phase::Spawn, "a");
        q.push(t(10), 1, 1, Phase::Spawn, "b");
        q.push(t(10), 2, 2, Phase::Spawn, "c");
        q.push(t(20), 3, 3, Phase::Spawn, "d");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, v)| v)).collect();
        // Time order is untouched; the t=10 tie runs last-inserted first.
        assert_eq!(order, ["c", "b", "d", "a"]);
    }

    #[test]
    fn drain_phase_outranks_every_tie_break_policy() {
        // The phase split is engine semantics, not a perturbable tie: a
        // later-inserted drain entry from a "later" source must still run
        // before every spawn entry at the same instant, under every policy.
        for policy in [TieBreak::Fifo, TieBreak::Lifo, TieBreak::Seeded(0xbeef)] {
            let mut q = EventQueue::with_tie_break(policy);
            q.push(t(10), 0, 0, Phase::Spawn, "spawn-a");
            q.push(t(10), 1, 1, Phase::Spawn, "spawn-b");
            q.push(t(10), 2, 2, Phase::Spawn, "spawn-c");
            q.push(t(10), 3, 3, Phase::Drain, "drain");
            q.push(t(5), 4, 4, Phase::Spawn, "earlier");
            let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, v)| v)).collect();
            assert_eq!(order[0], "earlier", "time still dominates under {policy:?}");
            assert_eq!(order[1], "drain", "drain phase must lead its instant under {policy:?}");
        }
    }

    #[test]
    fn carry_phase_outranks_spawn_under_every_tie_break_policy() {
        // An instant's carries (timers armed in the past, packets in
        // flight) are its causal roots: even a policy that inverts or
        // shuffles cross-source order must run them before anything the
        // instant's own handlers spawned.
        for policy in [TieBreak::Fifo, TieBreak::Lifo, TieBreak::Seeded(0xbeef)] {
            let mut q = EventQueue::with_tie_break(policy);
            q.push(t(10), 0, 7, Phase::Carry, "timer");
            q.push(t(10), 1, 1, Phase::Spawn, "msg-a");
            q.push(t(10), 2, 9, Phase::Spawn, "msg-b");
            let tok = q.push_cancellable(t(10), 3, 3, Phase::Carry, "arrival");
            q.push(t(10), 4, 4, Phase::Drain, "drain");
            let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, v)| v)).collect();
            assert_eq!(order[0], "drain", "drain leads under {policy:?}");
            let mut carries = order[1..3].to_vec();
            carries.sort_unstable();
            assert_eq!(
                carries,
                ["arrival", "timer"],
                "carries precede spawns under {policy:?} (cross-source order within \
                 the phase stays policy-chosen)"
            );
            assert!(!q.cancel(tok), "popped timer's token must be dead");
        }
    }

    #[test]
    fn seeded_permutes_ties_deterministically() {
        let run = |seed: u64| -> Vec<u64> {
            let mut q = EventQueue::with_tie_break(TieBreak::Seeded(seed));
            for seq in 0..32u64 {
                q.push(t(5), seq, seq, Phase::Spawn, seq);
            }
            q.push(t(1), 32, 32, Phase::Spawn, 1000);
            q.push(t(9), 33, 33, Phase::Spawn, 2000);
            std::iter::from_fn(|| q.pop().map(|(_, _, v)| v)).collect()
        };
        let a = run(0xfeed);
        let b = run(0xfeed);
        assert_eq!(a, b, "same seed, same shuffle");
        // Time order still dominates the shuffled ties.
        assert_eq!(a.first(), Some(&1000));
        assert_eq!(a.last(), Some(&2000));
        // The tie block is a permutation of the inserted values...
        let mut ties: Vec<u64> = a[1..33].to_vec();
        ties.sort_unstable();
        assert_eq!(ties, (0..32).collect::<Vec<_>>());
        // ...and a different seed yields a different permutation.
        assert_ne!(a, run(0xbeef));
        // FIFO would leave the block in insertion order; the shuffle must not.
        assert_ne!(a[1..33], *(0..32).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_immediately() {
        let mut q = EventQueue::new();
        q.push(t(1), 0, 0, Phase::Spawn, 0u32);
        let tok = q.push_cancellable(t(2), 1, 1, Phase::Carry, 1u32);
        q.push(t(3), 2, 2, Phase::Spawn, 2u32);
        assert_eq!(q.len(), 3);
        assert_eq!(q.cancellable_len(), 1);
        assert!(q.cancel(tok));
        assert_eq!(q.len(), 2);
        assert_eq!(q.cancellable_len(), 0);
        assert!(!q.cancel(tok), "double cancel is a no-op");
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, _, v)| v)).collect();
        assert_eq!(order, [0, 2]);
    }

    #[test]
    fn cancel_after_fire_is_noop_even_with_slot_reuse() {
        let mut q = EventQueue::new();
        let tok = q.push_cancellable(t(1), 0, 0, Phase::Carry, "x");
        assert_eq!(q.pop().map(|(_, _, v)| v), Some("x"));
        // The slot is free again; a new registration reuses it.
        let tok2 = q.push_cancellable(t(2), 1, 1, Phase::Carry, "y");
        assert!(!q.cancel(tok), "stale token must not cancel the new entry");
        assert!(q.cancel(tok2));
        assert!(q.is_empty());
    }

    #[test]
    fn slots_are_recycled_not_leaked() {
        let mut q = EventQueue::new();
        for round in 0..1000u64 {
            let tok = q.push_cancellable(t(round + 1), round, round, Phase::Carry, round);
            assert!(q.cancel(tok));
        }
        assert!(q.is_empty());
        assert_eq!(q.cancellable_len(), 0);
        assert!(q.slots.len() <= 2, "cancelled slots must be reused, got {}", q.slots.len());
    }

    #[test]
    fn pop_if_inspects_the_root_without_disturbing_it() {
        let mut q = EventQueue::new();
        q.push(t(10), 0, 0, Phase::Spawn, "a");
        q.push(t(20), 1, 1, Phase::Spawn, "b");
        // Declined predicate: nothing removed, order intact.
        assert!(q.pop_at_most_if(t(50), |_, v| *v == "z").is_none());
        assert_eq!(q.len(), 2);
        // Past the horizon: predicate never runs.
        assert!(q.pop_at_most_if(t(5), |_, _| true).is_none());
        // Accepted: pops exactly the root.
        let (time, _, v) = q
            .pop_at_most_if(t(50), |time, v| {
                assert_eq!(time, t(10));
                *v == "a"
            })
            .unwrap();
        assert_eq!((time, v), (t(10), "a"));
        assert_eq!(q.pop().map(|(_, _, v)| v), Some("b"));
    }

    #[test]
    fn interleaved_cancel_preserves_order_of_survivors() {
        // Deterministic pseudo-random interleaving, checked against a naive
        // sorted-vector model.
        let mut q = EventQueue::new();
        let mut model: Vec<(SimTime, u64)> = Vec::new();
        let mut tokens = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut rnd = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for seq in 0..500u64 {
            let time = t(rnd() % 50);
            if seq % 3 == 0 {
                // Same phase as the plain entries: this test models plain
                // `(time, seq)` order, and phases would outrank it.
                tokens.push((q.push_cancellable(time, seq, seq, Phase::Spawn, seq), time, seq));
            } else {
                q.push(time, seq, seq, Phase::Spawn, seq);
                model.push((time, seq));
            }
        }
        for (i, (tok, time, seq)) in tokens.into_iter().enumerate() {
            if i % 2 == 0 {
                assert!(q.cancel(tok));
            } else {
                model.push((time, seq));
            }
        }
        model.sort();
        let popped: Vec<(SimTime, u64)> =
            std::iter::from_fn(|| q.pop().map(|(time, seq, _)| (time, seq))).collect();
        assert_eq!(popped, model);
    }
}
