//! Measurement utilities: running moments, histograms, time series and rate
//! meters, plus the Jain fairness index used by the fairness experiments.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Streaming mean/variance/min/max (Welford's algorithm).
///
/// ```
/// use marnet_sim::stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for v in [1.0, 2.0, 3.0] { s.record(v); }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`NaN` if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest sample (`NaN` if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed set of percentile-capable samples.
///
/// Stores raw values; fine for the ≤10⁷ samples the experiments produce.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Histogram {
    values: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { values: Vec::new(), sorted: true }
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        self.values.push(value);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// The `q`-quantile (`0.0..=1.0`) by linear interpolation, or `None` if
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.values.is_empty() {
            return None;
        }
        if !self.sorted {
            self.values.sort_by(|a, b| a.total_cmp(b));
            self.sorted = true;
        }
        let pos = q * (self.values.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.values[lo] * (1.0 - frac) + self.values[hi] * frac)
    }

    /// Convenience: the median.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Convenience: the 95th percentile.
    pub fn p95(&mut self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// Convenience: the 99th percentile.
    pub fn p99(&mut self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// The raw samples, in insertion or sorted order (unspecified).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Fraction of samples at or below `threshold` (0 if empty).
    pub fn fraction_at_most(&self, threshold: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().filter(|&&v| v <= threshold).count() as f64 / self.values.len() as f64
    }

    /// Mean of all samples (`None` if empty).
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Merges another histogram's samples into this one.
    ///
    /// Since quantiles are computed over the raw samples, a merge of
    /// per-replicate histograms yields exactly the quantiles of the pooled
    /// sample set, independent of how samples were partitioned.
    pub fn merge(&mut self, other: &Histogram) {
        if other.values.is_empty() {
            return;
        }
        self.values.extend_from_slice(&other.values);
        self.sorted = false;
    }
}

/// A `(time, value)` series, e.g. throughput over time for the figures.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Appends a point at virtual time `t`.
    pub fn push(&mut self, t: SimTime, value: f64) {
        self.points.push((t.as_secs_f64(), value));
    }

    /// The recorded points as `(seconds, value)` pairs.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if no points were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of the values within `[from, to)` seconds, or `None` if no
    /// points fall in the window.
    pub fn window_mean(&self, from: f64, to: f64) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for &(t, v) in &self.points {
            if t >= from && t < to {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }
}

/// Bucketized byte-rate meter: feed it deliveries, read back Mb/s per bucket.
///
/// Used to produce the throughput-versus-time series of Figs. 2 and 3.
#[derive(Debug, Clone)]
pub struct RateMeter {
    bucket: SimDuration,
    buckets: Vec<u64>,
}

impl RateMeter {
    /// A meter with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    pub fn new(bucket: SimDuration) -> Self {
        assert!(bucket > SimDuration::ZERO, "bucket width must be positive");
        // marnet-lint: allow(hot-path-alloc): construction-time; `Vec::new` does not allocate
        RateMeter { bucket, buckets: Vec::new() }
    }

    /// Records `bytes` delivered at time `t`.
    pub fn record(&mut self, t: SimTime, bytes: u64) {
        let idx = (t.as_nanos() / self.bucket.as_nanos()) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += bytes;
    }

    /// Rate series as `(bucket start seconds, Mb/s)` pairs.
    pub fn series_mbps(&self) -> Vec<(f64, f64)> {
        let w = self.bucket.as_secs_f64();
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &b)| (i as f64 * w, b as f64 * 8.0 / w / 1e6))
            .collect()
    }

    /// Mean rate in Mb/s across `[from, to)` seconds.
    pub fn mean_mbps(&self, from: f64, to: f64) -> f64 {
        let w = self.bucket.as_secs_f64();
        let mut bytes = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            let t = i as f64 * w;
            if t >= from && t < to {
                bytes += b;
            }
        }
        let span = to - from;
        if span <= 0.0 {
            0.0
        } else {
            bytes as f64 * 8.0 / span / 1e6
        }
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

/// Jain's fairness index over per-flow allocations: `(Σx)² / (n·Σx²)`.
///
/// 1.0 means perfectly fair; `1/n` means one flow takes everything.
///
/// ```
/// use marnet_sim::stats::jain_index;
/// assert_eq!(jain_index(&[5.0, 5.0, 5.0]), 1.0);
/// assert!((jain_index(&[9.0, 1.0]) - 0.6097).abs() < 1e-3);
/// ```
pub fn jain_index(allocations: &[f64]) -> f64 {
    if allocations.is_empty() {
        return 1.0;
    }
    let sum: f64 = allocations.iter().sum();
    let sq: f64 = allocations.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    sum * sum / (allocations.len() as f64 * sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_moments() {
        let mut s = OnlineStats::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4.0; sample variance = 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &v in &data {
            whole.record(v);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &v in &data[..37] {
            a.record(v);
        }
        for &v in &data[37..] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn histogram_merge_matches_pooled() {
        let mut pooled = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=100 {
            pooled.record(v as f64);
            if v % 3 == 0 {
                a.record(v as f64);
            } else {
                b.record(v as f64);
            }
        }
        a.merge(&b);
        a.merge(&Histogram::new());
        assert_eq!(a.count(), pooled.count());
        assert_eq!(a.median(), pooled.median());
        assert_eq!(a.p95(), pooled.p95());
        assert_eq!(a.mean(), pooled.mean());
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.median(), Some(50.5));
        assert!((h.quantile(0.95).unwrap() - 95.05).abs() < 1e-9);
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(100.0));
        assert_eq!(h.mean(), Some(50.5));
        assert_eq!(Histogram::new().median(), None);
    }

    #[test]
    fn time_series_window() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_millis(100), 1.0);
        ts.push(SimTime::from_millis(600), 3.0);
        ts.push(SimTime::from_millis(1500), 10.0);
        assert_eq!(ts.window_mean(0.0, 1.0), Some(2.0));
        assert_eq!(ts.window_mean(1.0, 2.0), Some(10.0));
        assert_eq!(ts.window_mean(5.0, 6.0), None);
        assert_eq!(ts.len(), 3);
    }

    #[test]
    fn rate_meter_buckets() {
        let mut m = RateMeter::new(SimDuration::from_millis(100));
        // 12_500 bytes in bucket 0 → 1 Mb/s over 100 ms.
        m.record(SimTime::from_millis(10), 6_250);
        m.record(SimTime::from_millis(90), 6_250);
        m.record(SimTime::from_millis(150), 25_000);
        let series = m.series_mbps();
        assert!((series[0].1 - 1.0).abs() < 1e-9);
        assert!((series[1].1 - 2.0).abs() < 1e-9);
        assert!((m.mean_mbps(0.0, 0.2) - 1.5).abs() < 1e-9);
        assert_eq!(m.total_bytes(), 37_500);
    }

    #[test]
    fn jain_edge_cases() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[1.0, 0.0]) - 0.5).abs() < 1e-12);
    }
}
