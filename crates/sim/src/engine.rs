//! The discrete-event engine: actors, events, timers and the run loop.
//!
//! A [`Simulator`] owns a set of [`Actor`]s (protocol endpoints, traffic
//! sources, middleboxes) and a set of directed links between them. Actors
//! react to [`Event`]s — simulation start, packet arrivals, timers and
//! direct messages — through a mutable [`SimCtx`] that lets them schedule
//! future events and transmit packets.
//!
//! Determinism: the event heap orders by `(time, insertion sequence)`, so
//! simultaneous events fire in the order they were scheduled, and all
//! randomness comes from per-link RNG streams derived from the simulation
//! seed (see [`crate::rng::derive_rng`]).

use crate::eventq::{CancelToken, EventQueue, Phase};
use crate::link::{Bandwidth, Jitter, LinkId, LinkParams, LinkStats, LossModel};
use crate::packet::{Packet, Payload};
use crate::time::{SimDuration, SimTime};
use marnet_telemetry::{
    component, DropReason, Gauge, MetricsRegistry, TimeHistogram, TraceEvent, TraceSink,
};
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use std::fmt;

/// Identifier of an actor within a [`Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(u32);

impl ActorId {
    /// The raw index of this actor.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor#{}", self.0)
    }
}

/// Handle to a scheduled timer, usable with [`SimCtx::cancel_timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerHandle(CancelToken);

/// What an actor is being told.
#[derive(Debug)]
pub enum Event {
    /// Fired once when the simulation starts (or when the actor is installed
    /// into an already-running simulation).
    Start,
    /// A packet arrived over a link.
    Packet {
        /// The link it arrived on.
        link: LinkId,
        /// The packet itself.
        packet: Packet,
    },
    /// A timer scheduled via [`SimCtx::schedule_timer`] fired.
    Timer {
        /// The tag given at scheduling time.
        tag: u64,
    },
    /// A direct message from a co-located actor (no network in between).
    Message {
        /// The sending actor.
        from: ActorId,
        /// The message body.
        msg: Payload,
    },
}

/// A simulation participant.
///
/// Implementations must be deterministic: any randomness should come from an
/// RNG derived via [`crate::rng::derive_rng`] and owned by the actor.
pub trait Actor {
    /// Reacts to an event. `ctx` exposes the clock, timers and links.
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event);
}

enum Dest {
    Actor { id: ActorId, event: Event },
    LinkDeparture { link: LinkId },
    LinkArrival { link: LinkId, packet: Packet },
}

struct LinkRuntime {
    src: ActorId,
    dst: ActorId,
    rate: Bandwidth,
    capacity: Bandwidth,
    delay: SimDuration,
    jitter: Jitter,
    loss: LossModel,
    queue: Box<dyn crate::queue::Queue>,
    busy: bool,
    up: bool,
    ge_bad: bool,
    in_flight: Option<Packet>,
    stats: LinkStats,
    rng: ChaCha12Rng,
}

/// Resolves a [`LinkId`] to its runtime slot.
///
/// Free functions over the `links` field (rather than `&mut self`
/// methods) so call sites keep disjoint borrows of the other [`SimCtx`]
/// fields, and so the indexing invariant lives in exactly one place.
#[inline]
fn link_rt(links: &[LinkRuntime], link: LinkId) -> &LinkRuntime {
    // marnet-lint: allow(panic-path): LinkIds are only minted by add_link for this simulator, so the slot exists
    &links[link.index()]
}

/// Mutable counterpart of [`link_rt`].
#[inline]
fn link_rt_mut(links: &mut [LinkRuntime], link: LinkId) -> &mut LinkRuntime {
    // marnet-lint: allow(panic-path): LinkIds are only minted by add_link for this simulator, so the slot exists
    &mut links[link.index()]
}

/// Resolves an [`ActorId`] to its slot in the actor table.
#[inline]
fn actor_slot_mut(
    actors: &mut [Option<Box<dyn Actor>>],
    id: ActorId,
) -> &mut Option<Box<dyn Actor>> {
    // marnet-lint: allow(panic-path): ActorIds are only minted by reserve_actor for this simulator, so the slot exists
    &mut actors[id.index()]
}

/// Live metric handles for one link, created by [`Simulator::enable_metrics`].
struct LinkGauges {
    queue_packets: Gauge,
    queue_bytes: Gauge,
    queue_delay_ms: TimeHistogram,
}

/// Tie-break source key of events scheduled outside any handler (setup
/// code, `deliver_starts`). See [`SimCtx::src`].
const SRC_SETUP: u64 = u64::MAX;

/// Tie-break source key of events scheduled by link `index`'s internal
/// machinery (bit 63 keeps links disjoint from actor indices).
const fn link_src_key(index: usize) -> u64 {
    (1u64 << 63) | index as u64
}

/// The engine state visible to actors while they handle an event.
pub struct SimCtx {
    now: SimTime,
    seed: u64,
    queue: EventQueue<Dest>,
    next_seq: u64,
    next_packet_id: u64,
    links: Vec<LinkRuntime>,
    current_actor: ActorId,
    /// Tie-break source key of the component whose handler is executing:
    /// the scheduling source stamped on every event it pushes (see
    /// [`crate::config::TieBreak`]). Actors use their index, link-internal
    /// events use [`link_src_key`], setup code uses [`SRC_SETUP`].
    src: u64,
    stopped: bool,
    events_processed: u64,
    trace: TraceSink,
    link_gauges: Option<Vec<LinkGauges>>,
}

impl fmt::Debug for SimCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimCtx")
            .field("now", &self.now)
            .field("pending_events", &self.queue.len())
            .field("links", &self.links.len())
            .finish()
    }
}

impl SimCtx {
    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The experiment seed the simulator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The actor currently handling an event.
    #[inline]
    pub fn self_id(&self) -> ActorId {
        self.current_actor
    }

    /// Total events processed so far (diagnostics).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Allocates a globally unique packet id.
    #[inline]
    pub fn next_packet_id(&mut self) -> u64 {
        let id = self.next_packet_id;
        self.next_packet_id += 1;
        id
    }

    /// Stops the run loop after the current event completes.
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// Pending events in the queue (diagnostics).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Pending cancellable timers (diagnostics). With true removal this is
    /// live timers only — cancelled timers leave no residue.
    pub fn pending_timers(&self) -> usize {
        self.queue.cancellable_len()
    }

    fn push(&mut self, time: SimTime, dest: Dest) {
        // Departures drain a transmit queue (freeing a slot), so a slot
        // freed at `t` is visible to every arrival at `t` under any
        // equal-timestamp order — without it, a departure/arrival tie at a
        // full drop-tail queue decides admit-vs-drop by schedule accident.
        // Everything else splits by causal age: work committed to a future
        // instant (`Carry`) outranks work spawned within that instant
        // (`Spawn`), so e.g. a periodic timer colliding with a same-instant
        // message never decides this-tick-vs-next-tick by schedule
        // accident. Phases outrank the tie-break policy; see `eventq`.
        let phase = match dest {
            Dest::LinkDeparture { .. } => Phase::Drain,
            Dest::Actor { .. } | Dest::LinkArrival { .. } => {
                if time > self.now {
                    Phase::Carry
                } else {
                    Phase::Spawn
                }
            }
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(time, seq, self.src, phase, dest);
    }

    /// Schedules a [`Event::Timer`] for the current actor after `delay`.
    pub fn schedule_timer(&mut self, delay: SimDuration, tag: u64) -> TimerHandle {
        let id = self.current_actor;
        self.schedule_timer_for(id, delay, tag)
    }

    /// Schedules a [`Event::Timer`] for an arbitrary actor after `delay`.
    pub fn schedule_timer_for(
        &mut self,
        target: ActorId,
        delay: SimDuration,
        tag: u64,
    ) -> TimerHandle {
        let t = self.now.saturating_add(delay);
        let seq = self.next_seq;
        self.next_seq += 1;
        // A timer for a future instant is that instant's `Carry` work; a
        // zero-delay timer fires within the current instant, i.e. `Spawn`.
        let phase = if t > self.now { Phase::Carry } else { Phase::Spawn };
        let token = self.queue.push_cancellable(
            t,
            seq,
            self.src,
            phase,
            Dest::Actor { id: target, event: Event::Timer { tag } },
        );
        TimerHandle(token)
    }

    /// Cancels a pending timer, removing it from the event queue
    /// immediately (O(log n), memory released right away). Cancelling an
    /// already-fired or already-cancelled timer is a no-op.
    pub fn cancel_timer(&mut self, handle: TimerHandle) {
        self.queue.cancel(handle.0);
    }

    /// Delivers a direct [`Event::Message`] to `target` at the current time
    /// (after all already-scheduled events for this instant).
    pub fn send_message(&mut self, target: ActorId, msg: Payload) {
        let from = self.current_actor;
        self.push(self.now, Dest::Actor { id: target, event: Event::Message { from, msg } });
    }

    /// Delivers a direct [`Event::Message`] after `delay` (e.g. modelling
    /// local compute time before handing data to a transport endpoint).
    pub fn send_message_in(&mut self, target: ActorId, delay: SimDuration, msg: Payload) {
        let from = self.current_actor;
        let t = self.now.saturating_add(delay);
        self.push(t, Dest::Actor { id: target, event: Event::Message { from, msg } });
    }

    /// Offers a packet to a link for transmission.
    ///
    /// The packet is queued at the transmitter; drops (queue full, link down)
    /// are reflected in [`SimCtx::link_stats`], not reported to the caller —
    /// like a real kernel socket buffer, senders learn of loss end-to-end.
    pub fn transmit(&mut self, link: LinkId, pkt: Packet) {
        let now = self.now;
        let t = now.as_nanos();
        let comp = component::link(link.index());
        let (pid, pflow, psize, pprio) = (pkt.id, pkt.flow, pkt.size, pkt.prio);
        let l = link_rt_mut(&mut self.links, link);
        l.stats.offered_packets += 1;
        l.stats.offered_bytes += u64::from(pkt.size);
        if !l.up {
            l.stats.drops_down += 1;
            self.trace.emit_with(|| {
                TraceEvent::packet_drop(t, comp, DropReason::LinkDown, pid, pflow, psize)
            });
            return;
        }
        match l.queue.enqueue(pkt, now) {
            crate::queue::EnqueueOutcome::Dropped(victim) => {
                l.stats.drops_queue += 1;
                if victim.id != pid {
                    // FQ-CoDel admitted the arrival and shed a fattest-flow
                    // victim instead; record both so event counts reconcile
                    // with the final queue occupancy.
                    self.trace.emit_with(|| {
                        TraceEvent::packet_enqueue(t, comp, pid, pflow, psize, pprio)
                    });
                }
                let (vid, vflow, vsize) = (victim.id, victim.flow, victim.size);
                self.trace.emit_with(|| {
                    TraceEvent::packet_drop(t, comp, DropReason::QueueFull, vid, vflow, vsize)
                });
            }
            crate::queue::EnqueueOutcome::Enqueued => {
                self.trace
                    .emit_with(|| TraceEvent::packet_enqueue(t, comp, pid, pflow, psize, pprio));
                if !l.busy {
                    self.start_tx(link);
                }
            }
        }
        self.note_queue_metrics(link, None);
    }

    fn start_tx(&mut self, link: LinkId) {
        let now = self.now;
        let t = now.as_nanos();
        let comp = component::link(link.index());
        let l = link_rt_mut(&mut self.links, link);
        let was_busy = l.busy;
        if l.rate == Bandwidth::ZERO {
            l.busy = false;
            if was_busy {
                let (qp, qb) = (l.queue.len_packets() as u64, l.queue.len_bytes());
                self.trace.emit_with(|| TraceEvent::link_state(t, comp, false, qp, qb));
            }
            return;
        }
        let deq = l.queue.dequeue(now);
        l.stats.drops_aqm += deq.dropped.len() as u64;
        for victim in &deq.dropped {
            let (vid, vflow, vsize) = (victim.id, victim.flow, victim.size);
            self.trace
                .emit_with(|| TraceEvent::packet_drop(t, comp, DropReason::Aqm, vid, vflow, vsize));
        }
        let mut dequeue_delay = None;
        match deq.packet {
            Some(pkt) => {
                let delay = now.saturating_since(pkt.enqueued).as_nanos();
                let pid = pkt.id;
                self.trace.emit_with(|| TraceEvent::packet_dequeue(t, comp, pid, delay));
                dequeue_delay = Some(delay);
                l.busy = true;
                if !was_busy {
                    let (qp, qb) = (l.queue.len_packets() as u64, l.queue.len_bytes());
                    self.trace.emit_with(|| TraceEvent::link_state(t, comp, true, qp, qb));
                }
                let ser = l.rate.serialization_time(pkt.size);
                l.in_flight = Some(pkt);
                self.push(now.saturating_add(ser), Dest::LinkDeparture { link });
            }
            None => {
                l.busy = false;
                if was_busy {
                    self.trace.emit_with(|| TraceEvent::link_state(t, comp, false, 0, 0));
                }
            }
        }
        self.note_queue_metrics(link, dequeue_delay);
    }

    fn handle_departure(&mut self, link: LinkId) {
        // Arrivals and follow-on departures scheduled here are the link's
        // own doing, not the current actor's: stamp them with the link's
        // source key so tie-break perturbation treats the link as an
        // independently scheduled component.
        self.src = link_src_key(link.index());
        let now = self.now;
        let l = link_rt_mut(&mut self.links, link);
        // marnet-lint: allow(panic-path): departure events are only scheduled by start_tx after setting in_flight
        let pkt = l.in_flight.take().expect("departure without in-flight packet");
        l.stats.tx_packets += 1;
        l.stats.tx_bytes += u64::from(pkt.size);

        let lost = match l.loss {
            LossModel::None => false,
            LossModel::Bernoulli { p } => l.rng.gen_bool(p.clamp(0.0, 1.0)),
            LossModel::GilbertElliott { p_good_to_bad, p_bad_to_good, loss_in_bad } => {
                if l.ge_bad {
                    if l.rng.gen_bool(p_bad_to_good.clamp(0.0, 1.0)) {
                        l.ge_bad = false;
                    }
                } else if l.rng.gen_bool(p_good_to_bad.clamp(0.0, 1.0)) {
                    l.ge_bad = true;
                }
                l.ge_bad && l.rng.gen_bool(loss_in_bad.clamp(0.0, 1.0))
            }
        };

        let t = now.as_nanos();
        let comp = component::link(link.index());
        let (pid, pflow, psize) = (pkt.id, pkt.flow, pkt.size);
        if !l.up {
            l.stats.drops_down += 1;
            self.trace.emit_with(|| {
                TraceEvent::packet_drop(t, comp, DropReason::LinkDown, pid, pflow, psize)
            });
        } else if lost {
            l.stats.drops_loss += 1;
            self.trace.emit_with(|| {
                TraceEvent::packet_drop(t, comp, DropReason::Loss, pid, pflow, psize)
            });
        } else {
            let jitter = match l.jitter {
                Jitter::None => SimDuration::ZERO,
                Jitter::Uniform { max } => {
                    SimDuration::from_nanos(l.rng.gen_range(0..=max.as_nanos()))
                }
                Jitter::Gaussian { sigma } => {
                    // Box-Muller; half-normal truncated at 3 sigma.
                    let u1: f64 = l.rng.gen_range(f64::EPSILON..1.0);
                    let u2: f64 = l.rng.gen();
                    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                    let nanos = (z.abs().min(3.0) * sigma.as_nanos() as f64) as u64;
                    SimDuration::from_nanos(nanos)
                }
            };
            let arrival = now.saturating_add(l.delay + jitter);
            self.push(arrival, Dest::LinkArrival { link, packet: pkt });
        }
        self.start_tx(link);
    }

    /// Current rate of a link.
    pub fn link_rate(&self, link: LinkId) -> Bandwidth {
        link_rt(&self.links, link).rate
    }

    /// Nominal capacity of a link: the rate it was created with. Unlike
    /// [`SimCtx::link_rate`] this never changes, so hybrid-fidelity
    /// couplers that modulate the live rate (see `marnet-flow`) can still
    /// recover the physical capacity they are sharing out.
    pub fn link_capacity(&self, link: LinkId) -> Bandwidth {
        link_rt(&self.links, link).capacity
    }

    /// Changes a link's rate. Takes effect for the next serialized packet.
    pub fn set_link_rate(&mut self, link: LinkId, rate: Bandwidth) {
        let l = link_rt_mut(&mut self.links, link);
        l.rate = rate;
        let kick = !l.busy && !l.queue.is_empty();
        if kick {
            self.start_tx(link);
        }
    }

    /// Whether a link is administratively up.
    pub fn link_is_up(&self, link: LinkId) -> bool {
        link_rt(&self.links, link).up
    }

    /// Brings a link up or down. While down, offered and departing packets
    /// are dropped; queued packets are held.
    pub fn set_link_up(&mut self, link: LinkId, up: bool) {
        let l = link_rt_mut(&mut self.links, link);
        l.up = up;
        let kick = up && !l.busy && !l.queue.is_empty();
        if kick {
            self.start_tx(link);
        }
    }

    /// Changes a link's loss model on the fly.
    pub fn set_link_loss(&mut self, link: LinkId, loss: LossModel) {
        link_rt_mut(&mut self.links, link).loss = loss;
    }

    /// Cumulative counters for a link.
    pub fn link_stats(&self, link: LinkId) -> LinkStats {
        link_rt(&self.links, link).stats
    }

    /// Queue occupancy of a link's transmitter: `(packets, bytes)`.
    pub fn link_queue_len(&self, link: LinkId) -> (usize, u64) {
        let l = link_rt(&self.links, link);
        (l.queue.len_packets(), l.queue.len_bytes())
    }

    /// One-way propagation delay of a link.
    pub fn link_delay(&self, link: LinkId) -> SimDuration {
        link_rt(&self.links, link).delay
    }

    /// Changes a link's one-way propagation delay on the fly. Packets
    /// already in flight keep the delay they departed with; the fault layer
    /// uses this for latency-spike episodes.
    pub fn set_link_delay(&mut self, link: LinkId, delay: SimDuration) {
        link_rt_mut(&mut self.links, link).delay = delay;
    }

    /// The receiving actor of a link.
    pub fn link_dst(&self, link: LinkId) -> ActorId {
        link_rt(&self.links, link).dst
    }

    /// The sending actor of a link.
    pub fn link_src(&self, link: LinkId) -> ActorId {
        link_rt(&self.links, link).src
    }

    /// `true` while the flight recorder is capturing events. Instrumented
    /// actors may use this to skip preparing expensive event operands.
    #[inline]
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_enabled()
    }

    /// Records the trace event built by `f` when the flight recorder is
    /// enabled; a no-op (one predictable branch, the closure never runs)
    /// otherwise. Actors above the engine — protocol endpoints, offload
    /// pipelines — use this for their own event kinds (class admit/degrade,
    /// FEC repair, path switch, offload dispatch).
    #[inline]
    pub fn trace_with(&mut self, f: impl FnOnce() -> TraceEvent) {
        self.trace.emit_with(f);
    }

    /// Takes all recorded trace events in chronological order, leaving the
    /// recorder enabled and empty. Empty when recording is off.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.take_events()
    }

    /// Updates the per-link queue gauges (and the queue-delay series when a
    /// packet was just dequeued). No-op unless metrics were enabled.
    #[inline]
    fn note_queue_metrics(&self, link: LinkId, dequeue_delay_nanos: Option<u64>) {
        let Some(gauges) = &self.link_gauges else { return };
        let Some(g) = gauges.get(link.index()) else { return };
        let l = link_rt(&self.links, link);
        g.queue_packets.set(l.queue.len_packets() as f64);
        g.queue_bytes.set(l.queue.len_bytes() as f64);
        if let Some(d) = dequeue_delay_nanos {
            g.queue_delay_ms.observe(self.now.as_nanos(), d as f64 / 1e6);
        }
    }
}

/// The simulator: an event loop over a set of actors and links.
///
/// See the [crate-level documentation](crate) for a complete example.
pub struct Simulator {
    ctx: SimCtx,
    actors: Vec<Option<Box<dyn Actor>>>,
    started: Vec<bool>,
    event_limit: u64,
}

impl fmt::Debug for Simulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.ctx.now)
            .field("actors", &self.actors.len())
            .field("links", &self.ctx.links.len())
            .finish()
    }
}

impl Simulator {
    /// Creates an empty simulator with the given experiment seed and the
    /// *ambient* tie-break policy (FIFO unless the caller is inside a
    /// [`crate::config::with_ambient_tie_break`] scope — which is how
    /// `marnet-lab racecheck` perturbs scenario runners that construct
    /// their own simulator internally).
    pub fn new(seed: u64) -> Self {
        Self::with_config(
            &crate::config::SimConfig::new(seed).tie_break(crate::config::ambient_tie_break()),
        )
    }

    /// Creates an empty simulator from an explicit [`crate::config::SimConfig`].
    pub fn with_config(config: &crate::config::SimConfig) -> Self {
        Simulator {
            ctx: SimCtx {
                now: SimTime::ZERO,
                seed: config.seed,
                queue: EventQueue::with_tie_break(config.tie_break),
                next_seq: 0,
                next_packet_id: 0,
                links: Vec::new(), // marnet-lint: allow(hot-path-alloc): Simulator construction, once per trial
                current_actor: ActorId(u32::MAX),
                src: SRC_SETUP,
                stopped: false,
                events_processed: 0,
                trace: TraceSink::Off,
                link_gauges: None,
            },
            actors: Vec::new(), // marnet-lint: allow(hot-path-alloc): Simulator construction, once per trial
            started: Vec::new(), // marnet-lint: allow(hot-path-alloc): Simulator construction, once per trial
            event_limit: u64::MAX,
        }
    }

    /// Caps the number of events a single `run_*` call may process; exceeded
    /// budgets abort the run (guards against zero-delay event loops in
    /// actor bugs).
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Reserves an actor slot so links can reference the actor before it is
    /// constructed. Must be filled with [`Simulator::install_actor`] before
    /// the simulation runs.
    pub fn reserve_actor(&mut self) -> ActorId {
        let id = ActorId(self.actors.len() as u32);
        self.actors.push(None);
        self.started.push(false);
        id
    }

    /// Installs an actor into a reserved slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already filled.
    pub fn install_actor<A: Actor + 'static>(&mut self, id: ActorId, actor: A) {
        let slot = actor_slot_mut(&mut self.actors, id);
        assert!(slot.is_none(), "actor slot {id} already filled");
        // marnet-lint: allow(hot-path-alloc): actor installation happens at topology build, not per event
        *slot = Some(Box::new(actor));
    }

    /// Reserves a slot and installs the actor in one step.
    pub fn add_actor<A: Actor + 'static>(&mut self, actor: A) -> ActorId {
        let id = self.reserve_actor();
        self.install_actor(id, actor);
        id
    }

    /// Adds a directed link from `src` to `dst`.
    pub fn add_link(&mut self, src: ActorId, dst: ActorId, params: LinkParams) -> LinkId {
        let id = LinkId(self.ctx.links.len() as u32);
        let rng = crate::rng::derive_rng(self.ctx.seed, &format!("sim.link.{}", id.index()));
        self.ctx.links.push(LinkRuntime {
            src,
            dst,
            rate: params.rate,
            capacity: params.rate,
            delay: params.delay,
            jitter: params.jitter,
            loss: params.loss,
            queue: params.queue.build(),
            busy: false,
            up: params.up,
            ge_bad: false,
            in_flight: None,
            stats: LinkStats::default(),
            rng,
        });
        id
    }

    /// Immutable access to engine state between runs (time, stats, queues).
    pub fn ctx(&self) -> &SimCtx {
        &self.ctx
    }

    /// Mutable access to engine state between runs, e.g. to reconfigure
    /// links from test code.
    pub fn ctx_mut(&mut self) -> &mut SimCtx {
        &mut self.ctx
    }

    fn deliver_starts(&mut self) {
        self.ctx.src = SRC_SETUP;
        for (i, (started, actor)) in self.started.iter_mut().zip(&self.actors).enumerate() {
            if !*started && actor.is_some() {
                *started = true;
                let id = ActorId(i as u32);
                self.ctx.push(self.ctx.now, Dest::Actor { id, event: Event::Start });
            }
        }
    }

    fn dispatch_to_actor(&mut self, id: ActorId, event: Event) {
        // Borrowing the actor in place is fine: `SimCtx` has no route back
        // to the actor table, so `on_event` cannot alias the slot.
        let actor = actor_slot_mut(&mut self.actors, id)
            .as_mut()
            // marnet-lint: allow(panic-path): delivering to a removed actor violates the documented take_actor contract
            .unwrap_or_else(|| panic!("event for uninstalled {id}"));
        self.ctx.current_actor = id;
        self.ctx.src = u64::from(id.0);
        actor.on_event(&mut self.ctx, event);
        self.ctx.current_actor = ActorId(u32::MAX);
        self.ctx.src = SRC_SETUP;
    }

    /// Runs the event loop until virtual time `end`, the event budget is
    /// exhausted, an actor calls [`SimCtx::stop`], or no events remain.
    /// Returns the number of events processed by this call.
    ///
    /// # Panics
    ///
    /// Panics if an event targets a reserved-but-never-installed actor.
    pub fn run_until(&mut self, end: SimTime) -> u64 {
        self.deliver_starts();
        self.ctx.stopped = false;
        let mut processed = 0;
        while processed < self.event_limit && !self.ctx.stopped {
            let Some((time, _seq, dest)) = self.ctx.queue.pop_at_most(end) else {
                break;
            };
            self.ctx.now = time;
            self.ctx.events_processed += 1;
            processed += 1;
            match dest {
                Dest::Actor { id, event } => self.dispatch_to_actor(id, event),
                Dest::LinkDeparture { link } => self.ctx.handle_departure(link),
                Dest::LinkArrival { link, packet } => {
                    // Coalesce back-to-back deliveries on the same link: the
                    // destination and component id are loop-invariant, and a
                    // bulk sender keeps the heap root parked on this link, so
                    // draining it here skips the outer-loop re-dispatch per
                    // packet. Per-packet stats, trace order and `now`
                    // advancement are identical to the uncoalesced loop.
                    let (dst, comp) = {
                        let l = link_rt(&self.ctx.links, link);
                        (l.dst, component::link(link.index()))
                    };
                    let mut time = time;
                    let mut packet = packet;
                    loop {
                        {
                            let l = link_rt_mut(&mut self.ctx.links, link);
                            l.stats.delivered_packets += 1;
                            l.stats.delivered_bytes += u64::from(packet.size);
                        }
                        let (pid, pflow, psize) = (packet.id, packet.flow, packet.size);
                        self.ctx.trace.emit_with(|| {
                            TraceEvent::packet_deliver(time.as_nanos(), comp, pid, pflow, psize)
                        });
                        self.dispatch_to_actor(dst, Event::Packet { link, packet });
                        if processed >= self.event_limit || self.ctx.stopped {
                            break;
                        }
                        let next = self.ctx.queue.pop_at_most_if(
                            end,
                            |_, d| matches!(d, Dest::LinkArrival { link: l2, .. } if *l2 == link),
                        );
                        match next {
                            Some((t2, _seq, Dest::LinkArrival { packet: p2, .. })) => {
                                self.ctx.now = t2;
                                self.ctx.events_processed += 1;
                                processed += 1;
                                time = t2;
                                packet = p2;
                            }
                            _ => break,
                        }
                    }
                }
            }
        }
        // Advance the clock to the horizon so stats over `end` are meaningful.
        if !self.ctx.stopped
            && processed < self.event_limit
            && self.ctx.now < end
            && end != SimTime::MAX
        {
            self.ctx.now = end;
        }
        processed
    }

    /// Runs until no events remain (or the event budget is exhausted).
    pub fn run_to_completion(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.ctx.now
    }

    /// Removes an actor from the simulation, returning it for inspection.
    ///
    /// The slot becomes empty; events still targeting it will panic, so only
    /// extract actors once the simulation is finished.
    pub fn take_actor(&mut self, id: ActorId) -> Option<Box<dyn Actor>> {
        actor_slot_mut(&mut self.actors, id).take()
    }

    /// Enables the flight recorder with a ring of `capacity` events.
    /// Subsequent engine activity (enqueue/drop/dequeue/deliver, link
    /// busy/idle) and actor [`SimCtx::trace_with`] calls are recorded.
    /// Events land in a small write-through chunk that flushes into the
    /// ring in batches, keeping the per-event cost to a bump-pointer push;
    /// the observable event stream is identical to an unbuffered ring.
    pub fn enable_flight_recorder(&mut self, capacity: usize) {
        self.ctx.trace = TraceSink::chunked(capacity);
    }

    /// Takes all recorded trace events (see [`SimCtx::take_trace`]).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.ctx.trace.take_events()
    }

    /// Registers per-link queue metrics (occupancy gauges and a queue-delay
    /// time series) in `registry` and keeps them live during the run. Call
    /// after the topology is built; links added later are not instrumented.
    pub fn enable_metrics(&mut self, registry: &MetricsRegistry) {
        let gauges = (0..self.ctx.links.len())
            .map(|i| LinkGauges {
                queue_packets: registry.gauge(&format!("sim.link.{i}.queue_packets")),
                queue_bytes: registry.gauge(&format!("sim.link.{i}.queue_bytes")),
                // 100 ms buckets: fine enough to see bufferbloat build up,
                // coarse enough to stay small over multi-minute runs.
                queue_delay_ms: registry
                    .time_histogram(&format!("sim.link.{i}.queue_delay_ms"), 100_000_000),
            })
            .collect();
        self.ctx.link_gauges = Some(gauges);
    }

    /// Publishes each link's cumulative [`LinkStats`] counters into
    /// `registry` (`sim.link.{i}.{offered,tx,delivered}_{packets,bytes}`,
    /// `sim.link.{i}.drops_{queue,aqm,loss,down}`). Intended post-run.
    pub fn publish_link_metrics(&self, registry: &MetricsRegistry) {
        for (i, l) in self.ctx.links.iter().enumerate() {
            let st = &l.stats;
            let add = |name: &str, v: u64| {
                if v > 0 {
                    registry.counter(&format!("sim.link.{i}.{name}")).add(v);
                }
            };
            add("offered_packets", st.offered_packets);
            add("offered_bytes", st.offered_bytes);
            add("tx_packets", st.tx_packets);
            add("tx_bytes", st.tx_bytes);
            add("delivered_packets", st.delivered_packets);
            add("delivered_bytes", st.delivered_bytes);
            add("drops_queue", st.drops_queue);
            add("drops_aqm", st.drops_aqm);
            add("drops_loss", st.drops_loss);
            add("drops_down", st.drops_down);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Bandwidth;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Counts events it receives; used to probe engine mechanics.
    struct Probe {
        log: Rc<RefCell<Vec<(SimTime, String)>>>,
        echo_link: Option<LinkId>,
    }

    impl Actor for Probe {
        fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
            let entry = match &ev {
                Event::Start => "start".to_string(),
                Event::Packet { packet, .. } => format!("pkt:{}", packet.id),
                Event::Timer { tag } => format!("timer:{tag}"),
                Event::Message { .. } => "msg".to_string(),
            };
            self.log.borrow_mut().push((ctx.now(), entry));
            if let (Some(link), Event::Packet { packet, .. }) = (self.echo_link, &ev) {
                ctx.transmit(link, packet.clone());
            }
        }
    }

    fn probe(log: &Rc<RefCell<Vec<(SimTime, String)>>>) -> Probe {
        Probe { log: Rc::clone(log), echo_link: None }
    }

    #[test]
    fn start_events_fire_once() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(1);
        sim.add_actor(probe(&log));
        sim.run_until(SimTime::from_secs(1));
        sim.run_until(SimTime::from_secs(2));
        let starts = log.borrow().iter().filter(|(_, e)| e == "start").count();
        assert_eq!(starts, 1);
    }

    #[test]
    fn timers_fire_in_order_and_cancel() {
        struct TimerActor {
            log: Rc<RefCell<Vec<u64>>>,
        }
        impl Actor for TimerActor {
            fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
                match ev {
                    Event::Start => {
                        ctx.schedule_timer(SimDuration::from_millis(30), 3);
                        ctx.schedule_timer(SimDuration::from_millis(10), 1);
                        let h = ctx.schedule_timer(SimDuration::from_millis(20), 2);
                        ctx.cancel_timer(h);
                    }
                    Event::Timer { tag } => self.log.borrow_mut().push(tag),
                    _ => {}
                }
            }
        }
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(1);
        sim.add_actor(TimerActor { log: Rc::clone(&log) });
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(*log.borrow(), vec![1, 3]);
    }

    #[test]
    fn packet_latency_is_serialization_plus_delay() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(1);
        let a = sim.reserve_actor();
        let b = sim.reserve_actor();
        // 1 Mb/s, 5 ms: a 1250-byte packet takes 10 ms + 5 ms = 15 ms.
        let l = sim.add_link(
            a,
            b,
            LinkParams::new(Bandwidth::from_mbps(1.0), SimDuration::from_millis(5)),
        );
        struct Sender {
            link: LinkId,
        }
        impl Actor for Sender {
            fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
                if matches!(ev, Event::Start) {
                    let id = ctx.next_packet_id();
                    ctx.transmit(self.link, Packet::new(id, 0, 1250, ctx.now()));
                }
            }
        }
        sim.install_actor(a, Sender { link: l });
        sim.install_actor(b, probe(&log));
        sim.run_until(SimTime::from_secs(1));
        let log = log.borrow();
        let (t, e) = log.iter().find(|(_, e)| e.starts_with("pkt")).unwrap();
        assert_eq!(e, "pkt:0");
        assert_eq!(*t, SimTime::from_millis(15));
    }

    #[test]
    fn queueing_delay_accumulates_back_to_back() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(1);
        let a = sim.reserve_actor();
        let b = sim.reserve_actor();
        let l = sim.add_link(a, b, LinkParams::new(Bandwidth::from_mbps(1.0), SimDuration::ZERO));
        struct Burst {
            link: LinkId,
        }
        impl Actor for Burst {
            fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
                if matches!(ev, Event::Start) {
                    for _ in 0..3 {
                        let id = ctx.next_packet_id();
                        ctx.transmit(self.link, Packet::new(id, 0, 1250, ctx.now()));
                    }
                }
            }
        }
        sim.install_actor(a, Burst { link: l });
        sim.install_actor(b, probe(&log));
        sim.run_until(SimTime::from_secs(1));
        let times: Vec<SimTime> =
            log.borrow().iter().filter(|(_, e)| e.starts_with("pkt")).map(|(t, _)| *t).collect();
        assert_eq!(
            times,
            vec![SimTime::from_millis(10), SimTime::from_millis(20), SimTime::from_millis(30)]
        );
    }

    #[test]
    fn bernoulli_loss_drops_roughly_p() {
        let mut sim = Simulator::new(7);
        let a = sim.reserve_actor();
        let b = sim.reserve_actor();
        let params = LinkParams::new(Bandwidth::from_mbps(100.0), SimDuration::ZERO)
            .with_loss(LossModel::Bernoulli { p: 0.3 })
            .with_queue(QueueConfigLarge());
        let l = sim.add_link(a, b, params);
        struct Flood {
            link: LinkId,
        }
        impl Actor for Flood {
            fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
                if matches!(ev, Event::Start) {
                    for _ in 0..5000 {
                        let id = ctx.next_packet_id();
                        ctx.transmit(self.link, Packet::new(id, 0, 100, ctx.now()));
                    }
                }
            }
        }
        struct Sink;
        impl Actor for Sink {
            fn on_event(&mut self, _: &mut SimCtx, _: Event) {}
        }
        sim.install_actor(a, Flood { link: l });
        sim.install_actor(b, Sink);
        sim.run_to_completion();
        let st = sim.ctx().link_stats(l);
        assert_eq!(st.tx_packets, 5000);
        let loss = st.drops_loss as f64 / 5000.0;
        assert!((loss - 0.3).abs() < 0.03, "measured loss {loss}");
        assert_eq!(st.delivered_packets + st.drops_loss, 5000);
    }

    #[allow(non_snake_case)]
    fn QueueConfigLarge() -> crate::queue::QueueConfig {
        crate::queue::QueueConfig::DropTail { cap_packets: 100_000 }
    }

    #[test]
    fn link_down_drops_and_up_resumes() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(1);
        let a = sim.reserve_actor();
        let b = sim.reserve_actor();
        let l = sim.add_link(
            a,
            b,
            LinkParams::new(Bandwidth::from_mbps(10.0), SimDuration::ZERO).initially_down(),
        );
        struct S {
            link: LinkId,
        }
        impl Actor for S {
            fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
                match ev {
                    Event::Start => {
                        let id = ctx.next_packet_id();
                        ctx.transmit(self.link, Packet::new(id, 0, 100, ctx.now()));
                        ctx.schedule_timer(SimDuration::from_millis(10), 0);
                    }
                    Event::Timer { .. } => {
                        ctx.set_link_up(self.link, true);
                        let id = ctx.next_packet_id();
                        ctx.transmit(self.link, Packet::new(id, 0, 100, ctx.now()));
                    }
                    _ => {}
                }
            }
        }
        sim.install_actor(a, S { link: l });
        sim.install_actor(b, probe(&log));
        sim.run_until(SimTime::from_secs(1));
        let st = sim.ctx().link_stats(l);
        assert_eq!(st.drops_down, 1);
        assert_eq!(st.delivered_packets, 1);
        assert_eq!(log.borrow().iter().filter(|(_, e)| e.starts_with("pkt")).count(), 1);
    }

    #[test]
    fn rate_change_kicks_stalled_queue() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(1);
        let a = sim.reserve_actor();
        let b = sim.reserve_actor();
        let l = sim.add_link(a, b, LinkParams::new(Bandwidth::ZERO, SimDuration::ZERO));
        struct S {
            link: LinkId,
        }
        impl Actor for S {
            fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
                match ev {
                    Event::Start => {
                        let id = ctx.next_packet_id();
                        ctx.transmit(self.link, Packet::new(id, 0, 1250, ctx.now()));
                        ctx.schedule_timer(SimDuration::from_millis(50), 0);
                    }
                    Event::Timer { .. } => {
                        ctx.set_link_rate(self.link, Bandwidth::from_mbps(1.0));
                    }
                    _ => {}
                }
            }
        }
        sim.install_actor(a, S { link: l });
        sim.install_actor(b, probe(&log));
        sim.run_until(SimTime::from_secs(1));
        let times: Vec<SimTime> =
            log.borrow().iter().filter(|(_, e)| e.starts_with("pkt")).map(|(t, _)| *t).collect();
        // Stalled until t=50ms, then 10 ms serialization.
        assert_eq!(times, vec![SimTime::from_millis(60)]);
    }

    #[test]
    fn messages_are_delivered_same_instant_in_order() {
        struct Sender {
            peer: ActorId,
        }
        impl Actor for Sender {
            fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
                if matches!(ev, Event::Start) {
                    ctx.send_message(self.peer, Payload::new(1u32));
                    ctx.send_message(self.peer, Payload::new(2u32));
                }
            }
        }
        struct Receiver {
            got: Rc<RefCell<Vec<u32>>>,
        }
        impl Actor for Receiver {
            fn on_event(&mut self, _ctx: &mut SimCtx, ev: Event) {
                if let Event::Message { mut msg, .. } = ev {
                    self.got.borrow_mut().push(msg.take::<u32>().unwrap());
                }
            }
        }
        let got = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(1);
        let r = sim.reserve_actor();
        sim.add_actor(Sender { peer: r });
        sim.install_actor(r, Receiver { got: Rc::clone(&got) });
        sim.run_until(SimTime::from_millis(1));
        assert_eq!(*got.borrow(), vec![1, 2]);
    }

    #[test]
    fn lifo_tie_break_reverses_sources_but_keeps_program_order() {
        // Two independent senders emit same-instant messages to one
        // receiver. Perturbation is source-granular: LIFO reverses the
        // interleaving *across* the senders but must keep each sender's
        // own messages in program order (a same-source same-time pair is
        // a causal chain no real schedule could reorder).
        struct Sender {
            peer: ActorId,
            msgs: &'static [u32],
        }
        impl Actor for Sender {
            fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
                if matches!(ev, Event::Start) {
                    for &m in self.msgs {
                        ctx.send_message(self.peer, Payload::new(m));
                    }
                }
            }
        }
        struct Receiver {
            got: Rc<RefCell<Vec<u32>>>,
        }
        impl Actor for Receiver {
            fn on_event(&mut self, _ctx: &mut SimCtx, ev: Event) {
                if let Event::Message { mut msg, .. } = ev {
                    self.got.borrow_mut().push(msg.take::<u32>().unwrap());
                }
            }
        }
        let build = |sim: &mut Simulator| {
            let got = Rc::new(RefCell::new(Vec::new()));
            let r = sim.reserve_actor();
            sim.install_actor(r, Receiver { got: Rc::clone(&got) });
            sim.add_actor(Sender { peer: r, msgs: &[1] });
            sim.add_actor(Sender { peer: r, msgs: &[2, 3] });
            got
        };
        let run = |cfg: crate::config::SimConfig| {
            let mut sim = Simulator::with_config(&cfg);
            let got = build(&mut sim);
            sim.run_until(SimTime::from_millis(1));
            let out = got.borrow().clone();
            out
        };
        use crate::config::{with_ambient_tie_break, SimConfig, TieBreak};
        assert_eq!(run(SimConfig::new(1)), vec![1, 2, 3]);
        // LIFO: the higher-indexed sender's burst runs first, internally
        // still in program order.
        assert_eq!(run(SimConfig::new(1).tie_break(TieBreak::Lifo)), vec![2, 3, 1]);
        // The ambient scope routes the same policy through Simulator::new.
        let ambient = with_ambient_tie_break(TieBreak::Lifo, || {
            let mut sim = Simulator::new(1);
            let got = build(&mut sim);
            sim.run_until(SimTime::from_millis(1));
            let out = got.borrow().clone();
            out
        });
        assert_eq!(ambient, vec![2, 3, 1]);
    }

    #[test]
    fn event_limit_halts_runaway() {
        struct Loopy;
        impl Actor for Loopy {
            fn on_event(&mut self, ctx: &mut SimCtx, _: Event) {
                let me = ctx.self_id();
                ctx.send_message(me, Payload::empty());
            }
        }
        let mut sim = Simulator::new(1);
        sim.add_actor(Loopy);
        sim.set_event_limit(1000);
        let processed = sim.run_until(SimTime::from_secs(1));
        assert_eq!(processed, 1000);
    }

    #[test]
    fn clock_advances_to_horizon_when_idle() {
        let mut sim = Simulator::new(1);
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn stop_halts_immediately() {
        struct Stopper;
        impl Actor for Stopper {
            fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
                match ev {
                    Event::Start => {
                        ctx.schedule_timer(SimDuration::from_millis(1), 0);
                        ctx.schedule_timer(SimDuration::from_millis(2), 1);
                    }
                    Event::Timer { tag: 0 } => ctx.stop(),
                    Event::Timer { .. } => panic!("should have stopped"),
                    _ => {}
                }
            }
        }
        let mut sim = Simulator::new(1);
        sim.add_actor(Stopper);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.now(), SimTime::from_millis(1));
    }

    #[test]
    fn deterministic_across_runs() {
        fn run() -> (u64, u64) {
            let mut sim = Simulator::new(99);
            let a = sim.reserve_actor();
            let b = sim.reserve_actor();
            let params = LinkParams::new(Bandwidth::from_mbps(5.0), SimDuration::from_millis(2))
                .with_loss(LossModel::GilbertElliott {
                    p_good_to_bad: 0.05,
                    p_bad_to_good: 0.3,
                    loss_in_bad: 0.5,
                })
                .with_jitter(Jitter::Gaussian { sigma: SimDuration::from_micros(500) });
            let l = sim.add_link(a, b, params);
            struct Flood {
                link: LinkId,
            }
            impl Actor for Flood {
                fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
                    match ev {
                        Event::Start | Event::Timer { .. } => {
                            let id = ctx.next_packet_id();
                            ctx.transmit(self.link, Packet::new(id, 0, 1000, ctx.now()));
                            if ctx.now() < SimTime::from_millis(500) {
                                ctx.schedule_timer(SimDuration::from_micros(800), 0);
                            }
                        }
                        _ => {}
                    }
                }
            }
            struct Sink;
            impl Actor for Sink {
                fn on_event(&mut self, _: &mut SimCtx, _: Event) {}
            }
            sim.install_actor(a, Flood { link: l });
            sim.install_actor(b, Sink);
            sim.run_to_completion();
            let st = sim.ctx().link_stats(l);
            (st.delivered_packets, st.drops_loss)
        }
        assert_eq!(run(), run());
    }
}
