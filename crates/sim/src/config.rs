//! Simulator configuration: the experiment seed plus the event-queue
//! tie-break policy.
//!
//! The engine's determinism invariant is stronger than "same seed, same
//! artifact": the headline claims (byte-identical artifacts at any
//! `--threads`, the tuned-vs-default policy tables, the perf ratchet) must
//! not depend on *which order equal-timestamp events happen to run in*.
//! Today that order is FIFO by insertion sequence; the planned hybrid
//! fidelity sharding work will reorder exactly those ties at inter-region
//! boundaries. [`TieBreak`] makes the tie order an explicit, perturbable
//! policy so `marnet-lab racecheck` can replay whole experiments under
//! adversarial tie orders and fail loudly if any artifact byte moves.
//!
//! Every policy is itself deterministic: given the same seed and the same
//! policy, a run is bit-for-bit reproducible. The policies differ only in
//! which total order they impose on entries that share a timestamp.

use std::cell::Cell;

/// How the event queue orders entries that share a timestamp.
///
/// The heap's comparison key is `(time, ord, seq)` where `ord` is computed
/// at push time from the *scheduling source* — the component (actor, link,
/// or setup code) whose handler scheduled the entry — and `seq` is the raw
/// insertion sequence (kept as the final component so every policy yields
/// a *total* order even when `ord` collides).
///
/// Perturbation is source-granular on purpose: events scheduled by the
/// same component at the same instant form a causal chain (a burst of
/// segments, a message relayed hop by hop) that no real schedule could
/// reorder, so every policy preserves their program order (`ord` equal,
/// `seq` decides). Only the interleaving *across* components — the part an
/// execution schedule genuinely does not fix — is permuted. Under
/// [`TieBreak::Fifo`] `ord` is constant, so the key degenerates to the
/// classic `(time, seq)` order and default-policy runs are bit-identical
/// to the pre-policy engine.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TieBreak {
    /// Equal-time entries run in insertion order. The default, and the
    /// order every committed golden artifact was produced under.
    #[default]
    Fifo,
    /// Equal-time entries from different sources run in *reverse* source
    /// order (highest component key first) — a deterministic adversarial
    /// inversion of the FIFO interleaving.
    Lifo,
    /// Equal-time entries from different sources run in a deterministic
    /// pseudo-random source order keyed by the carried seed: each source
    /// key is mixed through SplitMix64, so two runs with the same
    /// `Seeded(s)` agree exactly and two different seeds disagree almost
    /// everywhere.
    Seeded(u64),
}

impl TieBreak {
    /// Computes the tie-order component of the heap key for an entry
    /// scheduled by source `src` under this policy. SplitMix64 is
    /// bijective, so distinct sources always map to distinct `ord`s.
    #[inline]
    pub fn ord_of(self, src: u64) -> u64 {
        match self {
            TieBreak::Fifo => 0,
            TieBreak::Lifo => !src,
            TieBreak::Seeded(s) => splitmix64(src ^ s),
        }
    }

    /// A stable label for artifacts, CLI output and trace file names.
    pub fn label(self) -> String {
        match self {
            TieBreak::Fifo => "fifo".to_owned(),
            TieBreak::Lifo => "lifo".to_owned(),
            TieBreak::Seeded(s) => format!("seeded-{s:016x}"),
        }
    }

    /// Parses a label produced by [`TieBreak::label`] (or the short CLI
    /// forms `fifo` / `lifo` / `seeded:<u64>`).
    pub fn parse(s: &str) -> Option<TieBreak> {
        match s {
            "fifo" => Some(TieBreak::Fifo),
            "lifo" => Some(TieBreak::Lifo),
            _ => {
                let rest = s.strip_prefix("seeded-").or_else(|| s.strip_prefix("seeded:"))?;
                let seed = u64::from_str_radix(rest, 16).ok().or_else(|| rest.parse().ok())?;
                Some(TieBreak::Seeded(seed))
            }
        }
    }
}

/// The full configuration a [`crate::engine::Simulator`] is built from.
///
/// [`crate::engine::Simulator::new`] is shorthand for a `SimConfig` with
/// the ambient tie-break policy (see [`with_ambient_tie_break`]);
/// [`crate::engine::Simulator::with_config`] takes the policy explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// The experiment seed all per-link/per-actor substreams derive from.
    pub seed: u64,
    /// The equal-timestamp ordering policy for the event queue.
    pub tie_break: TieBreak,
}

impl SimConfig {
    /// A default-policy (FIFO) configuration for `seed`.
    pub fn new(seed: u64) -> Self {
        SimConfig { seed, tie_break: TieBreak::Fifo }
    }

    /// Replaces the tie-break policy (builder style).
    pub fn tie_break(mut self, policy: TieBreak) -> Self {
        self.tie_break = policy;
        self
    }
}

thread_local! {
    /// The ambient tie-break policy consulted by `Simulator::new`.
    static AMBIENT_TIE_BREAK: Cell<TieBreak> = const { Cell::new(TieBreak::Fifo) };
}

/// The tie-break policy `Simulator::new` will use on this thread right now.
pub fn ambient_tie_break() -> TieBreak {
    AMBIENT_TIE_BREAK.with(Cell::get)
}

/// Runs `f` with the ambient tie-break policy set to `policy`, restoring
/// the previous policy afterwards (also on panic/unwind).
///
/// This is the race detector's perturbation mechanism: scenario runners
/// construct their simulators internally via `Simulator::new(seed)`, so
/// `marnet-lab racecheck` wraps each trial body in this scope instead of
/// threading a policy parameter through every scenario signature. The
/// policy is thread-local, matching the lab runner's model of one trial
/// per worker thread at a time; it never leaks across trials because the
/// previous value is restored when the scope ends. A run's output is a
/// pure function of `(seed, policy)` either way — the ambient scope only
/// selects *which* policy, it adds no hidden state to the simulation.
pub fn with_ambient_tie_break<R>(policy: TieBreak, f: impl FnOnce() -> R) -> R {
    struct Restore(TieBreak);
    impl Drop for Restore {
        fn drop(&mut self) {
            AMBIENT_TIE_BREAK.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(AMBIENT_TIE_BREAK.with(|c| c.replace(policy)));
    f()
}

/// SplitMix64's output mixer: a bijective avalanche over `u64`, used to
/// shuffle source keys under [`TieBreak::Seeded`]. Bijectivity means
/// distinct sources keep distinct `ord`s, so the shuffled order is a true
/// permutation of the tied sources.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_ord_is_constant_lifo_reverses_sources() {
        // FIFO collapses every source to one ord: ties fall through to the
        // raw insertion sequence, i.e. the historical global-FIFO order.
        assert_eq!(TieBreak::Fifo.ord_of(0), TieBreak::Fifo.ord_of(7));
        // LIFO inverts the source order.
        assert!(TieBreak::Lifo.ord_of(0) > TieBreak::Lifo.ord_of(1));
        assert!(TieBreak::Lifo.ord_of(1) > TieBreak::Lifo.ord_of(2));
    }

    #[test]
    fn seeded_ord_is_seed_dependent_and_reproducible() {
        let a = TieBreak::Seeded(1);
        let b = TieBreak::Seeded(2);
        assert_eq!(a.ord_of(5), a.ord_of(5));
        assert_ne!(a.ord_of(5), b.ord_of(5));
        // Bijective mix: no collisions over a small prefix.
        let mut seen: Vec<u64> = (0..1000).map(|s| a.ord_of(s)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 1000);
    }

    #[test]
    fn labels_round_trip() {
        for policy in [TieBreak::Fifo, TieBreak::Lifo, TieBreak::Seeded(0xdead_beef)] {
            assert_eq!(TieBreak::parse(&policy.label()), Some(policy));
        }
        assert_eq!(TieBreak::parse("seeded:42"), Some(TieBreak::Seeded(0x42)));
        assert_eq!(TieBreak::parse("random"), None);
    }

    #[test]
    fn ambient_scope_sets_and_restores() {
        assert_eq!(ambient_tie_break(), TieBreak::Fifo);
        let inner = with_ambient_tie_break(TieBreak::Lifo, || {
            let nested = with_ambient_tie_break(TieBreak::Seeded(9), ambient_tie_break);
            assert_eq!(nested, TieBreak::Seeded(9));
            ambient_tie_break()
        });
        assert_eq!(inner, TieBreak::Lifo);
        assert_eq!(ambient_tie_break(), TieBreak::Fifo);
    }

    #[test]
    fn ambient_scope_restores_on_panic() {
        let caught = std::panic::catch_unwind(|| {
            with_ambient_tie_break(TieBreak::Lifo, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(ambient_tie_break(), TieBreak::Fifo);
    }
}
