//! Directed links: rate, delay, jitter, loss and queueing.
//!
//! A [`LinkParams`] describes one direction of a channel; asymmetric access
//! links (§IV-D of the paper) are simply two directed links with different
//! rates. Link rate and up/down state can be changed while the simulation
//! runs, which is how the wireless models in `marnet-radio` impose throughput
//! variance, coverage gaps and handover blackouts.

use crate::queue::QueueConfig;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a directed link within a [`crate::engine::Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub(crate) u32);

impl LinkId {
    /// The raw index of this link.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link#{}", self.0)
    }
}

/// A data rate.
///
/// ```
/// use marnet_sim::link::Bandwidth;
/// let b = Bandwidth::from_mbps(10.0);
/// assert_eq!(b.as_bps(), 10_000_000);
/// // Serializing 1500 bytes at 10 Mb/s takes 1.2 ms.
/// assert_eq!(b.serialization_time(1500).as_millis_f64(), 1.2);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Zero rate (a blocked link).
    pub const ZERO: Bandwidth = Bandwidth(0);

    /// A rate of `bps` bits per second.
    pub const fn from_bps(bps: u64) -> Self {
        Bandwidth(bps)
    }

    /// A rate of `kbps` kilobits per second.
    pub fn from_kbps(kbps: f64) -> Self {
        assert!(kbps.is_finite() && kbps >= 0.0, "invalid rate: {kbps}");
        Bandwidth((kbps * 1e3).round() as u64)
    }

    /// A rate of `mbps` megabits per second.
    pub fn from_mbps(mbps: f64) -> Self {
        assert!(mbps.is_finite() && mbps >= 0.0, "invalid rate: {mbps}");
        Bandwidth((mbps * 1e6).round() as u64)
    }

    /// A rate of `gbps` gigabits per second.
    pub fn from_gbps(gbps: f64) -> Self {
        assert!(gbps.is_finite() && gbps >= 0.0, "invalid rate: {gbps}");
        Bandwidth((gbps * 1e9).round() as u64)
    }

    /// The rate in bits per second.
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// The rate in megabits per second.
    pub fn as_mbps(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time to serialize `bytes` bytes at this rate.
    ///
    /// Returns [`SimDuration::MAX`] for a zero rate.
    pub fn serialization_time(self, bytes: u32) -> SimDuration {
        if self.0 == 0 {
            return SimDuration::MAX;
        }
        let nanos = (u128::from(bytes) * 8 * 1_000_000_000) / u128::from(self.0);
        SimDuration::from_nanos(nanos.min(u128::from(u64::MAX)) as u64)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.2}Gb/s", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.2}Mb/s", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.1}Kb/s", self.0 as f64 / 1e3)
        }
    }
}

/// Random per-packet propagation-delay perturbation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Jitter {
    /// No jitter.
    #[default]
    None,
    /// Uniform in `[0, max]`, added to the propagation delay.
    Uniform {
        /// Upper bound of the added delay.
        max: SimDuration,
    },
    /// Half-normal: `|N(0, sigma)|`, truncated at `3*sigma`.
    Gaussian {
        /// Standard deviation of the underlying normal.
        sigma: SimDuration,
    },
}

/// Random packet-loss process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum LossModel {
    /// Lossless.
    #[default]
    None,
    /// Independent loss with probability `p`.
    Bernoulli {
        /// Per-packet loss probability in `[0, 1]`.
        p: f64,
    },
    /// Two-state Gilbert-Elliott bursty loss.
    GilbertElliott {
        /// Probability of moving good → bad per packet.
        p_good_to_bad: f64,
        /// Probability of moving bad → good per packet.
        p_bad_to_good: f64,
        /// Loss probability while in the bad state.
        loss_in_bad: f64,
    },
}

/// Configuration for one directed link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkParams {
    /// Transmission rate.
    pub rate: Bandwidth,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Per-packet delay perturbation.
    pub jitter: Jitter,
    /// Packet loss process.
    pub loss: LossModel,
    /// Queueing discipline at the transmitter.
    pub queue: QueueConfig,
    /// Whether the link starts up.
    pub up: bool,
}

impl LinkParams {
    /// A lossless, jitter-free link with a default 100-packet drop-tail queue.
    pub fn new(rate: Bandwidth, delay: SimDuration) -> Self {
        LinkParams {
            rate,
            delay,
            jitter: Jitter::None,
            loss: LossModel::None,
            queue: QueueConfig::default(),
            up: true,
        }
    }

    /// Sets the jitter model, builder style.
    #[must_use]
    pub fn with_jitter(mut self, jitter: Jitter) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets the loss model, builder style.
    #[must_use]
    pub fn with_loss(mut self, loss: LossModel) -> Self {
        self.loss = loss;
        self
    }

    /// Sets the queueing discipline, builder style.
    #[must_use]
    pub fn with_queue(mut self, queue: QueueConfig) -> Self {
        self.queue = queue;
        self
    }

    /// Starts the link in the down state, builder style.
    #[must_use]
    pub fn initially_down(mut self) -> Self {
        self.up = false;
        self
    }
}

/// Why a packet never reached the far end of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DropCause {
    /// The queue rejected it (full, or AQM at enqueue).
    QueueFull,
    /// An AQM discarded it at dequeue time (CoDel-style).
    Aqm,
    /// The random loss process ate it on the wire.
    Loss,
    /// The link was administratively down.
    LinkDown,
}

/// Cumulative counters for one directed link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Packets offered to the link by actors.
    pub offered_packets: u64,
    /// Bytes offered to the link by actors.
    pub offered_bytes: u64,
    /// Packets fully serialized onto the wire.
    pub tx_packets: u64,
    /// Bytes fully serialized onto the wire.
    pub tx_bytes: u64,
    /// Packets delivered to the receiving actor.
    pub delivered_packets: u64,
    /// Bytes delivered to the receiving actor.
    pub delivered_bytes: u64,
    /// Drops because the queue was full.
    pub drops_queue: u64,
    /// Drops by the AQM at dequeue.
    pub drops_aqm: u64,
    /// Drops by the wire loss process.
    pub drops_loss: u64,
    /// Drops because the link was down.
    pub drops_down: u64,
}

impl LinkStats {
    /// All drops, regardless of cause.
    pub fn drops_total(&self) -> u64 {
        self.drops_queue + self.drops_aqm + self.drops_loss + self.drops_down
    }

    /// Fraction of offered packets that were delivered.
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered_packets == 0 {
            1.0
        } else {
            self.delivered_packets as f64 / self.offered_packets as f64
        }
    }

    /// Mean delivered goodput over the given horizon.
    pub fn delivered_rate(&self, horizon: SimTime) -> Bandwidth {
        let secs = horizon.as_secs_f64();
        if secs <= 0.0 {
            return Bandwidth::ZERO;
        }
        Bandwidth::from_bps((self.delivered_bytes as f64 * 8.0 / secs) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_conversions() {
        assert_eq!(Bandwidth::from_kbps(500.0).as_bps(), 500_000);
        assert_eq!(Bandwidth::from_mbps(1.5).as_bps(), 1_500_000);
        assert_eq!(Bandwidth::from_gbps(1.0).as_bps(), 1_000_000_000);
        assert_eq!(Bandwidth::from_mbps(10.0).as_mbps(), 10.0);
    }

    #[test]
    fn serialization_time() {
        // 1500 B at 1 Mb/s = 12 ms.
        let t = Bandwidth::from_mbps(1.0).serialization_time(1500);
        assert_eq!(t, SimDuration::from_millis(12));
        assert_eq!(Bandwidth::ZERO.serialization_time(1), SimDuration::MAX);
        // Zero-size packets serialize instantly.
        assert_eq!(Bandwidth::from_mbps(1.0).serialization_time(0), SimDuration::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(Bandwidth::from_mbps(42.0).to_string(), "42.00Mb/s");
        assert_eq!(Bandwidth::from_gbps(1.3).to_string(), "1.30Gb/s");
        assert_eq!(Bandwidth::from_kbps(55.0).to_string(), "55.0Kb/s");
    }

    #[test]
    fn params_builder() {
        let p = LinkParams::new(Bandwidth::from_mbps(10.0), SimDuration::from_millis(5))
            .with_loss(LossModel::Bernoulli { p: 0.01 })
            .with_jitter(Jitter::Uniform { max: SimDuration::from_millis(2) })
            .with_queue(QueueConfig::bloated_uplink())
            .initially_down();
        assert!(!p.up);
        assert_eq!(p.loss, LossModel::Bernoulli { p: 0.01 });
        assert_eq!(p.queue, QueueConfig::DropTail { cap_packets: 1000 });
    }

    #[test]
    fn stats_ratios() {
        let s = LinkStats {
            offered_packets: 10,
            delivered_packets: 8,
            delivered_bytes: 1000,
            drops_queue: 1,
            drops_loss: 1,
            ..Default::default()
        };
        assert_eq!(s.drops_total(), 2);
        assert!((s.delivery_ratio() - 0.8).abs() < 1e-12);
        assert_eq!(s.delivered_rate(SimTime::from_secs(1)).as_bps(), 8000);
        assert_eq!(s.delivered_rate(SimTime::ZERO), Bandwidth::ZERO);
        assert_eq!(LinkStats::default().delivery_ratio(), 1.0);
    }
}
