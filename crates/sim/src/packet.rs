//! Packets and their opaque, clonable payloads.
//!
//! The simulator core moves [`Packet`]s between actors without interpreting
//! them. Protocol crates (TCP in `marnet-transport`, the AR protocol in
//! `marnet-core`) attach their own header/payload structures through
//! [`Payload`], which type-erases any `Clone + Debug + 'static` value.
//! Cloning is required because multipath redundancy (§VI-D of the paper)
//! duplicates packets across links.

use crate::time::SimTime;
use std::any::Any;
use std::fmt;

/// A value that can travel inside a [`Packet`].
///
/// Automatically implemented for every `Clone + Debug + 'static` type; you
/// never implement it manually.
pub trait PayloadData: Any + fmt::Debug {
    /// Clones the payload behind the type-erased pointer.
    fn clone_box(&self) -> Box<dyn PayloadData>;
    /// Upcasts to [`Any`] for downcasting by reference.
    fn as_any(&self) -> &dyn Any;
    /// Upcasts to [`Any`] for downcasting by value.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

impl<T: Any + Clone + fmt::Debug> PayloadData for T {
    fn clone_box(&self) -> Box<dyn PayloadData> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// A type-erased, clonable packet payload.
///
/// ```
/// use marnet_sim::packet::Payload;
/// #[derive(Debug, Clone, PartialEq)]
/// struct Seg { seq: u64 }
/// let p = Payload::new(Seg { seq: 9 });
/// assert_eq!(p.downcast_ref::<Seg>().unwrap().seq, 9);
/// assert!(p.downcast_ref::<String>().is_none());
/// ```
pub struct Payload(Option<Box<dyn PayloadData>>);

impl Payload {
    /// An empty payload (pure filler bytes, e.g. bulk traffic).
    pub fn empty() -> Self {
        Payload(None)
    }

    /// Wraps a value as a packet payload.
    pub fn new<T: PayloadData>(value: T) -> Self {
        Payload(Some(Box::new(value)))
    }

    /// Returns `true` if no payload value is attached.
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }

    /// Borrows the payload as `T`, or `None` if empty or of another type.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.0.as_deref().and_then(|b| b.as_any().downcast_ref())
    }

    /// Takes the payload out as `T`.
    ///
    /// Returns `None` (leaving the payload in place) if it is empty or of a
    /// different type.
    pub fn take<T: Any>(&mut self) -> Option<T> {
        if self.downcast_ref::<T>().is_some() {
            let boxed = self.0.take().expect("checked above");
            Some(*boxed.into_any().downcast::<T>().expect("checked above"))
        } else {
            None
        }
    }
}

impl Clone for Payload {
    fn clone(&self) -> Self {
        Payload(self.0.as_deref().map(|b| b.clone_box()))
    }
}

impl Default for Payload {
    fn default() -> Self {
        Payload::empty()
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Some(b) => write!(f, "Payload({b:?})"),
            None => write!(f, "Payload(empty)"),
        }
    }
}

/// A simulated network packet.
///
/// `size` is the wire size in bytes and is what links serialize; the attached
/// [`Payload`] carries protocol state and contributes nothing to timing.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Globally unique packet identifier (from [`crate::engine::SimCtx::next_packet_id`]).
    pub id: u64,
    /// Flow identifier, used by fair queueing and per-flow statistics.
    pub flow: u64,
    /// Priority band, `0` = highest; used by priority queues (§VI-A).
    pub prio: u8,
    /// Wire size in bytes, including headers.
    pub size: u32,
    /// Instant the packet was created by its source.
    pub created: SimTime,
    /// Instant the packet was last enqueued (stamped by queues for AQM).
    pub enqueued: SimTime,
    /// Protocol payload.
    pub payload: Payload,
}

impl Packet {
    /// Creates a packet with an empty payload and default (highest) priority.
    pub fn new(id: u64, flow: u64, size: u32, created: SimTime) -> Self {
        Packet { id, flow, prio: 0, size, created, enqueued: created, payload: Payload::empty() }
    }

    /// Sets the payload, builder style.
    #[must_use]
    pub fn with_payload<T: PayloadData>(mut self, value: T) -> Self {
        self.payload = Payload::new(value);
        self
    }

    /// Sets the priority band, builder style (`0` = highest).
    #[must_use]
    pub fn with_prio(mut self, prio: u8) -> Self {
        self.prio = prio;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Header {
        seq: u32,
        tag: String,
    }

    #[test]
    fn payload_downcast_and_take() {
        let mut p = Payload::new(Header { seq: 5, tag: "a".into() });
        assert!(!p.is_empty());
        assert_eq!(p.downcast_ref::<Header>().unwrap().seq, 5);
        assert!(p.take::<u32>().is_none());
        let h = p.take::<Header>().unwrap();
        assert_eq!(h.tag, "a");
        assert!(p.is_empty());
        assert!(p.take::<Header>().is_none());
    }

    #[test]
    fn payload_clone_is_deep() {
        let p = Payload::new(Header { seq: 1, tag: "x".into() });
        let mut q = p.clone();
        let h = q.take::<Header>().unwrap();
        assert_eq!(h.seq, 1);
        // Original still intact.
        assert_eq!(p.downcast_ref::<Header>().unwrap().seq, 1);
    }

    #[test]
    fn packet_builder() {
        let pkt = Packet::new(1, 2, 1500, SimTime::from_millis(3))
            .with_prio(2)
            .with_payload(Header { seq: 7, tag: "t".into() });
        assert_eq!(pkt.prio, 2);
        assert_eq!(pkt.size, 1500);
        assert_eq!(pkt.payload.downcast_ref::<Header>().unwrap().seq, 7);
        let clone = pkt.clone();
        assert_eq!(clone.id, 1);
        assert_eq!(clone.payload.downcast_ref::<Header>().unwrap().tag, "t");
    }

    #[test]
    fn empty_payload_debug() {
        assert_eq!(format!("{:?}", Payload::empty()), "Payload(empty)");
    }
}
