//! Packets and their opaque, copy-on-write payloads.
//!
//! The simulator core moves [`Packet`]s between actors without interpreting
//! them. Protocol crates (TCP in `marnet-transport`, the AR protocol in
//! `marnet-core`) attach their own header/payload structures through
//! [`Payload`], which type-erases any `Clone + Debug + 'static` value.
//!
//! Cloning is required because multipath redundancy (§VI-D of the paper)
//! duplicates packets across links — but a duplicate carries the *same*
//! protocol value, so [`Payload`] is reference-counted: `clone` is a
//! refcount bump, and a deep copy of the underlying value happens only if
//! [`Payload::take`] is called while another clone is still alive.

use crate::time::SimTime;
use std::any::Any;
use std::fmt;
use std::rc::Rc;

/// A value that can travel inside a [`Packet`].
///
/// Automatically implemented for every `Clone + Debug + 'static` type; you
/// never implement it manually.
pub trait PayloadData: Any + fmt::Debug {
    /// Clones the payload behind the type-erased pointer (the deep-copy
    /// fallback of [`Payload::take`] on a shared payload).
    fn clone_box(&self) -> Box<dyn PayloadData>;
    /// Upcasts to [`Any`] for downcasting by reference.
    fn as_any(&self) -> &dyn Any;
    /// Upcasts to [`Any`] for downcasting by mutable reference (the
    /// in-place reuse path of [`Payload::try_mut`]).
    fn as_any_mut(&mut self) -> &mut dyn Any;
    /// Upcasts to [`Any`] for downcasting by value.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
    /// Upcasts the shared pointer to [`Any`] for downcasting by value
    /// without a copy when the payload is uniquely owned.
    fn into_any_rc(self: Rc<Self>) -> Rc<dyn Any>;
}

impl<T: Any + Clone + fmt::Debug> PayloadData for T {
    fn clone_box(&self) -> Box<dyn PayloadData> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
    fn into_any_rc(self: Rc<Self>) -> Rc<dyn Any> {
        self
    }
}

/// A type-erased, copy-on-write packet payload.
///
/// Cloning a `Payload` — as multipath duplication, FEC parity fan-out and
/// link-layer echoes do — bumps a reference count instead of deep-cloning
/// the protocol value. [`Payload::take`] moves the value out without a copy
/// when this is the only reference (the common case on the receive path)
/// and falls back to a deep clone only while the payload is genuinely
/// shared.
///
/// ```
/// use marnet_sim::packet::Payload;
/// #[derive(Debug, Clone, PartialEq)]
/// struct Seg { seq: u64 }
/// let p = Payload::new(Seg { seq: 9 });
/// assert_eq!(p.downcast_ref::<Seg>().unwrap().seq, 9);
/// assert!(p.downcast_ref::<String>().is_none());
/// ```
pub struct Payload(Option<Rc<dyn PayloadData>>);

impl Payload {
    /// An empty payload (pure filler bytes, e.g. bulk traffic).
    pub fn empty() -> Self {
        Payload(None)
    }

    /// Wraps a value as a packet payload.
    pub fn new<T: PayloadData>(value: T) -> Self {
        Payload(Some(Rc::new(value)))
    }

    /// Returns `true` if no payload value is attached.
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }

    /// Returns `true` while other clones of this payload are alive, i.e.
    /// while [`Payload::take`] would have to deep-clone.
    pub fn is_shared(&self) -> bool {
        self.0.as_ref().is_some_and(|rc| Rc::strong_count(rc) > 1)
    }

    /// Returns `true` when this is the only live reference to a non-empty
    /// payload — exactly when [`Payload::try_mut`] can succeed.
    pub fn is_unique(&self) -> bool {
        self.0.as_ref().is_some_and(|rc| Rc::strong_count(rc) == 1)
    }

    /// Mutably borrows the payload as `T` **without copying**, or returns
    /// `None` if the payload is empty, of another type, or still shared
    /// (other clones alive). This is the zero-allocation reuse path of
    /// [`PayloadPool`]: a retired payload value is overwritten in place
    /// instead of being reallocated.
    pub fn try_mut<T: Any>(&mut self) -> Option<&mut T> {
        let rc = self.0.as_mut()?;
        Rc::get_mut(rc)?.as_any_mut().downcast_mut()
    }

    /// Borrows the payload as `T`, or `None` if empty or of another type.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.0.as_deref().and_then(|b| b.as_any().downcast_ref())
    }

    /// Applies `f` to the payload borrowed as `T`, or returns `None` if it
    /// is empty or of another type — a copy-free alternative to
    /// `take`-then-read at call sites that only need to look.
    pub fn map_ref<T: Any, R>(&self, f: impl FnOnce(&T) -> R) -> Option<R> {
        self.downcast_ref::<T>().map(f)
    }

    /// Takes the payload out as `T`.
    ///
    /// Returns `None` (leaving the payload in place) if it is empty or of a
    /// different type. When this is the only live reference the value is
    /// moved out without copying; otherwise it is deep-cloned and the other
    /// references keep the original.
    pub fn take<T: Any>(&mut self) -> Option<T> {
        let rc = self.0.take()?;
        if !(*rc).as_any().is::<T>() {
            self.0 = Some(rc);
            return None;
        }
        if Rc::strong_count(&rc) == 1 {
            // Sole owner: unwrap in place. No weak refs exist (Payload
            // never hands any out), so the unwrap cannot fail.
            let rc = rc.into_any_rc().downcast::<T>().expect("type checked above");
            Some(Rc::try_unwrap(rc).unwrap_or_else(|_| unreachable!("strong_count was 1")))
        } else {
            // Shared: deep-clone the value out; other holders keep theirs.
            // (Deref explicitly: `rc.clone_box()` would resolve to the
            // blanket impl on `Rc<dyn PayloadData>` itself and box the Rc.)
            let boxed = (*rc).clone_box();
            Some(*boxed.into_any().downcast::<T>().expect("type checked above"))
        }
    }
}

impl Clone for Payload {
    /// A refcount bump — the payload value itself is not copied.
    fn clone(&self) -> Self {
        Payload(self.0.clone())
    }
}

impl Default for Payload {
    fn default() -> Self {
        Payload::empty()
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Some(b) => write!(f, "Payload({b:?})"),
            None => write!(f, "Payload(empty)"),
        }
    }
}

/// Default cap on the number of payload slots one [`PayloadPool`] retains.
///
/// A slot is only reusable once every clone of its payload has been
/// dropped, so the pool needs roughly as many slots as payloads of the
/// type are simultaneously in flight. The protocol hot paths keep a few
/// packets per path in the event queue at once; 64 covers them with
/// margin while bounding worst-case retained memory.
pub const DEFAULT_POOL_SLOTS: usize = 64;

/// A slab of reusable [`Payload`] values of one type.
///
/// The pool owns one `Payload` clone per slot. While a payload is in
/// flight (event queue, receiver, duplicate paths) its refcount is ≥ 2
/// and the slot is skipped; once every other clone is dropped the slot
/// becomes unique again and [`PayloadPool::prepare`] overwrites the value
/// in place — no `Rc` allocation, no boxed-value allocation. Steady-state
/// message traffic therefore allocates nothing.
///
/// **Receiver contract:** a pooled payload is *always* shared (the pool
/// holds one reference). Receivers must read it with
/// [`Payload::map_ref`]/[`Payload::downcast_ref`]; calling
/// [`Payload::take`] would deep-clone and defeat the pool.
///
/// Determinism: the pool changes where a value lives, never what it
/// contains — artifacts are byte-identical with pooling on or off (see
/// `set_enabled`, which exists so tests can prove exactly that).
pub struct PayloadPool<T> {
    slots: Vec<Payload>,
    cursor: usize,
    max_slots: usize,
    enabled: bool,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Any + Clone + fmt::Debug> PayloadPool<T> {
    /// An empty pool with the default slot cap.
    pub fn new() -> Self {
        Self::with_max_slots(DEFAULT_POOL_SLOTS)
    }

    /// An empty pool retaining at most `max_slots` payload slots; demand
    /// beyond the cap falls back to fresh allocation.
    pub fn with_max_slots(max_slots: usize) -> Self {
        PayloadPool {
            // marnet-lint: allow(hot-path-alloc): construction-time; `Vec::new` does not allocate
            slots: Vec::new(),
            cursor: 0,
            max_slots: max_slots.max(1),
            enabled: true,
            _marker: std::marker::PhantomData,
        }
    }

    /// Sets the enabled flag, builder style.
    #[must_use]
    pub fn with_enabled(mut self, enabled: bool) -> Self {
        self.set_enabled(enabled);
        self
    }

    /// Enables or disables reuse. A disabled pool always allocates fresh
    /// and retains nothing — the forced-fresh reference path used by the
    /// pooling-identity tests.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.slots.clear();
            self.cursor = 0;
        }
    }

    /// Returns `true` while reuse is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Number of payload slots currently retained.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` when no slots are retained.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Produces a payload containing a value built by `init` and then
    /// shaped by `update`.
    ///
    /// When an idle slot exists, `update` mutates the retired value in
    /// place and the returned payload is a refcount bump of that slot —
    /// zero allocations. Otherwise (or with reuse disabled) the value is
    /// freshly allocated; an enabled pool below its slot cap retains a
    /// clone so later calls can reuse it.
    pub fn prepare(&mut self, init: impl FnOnce() -> T, update: impl FnOnce(&mut T)) -> Payload {
        if self.enabled {
            let n = self.slots.len();
            for step in 0..n {
                let i = (self.cursor + step) % n;
                // marnet-lint: allow(panic-path): `% n` indexes an n-long vec
                if let Some(value) = self.slots[i].try_mut::<T>() {
                    update(value);
                    self.cursor = (i + 1) % n;
                    // marnet-lint: allow(panic-path): `% n` indexes an n-long vec
                    return self.slots[i].clone();
                }
            }
        }
        let mut value = init();
        update(&mut value);
        let payload = Payload::new(value);
        if self.enabled && self.slots.len() < self.max_slots {
            self.slots.push(payload.clone());
        }
        payload
    }
}

impl<T: Any + Clone + fmt::Debug> Default for PayloadPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> fmt::Debug for PayloadPool<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PayloadPool")
            .field("slots", &self.slots.len())
            .field("max_slots", &self.max_slots)
            .field("enabled", &self.enabled)
            .finish()
    }
}

/// A simulated network packet.
///
/// `size` is the wire size in bytes and is what links serialize; the attached
/// [`Payload`] carries protocol state and contributes nothing to timing.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Globally unique packet identifier (from [`crate::engine::SimCtx::next_packet_id`]).
    pub id: u64,
    /// Flow identifier, used by fair queueing and per-flow statistics.
    pub flow: u64,
    /// Priority band, `0` = highest; used by priority queues (§VI-A).
    pub prio: u8,
    /// Wire size in bytes, including headers.
    pub size: u32,
    /// Instant the packet was created by its source.
    pub created: SimTime,
    /// Instant the packet was last enqueued (stamped by queues for AQM).
    pub enqueued: SimTime,
    /// Protocol payload.
    pub payload: Payload,
}

impl Packet {
    /// Creates a packet with an empty payload and default (highest) priority.
    pub fn new(id: u64, flow: u64, size: u32, created: SimTime) -> Self {
        Packet { id, flow, prio: 0, size, created, enqueued: created, payload: Payload::empty() }
    }

    /// Sets the payload, builder style.
    #[must_use]
    pub fn with_payload<T: PayloadData>(mut self, value: T) -> Self {
        self.payload = Payload::new(value);
        self
    }

    /// Attaches an already-built payload — typically one leased from a
    /// [`PayloadPool`], which stays shared with the pool's slot — without
    /// re-wrapping it.
    #[must_use]
    pub fn with_shared_payload(mut self, payload: Payload) -> Self {
        self.payload = payload;
        self
    }

    /// Sets the priority band, builder style (`0` = highest).
    #[must_use]
    pub fn with_prio(mut self, prio: u8) -> Self {
        self.prio = prio;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Header {
        seq: u32,
        tag: String,
    }

    #[test]
    fn payload_downcast_and_take() {
        let mut p = Payload::new(Header { seq: 5, tag: "a".into() });
        assert!(!p.is_empty());
        assert_eq!(p.downcast_ref::<Header>().unwrap().seq, 5);
        assert!(p.take::<u32>().is_none());
        let h = p.take::<Header>().unwrap();
        assert_eq!(h.tag, "a");
        assert!(p.is_empty());
        assert!(p.take::<Header>().is_none());
    }

    #[test]
    fn payload_clone_is_cow() {
        let p = Payload::new(Header { seq: 1, tag: "x".into() });
        assert!(!p.is_shared());
        let mut q = p.clone();
        assert!(p.is_shared() && q.is_shared());
        // Taking from a shared payload deep-clones; the original survives.
        let h = q.take::<Header>().unwrap();
        assert_eq!(h.seq, 1);
        assert!(q.is_empty());
        assert_eq!(p.downcast_ref::<Header>().unwrap().seq, 1);
        // The original is unique again: take moves without copying.
        assert!(!p.is_shared());
        let mut p = p;
        assert_eq!(p.take::<Header>().unwrap().tag, "x");
    }

    #[test]
    fn take_on_unique_payload_moves() {
        // A type whose clone would be observable: cloning bumps a counter.
        use std::cell::Cell;
        use std::rc::Rc as StdRc;
        #[derive(Debug)]
        struct Probe(StdRc<Cell<u32>>);
        impl Clone for Probe {
            fn clone(&self) -> Self {
                self.0.set(self.0.get() + 1);
                Probe(StdRc::clone(&self.0))
            }
        }
        let clones = StdRc::new(Cell::new(0));
        let mut p = Payload::new(Probe(StdRc::clone(&clones)));
        let _v = p.take::<Probe>().unwrap();
        assert_eq!(clones.get(), 0, "unique take must not clone");

        let mut p = Payload::new(Probe(StdRc::clone(&clones)));
        let _shared = p.clone();
        let _v = p.take::<Probe>().unwrap();
        assert_eq!(clones.get(), 1, "shared take must deep-clone once");
    }

    #[test]
    fn map_ref_reads_in_place() {
        let p = Payload::new(Header { seq: 3, tag: "m".into() });
        assert_eq!(p.map_ref(|h: &Header| h.seq), Some(3));
        assert_eq!(p.map_ref(|s: &String| s.len()), None);
        assert_eq!(Payload::empty().map_ref(|h: &Header| h.seq), None);
    }

    #[test]
    fn try_mut_requires_unique_ownership() {
        let mut p = Payload::new(Header { seq: 1, tag: "a".into() });
        assert!(p.is_unique());
        p.try_mut::<Header>().unwrap().seq = 9;
        assert_eq!(p.downcast_ref::<Header>().unwrap().seq, 9);
        // Wrong type: untouched.
        assert!(p.try_mut::<u32>().is_none());
        // Shared: refused.
        let q = p.clone();
        assert!(!p.is_unique());
        assert!(p.try_mut::<Header>().is_none());
        drop(q);
        assert!(p.try_mut::<Header>().is_some());
        assert!(Payload::empty().try_mut::<Header>().is_none());
    }

    #[test]
    fn pool_reuses_slot_once_consumers_drop() {
        let mut pool: PayloadPool<Header> = PayloadPool::new();
        let first = pool.prepare(|| Header { seq: 0, tag: String::new() }, |h| h.seq = 1);
        assert_eq!(pool.len(), 1);
        assert_eq!(first.downcast_ref::<Header>().unwrap().seq, 1);
        drop(first);
        // The slot is idle again: reused in place, no second slot.
        let second = pool.prepare(|| Header { seq: 0, tag: String::new() }, |h| h.seq = 2);
        assert_eq!(pool.len(), 1);
        assert_eq!(second.downcast_ref::<Header>().unwrap().seq, 2);
    }

    #[test]
    fn pool_allocates_fresh_while_slots_are_in_flight() {
        let mut pool: PayloadPool<Header> = PayloadPool::new();
        let a = pool.prepare(|| Header { seq: 0, tag: String::new() }, |h| h.seq = 1);
        let b = pool.prepare(|| Header { seq: 0, tag: String::new() }, |h| h.seq = 2);
        assert_eq!(pool.len(), 2);
        // In-flight values are unaffected by later prepares.
        assert_eq!(a.downcast_ref::<Header>().unwrap().seq, 1);
        assert_eq!(b.downcast_ref::<Header>().unwrap().seq, 2);
    }

    #[test]
    fn pool_reuse_does_not_copy_the_value() {
        use std::cell::Cell;
        use std::rc::Rc as StdRc;
        #[derive(Debug)]
        struct Probe(u64, StdRc<Cell<u32>>);
        impl Clone for Probe {
            fn clone(&self) -> Self {
                self.1.set(self.1.get() + 1);
                Probe(self.0, StdRc::clone(&self.1))
            }
        }
        let clones = StdRc::new(Cell::new(0));
        let mut pool: PayloadPool<Probe> = PayloadPool::new();
        for i in 0..100 {
            let p = pool.prepare(|| Probe(0, StdRc::clone(&clones)), |v| v.0 = i);
            assert_eq!(p.downcast_ref::<Probe>().unwrap().0, i);
        }
        assert_eq!(pool.len(), 1, "steady state keeps one slot");
        assert_eq!(clones.get(), 0, "reuse must never clone the value");
    }

    #[test]
    fn disabled_pool_always_allocates_fresh() {
        let mut pool: PayloadPool<Header> = PayloadPool::new();
        pool.set_enabled(false);
        let a = pool.prepare(|| Header { seq: 0, tag: String::new() }, |h| h.seq = 7);
        assert!(pool.is_empty());
        assert!(a.is_unique(), "no pool reference retained");
        assert_eq!(a.downcast_ref::<Header>().unwrap().seq, 7);
    }

    #[test]
    fn pool_respects_slot_cap() {
        let mut pool: PayloadPool<Header> = PayloadPool::with_max_slots(2);
        let held: Vec<Payload> = (0..5)
            .map(|i| pool.prepare(|| Header { seq: 0, tag: String::new() }, |h| h.seq = i))
            .collect();
        assert_eq!(pool.len(), 2);
        drop(held);
    }

    #[test]
    fn packet_builder() {
        let pkt = Packet::new(1, 2, 1500, SimTime::from_millis(3))
            .with_prio(2)
            .with_payload(Header { seq: 7, tag: "t".into() });
        assert_eq!(pkt.prio, 2);
        assert_eq!(pkt.size, 1500);
        assert_eq!(pkt.payload.downcast_ref::<Header>().unwrap().seq, 7);
        let clone = pkt.clone();
        assert_eq!(clone.id, 1);
        assert_eq!(clone.payload.downcast_ref::<Header>().unwrap().tag, "t");
    }

    #[test]
    fn empty_payload_debug() {
        assert_eq!(format!("{:?}", Payload::empty()), "Payload(empty)");
    }
}
