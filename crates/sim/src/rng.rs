//! Deterministic random-number streams.
//!
//! Every stochastic component in the suite (link loss, jitter, wireless rate
//! variance, workload generators) draws from its own [`ChaCha12Rng`] stream
//! derived from the experiment seed plus a textual label. This keeps
//! experiments reproducible *and* insulated from each other: adding a new
//! random component does not perturb the draws of existing ones.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Derives an independent RNG stream from an experiment seed and a label.
///
/// The label is folded into the 256-bit ChaCha seed with an FNV-1a hash, so
/// distinct labels yield statistically independent streams.
///
/// ```
/// use marnet_sim::rng::derive_rng;
/// use rand::Rng;
/// let mut a = derive_rng(7, "link.loss");
/// let mut b = derive_rng(7, "link.loss");
/// let mut c = derive_rng(7, "link.jitter");
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// let x: u64 = a.gen();
/// let y: u64 = c.gen();
/// assert_ne!(x, y);
/// ```
pub fn derive_rng(seed: u64, label: &str) -> ChaCha12Rng {
    let mut key = [0u8; 32];
    // marnet-lint: allow(panic-path): constant ranges into a fixed [u8; 32]
    key[..8].copy_from_slice(&seed.to_le_bytes());
    let h1 = fnv1a(label.as_bytes(), 0xcbf2_9ce4_8422_2325);
    let h2 = fnv1a(label.as_bytes(), h1 ^ seed);
    // marnet-lint: allow(panic-path): constant ranges into a fixed [u8; 32]
    key[8..16].copy_from_slice(&h1.to_le_bytes());
    // marnet-lint: allow(panic-path): constant ranges into a fixed [u8; 32]
    key[16..24].copy_from_slice(&h2.to_le_bytes());
    // marnet-lint: allow(panic-path): constant ranges into a fixed [u8; 32]
    key[24..32].copy_from_slice(&(h1.wrapping_mul(h2) | 1).to_le_bytes());
    ChaCha12Rng::from_seed(key)
}

/// FNV-1a hash with a caller-supplied basis, used to mix labels into seeds.
fn fnv1a(bytes: &[u8], basis: u64) -> u64 {
    let mut hash = basis;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_label_same_stream() {
        let mut a = derive_rng(1, "x");
        let mut b = derive_rng(1, "x");
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_labels_diverge() {
        let mut a = derive_rng(1, "x");
        let mut b = derive_rng(1, "y");
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = derive_rng(1, "x");
        let mut b = derive_rng(2, "x");
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn empty_label_is_valid() {
        let mut a = derive_rng(3, "");
        let _ = a.gen::<u64>();
    }
}
