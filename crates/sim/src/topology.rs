//! Convenience builder for common topologies.
//!
//! The experiments mostly need small node graphs (mobile device, access
//! point, middleboxes, servers) with duplex links. [`TopologyBuilder`]
//! wraps a [`Simulator`] and remembers the links between named endpoints so
//! scenario code stays readable.

use crate::engine::{ActorId, Simulator};
use crate::link::{LinkId, LinkParams};
use std::collections::BTreeMap;

/// A pair of directed links forming a duplex channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Duplex {
    /// Link from the first endpoint to the second.
    pub forward: LinkId,
    /// Link from the second endpoint back to the first.
    pub reverse: LinkId,
}

impl Duplex {
    /// The two directions as `(forward, reverse)`.
    pub fn pair(self) -> (LinkId, LinkId) {
        (self.forward, self.reverse)
    }
}

/// Incrementally builds a simulator topology with duplex links.
///
/// ```
/// use marnet_sim::prelude::*;
///
/// let mut topo = TopologyBuilder::new(7);
/// let phone = topo.node("phone");
/// let server = topo.node("server");
/// let params = LinkParams::new(Bandwidth::from_mbps(20.0), SimDuration::from_millis(18));
/// let duplex = topo.duplex(phone, server, params.clone(), params);
/// let (sim, _) = topo.finish();
/// # let _ = (sim, duplex);
/// ```
#[derive(Debug)]
pub struct TopologyBuilder {
    sim: Simulator,
    names: BTreeMap<String, ActorId>,
}

impl TopologyBuilder {
    /// Starts a topology on a fresh simulator with the given seed.
    pub fn new(seed: u64) -> Self {
        TopologyBuilder { sim: Simulator::new(seed), names: BTreeMap::new() }
    }

    /// Reserves a named actor slot. Names are for diagnostics and lookup;
    /// re-using a name returns the existing id.
    pub fn node(&mut self, name: &str) -> ActorId {
        if let Some(&id) = self.names.get(name) {
            return id;
        }
        let id = self.sim.reserve_actor();
        self.names.insert(name.to_string(), id);
        id
    }

    /// Looks up a previously created node.
    pub fn lookup(&self, name: &str) -> Option<ActorId> {
        self.names.get(name).copied()
    }

    /// Adds a one-directional link.
    pub fn simplex(&mut self, from: ActorId, to: ActorId, params: LinkParams) -> LinkId {
        self.sim.add_link(from, to, params)
    }

    /// Adds a duplex channel with per-direction parameters (asymmetric links
    /// are two different parameter sets).
    pub fn duplex(
        &mut self,
        a: ActorId,
        b: ActorId,
        a_to_b: LinkParams,
        b_to_a: LinkParams,
    ) -> Duplex {
        Duplex {
            forward: self.sim.add_link(a, b, a_to_b),
            reverse: self.sim.add_link(b, a, b_to_a),
        }
    }

    /// Adds a symmetric duplex channel (same parameters both ways).
    pub fn symmetric(&mut self, a: ActorId, b: ActorId, params: LinkParams) -> Duplex {
        self.duplex(a, b, params.clone(), params)
    }

    /// Direct access to the underlying simulator (to install actors).
    pub fn sim_mut(&mut self) -> &mut Simulator {
        &mut self.sim
    }

    /// Finishes building, returning the simulator and the name table.
    pub fn finish(self) -> (Simulator, BTreeMap<String, ActorId>) {
        (self.sim, self.names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Bandwidth;
    use crate::time::SimDuration;

    #[test]
    fn nodes_are_deduplicated_by_name() {
        let mut t = TopologyBuilder::new(1);
        let a = t.node("a");
        let a2 = t.node("a");
        let b = t.node("b");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.lookup("a"), Some(a));
        assert_eq!(t.lookup("missing"), None);
    }

    #[test]
    fn duplex_creates_two_links() {
        let mut t = TopologyBuilder::new(1);
        let a = t.node("a");
        let b = t.node("b");
        let p = LinkParams::new(Bandwidth::from_mbps(1.0), SimDuration::from_millis(1));
        let d = t.symmetric(a, b, p);
        assert_ne!(d.forward, d.reverse);
        let (sim, names) = t.finish();
        assert_eq!(names.len(), 2);
        assert_eq!(sim.ctx().link_dst(d.forward), b);
        assert_eq!(sim.ctx().link_dst(d.reverse), a);
        assert_eq!(sim.ctx().link_src(d.forward), a);
        assert_eq!(d.pair(), (d.forward, d.reverse));
    }
}
