//! Topology partitioning into fidelity regions.
//!
//! The hybrid-fidelity tier (crate `marnet-flow`) models a *focus region*
//! — the cell or queue under study — at full packet level while the
//! surrounding metro runs as a fluid flow-level model. This module holds
//! the partition itself: named regions, each with a declared
//! [`Fidelity`], an actor → region assignment, and the set of *boundary
//! links* where the two tiers couple. It lives in `marnet-sim` (not in
//! `marnet-flow`) so the engine, transports and scenario builders can
//! talk about regions without depending on the fluid model.
//!
//! The map is plain data: it never touches the event loop and imposes no
//! cost on simulations that ignore it. All internal containers are
//! ordered (`Vec` / `BTreeMap`), so iteration order — and therefore any
//! artifact derived from it — is deterministic.

use crate::engine::ActorId;
use crate::link::{Bandwidth, LinkId};
use std::collections::BTreeMap;

/// A boundary-link rate update crossing the fidelity boundary.
///
/// The fluid tier sends this as an [`crate::engine::Event::Message`]
/// payload to the actor owning a packet-level boundary link (typically a
/// NIC); the receiver applies it with [`crate::engine::SimCtx::set_link_rate`].
/// It lives here — not in `marnet-flow` — so transports can apply updates
/// without depending on the fluid model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateUpdate {
    /// The packet-level link whose available rate changed.
    pub link: LinkId,
    /// The new available rate (capacity minus fluid background load).
    pub rate: Bandwidth,
}

/// How a region's traffic is modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fidelity {
    /// Full packet-level simulation: per-packet serialization, queueing
    /// discipline, jitter and loss on every link (the engine default).
    Packet,
    /// Flow-level fluid approximation: flows receive max-min fair rates
    /// and only rate-change / completion events are simulated.
    Fluid,
}

/// Identifies a region within one [`RegionMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(u32);

impl RegionId {
    /// The region's index in creation order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug)]
struct RegionInfo {
    name: String,
    fidelity: Fidelity,
}

/// A partition of the topology into fidelity regions.
///
/// Actors not assigned to any region are treated as belonging to an
/// implicit packet-level region — existing scenarios keep working
/// unchanged when a map is introduced.
#[derive(Debug, Default)]
pub struct RegionMap {
    regions: Vec<RegionInfo>,
    assignment: BTreeMap<u32, RegionId>,
    boundaries: Vec<LinkId>,
}

impl RegionMap {
    /// An empty map: every actor packet-level, no boundaries.
    pub fn new() -> Self {
        RegionMap::default()
    }

    /// Declares a region. Names are labels for artifacts and traces; they
    /// are not required to be unique.
    pub fn add_region(&mut self, name: &str, fidelity: Fidelity) -> RegionId {
        let id = RegionId(self.regions.len() as u32);
        self.regions.push(RegionInfo { name: name.to_string(), fidelity });
        id
    }

    /// Assigns an actor to a region (replacing any previous assignment).
    pub fn assign(&mut self, actor: ActorId, region: RegionId) {
        self.assignment.insert(actor.index() as u32, region);
    }

    /// The region an actor was assigned to, if any.
    pub fn region_of(&self, actor: ActorId) -> Option<RegionId> {
        self.assignment.get(&(actor.index() as u32)).copied()
    }

    /// A region's declared fidelity. Out-of-range ids (from another map)
    /// fall back to [`Fidelity::Packet`], the engine default.
    pub fn fidelity(&self, region: RegionId) -> Fidelity {
        self.regions.get(region.index()).map_or(Fidelity::Packet, |r| r.fidelity)
    }

    /// A region's name, or `""` for an id this map never issued.
    pub fn region_name(&self, region: RegionId) -> &str {
        self.regions.get(region.index()).map_or("", |r| r.name.as_str())
    }

    /// The fidelity governing an actor: its region's, or
    /// [`Fidelity::Packet`] for unassigned actors.
    pub fn fidelity_of(&self, actor: ActorId) -> Fidelity {
        self.region_of(actor).map_or(Fidelity::Packet, |r| self.fidelity(r))
    }

    /// Marks a link as a tier boundary: fluid background load on it is
    /// surfaced to the packet tier as a time-varying available rate.
    pub fn mark_boundary(&mut self, link: LinkId) {
        if !self.boundaries.contains(&link) {
            self.boundaries.push(link);
        }
    }

    /// Boundary links, in the order they were marked.
    pub fn boundaries(&self) -> &[LinkId] {
        &self.boundaries
    }

    /// Whether `link` was marked as a tier boundary.
    pub fn is_boundary(&self, link: LinkId) -> bool {
        self.boundaries.contains(&link)
    }

    /// Number of declared regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// `true` if no region has been declared.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::link::{Bandwidth, LinkParams};
    use crate::time::SimDuration;

    #[test]
    fn unassigned_actors_default_to_packet_fidelity() {
        let mut sim = Simulator::new(1);
        let a = sim.reserve_actor();
        let map = RegionMap::new();
        assert_eq!(map.fidelity_of(a), Fidelity::Packet);
        assert_eq!(map.region_of(a), None);
    }

    #[test]
    fn assignment_and_boundaries_round_trip() {
        let mut sim = Simulator::new(1);
        let a = sim.reserve_actor();
        let b = sim.reserve_actor();
        let link = sim.add_link(
            a,
            b,
            LinkParams::new(Bandwidth::from_mbps(10.0), SimDuration::from_millis(1)),
        );

        let mut map = RegionMap::new();
        let cell = map.add_region("cell", Fidelity::Packet);
        let metro = map.add_region("metro", Fidelity::Fluid);
        map.assign(a, cell);
        map.assign(b, metro);
        map.mark_boundary(link);
        map.mark_boundary(link); // idempotent

        assert_eq!(map.len(), 2);
        assert_eq!(map.fidelity_of(a), Fidelity::Packet);
        assert_eq!(map.fidelity_of(b), Fidelity::Fluid);
        assert_eq!(map.region_name(metro), "metro");
        assert_eq!(map.boundaries(), &[link]);
        assert!(map.is_boundary(link));
    }
}
