//! A fast, deterministic hasher for simulation state.
//!
//! The protocol endpoints key several per-packet lookups by small integer
//! ids (message ids, sequence numbers). `std`'s default SipHash costs more
//! than the table probe it guards on those paths, and its per-process
//! random seed makes iteration order vary between runs. This multiply-
//! rotate hasher (the rustc/Firefox "Fx" construction) is a handful of
//! cycles per word and produces the same table layout on every run —
//! replicated simulations stay bit-for-bit reproducible even if a map is
//! ever iterated.
//!
//! Not DoS-resistant, which is irrelevant here: keys come from the
//! simulation itself, never from untrusted input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher over machine words.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_work_and_are_deterministic() {
        let mut a = FxHashMap::default();
        let mut b = FxHashMap::default();
        for i in (0..1000u64).rev() {
            a.insert(i, i * 2);
            b.insert(i, i * 2);
        }
        assert_eq!(a.get(&77), Some(&154));
        // Same insertion sequence → same iteration order, run after run.
        let oa: Vec<u64> = a.keys().copied().collect();
        let ob: Vec<u64> = b.keys().copied().collect();
        assert_eq!(oa, ob);
    }

    #[test]
    fn set_membership() {
        let mut s = FxHashSet::default();
        assert!(s.insert(42u64));
        assert!(!s.insert(42u64));
        assert!(s.contains(&42));
        assert!(!s.contains(&43));
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let bh: BuildHasherDefault<FxHasher> = BuildHasherDefault::default();
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(bh.hash_one(i));
        }
        assert_eq!(seen.len(), 10_000, "hash must be injective-ish on small ints");
    }
}
