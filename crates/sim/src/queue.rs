//! Queueing disciplines.
//!
//! §VI-H of the paper argues that the (usually oversized, ~1000-packet)
//! uplink buffer is a major latency source for MAR offloading, and that a
//! combination of latency queueing and AQM such as FQ-CoDel can favour MAR
//! traffic while keeping other uploads usable. This module provides the four
//! disciplines the experiments compare:
//!
//! * [`DropTailQueue`] — FIFO with a packet or byte cap (the bufferbloat
//!   baseline of Figs. 3 and the E13 queueing sweep);
//! * [`CoDelQueue`] — the Controlled Delay AQM (RFC 8289);
//! * [`FqCoDelQueue`] — FlowQueue-CoDel (RFC 8290): DRR across hashed flow
//!   queues, each running CoDel, with the new-flow priority boost;
//! * [`StrictPriorityQueue`] — static priority bands driven by
//!   [`Packet::prio`], the "latency queueing" building block.

use crate::packet::Packet;
use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;
use std::fmt;

/// Result of offering a packet to a queue.
#[derive(Debug)]
pub enum EnqueueOutcome {
    /// The packet was accepted.
    Enqueued,
    /// The queue was full; the returned packet (not necessarily the offered
    /// one — FQ-CoDel drops from the fattest flow) was discarded.
    Dropped(Packet),
}

impl EnqueueOutcome {
    /// `true` if the packet was accepted.
    pub fn is_enqueued(&self) -> bool {
        matches!(self, EnqueueOutcome::Enqueued)
    }
}

/// Result of asking a queue for the next packet to transmit.
///
/// AQM disciplines may discard packets at dequeue time; those are reported in
/// `dropped` so the link can account for them.
#[derive(Debug, Default)]
pub struct Dequeued {
    /// The packet to transmit next, if any survived.
    pub packet: Option<Packet>,
    /// Packets the AQM discarded while searching for `packet`.
    pub dropped: Vec<Packet>,
}

/// A queueing discipline attached to a link transmitter.
pub trait Queue: fmt::Debug {
    /// Offers a packet for queueing at virtual time `now`.
    fn enqueue(&mut self, pkt: Packet, now: SimTime) -> EnqueueOutcome;
    /// Pops the next packet to serialize, possibly dropping stale ones.
    fn dequeue(&mut self, now: SimTime) -> Dequeued;
    /// Number of queued packets.
    fn len_packets(&self) -> usize;
    /// Number of queued bytes.
    fn len_bytes(&self) -> u64;
    /// `true` if nothing is queued.
    fn is_empty(&self) -> bool {
        self.len_packets() == 0
    }
}

/// Declarative queue configuration, convertible into a boxed [`Queue`].
///
/// Keeping configuration as data lets link parameters be cloned and serialized
/// while the stateful queue object is built per link instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueueConfig {
    /// FIFO capped at a number of packets. The paper notes mobile uplink
    /// buffers around 1000 packets (§VI-H); that is the bufferbloat default.
    DropTail {
        /// Maximum queued packets.
        cap_packets: usize,
    },
    /// FIFO capped at a number of bytes.
    DropTailBytes {
        /// Maximum queued bytes.
        cap_bytes: u64,
    },
    /// CoDel AQM with FIFO order.
    CoDel {
        /// Sojourn-time target (RFC 8289 default: 5 ms).
        target: SimDuration,
        /// Sliding interval (RFC 8289 default: 100 ms).
        interval: SimDuration,
        /// Hard cap in packets (safety valve above the AQM).
        cap_packets: usize,
    },
    /// FQ-CoDel: DRR over hashed per-flow CoDel queues.
    FqCoDel {
        /// Number of hash buckets (RFC 8290 default: 1024).
        flows: usize,
        /// DRR quantum in bytes (default: 1514).
        quantum: u32,
        /// CoDel target per flow queue.
        target: SimDuration,
        /// CoDel interval per flow queue.
        interval: SimDuration,
        /// Total packet cap across all flow queues.
        cap_packets: usize,
    },
    /// Strict priority bands indexed by [`Packet::prio`] (0 = served first).
    StrictPriority {
        /// Number of bands; priorities beyond the last band are clamped.
        bands: usize,
        /// Per-band packet cap.
        cap_packets_per_band: usize,
    },
}

impl QueueConfig {
    /// The oversized-FIFO default the paper attributes to mobile uplinks.
    pub fn bloated_uplink() -> Self {
        QueueConfig::DropTail { cap_packets: 1000 }
    }

    /// CoDel with RFC 8289 defaults and a 1000-packet hard cap.
    pub fn codel_default() -> Self {
        QueueConfig::CoDel {
            target: SimDuration::from_millis(5),
            interval: SimDuration::from_millis(100),
            cap_packets: 1000,
        }
    }

    /// FQ-CoDel with RFC 8290 defaults.
    pub fn fq_codel_default() -> Self {
        QueueConfig::FqCoDel {
            flows: 1024,
            quantum: 1514,
            target: SimDuration::from_millis(5),
            interval: SimDuration::from_millis(100),
            cap_packets: 10240,
        }
    }

    /// Builds the stateful queue object for a link instance.
    pub fn build(&self) -> Box<dyn Queue> {
        match *self {
            QueueConfig::DropTail { cap_packets } => Box::new(DropTailQueue::packets(cap_packets)),
            QueueConfig::DropTailBytes { cap_bytes } => Box::new(DropTailQueue::bytes(cap_bytes)),
            QueueConfig::CoDel { target, interval, cap_packets } => {
                Box::new(CoDelQueue::new(target, interval, cap_packets))
            }
            QueueConfig::FqCoDel { flows, quantum, target, interval, cap_packets } => {
                Box::new(FqCoDelQueue::new(flows, quantum, target, interval, cap_packets))
            }
            QueueConfig::StrictPriority { bands, cap_packets_per_band } => {
                Box::new(StrictPriorityQueue::new(bands, cap_packets_per_band))
            }
        }
    }
}

impl Default for QueueConfig {
    /// A 100-packet drop-tail queue, a sane router default.
    fn default() -> Self {
        QueueConfig::DropTail { cap_packets: 100 }
    }
}

// ---------------------------------------------------------------------------
// DropTail
// ---------------------------------------------------------------------------

/// FIFO queue that drops arriving packets once full.
#[derive(Debug)]
pub struct DropTailQueue {
    queue: VecDeque<Packet>,
    bytes: u64,
    cap_packets: usize,
    cap_bytes: u64,
}

impl DropTailQueue {
    /// A FIFO capped at `cap` packets.
    pub fn packets(cap: usize) -> Self {
        DropTailQueue { queue: VecDeque::new(), bytes: 0, cap_packets: cap, cap_bytes: u64::MAX }
    }

    /// A FIFO capped at `cap` bytes.
    pub fn bytes(cap: u64) -> Self {
        DropTailQueue { queue: VecDeque::new(), bytes: 0, cap_packets: usize::MAX, cap_bytes: cap }
    }
}

impl Queue for DropTailQueue {
    fn enqueue(&mut self, mut pkt: Packet, now: SimTime) -> EnqueueOutcome {
        if self.queue.len() >= self.cap_packets || self.bytes + u64::from(pkt.size) > self.cap_bytes
        {
            return EnqueueOutcome::Dropped(pkt);
        }
        pkt.enqueued = now;
        self.bytes += u64::from(pkt.size);
        self.queue.push_back(pkt);
        EnqueueOutcome::Enqueued
    }

    fn dequeue(&mut self, _now: SimTime) -> Dequeued {
        let packet = self.queue.pop_front();
        if let Some(p) = &packet {
            self.bytes -= u64::from(p.size);
        }
        Dequeued { packet, dropped: Vec::new() }
    }

    fn len_packets(&self) -> usize {
        self.queue.len()
    }

    fn len_bytes(&self) -> u64 {
        self.bytes
    }
}

// ---------------------------------------------------------------------------
// CoDel
// ---------------------------------------------------------------------------

/// Per-queue CoDel control-law state (shared by [`CoDelQueue`] and the flow
/// queues inside [`FqCoDelQueue`]).
#[derive(Debug, Clone)]
struct CoDelState {
    target: SimDuration,
    interval: SimDuration,
    first_above_time: Option<SimTime>,
    drop_next: SimTime,
    count: u32,
    last_count: u32,
    dropping: bool,
}

impl CoDelState {
    fn new(target: SimDuration, interval: SimDuration) -> Self {
        CoDelState {
            target,
            interval,
            first_above_time: None,
            drop_next: SimTime::ZERO,
            count: 0,
            last_count: 0,
            dropping: false,
        }
    }

    fn control_law(&self, t: SimTime) -> SimTime {
        let nanos = self.interval.as_nanos() as f64 / (self.count.max(1) as f64).sqrt();
        t + SimDuration::from_nanos(nanos as u64)
    }

    /// RFC 8289 `dodeque`: decides whether the packet at the head (with the
    /// given sojourn time) should be dropped.
    fn should_drop(&mut self, sojourn: SimDuration, now: SimTime, queue_bytes: u64) -> bool {
        // Below target, or the queue holds less than one MTU: leave dropping
        // state and pass the packet.
        if sojourn < self.target || queue_bytes <= 1514 {
            self.first_above_time = None;
            if self.dropping {
                self.dropping = false;
            }
            return false;
        }
        match self.first_above_time {
            None => {
                self.first_above_time = Some(now + self.interval);
                false
            }
            Some(fat) => {
                if self.dropping {
                    if now >= self.drop_next {
                        self.count += 1;
                        self.drop_next = self.control_law(self.drop_next);
                        true
                    } else {
                        false
                    }
                } else if now >= fat {
                    // Enter dropping state.
                    self.dropping = true;
                    // RFC 8289: restart close to the previous rate if we were
                    // dropping recently.
                    let delta = self.count.saturating_sub(self.last_count);
                    self.count =
                        if delta > 1 && now.saturating_since(self.drop_next) < self.interval {
                            delta
                        } else {
                            1
                        };
                    self.last_count = self.count;
                    self.drop_next = self.control_law(now);
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// The CoDel AQM (RFC 8289) over a single FIFO.
#[derive(Debug)]
pub struct CoDelQueue {
    queue: VecDeque<Packet>,
    bytes: u64,
    cap_packets: usize,
    state: CoDelState,
}

impl CoDelQueue {
    /// Creates a CoDel queue with the given target/interval and hard cap.
    pub fn new(target: SimDuration, interval: SimDuration, cap_packets: usize) -> Self {
        CoDelQueue {
            queue: VecDeque::new(),
            bytes: 0,
            cap_packets,
            state: CoDelState::new(target, interval),
        }
    }
}

impl Queue for CoDelQueue {
    fn enqueue(&mut self, mut pkt: Packet, now: SimTime) -> EnqueueOutcome {
        if self.queue.len() >= self.cap_packets {
            return EnqueueOutcome::Dropped(pkt);
        }
        pkt.enqueued = now;
        self.bytes += u64::from(pkt.size);
        self.queue.push_back(pkt);
        EnqueueOutcome::Enqueued
    }

    fn dequeue(&mut self, now: SimTime) -> Dequeued {
        let mut dropped = Vec::new();
        while let Some(pkt) = self.queue.pop_front() {
            self.bytes -= u64::from(pkt.size);
            let sojourn = now.saturating_since(pkt.enqueued);
            if self.state.should_drop(sojourn, now, self.bytes + u64::from(pkt.size)) {
                dropped.push(pkt);
            } else {
                return Dequeued { packet: Some(pkt), dropped };
            }
        }
        Dequeued { packet: None, dropped }
    }

    fn len_packets(&self) -> usize {
        self.queue.len()
    }

    fn len_bytes(&self) -> u64 {
        self.bytes
    }
}

// ---------------------------------------------------------------------------
// FQ-CoDel
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct FlowQueue {
    queue: VecDeque<Packet>,
    bytes: u64,
    deficit: i64,
    codel: CoDelState,
    /// Which service list the flow is on: 0 = none, 1 = new, 2 = old.
    list: u8,
}

/// FlowQueue-CoDel (RFC 8290).
///
/// Packets are hashed by [`Packet::flow`] into one of `flows` queues; queues
/// are served by deficit round robin with new flows given one quantum of
/// priority, and each queue runs the CoDel control law. This is the
/// discipline §VI-H recommends combining with latency queueing.
#[derive(Debug)]
pub struct FqCoDelQueue {
    queues: Vec<FlowQueue>,
    new_flows: VecDeque<usize>,
    old_flows: VecDeque<usize>,
    quantum: u32,
    cap_packets: usize,
    total_packets: usize,
    total_bytes: u64,
}

impl FqCoDelQueue {
    /// Creates an FQ-CoDel queue. See [`QueueConfig::fq_codel_default`] for
    /// RFC-default parameters.
    ///
    /// # Panics
    ///
    /// Panics if `flows` is zero.
    pub fn new(
        flows: usize,
        quantum: u32,
        target: SimDuration,
        interval: SimDuration,
        cap_packets: usize,
    ) -> Self {
        assert!(flows > 0, "need at least one flow queue");
        FqCoDelQueue {
            queues: (0..flows)
                .map(|_| FlowQueue {
                    queue: VecDeque::new(),
                    bytes: 0,
                    deficit: 0,
                    codel: CoDelState::new(target, interval),
                    list: 0,
                })
                .collect(),
            new_flows: VecDeque::new(),
            old_flows: VecDeque::new(),
            quantum,
            cap_packets,
            total_packets: 0,
            total_bytes: 0,
        }
    }

    fn bucket(&self, flow: u64) -> usize {
        // SplitMix64 finalizer as the flow hash: cheap and well mixed.
        let mut z = flow.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        ((z ^ (z >> 31)) % self.queues.len() as u64) as usize
    }

    /// Drops from the head of the fattest (most bytes) queue, per RFC 8290's
    /// overload strategy.
    fn drop_from_fattest(&mut self) -> Option<Packet> {
        let idx = self.queues.iter().enumerate().max_by_key(|(_, q)| q.bytes).map(|(i, _)| i)?;
        let q = &mut self.queues[idx];
        let pkt = q.queue.pop_front()?;
        q.bytes -= u64::from(pkt.size);
        self.total_packets -= 1;
        self.total_bytes -= u64::from(pkt.size);
        Some(pkt)
    }
}

impl Queue for FqCoDelQueue {
    fn enqueue(&mut self, mut pkt: Packet, now: SimTime) -> EnqueueOutcome {
        let idx = self.bucket(pkt.flow);
        pkt.enqueued = now;
        self.total_packets += 1;
        self.total_bytes += u64::from(pkt.size);
        let q = &mut self.queues[idx];
        q.bytes += u64::from(pkt.size);
        q.queue.push_back(pkt);
        if q.list == 0 {
            q.list = 1;
            q.deficit = i64::from(self.quantum);
            self.new_flows.push_back(idx);
        }
        if self.total_packets > self.cap_packets {
            if let Some(dropped) = self.drop_from_fattest() {
                return EnqueueOutcome::Dropped(dropped);
            }
        }
        EnqueueOutcome::Enqueued
    }

    fn dequeue(&mut self, now: SimTime) -> Dequeued {
        let mut dropped = Vec::new();
        loop {
            // Pick the flow to serve: new list first, then old.
            let (idx, from_new) = if let Some(&i) = self.new_flows.front() {
                (i, true)
            } else if let Some(&i) = self.old_flows.front() {
                (i, false)
            } else {
                return Dequeued { packet: None, dropped };
            };

            let q = &mut self.queues[idx];
            if q.deficit <= 0 {
                // Exhausted its quantum: move to the back of the old list.
                q.deficit += i64::from(self.quantum);
                if from_new {
                    self.new_flows.pop_front();
                } else {
                    self.old_flows.pop_front();
                }
                q.list = 2;
                self.old_flows.push_back(idx);
                continue;
            }

            // CoDel within the flow queue.
            let mut served = None;
            while let Some(pkt) = q.queue.pop_front() {
                q.bytes -= u64::from(pkt.size);
                self.total_packets -= 1;
                self.total_bytes -= u64::from(pkt.size);
                let sojourn = now.saturating_since(pkt.enqueued);
                if q.codel.should_drop(sojourn, now, q.bytes + u64::from(pkt.size)) {
                    dropped.push(pkt);
                } else {
                    served = Some(pkt);
                    break;
                }
            }

            match served {
                Some(pkt) => {
                    q.deficit -= i64::from(pkt.size);
                    return Dequeued { packet: Some(pkt), dropped };
                }
                None => {
                    // Queue empty: remove from its list. A new flow that
                    // empties goes to the old list first per RFC 8290; we
                    // simplify by detaching it — the next packet re-creates
                    // it as new, which preserves the latency boost behaviour
                    // for sparse flows.
                    if from_new {
                        self.new_flows.pop_front();
                    } else {
                        self.old_flows.pop_front();
                    }
                    q.list = 0;
                    q.deficit = 0;
                }
            }
        }
    }

    fn len_packets(&self) -> usize {
        self.total_packets
    }

    fn len_bytes(&self) -> u64 {
        self.total_bytes
    }
}

// ---------------------------------------------------------------------------
// Strict priority
// ---------------------------------------------------------------------------

/// Static priority bands: band 0 is always served before band 1, and so on.
///
/// Together with the AR protocol's priority marking this implements the
/// "latency queuing" of §VI-H: MAR control traffic can bypass bulk uploads.
#[derive(Debug)]
pub struct StrictPriorityQueue {
    bands: Vec<VecDeque<Packet>>,
    cap_per_band: usize,
    bytes: u64,
    packets: usize,
}

impl StrictPriorityQueue {
    /// Creates `bands` priority bands, each capped at `cap_per_band` packets.
    ///
    /// # Panics
    ///
    /// Panics if `bands` is zero.
    pub fn new(bands: usize, cap_per_band: usize) -> Self {
        assert!(bands > 0, "need at least one band");
        StrictPriorityQueue {
            bands: (0..bands).map(|_| VecDeque::new()).collect(),
            cap_per_band,
            bytes: 0,
            packets: 0,
        }
    }
}

impl Queue for StrictPriorityQueue {
    fn enqueue(&mut self, mut pkt: Packet, now: SimTime) -> EnqueueOutcome {
        let band = (pkt.prio as usize).min(self.bands.len() - 1);
        if self.bands[band].len() >= self.cap_per_band {
            return EnqueueOutcome::Dropped(pkt);
        }
        pkt.enqueued = now;
        self.bytes += u64::from(pkt.size);
        self.packets += 1;
        self.bands[band].push_back(pkt);
        EnqueueOutcome::Enqueued
    }

    fn dequeue(&mut self, _now: SimTime) -> Dequeued {
        for band in &mut self.bands {
            if let Some(pkt) = band.pop_front() {
                self.bytes -= u64::from(pkt.size);
                self.packets -= 1;
                return Dequeued { packet: Some(pkt), dropped: Vec::new() };
            }
        }
        Dequeued { packet: None, dropped: Vec::new() }
    }

    fn len_packets(&self) -> usize {
        self.packets
    }

    fn len_bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(id: u64, flow: u64, size: u32) -> Packet {
        Packet::new(id, flow, size, SimTime::ZERO)
    }

    #[test]
    fn droptail_respects_packet_cap() {
        let mut q = DropTailQueue::packets(2);
        assert!(q.enqueue(pkt(1, 0, 100), SimTime::ZERO).is_enqueued());
        assert!(q.enqueue(pkt(2, 0, 100), SimTime::ZERO).is_enqueued());
        match q.enqueue(pkt(3, 0, 100), SimTime::ZERO) {
            EnqueueOutcome::Dropped(p) => assert_eq!(p.id, 3),
            _ => panic!("expected drop"),
        }
        assert_eq!(q.len_packets(), 2);
        assert_eq!(q.len_bytes(), 200);
        assert_eq!(q.dequeue(SimTime::ZERO).packet.unwrap().id, 1);
        assert_eq!(q.dequeue(SimTime::ZERO).packet.unwrap().id, 2);
        assert!(q.dequeue(SimTime::ZERO).packet.is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn droptail_respects_byte_cap() {
        let mut q = DropTailQueue::bytes(250);
        assert!(q.enqueue(pkt(1, 0, 100), SimTime::ZERO).is_enqueued());
        assert!(q.enqueue(pkt(2, 0, 100), SimTime::ZERO).is_enqueued());
        assert!(!q.enqueue(pkt(3, 0, 100), SimTime::ZERO).is_enqueued());
        assert!(q.enqueue(pkt(4, 0, 50), SimTime::ZERO).is_enqueued());
        assert_eq!(q.len_bytes(), 250);
    }

    #[test]
    fn codel_passes_low_delay_traffic() {
        let mut q =
            CoDelQueue::new(SimDuration::from_millis(5), SimDuration::from_millis(100), 1000);
        // Packets dequeued instantly (sojourn 0) are never dropped.
        for i in 0..100 {
            let now = SimTime::from_millis(i);
            assert!(q.enqueue(pkt(i, 0, 1000), now).is_enqueued());
            let out = q.dequeue(now);
            assert!(out.dropped.is_empty());
            assert_eq!(out.packet.unwrap().id, i);
        }
    }

    #[test]
    fn codel_drops_under_persistent_delay() {
        let mut q =
            CoDelQueue::new(SimDuration::from_millis(5), SimDuration::from_millis(100), 10_000);
        // Fill with packets, then dequeue far later so sojourn >> target.
        for i in 0..2000 {
            // Staggered arrivals so each packet has a distinct enqueue time.
            q.enqueue(pkt(i, 0, 1000), SimTime::from_micros(i * 10));
        }
        let mut drops = 0;
        let mut passed = 0;
        // Dequeue one packet every 1 ms starting at 500 ms: every packet has
        // sojourn around half a second, far above target.
        for step in 0..1500u64 {
            let now = SimTime::from_millis(500 + step);
            let out = q.dequeue(now);
            drops += out.dropped.len();
            if out.packet.is_some() {
                passed += 1;
            }
            if q.is_empty() {
                break;
            }
        }
        assert!(drops > 0, "CoDel must drop under persistent queueing delay");
        assert!(passed > 0, "CoDel must still deliver packets");
    }

    #[test]
    fn codel_exits_dropping_when_queue_drains() {
        let mut q =
            CoDelQueue::new(SimDuration::from_millis(5), SimDuration::from_millis(100), 1000);
        for i in 0..50 {
            q.enqueue(pkt(i, 0, 1000), SimTime::ZERO);
        }
        // Force dropping state.
        let mut now = SimTime::from_millis(200);
        while !q.is_empty() {
            now += SimDuration::from_millis(5);
            let _ = q.dequeue(now);
        }
        // Fresh traffic with no delay passes untouched.
        q.enqueue(pkt(100, 0, 1000), now);
        let out = q.dequeue(now);
        assert!(out.dropped.is_empty());
        assert_eq!(out.packet.unwrap().id, 100);
    }

    #[test]
    fn fq_codel_isolates_flows() {
        let mut q = FqCoDelQueue::new(
            64,
            1514,
            SimDuration::from_millis(5),
            SimDuration::from_millis(100),
            10_000,
        );
        // Flow 1 is a hog with big packets, flow 2 sends one small packet.
        for i in 0..50 {
            q.enqueue(pkt(i, 1, 1500), SimTime::ZERO);
        }
        q.enqueue(pkt(1000, 2, 100), SimTime::ZERO);
        // The sparse flow's packet must come out within the first few
        // dequeues thanks to the new-flow boost.
        let mut position = None;
        for n in 0..10 {
            let out = q.dequeue(SimTime::ZERO);
            if out.packet.map(|p| p.id) == Some(1000) {
                position = Some(n);
                break;
            }
        }
        let pos = position.expect("sparse flow packet served early");
        assert!(pos <= 2, "sparse flow served at position {pos}");
    }

    #[test]
    fn fq_codel_drops_from_fattest_on_overload() {
        let mut q = FqCoDelQueue::new(
            8,
            1514,
            SimDuration::from_millis(5),
            SimDuration::from_millis(100),
            10,
        );
        for i in 0..10 {
            assert!(q.enqueue(pkt(i, 1, 1500), SimTime::ZERO).is_enqueued());
        }
        // Over cap: the drop should come from flow 1 (the fattest), not the
        // arriving flow-2 packet.
        match q.enqueue(pkt(99, 2, 100), SimTime::ZERO) {
            EnqueueOutcome::Dropped(p) => assert_eq!(p.flow, 1),
            _ => panic!("expected an overload drop"),
        }
        assert_eq!(q.len_packets(), 10);
    }

    #[test]
    fn fq_codel_round_robins_between_backlogged_flows() {
        let mut q = FqCoDelQueue::new(
            64,
            1500,
            SimDuration::from_millis(5),
            SimDuration::from_millis(100),
            10_000,
        );
        for i in 0..10 {
            q.enqueue(pkt(i, 1, 1500), SimTime::ZERO);
            q.enqueue(pkt(100 + i, 2, 1500), SimTime::ZERO);
        }
        let mut flows = Vec::new();
        for _ in 0..10 {
            if let Some(p) = q.dequeue(SimTime::ZERO).packet {
                flows.push(p.flow);
            }
        }
        let f1 = flows.iter().filter(|&&f| f == 1).count();
        let f2 = flows.iter().filter(|&&f| f == 2).count();
        assert!((f1 as i64 - f2 as i64).abs() <= 2, "DRR must interleave: {flows:?}");
    }

    #[test]
    fn strict_priority_orders_bands() {
        let mut q = StrictPriorityQueue::new(3, 10);
        q.enqueue(pkt(1, 0, 100).with_prio(2), SimTime::ZERO);
        q.enqueue(pkt(2, 0, 100).with_prio(0), SimTime::ZERO);
        q.enqueue(pkt(3, 0, 100).with_prio(1), SimTime::ZERO);
        q.enqueue(pkt(4, 0, 100).with_prio(9), SimTime::ZERO); // clamped to band 2
        assert_eq!(q.dequeue(SimTime::ZERO).packet.unwrap().id, 2);
        assert_eq!(q.dequeue(SimTime::ZERO).packet.unwrap().id, 3);
        assert_eq!(q.dequeue(SimTime::ZERO).packet.unwrap().id, 1);
        assert_eq!(q.dequeue(SimTime::ZERO).packet.unwrap().id, 4);
    }

    #[test]
    fn strict_priority_band_caps_are_independent() {
        let mut q = StrictPriorityQueue::new(2, 1);
        assert!(q.enqueue(pkt(1, 0, 10).with_prio(0), SimTime::ZERO).is_enqueued());
        assert!(!q.enqueue(pkt(2, 0, 10).with_prio(0), SimTime::ZERO).is_enqueued());
        assert!(q.enqueue(pkt(3, 0, 10).with_prio(1), SimTime::ZERO).is_enqueued());
        assert_eq!(q.len_packets(), 2);
    }

    #[test]
    fn config_builds_expected_types() {
        let q = QueueConfig::bloated_uplink().build();
        assert_eq!(q.len_packets(), 0);
        let q = QueueConfig::codel_default().build();
        assert!(q.is_empty());
        let q = QueueConfig::fq_codel_default().build();
        assert!(q.is_empty());
        let q = QueueConfig::StrictPriority { bands: 4, cap_packets_per_band: 10 }.build();
        assert!(q.is_empty());
        let q = QueueConfig::DropTailBytes { cap_bytes: 1000 }.build();
        assert!(q.is_empty());
    }
}
