//! # marnet-sim — deterministic discrete-event network simulator
//!
//! This crate is the substrate on which every experiment in the marnet suite
//! runs. The paper being reproduced ("Future Networking Challenges: The Case
//! of Mobile Augmented Reality", ICDCS 2017) evaluates on real WiFi/LTE
//! networks and real cloud servers; here those are replaced by a packet-level
//! simulator whose links are calibrated to the numbers the paper reports.
//!
//! The simulator is:
//!
//! * **Deterministic** — single threaded, virtual time, every source of
//!   randomness is a [`rand_chacha::ChaCha12Rng`] derived from an experiment
//!   seed plus a textual label (see [`rng::derive_rng`]). Identical seeds
//!   produce bit-identical traces, which the property tests rely on.
//! * **Packet level** — links serialize packets at a configurable rate,
//!   apply propagation delay, jitter and loss, and queue excess traffic in a
//!   pluggable queueing discipline ([`queue::Queue`]): DropTail, CoDel,
//!   FQ-CoDel and strict priority are provided, matching §VI-H of the paper.
//! * **Actor based** — protocol endpoints, traffic sources and middleboxes
//!   implement [`engine::Actor`] and exchange [`packet::Packet`]s over
//!   [`link::LinkParams`]-configured links, or direct zero-copy messages for co-located components.
//! * **Observable** — an optional flight recorder
//!   ([`engine::Simulator::enable_flight_recorder`]) and metrics registry
//!   ([`engine::Simulator::enable_metrics`]) from [`marnet_telemetry`]
//!   (re-exported as [`telemetry`]) capture per-packet queue events and
//!   occupancy series; both are off by default and cost one predictable
//!   branch per hook when disabled.
//!
//! # Example
//!
//! ```
//! use marnet_sim::prelude::*;
//!
//! // An actor that echoes every packet back to its sender.
//! struct Echo { out: LinkId }
//! impl Actor for Echo {
//!     fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
//!         if let Event::Packet { packet, .. } = ev {
//!             ctx.transmit(self.out, packet);
//!         }
//!     }
//! }
//!
//! struct Pinger { out: LinkId, rtt: Option<SimDuration> }
//! impl Actor for Pinger {
//!     fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
//!         match ev {
//!             Event::Start => {
//!                 let pkt = Packet::new(ctx.next_packet_id(), 0, 100, ctx.now());
//!                 ctx.transmit(self.out, pkt);
//!             }
//!             Event::Packet { packet, .. } => {
//!                 self.rtt = Some(ctx.now() - packet.created);
//!             }
//!             _ => {}
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::new(42);
//! let ping = sim.reserve_actor();
//! let echo = sim.reserve_actor();
//! let params = LinkParams::new(Bandwidth::from_mbps(10.0), SimDuration::from_millis(5));
//! let fwd = sim.add_link(ping, echo, params.clone());
//! let rev = sim.add_link(echo, ping, params);
//! sim.install_actor(ping, Pinger { out: fwd, rtt: None });
//! sim.install_actor(echo, Echo { out: rev });
//! sim.run_until(SimTime::from_secs(1));
//! # let _ = (ping, echo);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod engine;
mod eventq;
pub mod hash;
pub use marnet_telemetry as telemetry;
pub mod link;
pub mod packet;
pub mod queue;
pub mod region;
pub mod rng;
pub mod stats;
pub mod time;
pub mod topology;

/// Convenience re-exports of the types needed by almost every simulation.
pub mod prelude {
    pub use crate::config::{SimConfig, TieBreak};
    pub use crate::engine::{Actor, ActorId, Event, SimCtx, Simulator, TimerHandle};
    pub use crate::link::{Bandwidth, Jitter, LinkId, LinkParams, LossModel};
    pub use crate::packet::{Packet, Payload};
    pub use crate::queue::{
        CoDelQueue, DropTailQueue, FqCoDelQueue, QueueConfig, StrictPriorityQueue,
    };
    pub use crate::region::{Fidelity, RateUpdate, RegionId, RegionMap};
    pub use crate::rng::derive_rng;
    pub use crate::stats::{Histogram, OnlineStats, RateMeter, TimeSeries};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::TopologyBuilder;
}
