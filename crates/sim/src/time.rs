//! Virtual time: [`SimTime`] instants and [`SimDuration`] spans.
//!
//! Time is kept in integer nanoseconds so that event ordering is exact and
//! runs are reproducible across platforms — floating-point time would make
//! the event heap order depend on accumulated rounding.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant of virtual time, counted in nanoseconds since simulation start.
///
/// ```
/// use marnet_sim::time::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_millis(75);
/// assert_eq!(t.as_secs_f64(), 0.075);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, counted in nanoseconds.
///
/// ```
/// use marnet_sim::time::SimDuration;
/// assert_eq!(SimDuration::from_millis(2) * 3, SimDuration::from_millis(6));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Creates an instant from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time: {secs}");
        SimTime((secs * 1e9).round() as u64)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds since simulation start.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span between two instants, saturating at zero if `earlier` is
    /// actually later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`] instead of overflowing.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Creates a span from fractional milliseconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is negative or not finite.
    pub fn from_millis_f64(millis: f64) -> Self {
        assert!(millis.is_finite() && millis >= 0.0, "invalid duration: {millis}");
        SimDuration((millis * 1e6).round() as u64)
    }

    /// The span as whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The span as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction: returns zero rather than underflowing.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies by a non-negative float, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(factor.is_finite() && factor >= 0.0, "invalid factor: {factor}");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// The span between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is uncertain.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "time went backwards: {self} - {rhs}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "negative duration: {self} - {rhs}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.1}us", self.as_micros_f64())
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_millis(75).as_nanos(), 75_000_000);
        assert_eq!(SimTime::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimDuration::from_micros(10).as_nanos(), 10_000);
        assert_eq!(SimDuration::from_secs_f64(0.0375).as_millis_f64(), 37.5);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_nanos(), 1_500_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(100);
        let d = SimDuration::from_millis(30);
        assert_eq!(t + d, SimTime::from_millis(130));
        assert_eq!((t + d) - t, d);
        assert_eq!(t - d, SimTime::from_millis(70));
        assert_eq!(d * 3, SimDuration::from_millis(90));
        assert_eq!(d / 2, SimDuration::from_millis(15));
        assert_eq!(d + d, SimDuration::from_millis(60));
        assert_eq!(d - SimDuration::from_millis(10), SimDuration::from_millis(20));
    }

    #[test]
    fn saturating_ops() {
        let early = SimTime::from_millis(10);
        let late = SimTime::from_millis(20);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(10));
        assert_eq!(SimTime::MAX.saturating_add(SimDuration::from_secs(1)), SimTime::MAX);
        assert_eq!(
            SimDuration::from_millis(5).saturating_sub(SimDuration::from_millis(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_nanos(10);
        assert_eq!(d.mul_f64(1.26), SimDuration::from_nanos(13));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic]
    fn negative_seconds_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_nanos(500).to_string(), "500ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.0us");
        assert_eq!(SimDuration::from_millis(37).to_string(), "37.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_micros(999) < SimDuration::from_millis(1));
    }
}
