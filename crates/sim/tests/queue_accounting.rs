//! Property test for the flight recorder's queue accounting: with tracing
//! on, the per-link enqueue / dequeue / drop events exactly reconcile with
//! the link's final queue occupancy and its drop counters, for every queue
//! discipline.
//!
//! The invariant mirrors how the engine emits events: a tail drop
//! (victim == offered packet) produces only a `drop(queue-full)`, while an
//! FQ-CoDel fattest-flow drop admits the arrival and sheds a victim that
//! *was* enqueued — `enqueue(offered)` + `drop(victim)`. Loss and
//! link-down drops happen outside the queue (in flight, or before
//! admission) and must never touch a queued id.

use marnet_sim::engine::{Actor, Event, SimCtx, Simulator};
use marnet_sim::prelude::*;
use marnet_sim::queue::QueueConfig;
use marnet_telemetry::{component, DropReason, TraceKind};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// `(gap_us, size, prio, flow)` per offered packet. The mean offered load
/// (~1000 B every ~200 µs ≈ 40 Mb/s) overloads the 1 Mb/s link, so queue
/// and AQM drops are common, not corner cases.
fn scripts() -> impl Strategy<Value = Vec<(u64, u32, u8, u64)>> {
    prop::collection::vec((1u64..400, 40u32..2000, 0u8..4, 0u64..8), 1..150)
}

struct Flood {
    link: LinkId,
    script: Vec<(u64, u32, u8, u64)>,
    pc: usize,
}

impl Actor for Flood {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        if matches!(ev, Event::Start | Event::Timer { .. }) {
            let Some(&(gap, size, prio, flow)) = self.script.get(self.pc) else { return };
            self.pc += 1;
            let id = ctx.next_packet_id();
            ctx.transmit(self.link, Packet::new(id, flow, size, ctx.now()).with_prio(prio));
            ctx.schedule_timer(SimDuration::from_micros(gap), 0);
        }
    }
}

struct Sink;

impl Actor for Sink {
    fn on_event(&mut self, _: &mut SimCtx, _: Event) {}
}

/// Replays the recorded events and checks them against the ground truth
/// the engine kept independently (queue occupancy and drop counters).
fn check_reconciliation(
    queue: QueueConfig,
    loss: f64,
    script: Vec<(u64, u32, u8, u64)>,
    cut_us: u64,
) {
    let mut sim = Simulator::new(7);
    sim.enable_flight_recorder(1 << 16);
    let a = sim.reserve_actor();
    let b = sim.reserve_actor();
    let l = sim.add_link(
        a,
        b,
        LinkParams::new(Bandwidth::from_mbps(1.0), SimDuration::from_millis(2))
            .with_loss(LossModel::Bernoulli { p: loss })
            .with_queue(queue),
    );
    sim.install_actor(a, Flood { link: l, script, pc: 0 });
    sim.install_actor(b, Sink);
    // Cut mid-run so a non-empty final occupancy is the common case.
    sim.run_until(SimTime::from_micros(cut_us));

    let events = sim.take_trace();
    let comp = component::link(l.index());
    let mut sizes: HashMap<u64, u64> = HashMap::new();
    let mut live: HashSet<u64> = HashSet::new();
    let mut live_bytes = 0u64;
    let mut ever_enqueued: HashSet<u64> = HashSet::new();
    let mut enq_count = 0u64;
    let mut counts: HashMap<DropReason, u64> = HashMap::new();
    let mut tail_drops = 0u64;

    for ev in events.iter().filter(|e| e.comp == comp) {
        match ev.kind {
            TraceKind::PacketEnqueue => {
                prop_assert!(live.insert(ev.a), "pkt {} enqueued twice", ev.a);
                ever_enqueued.insert(ev.a);
                sizes.insert(ev.a, u64::from(ev.size()));
                live_bytes += u64::from(ev.size());
                enq_count += 1;
            }
            TraceKind::PacketDequeue => {
                prop_assert!(live.remove(&ev.a), "pkt {} dequeued but not queued", ev.a);
                live_bytes -= sizes[&ev.a];
            }
            TraceKind::PacketDrop => {
                let reason = DropReason::from_u8(ev.aux).expect("known drop reason");
                *counts.entry(reason).or_default() += 1;
                match reason {
                    DropReason::QueueFull => {
                        // Either a tail drop (never admitted) or a shed
                        // victim that was sitting in the queue.
                        if live.remove(&ev.a) {
                            live_bytes -= sizes[&ev.a];
                        } else {
                            prop_assert!(
                                !ever_enqueued.contains(&ev.a),
                                "pkt {} dropped queue-full after leaving the queue",
                                ev.a
                            );
                            tail_drops += 1;
                        }
                    }
                    DropReason::Aqm => {
                        prop_assert!(live.remove(&ev.a), "AQM dropped unqueued pkt {}", ev.a);
                        live_bytes -= sizes[&ev.a];
                    }
                    // In-flight loss and admission-time link-down drops act
                    // on packets that are not in the queue.
                    _ => prop_assert!(!live.contains(&ev.a), "{reason:?} hit queued pkt {}", ev.a),
                }
            }
            _ => {}
        }
    }

    // Event replay matches the engine's own occupancy...
    let (q_packets, q_bytes) = sim.ctx().link_queue_len(l);
    prop_assert_eq!(live.len(), q_packets, "occupancy (packets) does not reconcile");
    prop_assert_eq!(live_bytes, q_bytes, "occupancy (bytes) does not reconcile");

    // ...and its drop counters, reason by reason.
    let st = sim.ctx().link_stats(l);
    let count = |r: DropReason| counts.get(&r).copied().unwrap_or(0);
    prop_assert_eq!(count(DropReason::QueueFull), st.drops_queue);
    prop_assert_eq!(count(DropReason::Aqm), st.drops_aqm);
    prop_assert_eq!(count(DropReason::Loss), st.drops_loss);
    prop_assert_eq!(count(DropReason::LinkDown), st.drops_down);
    // Every offered packet either produced an enqueue event or a tail drop.
    prop_assert_eq!(enq_count + tail_drops, st.offered_packets);
}

proptest! {
    #[test]
    fn droptail_events_reconcile(
        script in scripts(), cut_us in 1_000u64..200_000, loss in 0.0f64..0.3,
    ) {
        check_reconciliation(QueueConfig::DropTail { cap_packets: 16 }, loss, script, cut_us);
    }

    #[test]
    fn codel_events_reconcile(
        script in scripts(), cut_us in 1_000u64..200_000, loss in 0.0f64..0.3,
    ) {
        check_reconciliation(QueueConfig::codel_default(), loss, script, cut_us);
    }

    #[test]
    fn fq_codel_events_reconcile(
        script in scripts(), cut_us in 1_000u64..200_000, loss in 0.0f64..0.3,
    ) {
        check_reconciliation(QueueConfig::fq_codel_default(), loss, script, cut_us);
    }

    #[test]
    fn strict_priority_events_reconcile(
        script in scripts(), cut_us in 1_000u64..200_000, loss in 0.0f64..0.3,
    ) {
        check_reconciliation(
            QueueConfig::StrictPriority { bands: 4, cap_packets_per_band: 8 },
            loss,
            script,
            cut_us,
        );
    }
}
