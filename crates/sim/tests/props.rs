//! Property-based tests for the simulator substrate: time arithmetic,
//! statistics, queue conservation and engine determinism.

use marnet_sim::prelude::*;
use marnet_sim::queue::{EnqueueOutcome, Queue};
use proptest::prelude::*;

fn packets(max: usize) -> impl Strategy<Value = Vec<(u64, u8, u32)>> {
    // (flow, prio, size)
    prop::collection::vec((0u64..8, 0u8..4, 40u32..2000), 1..max)
}

/// Conservation: every packet offered to a queue is either delivered by
/// dequeue, reported dropped, or still queued.
fn check_conservation(mut q: Box<dyn Queue>, pkts: Vec<(u64, u8, u32)>) {
    let n = pkts.len();
    let mut dropped = 0usize;
    for (i, (flow, prio, size)) in pkts.into_iter().enumerate() {
        let pkt = Packet::new(i as u64, flow, size, SimTime::from_micros(i as u64)).with_prio(prio);
        if let EnqueueOutcome::Dropped(_) = q.enqueue(pkt, SimTime::from_micros(i as u64)) {
            dropped += 1;
        }
    }
    let mut dequeued = 0usize;
    let mut aqm_drops = 0usize;
    loop {
        let out = q.dequeue(SimTime::from_secs(1000));
        aqm_drops += out.dropped.len();
        match out.packet {
            Some(_) => dequeued += 1,
            None => break,
        }
    }
    assert_eq!(dequeued + dropped + aqm_drops, n, "packet conservation violated");
    assert_eq!(q.len_packets(), 0);
    assert_eq!(q.len_bytes(), 0);
}

proptest! {
    #[test]
    fn droptail_conserves_packets(pkts in packets(300)) {
        check_conservation(
            QueueConfig::DropTail { cap_packets: 64 }.build(),
            pkts,
        );
    }

    #[test]
    fn codel_conserves_packets(pkts in packets(300)) {
        check_conservation(QueueConfig::codel_default().build(), pkts);
    }

    #[test]
    fn fq_codel_conserves_packets(pkts in packets(300)) {
        check_conservation(QueueConfig::fq_codel_default().build(), pkts);
    }

    #[test]
    fn strict_priority_conserves_packets(pkts in packets(300)) {
        check_conservation(
            QueueConfig::StrictPriority { bands: 4, cap_packets_per_band: 32 }.build(),
            pkts,
        );
    }

    #[test]
    fn strict_priority_never_inverts_bands(pkts in packets(200)) {
        let mut q = QueueConfig::StrictPriority { bands: 4, cap_packets_per_band: 1000 }.build();
        for (i, (flow, prio, size)) in pkts.iter().enumerate() {
            let pkt = Packet::new(i as u64, *flow, *size, SimTime::ZERO).with_prio(*prio);
            q.enqueue(pkt, SimTime::ZERO);
        }
        let mut last_band = 0u8;
        while let Some(p) = q.dequeue(SimTime::ZERO).packet {
            prop_assert!(p.prio >= last_band, "band inversion: {} after {}", p.prio, last_band);
            last_band = p.prio;
        }
    }

    #[test]
    fn time_addition_is_monotone(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let t = SimTime::from_nanos(a);
        let d = SimDuration::from_nanos(b);
        prop_assert!(t + d >= t);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!(t.saturating_add(d), t + d);
    }

    #[test]
    fn duration_saturating_sub_never_underflows(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let x = SimDuration::from_nanos(a).saturating_sub(SimDuration::from_nanos(b));
        prop_assert!(x.as_nanos() == a.saturating_sub(b));
    }

    #[test]
    fn online_stats_matches_naive(values in prop::collection::vec(-1e6f64..1e6, 2..200)) {
        let mut s = OnlineStats::new();
        for &v in &values {
            s.record(v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_bounded(
        values in prop::collection::vec(-1e9f64..1e9, 1..200),
        qs in prop::collection::vec(0.0f64..=1.0, 2..10),
    ) {
        let mut h = Histogram::new();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in &values {
            h.record(v);
            min = min.min(v);
            max = max.max(v);
        }
        let mut sorted_qs = qs.clone();
        sorted_qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = f64::NEG_INFINITY;
        for q in sorted_qs {
            let v = h.quantile(q).unwrap();
            prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
            prop_assert!(v >= last - 1e-9);
            last = v;
        }
    }

    #[test]
    fn jain_index_is_in_range(alloc in prop::collection::vec(0.0f64..1e6, 1..20)) {
        let j = marnet_sim::stats::jain_index(&alloc);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&j));
    }

    #[test]
    fn bandwidth_serialization_time_scales(bytes in 1u32..100_000, mbps in 1u32..10_000) {
        let b = Bandwidth::from_mbps(f64::from(mbps));
        let t1 = b.serialization_time(bytes);
        let t2 = b.serialization_time(bytes * 2);
        // Twice the bytes never serializes faster, and roughly doubles.
        prop_assert!(t2 >= t1);
        let ratio = t2.as_nanos() as f64 / t1.as_nanos().max(1) as f64;
        prop_assert!((1.5..=2.5).contains(&ratio) || t1.as_nanos() < 100);
    }

    /// The engine is deterministic: identical seeds and topologies give
    /// identical delivery counts under random loss/jitter.
    #[test]
    fn engine_is_deterministic(seed in 0u64..1000, loss in 0.0f64..0.3) {
        fn run(seed: u64, loss: f64) -> (u64, u64) {
            use marnet_sim::engine::{Actor, Event, SimCtx, Simulator};
            struct Flood { link: LinkId, n: u32 }
            impl Actor for Flood {
                fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
                    if matches!(ev, Event::Start | Event::Timer { .. }) {
                        if self.n == 0 { return; }
                        self.n -= 1;
                        let id = ctx.next_packet_id();
                        ctx.transmit(self.link, Packet::new(id, 0, 500, ctx.now()));
                        ctx.schedule_timer(SimDuration::from_micros(200), 0);
                    }
                }
            }
            struct Sink;
            impl Actor for Sink {
                fn on_event(&mut self, _: &mut SimCtx, _: Event) {}
            }
            let mut sim = Simulator::new(seed);
            let a = sim.reserve_actor();
            let b = sim.reserve_actor();
            let l = sim.add_link(a, b,
                LinkParams::new(Bandwidth::from_mbps(50.0), SimDuration::from_millis(2))
                    .with_loss(LossModel::Bernoulli { p: loss })
                    .with_jitter(Jitter::Uniform { max: SimDuration::from_micros(300) }));
            sim.install_actor(a, Flood { link: l, n: 200 });
            sim.install_actor(b, Sink);
            sim.run_to_completion();
            let st = sim.ctx().link_stats(l);
            (st.delivered_packets, st.drops_loss)
        }
        prop_assert_eq!(run(seed, loss), run(seed, loss));
    }

    /// Random interleavings of schedule / cancel / transmit drive the
    /// indexed event queue through its full API. Two properties: the
    /// observed event trace is identical across runs (the `(time, seq)`
    /// order is a function of the script alone), and a timer cancelled
    /// strictly before its deadline never fires.
    #[test]
    fn schedule_cancel_transmit_interleaving_is_deterministic(
        script in prop::collection::vec((0u8..3, 1u64..5_000, 0u8..8), 1..120),
    ) {
        use std::cell::RefCell;
        use std::collections::HashSet;
        use std::rc::Rc;

        use marnet_sim::engine::{Actor, Event, SimCtx, Simulator, TimerHandle};

        type Trace = Rc<RefCell<Vec<(u64, u8, u64)>>>;

        struct Driver {
            link: LinkId,
            script: Vec<(u8, u64, u8)>,
            pc: usize,
            next_tag: u64,
            // Live handles with their tag and absolute deadline.
            armed: Vec<(TimerHandle, u64, SimTime)>,
            // Tags cancelled strictly before their deadline: must never fire.
            forbidden: HashSet<u64>,
            trace: Trace,
        }

        impl Driver {
            /// Executes the next few script ops; called on every event so
            /// the ops interleave with timer fires and packet arrivals.
            fn step(&mut self, ctx: &mut SimCtx) {
                for _ in 0..3 {
                    let Some(&(kind, delay, extra)) = self.script.get(self.pc) else { return; };
                    self.pc += 1;
                    match kind {
                        0 => {
                            let tag = self.next_tag;
                            self.next_tag += 1;
                            let d = SimDuration::from_micros(delay);
                            let h = ctx.schedule_timer(d, tag);
                            self.armed.push((h, tag, ctx.now() + d));
                        }
                        1 if !self.armed.is_empty() => {
                            let i = delay as usize % self.armed.len();
                            let (h, tag, deadline) = self.armed.swap_remove(i);
                            ctx.cancel_timer(h);
                            if deadline > ctx.now() {
                                self.forbidden.insert(tag);
                            }
                        }
                        2 => {
                            let id = ctx.next_packet_id();
                            let size = 40 + u32::from(extra) * 100;
                            ctx.transmit(self.link, Packet::new(id, 0, size, ctx.now()));
                        }
                        _ => {}
                    }
                }
            }
        }

        impl Actor for Driver {
            fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
                let now = ctx.now().as_nanos();
                match ev {
                    Event::Timer { tag } => {
                        assert!(!self.forbidden.contains(&tag), "cancelled timer {tag} fired");
                        self.armed.retain(|(_, t, _)| *t != tag);
                        self.trace.borrow_mut().push((now, 1, tag));
                    }
                    Event::Packet { packet, .. } => {
                        self.trace.borrow_mut().push((now, 2, packet.id));
                    }
                    _ => {}
                }
                self.step(ctx);
            }
        }

        fn run(script: &[(u8, u64, u8)]) -> Vec<(u64, u8, u64)> {
            let trace: Trace = Rc::new(RefCell::new(Vec::new()));
            let mut sim = Simulator::new(99);
            let a = sim.reserve_actor();
            // Self-loop link: transmitted packets come back to the driver,
            // so packet arrivals interleave with timer fires.
            let l = sim.add_link(
                a,
                a,
                LinkParams::new(Bandwidth::from_mbps(10.0), SimDuration::from_micros(500)),
            );
            sim.install_actor(a, Driver {
                link: l,
                script: script.to_vec(),
                pc: 0,
                next_tag: 0,
                armed: Vec::new(),
                forbidden: HashSet::new(),
                trace: Rc::clone(&trace),
            });
            sim.run_to_completion();
            drop(sim);
            Rc::try_unwrap(trace).expect("sim dropped").into_inner()
        }

        prop_assert_eq!(run(&script), run(&script));
    }
}
