//! Cross-replicate aggregation: scalar metrics are folded through
//! [`OnlineStats`] accumulators merged in replicate order (Chan's parallel
//! Welford), sample streams through [`Histogram`] merges, and every scalar
//! gains a 95% confidence half-width from the Student-t distribution.

use crate::runner::ExperimentRun;
use crate::spec::ParamValue;
use marnet_sim::stats::{Histogram, OnlineStats};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Two-sided 95% Student-t critical values, indexed by degrees of freedom
/// 1..=30; beyond that the normal approximation 1.960 is used.
const T_95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// The two-sided 95% t critical value for `df` degrees of freedom.
pub fn t_critical_95(df: u64) -> f64 {
    match df {
        0 => f64::NAN,
        1..=30 => T_95[(df - 1) as usize],
        _ => 1.960,
    }
}

/// Summary of one scalar metric across replicates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSummary {
    /// Replicates that reported this metric.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Half-width of the 95% confidence interval on the mean
    /// (`t · s / √n`; 0 for a single replicate).
    pub ci95: f64,
    /// Smallest replicate value.
    pub min: f64,
    /// Largest replicate value.
    pub max: f64,
}

impl MetricSummary {
    /// Builds the summary from a merged accumulator.
    pub fn from_stats(stats: &OnlineStats) -> Self {
        let n = stats.count();
        let ci95 =
            if n >= 2 { t_critical_95(n - 1) * stats.std_dev() / (n as f64).sqrt() } else { 0.0 };
        MetricSummary {
            count: n,
            mean: stats.mean(),
            std_dev: stats.std_dev(),
            ci95,
            min: if n == 0 { 0.0 } else { stats.min() },
            max: if n == 0 { 0.0 } else { stats.max() },
        }
    }
}

/// Summary of one pooled sample stream across replicates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleSummary {
    /// Total pooled samples.
    pub count: u64,
    /// Pooled mean.
    pub mean: f64,
    /// Pooled median.
    pub p50: f64,
    /// Pooled 95th percentile.
    pub p95: f64,
    /// Pooled 99th percentile.
    pub p99: f64,
}

impl SampleSummary {
    /// Builds the summary from a merged histogram.
    ///
    /// Returns `None` for an empty histogram (all replicates failed or
    /// produced no samples).
    pub fn from_histogram(h: &Histogram) -> Option<Self> {
        if h.count() == 0 {
            return None;
        }
        let mut h = h.clone();
        Some(SampleSummary {
            count: h.count() as u64,
            mean: h.mean().expect("non-empty"),
            p50: h.median().expect("non-empty"),
            p95: h.p95().expect("non-empty"),
            p99: h.p99().expect("non-empty"),
        })
    }
}

/// Aggregated view of one grid point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointSummary {
    /// The point's parameter assignment.
    pub params: BTreeMap<String, ParamValue>,
    /// Replicates that completed.
    pub replicates_ok: u32,
    /// Replicates that panicked.
    pub failed: u32,
    /// Per-metric cross-replicate summaries.
    pub scalars: BTreeMap<String, MetricSummary>,
    /// Per-stream pooled-sample summaries.
    pub samples: BTreeMap<String, SampleSummary>,
}

/// Aggregates every point of a run, in point order.
pub fn aggregate_run(run: &ExperimentRun) -> Vec<PointSummary> {
    run.points
        .iter()
        .zip(&run.reports)
        .map(|(point, replicates)| {
            // One accumulator per metric, merged in replicate order so the
            // result is independent of which thread ran which replicate.
            let mut scalar_stats: BTreeMap<String, OnlineStats> = BTreeMap::new();
            let mut sample_hists: BTreeMap<String, Histogram> = BTreeMap::new();
            let mut ok = 0u32;
            for report in replicates.iter().flatten() {
                ok += 1;
                for (key, &value) in &report.scalars {
                    let mut one = OnlineStats::new();
                    one.record(value);
                    scalar_stats.entry(key.clone()).or_default().merge(&one);
                }
                for (key, values) in &report.samples {
                    let mut one = Histogram::new();
                    for &v in values {
                        one.record(v);
                    }
                    sample_hists.entry(key.clone()).or_default().merge(&one);
                }
            }
            PointSummary {
                params: point.params.clone(),
                replicates_ok: ok,
                failed: replicates.len() as u32 - ok,
                scalars: scalar_stats
                    .iter()
                    .map(|(k, s)| (k.clone(), MetricSummary::from_stats(s)))
                    .collect(),
                samples: sample_hists
                    .iter()
                    .filter_map(|(k, h)| SampleSummary::from_histogram(h).map(|s| (k.clone(), s)))
                    .collect(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_experiment, TrialReport};
    use crate::spec::ScenarioSpec;

    #[test]
    fn t_table_endpoints() {
        assert!((t_critical_95(1) - 12.706).abs() < 1e-9);
        assert!((t_critical_95(30) - 2.042).abs() < 1e-9);
        assert!((t_critical_95(1000) - 1.960).abs() < 1e-9);
        assert!(t_critical_95(0).is_nan());
    }

    #[test]
    fn scalar_summary_matches_direct_computation() {
        let values = [3.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for v in values {
            s.record(v);
        }
        let m = MetricSummary::from_stats(&s);
        assert_eq!(m.count, 4);
        assert_eq!(m.mean, 6.0);
        assert_eq!(m.min, 3.0);
        assert_eq!(m.max, 9.0);
        // s = sqrt(20/3); CI = 3.182 * s / 2.
        let sd = (20.0f64 / 3.0).sqrt();
        assert!((m.std_dev - sd).abs() < 1e-12);
        assert!((m.ci95 - 3.182 * sd / 2.0).abs() < 1e-9);
    }

    #[test]
    fn single_replicate_has_zero_ci() {
        let mut s = OnlineStats::new();
        s.record(42.0);
        let m = MetricSummary::from_stats(&s);
        assert_eq!(m.ci95, 0.0);
        assert_eq!(m.std_dev, 0.0);
    }

    #[test]
    fn aggregate_pools_samples_and_counts_failures() {
        let spec = ScenarioSpec::new("agg-demo", 5, 4);
        let run = run_experiment(&spec, 2, |_, ctx| {
            if ctx.replicate == 3 {
                panic!("deliberate");
            }
            let mut r = TrialReport::new();
            r.scalar("v", ctx.replicate as f64);
            r.samples("s", vec![ctx.replicate as f64; 10]);
            r
        });
        let summary = aggregate_run(&run);
        assert_eq!(summary.len(), 1);
        let p = &summary[0];
        assert_eq!(p.replicates_ok, 3);
        assert_eq!(p.failed, 1);
        let v = &p.scalars["v"];
        assert_eq!(v.count, 3);
        assert_eq!(v.mean, 1.0);
        let s = &p.samples["s"];
        assert_eq!(s.count, 30);
        assert_eq!(s.p50, 1.0);
    }
}
