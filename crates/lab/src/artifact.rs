//! Versioned, reproducible experiment artifacts.
//!
//! An [`Artifact`] is the JSON file a lab run leaves behind: schema
//! version, full provenance (spec, spec hash, base seed, replicate count,
//! failure count) and the per-point aggregates. Nothing time- or
//! machine-dependent goes in, so the same spec at any thread count
//! produces a byte-identical file — which is what makes
//! [`Artifact::diff`] against a stored baseline meaningful.

use crate::agg::{aggregate_run, PointSummary};
use crate::runner::ExperimentRun;
use crate::spec::ScenarioSpec;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;

/// Current artifact schema version.
pub const SCHEMA_VERSION: u32 = 1;

/// A complete, versioned experiment result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Artifact {
    /// Artifact schema version (see [`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Experiment name (mirrors `spec.name`).
    pub experiment: String,
    /// Base seed the run used (mirrors `spec.seed`).
    pub seed: u64,
    /// Replicates per point (mirrors `spec.replicates`).
    pub replicates: u32,
    /// Hex [`ScenarioSpec::spec_hash`] of `spec`.
    pub spec_hash: String,
    /// Total replicates that panicked across all points.
    pub failed_trials: u32,
    /// The full spec, for re-running the experiment from the artifact.
    pub spec: ScenarioSpec,
    /// Per-point aggregates, in grid order.
    pub points: Vec<PointSummary>,
}

impl Artifact {
    /// Builds the artifact for a finished run.
    pub fn from_run(run: &ExperimentRun) -> Self {
        Artifact {
            schema_version: SCHEMA_VERSION,
            experiment: run.spec.name.clone(),
            seed: run.spec.seed,
            replicates: run.spec.replicates,
            spec_hash: format!("{:016x}", run.spec_hash),
            failed_trials: run.failures.len() as u32,
            spec: run.spec.clone(),
            points: aggregate_run(run),
        }
    }

    /// The canonical pretty-printed JSON encoding.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("artifact serializes")
    }

    /// Writes the artifact atomically: the body lands in a sibling temp
    /// file which is renamed into place, so readers never observe a
    /// half-written artifact.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        let mut tmp = path.to_path_buf();
        let file_name = path.file_name().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "artifact path has no file name")
        })?;
        tmp.set_file_name(format!(".{}.tmp", file_name.to_string_lossy()));
        fs::write(&tmp, self.to_json())?;
        fs::rename(&tmp, path)
    }

    /// Loads an artifact, refusing schemas newer than this library knows.
    pub fn load(path: &Path) -> io::Result<Artifact> {
        let body = fs::read_to_string(path)?;
        let artifact: Artifact = serde_json::from_str(&body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{path:?}: {e:?}")))?;
        if artifact.schema_version > SCHEMA_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{path:?}: schema v{} is newer than supported v{SCHEMA_VERSION}",
                    artifact.schema_version
                ),
            ));
        }
        Ok(artifact)
    }

    /// Compares this artifact (the current run) against a `baseline`:
    /// every shared point/metric pair whose means differ by more than the
    /// sum of the two 95% half-widths *and* by more than 1% relatively is
    /// flagged. Points are matched by parameter assignment, not index, so
    /// re-ordered grids still diff correctly.
    pub fn diff(&self, baseline: &Artifact) -> Vec<MetricDrift> {
        let mut drifts = Vec::new();
        for point in &self.points {
            let Some(base_point) = baseline.points.iter().find(|p| p.params == point.params) else {
                continue;
            };
            for (metric, cur) in &point.scalars {
                let Some(base) = base_point.scalars.get(metric) else { continue };
                let delta = cur.mean - base.mean;
                let ci_span = cur.ci95 + base.ci95;
                let rel = if base.mean.abs() > f64::EPSILON {
                    delta.abs() / base.mean.abs()
                } else if delta.abs() > f64::EPSILON {
                    f64::INFINITY
                } else {
                    0.0
                };
                if delta.abs() > ci_span && rel > 0.01 {
                    drifts.push(MetricDrift {
                        point: point
                            .params
                            .iter()
                            .map(|(k, v)| format!("{k}={v}"))
                            .collect::<Vec<_>>()
                            .join(" "),
                        metric: metric.clone(),
                        baseline_mean: base.mean,
                        current_mean: cur.mean,
                        relative_change: if rel.is_finite() { rel } else { f64::NAN },
                    });
                }
            }
        }
        drifts
    }
}

/// One metric that moved outside the joint confidence band of its baseline.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricDrift {
    /// Human-readable parameter assignment of the drifted point.
    pub point: String,
    /// Metric name.
    pub metric: String,
    /// Baseline mean.
    pub baseline_mean: f64,
    /// Current mean.
    pub current_mean: f64,
    /// `|Δ| / |baseline|` (NaN when the baseline mean is zero).
    pub relative_change: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_experiment, TrialReport};
    use crate::spec::{ParamValue, ScenarioSpec};

    fn artifact_for(offset: f64) -> Artifact {
        let spec = ScenarioSpec::new("artifact-demo", 3, 4)
            .with_axis("x", vec![ParamValue::Int(1), ParamValue::Int(2)]);
        let run = run_experiment(&spec, 2, |point, ctx| {
            let mut r = TrialReport::new();
            let x = point.param("x").as_int().unwrap() as f64;
            r.scalar("metric", x * 10.0 + offset + ctx.replicate as f64 * 0.01);
            r
        });
        Artifact::from_run(&run)
    }

    #[test]
    fn artifact_round_trips_and_is_versioned() {
        let a = artifact_for(0.0);
        assert_eq!(a.schema_version, SCHEMA_VERSION);
        assert_eq!(a.points.len(), 2);
        assert_eq!(a.spec_hash.len(), 16);
        let dir = std::env::temp_dir().join(format!("marnet_lab_art_{}", std::process::id()));
        let path = dir.join("a.json");
        a.write(&path).unwrap();
        let back = Artifact::load(&path).unwrap();
        assert_eq!(a, back);
        // Atomicity: no temp file left behind.
        assert!(!dir.join(".a.json.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_future_schema() {
        let mut a = artifact_for(0.0);
        a.schema_version = SCHEMA_VERSION + 1;
        let dir = std::env::temp_dir().join(format!("marnet_lab_art2_{}", std::process::id()));
        let path = dir.join("future.json");
        a.write(&path).unwrap();
        assert!(Artifact::load(&path).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn diff_flags_real_drift_and_ignores_noise() {
        let base = artifact_for(0.0);
        // Same distribution: nothing drifts.
        assert!(artifact_for(0.0).diff(&base).is_empty());
        // A 20% shift far outside the tiny CIs: both points flagged.
        let drifted = artifact_for(3.0);
        let drifts = drifted.diff(&base);
        assert_eq!(drifts.len(), 2);
        assert_eq!(drifts[0].metric, "metric");
        assert!(drifts[0].relative_change > 0.01);
    }
}
