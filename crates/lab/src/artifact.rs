//! Versioned, reproducible experiment artifacts.
//!
//! An [`Artifact`] is the JSON file a lab run leaves behind: schema
//! version, full provenance (spec, spec hash, base seed, replicate count,
//! failure count) and the per-point aggregates. Nothing time- or
//! machine-dependent goes in, so the same spec at any thread count
//! produces a byte-identical file — which is what makes
//! [`Artifact::diff`] against a stored baseline meaningful.

use crate::agg::{aggregate_run, PointSummary};
use crate::runner::ExperimentRun;
use crate::spec::ScenarioSpec;
use marnet_telemetry::MetricsSnapshot;
use serde::{object_get, Deserialize, Error, Serialize, Value};
use std::fs;
use std::io;
use std::path::Path;

/// Base artifact schema version (no metrics section).
pub const SCHEMA_VERSION: u32 = 1;

/// Schema version written when the optional `metrics` section is present.
pub const SCHEMA_VERSION_METRICS: u32 = 2;

/// A complete, versioned experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// Artifact schema version: [`SCHEMA_VERSION`], or
    /// [`SCHEMA_VERSION_METRICS`] when `metrics` is present.
    pub schema_version: u32,
    /// Experiment name (mirrors `spec.name`).
    pub experiment: String,
    /// Base seed the run used (mirrors `spec.seed`).
    pub seed: u64,
    /// Replicates per point (mirrors `spec.replicates`).
    pub replicates: u32,
    /// Hex [`ScenarioSpec::spec_hash`] of `spec`.
    pub spec_hash: String,
    /// Total replicates that panicked across all points.
    pub failed_trials: u32,
    /// The full spec, for re-running the experiment from the artifact.
    pub spec: ScenarioSpec,
    /// Per-point aggregates, in grid order.
    pub points: Vec<PointSummary>,
    /// Schema-v2 section: one merged metrics snapshot per point, in grid
    /// order (counters summed, series concatenated across replicates).
    /// `None` for runs without `--metrics` — the field is then omitted from
    /// the JSON entirely, keeping v1 artifacts byte-identical.
    pub metrics: Option<Vec<MetricsSnapshot>>,
}

// Hand-written (de)serialization: the vendored serde derive always writes
// every field (an absent `Option` would appear as `"metrics": null`), but
// v1 artifacts must stay byte-identical, so `metrics` is emitted only when
// present and tolerated as missing on load.
impl Serialize for Artifact {
    fn serialize_value(&self) -> Value {
        let mut pairs = vec![
            ("schema_version".to_string(), self.schema_version.serialize_value()),
            ("experiment".to_string(), self.experiment.serialize_value()),
            ("seed".to_string(), self.seed.serialize_value()),
            ("replicates".to_string(), self.replicates.serialize_value()),
            ("spec_hash".to_string(), self.spec_hash.serialize_value()),
            ("failed_trials".to_string(), self.failed_trials.serialize_value()),
            ("spec".to_string(), self.spec.serialize_value()),
            ("points".to_string(), self.points.serialize_value()),
        ];
        if let Some(metrics) = &self.metrics {
            pairs.push(("metrics".to_string(), metrics.serialize_value()));
        }
        Value::Object(pairs)
    }
}

impl Deserialize for Artifact {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let pairs = v.as_object().ok_or_else(|| Error::new("expected artifact object"))?;
        let metrics = match object_get(pairs, "metrics") {
            Ok(val) => Some(Vec::<MetricsSnapshot>::deserialize_value(val)?),
            Err(_) => None,
        };
        Ok(Artifact {
            schema_version: u32::deserialize_value(object_get(pairs, "schema_version")?)?,
            experiment: String::deserialize_value(object_get(pairs, "experiment")?)?,
            seed: u64::deserialize_value(object_get(pairs, "seed")?)?,
            replicates: u32::deserialize_value(object_get(pairs, "replicates")?)?,
            spec_hash: String::deserialize_value(object_get(pairs, "spec_hash")?)?,
            failed_trials: u32::deserialize_value(object_get(pairs, "failed_trials")?)?,
            spec: ScenarioSpec::deserialize_value(object_get(pairs, "spec")?)?,
            points: Vec::<PointSummary>::deserialize_value(object_get(pairs, "points")?)?,
            metrics,
        })
    }
}

impl Artifact {
    /// Builds the artifact for a finished run. The metrics section is
    /// present iff at least one trial captured metrics; per point, the
    /// replicate snapshots merge in replicate order.
    pub fn from_run(run: &ExperimentRun) -> Self {
        let any_metrics = run.reports.iter().flatten().flatten().any(|r| r.metrics.is_some());
        let metrics = any_metrics.then(|| {
            run.reports
                .iter()
                .map(|replicates| {
                    let mut merged = MetricsSnapshot::default();
                    for report in replicates.iter().flatten() {
                        if let Some(snap) = &report.metrics {
                            merged.merge(snap);
                        }
                    }
                    merged
                })
                .collect::<Vec<_>>()
        });
        Artifact {
            schema_version: if metrics.is_some() { SCHEMA_VERSION_METRICS } else { SCHEMA_VERSION },
            experiment: run.spec.name.clone(),
            seed: run.spec.seed,
            replicates: run.spec.replicates,
            spec_hash: format!("{:016x}", run.spec_hash),
            failed_trials: run.failures.len() as u32,
            spec: run.spec.clone(),
            points: aggregate_run(run),
            metrics,
        }
    }

    /// The canonical pretty-printed JSON encoding.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("artifact serializes")
    }

    /// Writes the artifact atomically: the body lands in a sibling temp
    /// file which is renamed into place, so readers never observe a
    /// half-written artifact.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        let mut tmp = path.to_path_buf();
        let file_name = path.file_name().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "artifact path has no file name")
        })?;
        tmp.set_file_name(format!(".{}.tmp", file_name.to_string_lossy()));
        fs::write(&tmp, self.to_json())?;
        fs::rename(&tmp, path)
    }

    /// Loads an artifact, refusing schemas newer than this library knows.
    pub fn load(path: &Path) -> io::Result<Artifact> {
        let body = fs::read_to_string(path)?;
        let artifact: Artifact = serde_json::from_str(&body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{path:?}: {e:?}")))?;
        if artifact.schema_version > SCHEMA_VERSION_METRICS {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{path:?}: schema v{} is newer than supported v{SCHEMA_VERSION_METRICS}",
                    artifact.schema_version
                ),
            ));
        }
        Ok(artifact)
    }

    /// Compares this artifact (the current run) against a `baseline`:
    /// every shared point/metric pair whose means differ by more than the
    /// sum of the two 95% half-widths *and* by more than 1% relatively is
    /// flagged. Points are matched by parameter assignment, not index, so
    /// re-ordered grids still diff correctly.
    pub fn diff(&self, baseline: &Artifact) -> Vec<MetricDrift> {
        let mut drifts = Vec::new();
        for point in &self.points {
            let Some(base_point) = baseline.points.iter().find(|p| p.params == point.params) else {
                continue;
            };
            for (metric, cur) in &point.scalars {
                let Some(base) = base_point.scalars.get(metric) else { continue };
                let delta = cur.mean - base.mean;
                let ci_span = cur.ci95 + base.ci95;
                let rel = if base.mean.abs() > f64::EPSILON {
                    delta.abs() / base.mean.abs()
                } else if delta.abs() > f64::EPSILON {
                    f64::INFINITY
                } else {
                    0.0
                };
                if delta.abs() > ci_span && rel > 0.01 {
                    drifts.push(MetricDrift {
                        point: point
                            .params
                            .iter()
                            .map(|(k, v)| format!("{k}={v}"))
                            .collect::<Vec<_>>()
                            .join(" "),
                        metric: metric.clone(),
                        baseline_mean: base.mean,
                        current_mean: cur.mean,
                        relative_change: if rel.is_finite() { rel } else { f64::NAN },
                    });
                }
            }
        }
        drifts
    }
}

/// One metric that moved outside the joint confidence band of its baseline.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricDrift {
    /// Human-readable parameter assignment of the drifted point.
    pub point: String,
    /// Metric name.
    pub metric: String,
    /// Baseline mean.
    pub baseline_mean: f64,
    /// Current mean.
    pub current_mean: f64,
    /// `|Δ| / |baseline|` (NaN when the baseline mean is zero).
    pub relative_change: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_experiment, TrialReport};
    use crate::spec::{ParamValue, ScenarioSpec};

    fn artifact_for(offset: f64) -> Artifact {
        let spec = ScenarioSpec::new("artifact-demo", 3, 4)
            .with_axis("x", vec![ParamValue::Int(1), ParamValue::Int(2)]);
        let run = run_experiment(&spec, 2, |point, ctx| {
            let mut r = TrialReport::new();
            let x = point.param("x").as_int().unwrap() as f64;
            r.scalar("metric", x * 10.0 + offset + ctx.replicate as f64 * 0.01);
            r
        });
        Artifact::from_run(&run)
    }

    #[test]
    fn artifact_round_trips_and_is_versioned() {
        let a = artifact_for(0.0);
        assert_eq!(a.schema_version, SCHEMA_VERSION);
        assert_eq!(a.points.len(), 2);
        assert_eq!(a.spec_hash.len(), 16);
        // v1 artifacts carry no metrics key at all.
        assert!(a.metrics.is_none());
        assert!(!a.to_json().contains("\"metrics\""));
        let dir = std::env::temp_dir().join(format!("marnet_lab_art_{}", std::process::id()));
        let path = dir.join("a.json");
        a.write(&path).unwrap();
        let back = Artifact::load(&path).unwrap();
        assert_eq!(a, back);
        // Atomicity: no temp file left behind.
        assert!(!dir.join(".a.json.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_section_bumps_schema_and_round_trips() {
        let spec = ScenarioSpec::new("artifact-metrics", 3, 2)
            .with_axis("x", vec![ParamValue::Int(1), ParamValue::Int(2)]);
        let run = run_experiment(&spec, 2, |point, ctx| {
            let mut r = TrialReport::new();
            r.scalar("m", 1.0);
            let reg = marnet_telemetry::MetricsRegistry::new();
            reg.counter("c").add(point.index as u64 + 1 + u64::from(ctx.replicate));
            r.metrics = Some(reg.snapshot());
            r
        });
        let a = Artifact::from_run(&run);
        assert_eq!(a.schema_version, SCHEMA_VERSION_METRICS);
        let merged = a.metrics.as_ref().unwrap();
        assert_eq!(merged.len(), 2);
        // Counters sum across the point's replicates: 1+2 and 2+3.
        assert_eq!(merged[0].counters["c"], 3);
        assert_eq!(merged[1].counters["c"], 5);
        let dir = std::env::temp_dir().join(format!("marnet_lab_art3_{}", std::process::id()));
        let path = dir.join("m.json");
        a.write(&path).unwrap();
        let back = Artifact::load(&path).unwrap();
        assert_eq!(a, back);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_future_schema() {
        let mut a = artifact_for(0.0);
        a.schema_version = SCHEMA_VERSION_METRICS + 1;
        let dir = std::env::temp_dir().join(format!("marnet_lab_art2_{}", std::process::id()));
        let path = dir.join("future.json");
        a.write(&path).unwrap();
        assert!(Artifact::load(&path).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn diff_flags_real_drift_and_ignores_noise() {
        let base = artifact_for(0.0);
        // Same distribution: nothing drifts.
        assert!(artifact_for(0.0).diff(&base).is_empty());
        // A 20% shift far outside the tiny CIs: both points flagged.
        let drifted = artifact_for(3.0);
        let drifts = drifted.diff(&base);
        assert_eq!(drifts.len(), 2);
        assert_eq!(drifts[0].metric, "metric");
        assert!(drifts[0].relative_change > 0.01);
    }
}
