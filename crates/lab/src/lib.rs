//! # marnet-lab — Monte-Carlo experiment orchestration
//!
//! Runs any scenario as `N` replicates across a parameter grid on all
//! cores, deterministically:
//!
//! - [`spec`] — serde-serializable [`spec::ScenarioSpec`]: base parameters,
//!   cartesian sweep axes, replicate count, and a stable spec hash over the
//!   canonical JSON encoding.
//! - [`runner`] — scoped-thread executor. Each trial draws its own ChaCha12
//!   substream derived from `(base seed, spec hash, point, replicate)`,
//!   panics are isolated with `catch_unwind` and recorded as failed trials,
//!   and results merge in fixed index order — so artifacts are
//!   **byte-identical at any thread count**.
//! - [`agg`] — cross-replicate aggregation: scalar metrics through merged
//!   [`marnet_sim::stats::OnlineStats`] (Chan's parallel Welford) with 95%
//!   Student-t confidence intervals, sample streams through merged
//!   [`marnet_sim::stats::Histogram`]s (pooled p50/p95/p99).
//! - [`artifact`] — versioned JSON artifact (schema v1) with full
//!   provenance (spec, spec hash, seed, replicate and failure counts) plus
//!   a baseline diff mode flagging metrics that drift outside the joint
//!   confidence band.
//! - [`experiments`] — the paper experiments ported onto the runner:
//!   `table2_rtt`, `sweep_recovery` and `sweep_offload`, whose tables gain
//!   mean ± 95% CI columns.
//!
//! The `marnet-lab` binary drives it all:
//!
//! ```text
//! cargo run -p marnet-lab -- table2_rtt --replicates 32 --threads 8
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod artifact;
pub mod experiments;
pub mod racecheck;
pub mod runner;
pub mod spec;
pub mod train;

pub use agg::{aggregate_run, MetricSummary, PointSummary, SampleSummary};
pub use artifact::{Artifact, MetricDrift, SCHEMA_VERSION};
pub use racecheck::{run_racecheck, RacecheckOptions};
pub use runner::{run_experiment, ExperimentRun, TrialCtx, TrialFailure, TrialReport};
pub use spec::{GridAxis, GridPoint, ParamValue, ScenarioSpec};
pub use train::{run_training, train_hash, TrainOptions};
