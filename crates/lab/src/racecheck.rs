//! `marnet-lab racecheck` — the schedule-perturbation race detector.
//!
//! Every headline claim in this repro rests on the engine's determinism
//! invariant, and the most insidious way to break it silently is code
//! whose *results* depend on the FIFO tie-break of equal-timestamp events.
//! That dependence is invisible to normal determinism tests (rerunning the
//! same binary replays the same tie order), so this module perturbs the
//! order instead: it replays the four-member policy portfolio
//! (recovery / offload / faults / fairness) plus the E17 city-scale
//! canary under every [`TieBreak`] policy — `Fifo` (the reference),
//! `Lifo`, and two seeded deterministic shuffles — and compares the
//! resulting lab artifacts **byte for byte**.
//!
//! The perturbation mechanism is the ambient tie-break scope
//! ([`with_ambient_tie_break`]): scenario runners construct their
//! simulators internally via `Simulator::new(seed)`, so each trial body
//! runs inside a scope that routes the policy to every simulator it
//! builds. The [`ScenarioSpec`] is *identical* across policies (the
//! policy is injected by closure capture, never written into the spec),
//! so the spec hash — and, for tie-order-independent code, every artifact
//! byte — matches the reference exactly.
//!
//! On a mismatch the detector localizes the fault: each trial also
//! captures its flight-recorder trace, and the first divergent trial's
//! traces go through [`marnet_telemetry::first_divergence`] — the same
//! comparison `marnet-trace diff` uses — so the failure report names the
//! exact first event where the schedules' behavior (not just their
//! equal-time ordering) split. Exit codes follow the workspace
//! convention: 0 tie-order independent, 1 divergence, 2 usage error.
//!
//! What a clean run proves — and doesn't: tie-order independence is
//! checked for the *portfolio workloads under the default policy
//! parameters*, for the specific tie populations those schedules produce.
//! It is evidence, not a proof over all schedules; see DESIGN §15.

use std::collections::BTreeMap;

use crate::artifact::Artifact;
use crate::runner::run_experiment;
use crate::spec::{ParamValue, ScenarioSpec};
use crate::train;
use marnet_core::policy::PolicyParams;
use marnet_sim::config::{with_ambient_tie_break, TieBreak};
use marnet_sim::prelude::*;
use marnet_sim::rng::derive_rng;
use marnet_telemetry::{
    first_divergence, TelemetryCapture, TelemetryOptions, TraceEvent, DEFAULT_TRACE_CAPACITY,
};
use rand::Rng;
use std::cell::RefCell;
use std::rc::Rc;

/// The replayed portfolio: the four train members plus the E17 canary.
pub const PORTFOLIO: [&str; 5] = ["recovery", "offload", "faults", "fairness", "canary"];

/// Resolved options of one racecheck run.
#[derive(Debug, Clone)]
pub struct RacecheckOptions {
    /// Base seed: trial seeds and the two `Seeded` shuffle keys derive
    /// from it.
    pub seed: u64,
    /// Replicates per portfolio member (each replicate is a distinct
    /// simulation seed, i.e. a distinct tie population).
    pub replicates: u32,
    /// Worker threads for the trial fan-out; the verdict and every line
    /// of the report are independent of this.
    pub threads: usize,
    /// Use the reduced horizons/population of the quick tier (tests).
    pub quick: bool,
    /// Run the intentionally tie-order-dependent demo scenario instead of
    /// the portfolio — a self-test that must exit 1.
    pub demo: bool,
    /// Capture flight-recorder traces for divergence localization.
    pub trace: bool,
}

impl Default for RacecheckOptions {
    fn default() -> Self {
        RacecheckOptions {
            seed: 42,
            replicates: 1,
            threads: 1,
            quick: false,
            demo: false,
            trace: true,
        }
    }
}

/// Quick-tier horizons for tests: the shortest schedules that still
/// exercise every member's machinery (faults needs > 2 s so the outage at
/// t = 2 s actually fires) with a small canary population.
const QUICK_TIER: train::Tier = train::Tier {
    recovery_secs: 2,
    offload_secs: 2,
    faults_secs: 3,
    fairness_secs: 2,
    canary_secs: 1,
};
/// Quick-tier canary population.
const QUICK_CANARY_CLIENTS: u64 = 2_000;
/// Smoke-tier canary population (the train canary's).
const SMOKE_CANARY_CLIENTS: u64 = 25_000;
/// Canary backhaul, as in the train canary.
const CANARY_BACKHAUL_GBPS: f64 = 10.0;

/// The four policies a racecheck run compares, reference first. The two
/// shuffle keys derive from the base seed, so the whole run is a pure
/// function of the options.
pub fn policies(seed: u64) -> Vec<TieBreak> {
    let mut out = vec![TieBreak::Fifo, TieBreak::Lifo];
    for i in 0..2u32 {
        out.push(TieBreak::Seeded(derive_rng(seed, &format!("racecheck/seeded/{i}")).gen()));
    }
    out
}

/// Everything one policy's portfolio replay produced: the artifact bytes
/// (the comparison gate) plus per-trial traces and failures (the
/// diagnostics).
pub struct PolicyOutcome {
    /// The policy the portfolio ran under.
    pub policy: TieBreak,
    /// The lab artifact, serialized — byte-compared against the reference.
    pub artifact_json: String,
    /// One record per trial, in spec order.
    pub trials: Vec<TrialRecord>,
    /// Panicked trials (`point/replicate: message`).
    pub failures: Vec<String>,
}

/// One trial's diagnostics: its scalar results (semantic divergence is
/// detected here) and its flight-recorder trace (the divergence is then
/// localized here).
#[derive(Clone)]
pub struct TrialRecord {
    /// Portfolio member name.
    pub member: String,
    /// Replicate index.
    pub replicate: u32,
    /// The trial's scalar metrics.
    pub scalars: BTreeMap<String, f64>,
    /// The trial's captured trace (empty when tracing is off).
    pub trace: Vec<TraceEvent>,
}

impl std::fmt::Debug for TrialRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrialRecord")
            .field("member", &self.member)
            .field("replicate", &self.replicate)
            .field("scalars", &self.scalars)
            .field("trace_events", &self.trace.len())
            .finish()
    }
}

impl std::fmt::Debug for PolicyOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyOutcome")
            .field("policy", &self.policy)
            .field("artifact_bytes", &self.artifact_json.len())
            .field("trials", &self.trials.len())
            .field("failures", &self.failures)
            .finish()
    }
}

/// Replays the portfolio (or the demo) under one tie-break policy.
/// The spec never mentions the policy, so every policy runs the same
/// trial seeds; the policy reaches the simulators through the ambient
/// scope wrapped around each trial body.
pub fn run_portfolio(policy: TieBreak, opts: &RacecheckOptions) -> PolicyOutcome {
    let tier = if opts.quick { QUICK_TIER } else { train::SMOKE_TIER };
    let canary_clients = if opts.quick { QUICK_CANARY_CLIENTS } else { SMOKE_CANARY_CLIENTS };
    let members: Vec<&str> = if opts.demo { vec!["demo"] } else { PORTFOLIO.to_vec() };
    let cfgs = train::member_configs(&PolicyParams::default());
    let telemetry = if opts.trace {
        TelemetryOptions { trace_capacity: Some(DEFAULT_TRACE_CAPACITY), metrics: false }
    } else {
        TelemetryOptions::disabled()
    };

    let spec = ScenarioSpec::new("racecheck", opts.seed, opts.replicates)
        .with_axis("member", members.iter().map(|m| ParamValue::Str((*m).to_string())).collect());
    let run = run_experiment(&spec, opts.threads, |point, ctx| {
        let member = point.param("member").as_str().expect("str");
        // The whole trial body runs inside the ambient scope: every
        // Simulator::new the scenario constructs sees `policy`.
        with_ambient_tie_break(policy, || {
            let (scalars, events) = match member {
                "demo" => demo_scalars(ctx.seed, &telemetry),
                "canary" => train::canary_scalars(
                    canary_clients,
                    CANARY_BACKHAUL_GBPS,
                    tier.canary_secs,
                    ctx.seed,
                    &telemetry,
                ),
                _ => {
                    train::run_member(member, &cfgs, tier.member_secs(member), ctx.seed, &telemetry)
                }
            };
            let mut report = crate::runner::TrialReport::new();
            for (key, value) in scalars {
                report.scalar(key, value);
            }
            report.capture(TelemetryCapture { events, metrics: None });
            report
        })
    });

    let mut trials = Vec::new();
    for (pi, member) in members.iter().enumerate() {
        for (ri, report) in run.reports[pi].iter().enumerate() {
            trials.push(TrialRecord {
                member: (*member).to_string(),
                replicate: ri as u32,
                scalars: report.as_ref().map(|r| r.scalars.clone()).unwrap_or_default(),
                trace: report.as_ref().map(|r| r.events.clone()).unwrap_or_default(),
            });
        }
    }
    let failures = run
        .failures
        .iter()
        .map(|f| format!("point {} replicate {}: {}", f.point_index, f.replicate, f.message))
        .collect();
    PolicyOutcome { policy, artifact_json: Artifact::from_run(&run).to_json(), trials, failures }
}

/// The demo member: a deliberately tie-order-dependent scenario proving
/// the detector detects. Two equal-size packets leave on two identical
/// parallel links at t = 0 and arrive in the same instant; the recorded
/// scalar is the id of whichever arrives first — a pure function of the
/// tie-break policy, so the artifacts *must* diverge and racecheck must
/// exit 1.
fn demo_scalars(
    seed: u64,
    telemetry: &TelemetryOptions,
) -> (BTreeMap<String, f64>, Vec<TraceEvent>) {
    struct Src {
        a: LinkId,
        b: LinkId,
    }
    impl Actor for Src {
        fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
            if matches!(ev, Event::Start) {
                let now = ctx.now();
                let first = Packet::new(ctx.next_packet_id(), 1, 600, now);
                let second = Packet::new(ctx.next_packet_id(), 1, 600, now);
                ctx.transmit(self.a, first);
                ctx.transmit(self.b, second);
            }
        }
    }
    struct Dst {
        order: Rc<RefCell<Vec<u64>>>,
    }
    impl Actor for Dst {
        fn on_event(&mut self, _ctx: &mut SimCtx, ev: Event) {
            if let Event::Packet { packet, .. } = ev {
                self.order.borrow_mut().push(packet.id);
            }
        }
    }

    let mut sim = Simulator::new(seed);
    if let Some(cap) = telemetry.trace_capacity {
        sim.enable_flight_recorder(cap);
    }
    let src = sim.reserve_actor();
    let dst = sim.reserve_actor();
    let params = LinkParams::new(Bandwidth::from_mbps(10.0), SimDuration::from_millis(5));
    let a = sim.add_link(src, dst, params.clone());
    let b = sim.add_link(src, dst, params);
    let order = Rc::new(RefCell::new(Vec::new()));
    sim.install_actor(src, Src { a, b });
    sim.install_actor(dst, Dst { order: Rc::clone(&order) });
    sim.run_until(SimTime::from_millis(20));

    let first = order.borrow().first().copied().unwrap_or(u64::MAX) as f64;
    let scalars = BTreeMap::from([("first_arrival".to_string(), first)]);
    (scalars, sim.take_trace())
}

/// One policy's verdict against the reference.
#[derive(Debug)]
pub struct PolicyVerdict {
    /// The perturbed policy.
    pub policy: TieBreak,
    /// `true` when the artifact matched the reference byte-for-byte and
    /// no trial failed.
    pub clean: bool,
    /// The human-readable divergence report (empty when clean).
    pub report: String,
}

/// Compares one perturbed policy's outcome against the FIFO reference and
/// renders the divergence report: the first trial whose trace diverges
/// (localized event-by-event), or the first differing artifact line when
/// the traces cannot localize it.
pub fn compare(reference: &PolicyOutcome, candidate: &PolicyOutcome) -> PolicyVerdict {
    let mut report = String::new();
    if !candidate.failures.is_empty() {
        report.push_str(&format!(
            "{} trial(s) failed under {} (the reference completed cleanly):\n",
            candidate.failures.len(),
            candidate.policy.label()
        ));
        for f in &candidate.failures {
            report.push_str(&format!("  {f}\n"));
        }
        return PolicyVerdict { policy: candidate.policy, clean: false, report };
    }
    if candidate.artifact_json == reference.artifact_json {
        return PolicyVerdict { policy: candidate.policy, clean: true, report };
    }

    report.push_str(&format!(
        "artifact differs from the {} reference under {}\n",
        reference.policy.label(),
        candidate.policy.label()
    ));
    // Which result moved: the first differing artifact line.
    let a_lines: Vec<&str> = reference.artifact_json.lines().collect();
    let b_lines: Vec<&str> = candidate.artifact_json.lines().collect();
    let i = a_lines
        .iter()
        .zip(&b_lines)
        .position(|(x, y)| x != y)
        .unwrap_or(a_lines.len().min(b_lines.len()));
    report.push_str(&format!("first differing artifact line ({}):\n", i + 1));
    report.push_str(&format!(
        "  {}: {}\n",
        reference.policy.label(),
        a_lines.get(i).map(|l| l.trim_start()).unwrap_or("<eof>")
    ));
    report.push_str(&format!(
        "  {}: {}\n",
        candidate.policy.label(),
        b_lines.get(i).map(|l| l.trim_start()).unwrap_or("<eof>")
    ));
    // Which trial's *results* moved. Trace order alone is not evidence:
    // the perturbation legitimately reorders equal-time events (and with
    // them packet-id allocation), so most trials' traces differ even when
    // every scalar matches. Scalars are the semantic gate.
    let divergent =
        reference.trials.iter().zip(&candidate.trials).find(|(r, c)| r.scalars != c.scalars);
    let localize = if let Some((r, c)) = divergent {
        report
            .push_str(&format!("first divergent trial: {} replicate {}\n", r.member, r.replicate));
        for (key, rv) in &r.scalars {
            let cv = c.scalars.get(key);
            if cv != Some(rv) {
                report.push_str(&format!(
                    "  scalar {key}: {} -> {}\n",
                    rv,
                    cv.map_or("<missing>".to_string(), |v| v.to_string())
                ));
            }
        }
        Some((r, c))
    } else {
        // Artifact bytes moved without a scalar change (e.g. sample
        // streams): point at the first trial whose trace diverges.
        reference
            .trials
            .iter()
            .zip(&candidate.trials)
            .find(|(r, c)| !first_divergence(&r.trace, &c.trace).is_identical())
    };
    if let Some((r, c)) = localize {
        let diff = first_divergence(&r.trace, &c.trace);
        if !diff.is_identical() {
            report.push_str(&diff.render(&reference.policy.label(), &candidate.policy.label()));
        }
    }
    PolicyVerdict { policy: candidate.policy, clean: false, report }
}

/// Runs the full race check: the portfolio under every policy, each
/// perturbed run byte-compared against the FIFO reference. Returns `true`
/// when every policy reproduced the reference artifact exactly. Output
/// and verdict are pure functions of `opts` (thread count excluded).
pub fn run_racecheck(opts: &RacecheckOptions) -> bool {
    let policies = policies(opts.seed);
    println!(
        "[racecheck] {} under {} policies ({}), {} member(s) x {} replicate(s), seed {}{}",
        if opts.demo { "tie-order demo" } else { "portfolio" },
        policies.len(),
        policies.iter().map(|p| p.label()).collect::<Vec<_>>().join(", "),
        if opts.demo { 1 } else { PORTFOLIO.len() },
        opts.replicates,
        opts.seed,
        if opts.quick { ", quick tier" } else { "" },
    );

    let reference = run_portfolio(policies[0], opts);
    if !reference.failures.is_empty() {
        println!("[racecheck] reference ({}) run failed:", reference.policy.label());
        for f in &reference.failures {
            println!("  {f}");
        }
        return false;
    }
    println!(
        "[racecheck] reference {}: artifact {} bytes, {} trace events",
        reference.policy.label(),
        reference.artifact_json.len(),
        reference.trials.iter().map(|t| t.trace.len()).sum::<usize>(),
    );

    let mut clean = true;
    for &policy in &policies[1..] {
        let outcome = run_portfolio(policy, opts);
        let verdict = compare(&reference, &outcome);
        if verdict.clean {
            println!("[racecheck] {}: artifact byte-identical", policy.label());
        } else {
            clean = false;
            println!("[racecheck] {}: DIVERGENCE", policy.label());
            for line in verdict.report.lines() {
                println!("  {line}");
            }
        }
    }
    println!(
        "[racecheck] verdict: {}",
        if clean { "tie-order independent (all artifacts byte-identical)" } else { "DIVERGENT" }
    );
    clean
}
