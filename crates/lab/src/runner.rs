//! The parallel replicate executor.
//!
//! [`run_experiment`] expands a [`ScenarioSpec`] into `points × replicates`
//! trials and runs them on a scoped thread pool: workers claim trial
//! indices from an atomic counter, run the trial under `catch_unwind` (a
//! panicking replicate becomes a recorded failure, not a lost run), and
//! deposit results tagged with their index. After the scope joins, results
//! are placed into per-point slots and merged **in fixed index order**, so
//! the output — and any artifact serialized from it — is bit-identical at
//! any thread count.
//!
//! Seed rule: trial `(point p, replicate r)` of a spec with base seed `s`
//! and spec-hash `h` draws from the ChaCha12 substream
//! `derive_rng(s, "lab/{h:016x}/{p}/{r}")` — replicates are independent,
//! and editing the spec (which changes `h`) reseeds everything.

use crate::spec::{GridPoint, ScenarioSpec};
use marnet_telemetry::{MetricsSnapshot, TelemetryCapture, TraceEvent};
use rand_chacha::ChaCha12Rng;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// What one trial hands back: named scalar metrics plus named sample
/// streams (e.g. per-probe latencies) for histogram merging.
#[derive(Debug, Clone, Default)]
pub struct TrialReport {
    /// One value per metric per replicate (means, percentages, counts).
    pub scalars: BTreeMap<String, f64>,
    /// Raw per-trial samples, pooled across replicates by the aggregator.
    pub samples: BTreeMap<String, Vec<f64>>,
    /// Flight-recorder events of this trial (empty unless tracing was on;
    /// the lab concatenates them in `(point, replicate)` order).
    pub events: Vec<TraceEvent>,
    /// Metrics snapshot of this trial, when metrics capture was on.
    pub metrics: Option<MetricsSnapshot>,
}

impl TrialReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a scalar metric.
    pub fn scalar(&mut self, key: impl Into<String>, value: f64) -> &mut Self {
        self.scalars.insert(key.into(), value);
        self
    }

    /// Records a sample stream.
    pub fn samples(&mut self, key: impl Into<String>, values: Vec<f64>) -> &mut Self {
        self.samples.insert(key.into(), values);
        self
    }

    /// Attaches what an instrumented scenario run captured.
    pub fn capture(&mut self, capture: TelemetryCapture) -> &mut Self {
        self.events = capture.events;
        self.metrics = capture.metrics;
        self
    }
}

/// Identity and seed material handed to each trial.
#[derive(Debug, Clone, Copy)]
pub struct TrialCtx {
    /// Grid point being evaluated.
    pub point_index: usize,
    /// Replicate number within the point, `0..replicates`.
    pub replicate: u32,
    /// The trial's private 64-bit seed (already point- and
    /// replicate-specific); feed it to `Simulator::new` or equivalents.
    pub seed: u64,
}

impl TrialCtx {
    /// The trial's ChaCha12 substream, for trials that want an RNG rather
    /// than a seed.
    pub fn rng(&self) -> ChaCha12Rng {
        marnet_sim::rng::derive_rng(self.seed, "lab.trial")
    }
}

/// A replicate that panicked instead of reporting.
#[derive(Debug, Clone)]
pub struct TrialFailure {
    /// Grid point of the failed trial.
    pub point_index: usize,
    /// Replicate number of the failed trial.
    pub replicate: u32,
    /// The panic payload, stringified.
    pub message: String,
}

/// The outcome of [`run_experiment`]: the expanded grid and, per point,
/// the replicate reports in replicate order (`None` where one failed).
#[derive(Debug)]
pub struct ExperimentRun {
    /// The spec that was run.
    pub spec: ScenarioSpec,
    /// Its [`ScenarioSpec::spec_hash`], for provenance.
    pub spec_hash: u64,
    /// Expanded grid, `points[i].index == i`.
    pub points: Vec<GridPoint>,
    /// `reports[point][replicate]`, `None` for failed replicates.
    pub reports: Vec<Vec<Option<TrialReport>>>,
    /// Every failure, in (point, replicate) order.
    pub failures: Vec<TrialFailure>,
}

impl ExperimentRun {
    /// All recorded trace events concatenated in `(point, replicate)` order
    /// — the same deterministic order the results merge in, so the
    /// concatenation is byte-identical at any thread count.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.reports
            .iter()
            .flat_map(|point| point.iter())
            .filter_map(Option::as_ref)
            .flat_map(|r| r.events.iter().copied())
            .collect()
    }
}

/// The deterministic per-trial seed: base seed folded with the spec hash,
/// point index and replicate index through the library's labelled-stream
/// rule.
pub fn trial_seed(base_seed: u64, spec_hash: u64, point_index: usize, replicate: u32) -> u64 {
    use rand::Rng;
    let label = format!("lab/{spec_hash:016x}/{point_index}/{replicate}");
    marnet_sim::rng::derive_rng(base_seed, &label).gen()
}

/// Runs every trial of `spec` on up to `threads` worker threads and merges
/// the results in fixed order.
///
/// `trial` must be pure given its `(GridPoint, TrialCtx)` inputs — it runs
/// concurrently on many threads and its outputs are expected to be
/// reproducible. A panicking trial is caught and recorded in
/// [`ExperimentRun::failures`].
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn run_experiment<F>(spec: &ScenarioSpec, threads: usize, trial: F) -> ExperimentRun
where
    F: Fn(&GridPoint, &TrialCtx) -> TrialReport + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    let spec_hash = spec.spec_hash();
    let points = spec.expand_grid();
    let replicates = spec.replicates as usize;
    let total = points.len() * replicates;

    // Workers claim job indices from `next` and deposit `(index, result)`;
    // placement below restores deterministic order.
    type Deposit = (usize, Result<TrialReport, String>);
    let next = AtomicUsize::new(0);
    let deposited: Mutex<Vec<Deposit>> = Mutex::new(Vec::with_capacity(total));
    let workers = threads.min(total.max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let job = next.fetch_add(1, Ordering::Relaxed);
                if job >= total {
                    break;
                }
                let point = &points[job / replicates];
                let ctx = TrialCtx {
                    point_index: point.index,
                    replicate: (job % replicates) as u32,
                    seed: trial_seed(spec.seed, spec_hash, point.index, (job % replicates) as u32),
                };
                let outcome = catch_unwind(AssertUnwindSafe(|| trial(point, &ctx)))
                    .map_err(|payload| panic_message(payload.as_ref()));
                deposited.lock().expect("deposit lock").push((job, outcome));
            });
        }
    });

    // Fixed merge order: sort by job index, then place into slots.
    let mut deposited = deposited.into_inner().expect("deposit lock");
    deposited.sort_by_key(|(job, _)| *job);
    let mut reports: Vec<Vec<Option<TrialReport>>> =
        (0..points.len()).map(|_| vec![None; replicates]).collect();
    let mut failures = Vec::new();
    for (job, outcome) in deposited {
        let point_index = job / replicates;
        let replicate = (job % replicates) as u32;
        match outcome {
            Ok(report) => reports[point_index][replicate as usize] = Some(report),
            Err(message) => failures.push(TrialFailure { point_index, replicate, message }),
        }
    }

    ExperimentRun { spec: spec.clone(), spec_hash, points, reports, failures }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ParamValue, ScenarioSpec};

    fn demo_spec(replicates: u32) -> ScenarioSpec {
        ScenarioSpec::new("runner-demo", 99, replicates)
            .with_axis("x", vec![ParamValue::Int(1), ParamValue::Int(2), ParamValue::Int(3)])
    }

    fn demo_trial(point: &GridPoint, ctx: &TrialCtx) -> TrialReport {
        use rand::Rng;
        let mut rng = ctx.rng();
        let x = point.param("x").as_int().unwrap() as f64;
        let mut report = TrialReport::new();
        report.scalar("noisy_x", x + rng.gen_range(-0.1..0.1));
        report.samples("draws", (0..8).map(|_| rng.gen_range(0.0..1.0)).collect());
        report
    }

    #[test]
    fn all_trials_run_and_land_in_order() {
        let spec = demo_spec(4);
        let run = run_experiment(&spec, 3, demo_trial);
        assert_eq!(run.points.len(), 3);
        assert!(run.failures.is_empty());
        for point in &run.reports {
            assert_eq!(point.len(), 4);
            assert!(point.iter().all(Option::is_some));
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let spec = demo_spec(6);
        let one = run_experiment(&spec, 1, demo_trial);
        let many = run_experiment(&spec, 8, demo_trial);
        for (a, b) in one.reports.iter().flatten().zip(many.reports.iter().flatten()) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.scalars, b.scalars);
            assert_eq!(a.samples, b.samples);
        }
    }

    #[test]
    fn replicates_are_independent_substreams() {
        let spec = demo_spec(3);
        let run = run_experiment(&spec, 2, demo_trial);
        let p0 = &run.reports[0];
        let a = p0[0].as_ref().unwrap().scalars["noisy_x"];
        let b = p0[1].as_ref().unwrap().scalars["noisy_x"];
        assert_ne!(a, b, "replicates must not repeat the same stream");
        // Different points also differ.
        let c = run.reports[1][0].as_ref().unwrap().scalars["noisy_x"];
        assert_ne!(a, c);
    }

    #[test]
    fn panicking_trials_become_failures() {
        let spec = demo_spec(2);
        let run = run_experiment(&spec, 4, |point, ctx| {
            if point.index == 1 && ctx.replicate == 0 {
                panic!("boom at point 1");
            }
            demo_trial(point, ctx)
        });
        assert_eq!(run.failures.len(), 1);
        assert_eq!(run.failures[0].point_index, 1);
        assert_eq!(run.failures[0].replicate, 0);
        assert!(run.failures[0].message.contains("boom"));
        assert!(run.reports[1][0].is_none());
        assert!(run.reports[1][1].is_some());
    }
}
