//! Experiment specifications: a named scenario, a base parameter set, a
//! cartesian sweep grid and a replicate count, all serde-serializable so a
//! spec can be stored next to the artifact it produced.
//!
//! The [`ScenarioSpec::spec_hash`] is computed over the canonical JSON
//! encoding (sorted keys, shortest-round-trip floats), so two specs hash
//! equal iff they describe the same experiment — the hash goes into the
//! artifact provenance and into every trial's seed derivation.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One parameter value: the small scalar set experiments sweep over.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamValue {
    /// An integer parameter (counts, RTTs in ms, ...).
    Int(i64),
    /// A floating-point parameter (rates, probabilities, ...).
    Float(f64),
    /// A symbolic parameter (scenario / mechanism / device names).
    Str(String),
    /// A boolean toggle.
    Bool(bool),
}

impl ParamValue {
    /// The integer value, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            ParamValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The float value (`Int` coerces), if numeric.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            ParamValue::Float(v) => Some(*v),
            ParamValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The string value, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ParamValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Int(v) => write!(f, "{v}"),
            ParamValue::Float(v) => write!(f, "{v}"),
            ParamValue::Str(s) => write!(f, "{s}"),
            ParamValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// One axis of the sweep grid: a key and the values it takes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridAxis {
    /// Parameter name the axis binds.
    pub key: String,
    /// The values swept, in declaration order.
    pub values: Vec<ParamValue>,
}

/// A full experiment specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Experiment name (also the artifact's experiment id).
    pub name: String,
    /// Base seed; every trial derives its own substream from it.
    pub seed: u64,
    /// Replicates per grid point.
    pub replicates: u32,
    /// Parameters shared by every grid point.
    pub base: BTreeMap<String, ParamValue>,
    /// Sweep axes; the grid is their cartesian product, first axis outermost.
    pub grid: Vec<GridAxis>,
}

/// One expanded grid point: base parameters plus one value per axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridPoint {
    /// Position in row-major expansion order.
    pub index: usize,
    /// The merged parameter assignment.
    pub params: BTreeMap<String, ParamValue>,
}

impl GridPoint {
    /// The parameter named `key`.
    ///
    /// # Panics
    ///
    /// Panics if the point has no such parameter — grid points are built
    /// by [`ScenarioSpec::expand_grid`], so a miss is a programming error
    /// in the experiment definition.
    pub fn param(&self, key: &str) -> &ParamValue {
        self.params
            .get(key)
            .unwrap_or_else(|| panic!("grid point {} has no parameter {key:?}", self.index))
    }
}

impl ScenarioSpec {
    /// A spec with no grid axes (a single point) and the given replicates.
    pub fn new(name: impl Into<String>, seed: u64, replicates: u32) -> Self {
        ScenarioSpec {
            name: name.into(),
            seed,
            replicates,
            base: BTreeMap::new(),
            grid: Vec::new(),
        }
    }

    /// Adds a base parameter shared by every point.
    pub fn with_param(mut self, key: impl Into<String>, value: ParamValue) -> Self {
        self.base.insert(key.into(), value);
        self
    }

    /// Adds a sweep axis.
    pub fn with_axis(mut self, key: impl Into<String>, values: Vec<ParamValue>) -> Self {
        self.grid.push(GridAxis { key: key.into(), values });
        self
    }

    /// Number of grid points (product of axis lengths; 1 with no axes).
    pub fn point_count(&self) -> usize {
        self.grid.iter().map(|a| a.values.len()).product()
    }

    /// Total trials the spec describes (`points × replicates`).
    pub fn trial_count(&self) -> usize {
        self.point_count() * self.replicates as usize
    }

    /// Expands the grid into concrete points, row-major (first axis
    /// outermost), base parameters merged in; axis values override base
    /// values of the same key.
    pub fn expand_grid(&self) -> Vec<GridPoint> {
        let n = self.point_count();
        let mut points = Vec::with_capacity(n);
        for index in 0..n {
            let mut params = self.base.clone();
            // Decompose the row-major index into per-axis positions.
            let mut stride = n;
            for axis in &self.grid {
                stride /= axis.values.len();
                let pos = index / stride % axis.values.len();
                params.insert(axis.key.clone(), axis.values[pos].clone());
            }
            points.push(GridPoint { index, params });
        }
        points
    }

    /// FNV-1a hash of the canonical JSON encoding of the spec.
    ///
    /// The vendored `serde` sorts map keys and `serde_json` prints
    /// shortest-round-trip floats, so the encoding — and therefore this
    /// hash — is stable across runs, platforms and thread counts.
    pub fn spec_hash(&self) -> u64 {
        let canonical = serde_json::to_string(self).expect("spec serializes");
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in canonical.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ScenarioSpec {
        ScenarioSpec::new("demo", 7, 3)
            .with_param("loss", ParamValue::Float(0.03))
            .with_axis("mechanism", vec![ParamValue::Str("a".into()), ParamValue::Str("b".into())])
            .with_axis(
                "rtt_ms",
                vec![ParamValue::Int(20), ParamValue::Int(60), ParamValue::Int(120)],
            )
    }

    #[test]
    fn grid_expansion_is_row_major_and_complete() {
        let s = spec();
        assert_eq!(s.point_count(), 6);
        assert_eq!(s.trial_count(), 18);
        let points = s.expand_grid();
        assert_eq!(points.len(), 6);
        // First axis outermost: mechanism a for indices 0..3.
        assert_eq!(points[0].param("mechanism").as_str(), Some("a"));
        assert_eq!(points[2].param("mechanism").as_str(), Some("a"));
        assert_eq!(points[3].param("mechanism").as_str(), Some("b"));
        // Second axis cycles within.
        assert_eq!(points[0].param("rtt_ms").as_int(), Some(20));
        assert_eq!(points[1].param("rtt_ms").as_int(), Some(60));
        assert_eq!(points[5].param("rtt_ms").as_int(), Some(120));
        // Base params are merged into every point.
        assert_eq!(points[4].param("loss").as_float(), Some(0.03));
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.index, i);
        }
    }

    #[test]
    fn spec_without_axes_is_a_single_point() {
        let s = ScenarioSpec::new("solo", 1, 5).with_param("x", ParamValue::Bool(true));
        let points = s.expand_grid();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].params.len(), 1);
    }

    #[test]
    fn spec_hash_is_stable_and_discriminating() {
        let a = spec();
        let b = spec();
        assert_eq!(a.spec_hash(), b.spec_hash());
        let mut c = spec();
        c.seed = 8;
        assert_ne!(a.spec_hash(), c.spec_hash());
        let mut d = spec();
        d.grid[1].values.pop();
        assert_ne!(a.spec_hash(), d.spec_hash());
    }

    #[test]
    fn spec_round_trips_through_json() {
        let a = spec();
        let json = serde_json::to_string(&a).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
        assert_eq!(a.spec_hash(), back.spec_hash());
    }
}
