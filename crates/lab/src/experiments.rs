//! The built-in experiments: the paper's Table II RTT measurement, the
//! §VI-C recovery sweep and the §III offload-decision sweep, each ported
//! from its single-seed `marnet-bench` binary onto the replicated runner
//! so its table gains mean ± 95% CI columns.

use crate::agg::PointSummary;
use crate::runner::{TrialCtx, TrialReport};
use crate::spec::{GridPoint, ParamValue, ScenarioSpec};
use marnet_app::compute::{ComputeModel, DbAccess, FrameWork, NetParams};
use marnet_app::device::DeviceClass;
use marnet_app::strategy::OffloadStrategy;
use marnet_bench::scenarios::{
    cityscale_offered_gbps, run_cityscale_instrumented, run_faults_instrumented,
    run_recovery_instrumented, run_table2_instrumented, FaultScenario, RecoveryMechanism,
    Table2Scenario,
};
use marnet_bench::{fmt, print_table};
use marnet_sim::link::Bandwidth;
use marnet_sim::time::SimDuration;
use marnet_telemetry::TelemetryOptions;
use std::collections::BTreeMap;

/// A boxed trial function, shareable across worker threads.
pub type TrialFn = Box<dyn Fn(&GridPoint, &TrialCtx) -> TrialReport + Sync + Send>;

/// A runnable lab experiment: its spec, trial function and table renderer.
pub struct Experiment {
    /// The default spec (callers may override seed/replicates before use).
    pub spec: ScenarioSpec,
    /// Evaluates one replicate of one grid point.
    pub trial: TrialFn,
    /// Prints the experiment's table from the aggregated points.
    pub render: fn(&[PointSummary]),
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("spec", &self.spec)
            .field("trial", &"<fn>")
            .field("render", &"<fn>")
            .finish()
    }
}

/// Names of the built-in experiments, in menu order.
pub const NAMES: [&str; 5] =
    ["table2_rtt", "sweep_recovery", "sweep_offload", "sweep_faults", "sweep_cityscale"];

/// Builds the named experiment, or `None` for an unknown name. The
/// telemetry options are cloned into the trial closure: every replicate
/// of an instrumented experiment records/meters with the same settings.
pub fn build(
    name: &str,
    replicates: u32,
    seed: u64,
    telemetry: &TelemetryOptions,
) -> Option<Experiment> {
    match name {
        "table2_rtt" => Some(table2_rtt(replicates, seed, telemetry.clone())),
        "sweep_recovery" => Some(sweep_recovery(replicates, seed, telemetry.clone())),
        "sweep_offload" => Some(sweep_offload(replicates, seed)),
        "sweep_faults" => Some(sweep_faults(replicates, seed, telemetry.clone())),
        "sweep_cityscale" => Some(sweep_cityscale(replicates, seed, telemetry.clone())),
        _ => None,
    }
}

/// `mean ± ci` cell text.
fn pm(mean: f64, ci: f64, prec: usize) -> String {
    format!("{} ± {}", fmt(mean, prec), fmt(ci, prec))
}

// ---------------------------------------------------------------------------
// Table II
// ---------------------------------------------------------------------------

fn scenario_key(s: Table2Scenario) -> &'static str {
    match s {
        Table2Scenario::LocalServerWifi => "local_wifi",
        Table2Scenario::CloudServerWifi => "cloud_wifi",
        Table2Scenario::UniversityServerWifi => "university_wifi",
        Table2Scenario::CloudServerLte => "cloud_lte",
    }
}

fn scenario_from_key(key: &str) -> Table2Scenario {
    Table2Scenario::ALL
        .into_iter()
        .find(|&s| scenario_key(s) == key)
        .unwrap_or_else(|| panic!("unknown Table II scenario key {key:?}"))
}

fn table2_rtt(replicates: u32, seed: u64, telemetry: TelemetryOptions) -> Experiment {
    let spec = ScenarioSpec::new("table2_rtt", seed, replicates)
        .with_param("probes", ParamValue::Int(200))
        .with_param("request_bytes", ParamValue::Int(400))
        .with_param("response_bytes", ParamValue::Int(400))
        .with_axis(
            "scenario",
            Table2Scenario::ALL
                .into_iter()
                .map(|s| ParamValue::Str(scenario_key(s).to_string()))
                .collect(),
        );
    let trial = Box::new(move |point: &GridPoint, ctx: &TrialCtx| {
        let scenario = scenario_from_key(point.param("scenario").as_str().expect("str"));
        let probes = point.param("probes").as_int().expect("int") as u64;
        let request = point.param("request_bytes").as_int().expect("int") as u32;
        let response = point.param("response_bytes").as_int().expect("int") as u32;
        let (stats, _events, capture) =
            run_table2_instrumented(scenario, probes, request, response, ctx.seed, &telemetry);
        let st = stats.borrow();
        let mut h = st.rtt_ms.clone();
        let median = h.median().unwrap_or(f64::NAN);
        let mut report = TrialReport::new();
        report
            .scalar("median_ms", median)
            .scalar("mean_ms", h.mean().unwrap_or(f64::NAN))
            .scalar("p95_ms", h.p95().unwrap_or(f64::NAN))
            .scalar("received", st.received as f64)
            // One offload transaction per RTT, as in the paper's 20 FPS note.
            .scalar("fps_supportable", 1000.0 / median)
            .samples("rtt_ms", st.rtt_ms.values().to_vec());
        drop(st);
        report.capture(capture);
        report
    });
    Experiment { spec, trial, render: render_table2 }
}

fn render_table2(points: &[PointSummary]) {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let scenario = scenario_from_key(p.params["scenario"].as_str().expect("str"));
            let (platform, connection, paper_ms) = scenario.labels();
            let median = &p.scalars["median_ms"];
            let p95 = &p.scalars["p95_ms"];
            let fps = &p.scalars["fps_supportable"];
            let pooled = &p.samples["rtt_ms"];
            vec![
                platform.to_string(),
                connection.to_string(),
                format!("{paper_ms} ms"),
                format!("{} ms", pm(median.mean, median.ci95, 1)),
                format!("{} ms", pm(p95.mean, p95.ci95, 1)),
                format!("{} ms", fmt(pooled.p99, 1)),
                pm(fps.mean, fps.ci95, 1),
                format!("{}", p.replicates_ok),
            ]
        })
        .collect();
    print_table(
        "Table II — offload link RTT, mean ± 95% CI across replicates",
        &[
            "Platform",
            "Connection",
            "Paper RTT",
            "Median (sim)",
            "p95 (sim)",
            "pooled p99",
            "fps supportable",
            "n",
        ],
        &rows,
    );
}

// ---------------------------------------------------------------------------
// §VI-C recovery sweep
// ---------------------------------------------------------------------------

fn sweep_recovery(replicates: u32, seed: u64, telemetry: TelemetryOptions) -> Experiment {
    let spec = ScenarioSpec::new("sweep_recovery", seed, replicates)
        .with_param("loss", ParamValue::Float(0.03))
        .with_param("secs", ParamValue::Int(30))
        .with_axis(
            "mechanism",
            RecoveryMechanism::ALL
                .into_iter()
                .map(|m| ParamValue::Str(m.label().to_string()))
                .collect(),
        )
        .with_axis("rtt_ms", [20i64, 36, 60, 120].into_iter().map(ParamValue::Int).collect());
    let trial = Box::new(move |point: &GridPoint, ctx: &TrialCtx| {
        let mechanism =
            RecoveryMechanism::from_label(point.param("mechanism").as_str().expect("str"))
                .expect("known mechanism");
        let rtt = point.param("rtt_ms").as_int().expect("int") as u64;
        let loss = point.param("loss").as_float().expect("float");
        let secs = point.param("secs").as_int().expect("int") as u64;
        let (out, _, capture) =
            run_recovery_instrumented(rtt, loss, mechanism, secs, ctx.seed, &telemetry);
        let mut report = TrialReport::new();
        report
            .scalar("delivered_in_budget_pct", out.delivered_in_budget_pct)
            .scalar("delivered_total_pct", out.delivered_total_pct)
            .scalar("overhead_pct", out.overhead_pct);
        report.capture(capture);
        report
    });
    Experiment { spec, trial, render: render_recovery }
}

fn render_recovery(points: &[PointSummary]) {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let budget = &p.scalars["delivered_in_budget_pct"];
            let total = &p.scalars["delivered_total_pct"];
            let overhead = &p.scalars["overhead_pct"];
            vec![
                p.params["mechanism"].to_string(),
                format!("{} ms", p.params["rtt_ms"]),
                format!("{}%", pm(budget.mean, budget.ci95, 1)),
                format!("{}%", pm(total.mean, total.ci95, 1)),
                format!("{}%", pm(overhead.mean, overhead.ci95, 1)),
                format!("{}", p.replicates_ok),
            ]
        })
        .collect();
    print_table(
        "E11 — recovery at 3% loss, 75 ms budget, mean ± 95% CI across replicates",
        &["Mechanism", "RTT", "In budget", "Delivered", "Byte overhead", "n"],
        &rows,
    );
}

// ---------------------------------------------------------------------------
// E16 fault-injection sweep (marnet-faults)
// ---------------------------------------------------------------------------

/// Arm labels for the `hardened` axis.
const FAULT_ARMS: [&str; 2] = ["baseline", "hardened"];

fn sweep_faults(replicates: u32, seed: u64, telemetry: TelemetryOptions) -> Experiment {
    let spec = ScenarioSpec::new("sweep_faults", seed, replicates)
        .with_param("fault_ms", ParamValue::Int(500))
        .with_param("secs", ParamValue::Int(6))
        .with_axis(
            "scenario",
            FaultScenario::ALL
                .into_iter()
                .map(|s| ParamValue::Str(s.label().to_string()))
                .collect(),
        )
        .with_axis(
            "stack",
            FAULT_ARMS.into_iter().map(|a| ParamValue::Str(a.to_string())).collect(),
        );
    let trial = Box::new(move |point: &GridPoint, ctx: &TrialCtx| {
        let scenario = FaultScenario::from_label(point.param("scenario").as_str().expect("str"))
            .expect("known fault scenario");
        let hardened = point.param("stack").as_str() == Some("hardened");
        let fault_ms = point.param("fault_ms").as_int().expect("int") as u64;
        let secs = point.param("secs").as_int().expect("int") as u64;
        let (out, _, capture) =
            run_faults_instrumented(scenario, hardened, fault_ms, secs, ctx.seed, &telemetry);
        // Censor non-recoveries at the horizon: a run whose QoE never came
        // back contributes the worst possible recovery time instead of
        // silently dropping out of the percentiles.
        let horizon_ms = (secs * 1000 - 2000 - fault_ms) as f64;
        let recovery = out.recovery_ms.unwrap_or(horizon_ms);
        let mut report = TrialReport::new();
        report
            .scalar("delivered_in_budget_pct", out.delivered_in_budget_pct)
            .scalar("qoe_under_fault_pct", out.qoe_under_fault_pct)
            .scalar("recovered", if out.recovery_ms.is_some() { 1.0 } else { 0.0 })
            .scalar("retransmits_during_fault", out.retransmits_during_fault as f64)
            .scalar("retransmits", out.retransmits as f64)
            .scalar("outages_detected", out.outages_detected as f64)
            .scalar("recovery_probes", out.recovery_probes as f64)
            .scalar("session_resyncs", out.session_resyncs as f64)
            .samples("recovery_ms", vec![recovery]);
        report.capture(capture);
        report
    });
    Experiment { spec, trial, render: render_faults }
}

fn render_faults(points: &[PointSummary]) {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let budget = &p.scalars["delivered_in_budget_pct"];
            let qoe = &p.scalars["qoe_under_fault_pct"];
            let recovery = &p.samples["recovery_ms"];
            let recovered = &p.scalars["recovered"];
            let rtx_fault = &p.scalars["retransmits_during_fault"];
            let resyncs = &p.scalars["session_resyncs"];
            vec![
                p.params["scenario"].to_string(),
                p.params["stack"].to_string(),
                format!("{}%", pm(qoe.mean, qoe.ci95, 1)),
                format!("{} ms", fmt(recovery.p50, 1)),
                format!("{} ms", fmt(recovery.p99, 1)),
                format!("{}%", fmt(recovered.mean * 100.0, 0)),
                format!("{}%", pm(budget.mean, budget.ci95, 1)),
                fmt(rtx_fault.mean, 1),
                fmt(resyncs.mean, 1),
                format!("{}", p.replicates_ok),
            ]
        })
        .collect();
    print_table(
        "E16 — 500 ms faults at t=2 s: QoE under fault and time-to-QoE-restored (censored at horizon)",
        &[
            "Fault",
            "Stack",
            "QoE under fault",
            "recovery p50",
            "recovery p99",
            "recovered",
            "In budget (run)",
            "rtx in fault",
            "resyncs",
            "n",
        ],
        &rows,
    );
}

// ---------------------------------------------------------------------------
// E17 city-scale hybrid-fidelity sweep (marnet-flow)
// ---------------------------------------------------------------------------

/// The MAR frame budget used for the in-budget QoE column, as in E11.
const CITYSCALE_BUDGET_MS: f64 = 75.0;

fn sweep_cityscale(replicates: u32, seed: u64, telemetry: TelemetryOptions) -> Experiment {
    let spec = ScenarioSpec::new("sweep_cityscale", seed, replicates)
        .with_param("backhaul_gbps", ParamValue::Float(10.0))
        .with_param("secs", ParamValue::Int(3))
        .with_axis(
            "clients",
            [25_000i64, 50_000, 100_000].into_iter().map(ParamValue::Int).collect(),
        );
    let trial = Box::new(move |point: &GridPoint, ctx: &TrialCtx| {
        let clients = point.param("clients").as_int().expect("int") as u64;
        let backhaul = point.param("backhaul_gbps").as_float().expect("float");
        let secs = point.param("secs").as_int().expect("int") as u64;
        let (out, events, capture) =
            run_cityscale_instrumented(clients, backhaul, secs, ctx.seed, &telemetry);
        let mar = out.mar.borrow();
        let mut h = mar.latency_ms.clone();
        // Offered MAR packets over the horizon, from the paced rate.
        let offered = marnet_bench::scenarios::CITYSCALE_MAR_MBPS * 1e6
            / (f64::from(marnet_bench::scenarios::CITYSCALE_MAR_PACKET_BYTES) * 8.0)
            * secs as f64;
        let in_budget =
            mar.latency_ms.values().iter().filter(|&&ms| ms <= CITYSCALE_BUDGET_MS).count();
        let bg = out.background.borrow();
        let mut report = TrialReport::new();
        report
            .scalar("offered_gbps", cityscale_offered_gbps(clients))
            .scalar("mar_p50_ms", h.median().unwrap_or(f64::NAN))
            .scalar("mar_p95_ms", h.p95().unwrap_or(f64::NAN))
            .scalar("mar_delivery_pct", mar.packets as f64 / offered * 100.0)
            .scalar("mar_in_budget_pct", in_budget as f64 / offered * 100.0)
            .scalar("bg_offered", bg.offered as f64)
            .scalar("bg_completed", bg.completed as f64)
            .scalar("events", events as f64)
            .samples("mar_latency_ms", mar.latency_ms.values().to_vec());
        drop(mar);
        drop(bg);
        report.capture(capture);
        report
    });
    Experiment { spec, trial, render: render_cityscale }
}

fn render_cityscale(points: &[PointSummary]) {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let p50 = &p.scalars["mar_p50_ms"];
            let p95 = &p.scalars["mar_p95_ms"];
            let delivery = &p.scalars["mar_delivery_pct"];
            let budget = &p.scalars["mar_in_budget_pct"];
            let completed = &p.scalars["bg_completed"];
            vec![
                p.params["clients"].to_string(),
                format!("{} Gb/s", fmt(p.scalars["offered_gbps"].mean, 1)),
                format!("{} ms", pm(p50.mean, p50.ci95, 1)),
                format!("{} ms", pm(p95.mean, p95.ci95, 1)),
                format!("{}%", pm(delivery.mean, delivery.ci95, 1)),
                format!("{}%", pm(budget.mean, budget.ci95, 1)),
                fmt(completed.mean, 0),
                format!("{}", p.replicates_ok),
            ]
        })
        .collect();
    print_table(
        "E17 — city-scale background load vs one packet-level MAR cell (10 Gb/s backhaul), mean ± 95% CI",
        &[
            "Clients",
            "Offered bg",
            "MAR p50",
            "MAR p95",
            "Delivered",
            "In budget",
            "bg transfers done",
            "n",
        ],
        &rows,
    );
}

// ---------------------------------------------------------------------------
// §III offload-decision sweep
// ---------------------------------------------------------------------------

fn device_key(d: DeviceClass) -> &'static str {
    match d {
        DeviceClass::SmartGlasses => "glasses",
        DeviceClass::Smartphone => "phone",
        DeviceClass::Laptop => "laptop",
        _ => "other",
    }
}

const OFFLOAD_DEVICES: [DeviceClass; 3] =
    [DeviceClass::SmartGlasses, DeviceClass::Smartphone, DeviceClass::Laptop];

fn device_from_key(key: &str) -> DeviceClass {
    OFFLOAD_DEVICES
        .into_iter()
        .find(|&d| device_key(d) == key)
        .unwrap_or_else(|| panic!("unknown device key {key:?}"))
}

/// Single-letter tag of strategy `idx` in canonical order.
fn strategy_letter(idx: usize) -> &'static str {
    match OffloadStrategy::canonical().get(idx) {
        Some(OffloadStrategy::LocalOnly) => "L",
        Some(OffloadStrategy::FullOffload { .. }) => "F",
        Some(OffloadStrategy::FeatureOffload { .. }) => "C",
        Some(OffloadStrategy::TrackingOffload { .. }) => "G",
        None => "?",
    }
}

fn sweep_offload(replicates: u32, seed: u64) -> Experiment {
    let spec = ScenarioSpec::new("sweep_offload", seed, replicates)
        .with_axis(
            "device",
            OFFLOAD_DEVICES
                .into_iter()
                .map(|d| ParamValue::Str(device_key(d).to_string()))
                .collect(),
        )
        .with_axis(
            "rtt_ms",
            [4i64, 10, 20, 36, 60, 90, 120].into_iter().map(ParamValue::Int).collect(),
        )
        .with_axis(
            "uplink_mbps",
            [0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0].into_iter().map(ParamValue::Float).collect(),
        );
    let trial = Box::new(|point: &GridPoint, _ctx: &TrialCtx| {
        let device = device_from_key(point.param("device").as_str().expect("str")).spec();
        let rtt = point.param("rtt_ms").as_int().expect("int") as u64;
        let up = point.param("uplink_mbps").as_float().expect("float");
        let work = FrameWork::vision_pipeline();
        let model = ComputeModel::new(30.0, work)
            .with_db(DbAccess::browser())
            .with_deadline(SimDuration::from_millis(75));
        let cloud = DeviceClass::Cloud.spec();
        let net = NetParams {
            uplink: Bandwidth::from_mbps(up),
            downlink: Bandwidth::from_mbps(up * 2.5),
            rtt: SimDuration::from_millis(rtt),
        };
        let (winner_idx, est) = OffloadStrategy::canonical()
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                let e = s.evaluate(&model, &device, &cloud, &net);
                (i, e)
            })
            .min_by(|(_, a), (_, b)| a.per_frame.partial_cmp(&b.per_frame).expect("finite"))
            .expect("non-empty strategies");
        let mut report = TrialReport::new();
        report
            .scalar("winner_ms", est.per_frame.as_millis_f64())
            .scalar("winner_idx", winner_idx as f64)
            .scalar("feasible", if est.feasible() { 1.0 } else { 0.0 });
        report
    });
    Experiment { spec, trial, render: render_offload }
}

fn render_offload(points: &[PointSummary]) {
    // Regroup the flat point list into one RTT × uplink table per device.
    let mut by_device: BTreeMap<String, Vec<&PointSummary>> = BTreeMap::new();
    for p in points {
        by_device.entry(p.params["device"].to_string()).or_default().push(p);
    }
    for device in OFFLOAD_DEVICES {
        let Some(cells) = by_device.get(device_key(device)) else { continue };
        let mut rtts: Vec<i64> = cells.iter().filter_map(|p| p.params["rtt_ms"].as_int()).collect();
        rtts.dedup();
        let mut uplinks: Vec<f64> =
            cells.iter().filter_map(|p| p.params["uplink_mbps"].as_float()).collect();
        uplinks.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        uplinks.dedup();
        let rows: Vec<Vec<String>> = rtts
            .iter()
            .map(|&rtt| {
                let mut row = vec![format!("{rtt} ms")];
                for &up in &uplinks {
                    let cell = cells.iter().find(|p| {
                        p.params["rtt_ms"].as_int() == Some(rtt)
                            && p.params["uplink_mbps"].as_float() == Some(up)
                    });
                    row.push(match cell {
                        Some(p) => {
                            let feasible = p.scalars["feasible"].mean >= 0.5;
                            let tag = if feasible {
                                strategy_letter(p.scalars["winner_idx"].mean.round() as usize)
                            } else {
                                "∅"
                            };
                            format!("{tag} {}", fmt(p.scalars["winner_ms"].mean, 0))
                        }
                        None => "-".to_string(),
                    });
                }
                row
            })
            .collect();
        let mut headers = vec!["RTT \\ uplink".to_string()];
        headers.extend(uplinks.iter().map(|u| format!("{u} Mb/s")));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        print_table(
            &format!(
                "E9 — best strategy & ms/frame on a {} (L=local F=full C=CloudRidAR G=Glimpse ∅=infeasible)",
                device.spec().class
            ),
            &header_refs,
            &rows,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_builtins_build_with_consistent_specs() {
        let telemetry = TelemetryOptions::disabled();
        for name in NAMES {
            let exp = build(name, 3, 42, &telemetry).unwrap();
            assert_eq!(exp.spec.name, name);
            assert_eq!(exp.spec.replicates, 3);
            assert_eq!(exp.spec.seed, 42);
            assert!(exp.spec.point_count() > 0);
        }
        assert!(build("nope", 1, 1, &telemetry).is_none());
    }

    #[test]
    fn instrumented_trials_capture_events_and_metrics() {
        let telemetry = TelemetryOptions::full(4096);
        let exp = build("table2_rtt", 1, 7, &telemetry).unwrap();
        let points = exp.spec.expand_grid();
        let ctx = TrialCtx { point_index: 0, replicate: 0, seed: 7 };
        let report = (exp.trial)(&points[0], &ctx);
        assert!(!report.events.is_empty(), "tracing on must record events");
        let snap = report.metrics.expect("metrics on must snapshot");
        assert!(!snap.is_empty());
        // The same trial with telemetry off reports identical scalars and
        // nothing captured — instrumentation must not perturb results.
        let plain = build("table2_rtt", 1, 7, &TelemetryOptions::disabled()).unwrap();
        let bare = (plain.trial)(&points[0], &ctx);
        assert_eq!(bare.scalars, report.scalars);
        assert!(bare.events.is_empty());
        assert!(bare.metrics.is_none());
    }

    #[test]
    fn scenario_and_device_keys_round_trip() {
        for s in Table2Scenario::ALL {
            assert_eq!(scenario_from_key(scenario_key(s)), s);
        }
        for d in OFFLOAD_DEVICES {
            assert_eq!(device_from_key(device_key(d)), d);
        }
    }

    #[test]
    fn sweep_faults_hardened_beats_baseline_p99_recovery() {
        use crate::agg::aggregate_run;
        use crate::runner::run_experiment;
        let exp = build("sweep_faults", 2, 42, &TelemetryOptions::disabled()).unwrap();
        let run = run_experiment(&exp.spec, 2, |point, ctx| (exp.trial)(point, ctx));
        assert!(run.failures.is_empty(), "{:?}", run.failures);
        let points = aggregate_run(&run);
        let p99 = |scenario: &str, stack: &str| {
            points
                .iter()
                .find(|p| {
                    p.params["scenario"].as_str() == Some(scenario)
                        && p.params["stack"].as_str() == Some(stack)
                })
                .unwrap_or_else(|| panic!("missing point {scenario}/{stack}"))
                .samples["recovery_ms"]
                .p99
        };
        // The acceptance bar: the hardened stack beats the no-hardening
        // baseline on p99 time-to-QoE-restored for the 500 ms outage, and
        // by an order of magnitude when the edge restarts cold (the
        // baseline is censored at the horizon there).
        assert!(
            p99("link-outage", "hardened") < p99("link-outage", "baseline"),
            "outage: hardened {} vs baseline {}",
            p99("link-outage", "hardened"),
            p99("link-outage", "baseline")
        );
        assert!(p99("edge-crash", "hardened") * 10.0 < p99("edge-crash", "baseline"));
        // Hardened recovers in every scenario and every replicate.
        for p in &points {
            if p.params["stack"].as_str() == Some("hardened") {
                assert_eq!(p.scalars["recovered"].mean, 1.0, "{:?}", p.params);
            }
        }
    }

    #[test]
    fn sweep_cityscale_load_curve_degrades_qoe() {
        let exp = build("sweep_cityscale", 1, 42, &TelemetryOptions::disabled()).unwrap();
        let points = exp.spec.expand_grid();
        assert_eq!(points.len(), 3, "three offered-load points");
        let ctx = TrialCtx { point_index: 0, replicate: 0, seed: 42 };
        let light = (exp.trial)(&points[0], &ctx);
        let heavy = (exp.trial)(&points[2], &ctx);
        // 25k clients (~4.5 Gb/s offered on 10 Gb/s) leave the cell
        // untouched; 100k (~18 Gb/s) collapse the foreground share and
        // with it delivery and the latency budget.
        assert!(light.scalars["mar_in_budget_pct"] > 95.0, "{:?}", light.scalars);
        assert!(heavy.scalars["mar_in_budget_pct"] < 50.0, "{:?}", heavy.scalars);
        assert!(heavy.scalars["mar_p95_ms"] > light.scalars["mar_p95_ms"]);
        // The acceptance bar: ≥ 100,000 flow-level clients actually ran.
        assert!(heavy.scalars["bg_offered"] > 50_000.0);
    }

    #[test]
    fn offload_trial_is_deterministic_and_analytic() {
        let exp = build("sweep_offload", 2, 1, &TelemetryOptions::disabled()).unwrap();
        let points = exp.spec.expand_grid();
        let ctx_a = TrialCtx { point_index: 0, replicate: 0, seed: 1 };
        let ctx_b = TrialCtx { point_index: 0, replicate: 1, seed: 999 };
        let a = (exp.trial)(&points[0], &ctx_a);
        let b = (exp.trial)(&points[0], &ctx_b);
        assert_eq!(a.scalars, b.scalars, "analytic sweep must not depend on the seed");
    }
}
