//! `marnet-lab train` — automated search over the graceful-degradation
//! policy space.
//!
//! The trainer/evaluator split: `marnet-trainer` owns the search space and
//! the engines (CEM / (μ+λ) ES) but never runs a simulation; this module
//! is the evaluator. Each generation's population is compiled into
//! [`ArConfig`]s and fanned across worker threads through the lab's
//! [`run_experiment`] runner (candidate × portfolio-member grid,
//! `replicates` trials per cell), so the whole search inherits the
//! runner's determinism guarantee: **byte-identical artifacts at any
//! `--threads`**.
//!
//! Seeding uses common random numbers (CRN): the simulation seed of a
//! portfolio trial depends only on `(member, replicate)` — substream
//! `train/eval/{member}/{replicate}` of the base seed — never on the
//! generation or candidate. Every candidate therefore faces exactly the
//! same stochastic network conditions, so candidate comparisons (and the
//! committed tuned-vs-default table) are paired, not confounded by seed
//! luck.
//!
//! The portfolio scores three QoE scenarios (loss recovery at 36 ms RTT,
//! the §VI-D multipath commute, a 500 ms link outage under the hardened
//! stack), a fairness-to-TCP scenario (Jain index on a shared
//! bottleneck), and tracks byte overhead — folded into the
//! `(qoe, fairness, overhead)` objective vector the engines rank. The
//! city-scale hybrid smoke runs **once per training run** as an
//! engine-stack canary recorded in the artifact: its outcome is
//! policy-independent (no AR endpoint in that scenario), so putting it in
//! the per-candidate objective would only add constant noise.

use crate::runner::run_experiment;
use crate::spec::{ParamValue, ScenarioSpec};
use marnet_bench::scenarios::{
    run_cityscale_instrumented, run_fairness_config_instrumented, run_faults_config_instrumented,
    run_multipath_commute_config_instrumented, run_recovery_config_instrumented, FaultScenario,
    CITYSCALE_MAR_MBPS, CITYSCALE_MAR_PACKET_BYTES,
};
use marnet_bench::{fmt, print_table};
use marnet_core::config::{ArConfig, OutageConfig};
use marnet_core::policy::PolicyParams;
use marnet_sim::rng::derive_rng;
use marnet_sim::stats::jain_index;
use marnet_telemetry::{TelemetryOptions, TraceEvent};
use marnet_trainer::artifact::fnv1a;
use marnet_trainer::{
    run_search, select_tuned, ComparisonRow, Engine, Evaluated, Evaluation, FrontArtifact,
    FrontEntry, Objectives, PolicySpace, TrainConfig, TrainResult, SCHEMA_VERSION,
};
use rand::Rng;
use serde::Serialize;
use std::collections::BTreeMap;
use std::path::Path;

/// Portfolio members in canonical (axis) order.
pub const MEMBERS: [&str; 4] = ["recovery", "offload", "faults", "fairness"];

/// Recovery member: RTT of the paper's cloud-over-WiFi row.
const RECOVERY_RTT_MS: u64 = 36;
/// Recovery member: §VI-C reference loss rate.
const RECOVERY_LOSS: f64 = 0.03;
/// Faults member: outage length injected at t = 2 s.
const FAULT_MS: u64 = 500;
/// Fairness member: shared bottleneck rate.
const FAIR_BOTTLENECK_MBPS: f64 = 12.0;
/// Fairness member: competing Reno flows.
const FAIR_N_TCP: usize = 2;
/// Canary: city-scale background clients (the light E17 point).
const CANARY_CLIENTS: u64 = 25_000;
/// Canary: backhaul capacity in Gb/s.
const CANARY_BACKHAUL_GBPS: f64 = 10.0;
/// MAR frame budget for the canary's in-budget column, as in E11/E17.
const FRAME_BUDGET_MS: f64 = 75.0;
/// Jain-index band the tuned policy may not degrade fairness beyond —
/// matches the CI drift tolerance used for the fairness sweep.
pub const FAIRNESS_BAND: f64 = 0.02;

/// Per-member simulated horizons of one fidelity tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub(crate) struct Tier {
    pub(crate) recovery_secs: u64,
    pub(crate) offload_secs: u64,
    pub(crate) faults_secs: u64,
    pub(crate) fairness_secs: u64,
    pub(crate) canary_secs: u64,
}

impl Tier {
    /// The horizon of one named portfolio member.
    pub(crate) fn member_secs(&self, member: &str) -> u64 {
        match member {
            "recovery" => self.recovery_secs,
            "offload" => self.offload_secs,
            "faults" => self.faults_secs,
            "fairness" => self.fairness_secs,
            "canary" => self.canary_secs,
            other => panic!("unknown portfolio member {other:?}"),
        }
    }
}

/// The default tier: long enough for stable means.
pub(crate) const FULL_TIER: Tier =
    Tier { recovery_secs: 10, offload_secs: 20, faults_secs: 6, fairness_secs: 10, canary_secs: 2 };

/// The `--smoke` tier: the shortest horizons whose metrics still rank
/// policies, for CI.
pub(crate) const SMOKE_TIER: Tier =
    Tier { recovery_secs: 4, offload_secs: 8, faults_secs: 4, fairness_secs: 5, canary_secs: 1 };

/// Resolved options of one training run.
#[derive(Debug, Clone)]
pub struct TrainOptions {
    /// Search engine.
    pub engine: Engine,
    /// Base seed; candidate sampling and CRN evaluation streams derive
    /// from it.
    pub seed: u64,
    /// Outer-loop generations.
    pub generations: u32,
    /// Candidates per generation (generation 0 includes the paper-default
    /// incumbent as candidate 0).
    pub population: u32,
    /// Elite / parent count.
    pub elites: u32,
    /// Replicates per candidate per portfolio member.
    pub replicates: u32,
    /// Worker threads for the evaluation fan-out.
    pub threads: usize,
    /// Use the reduced CI tier.
    pub smoke: bool,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            engine: Engine::Cem,
            seed: 42,
            generations: 4,
            population: 12,
            elites: 3,
            replicates: 3,
            threads: 1,
            smoke: false,
        }
    }
}

impl TrainOptions {
    /// The smoke-tier budget used by CI (and the committed golden
    /// artifact): 2 generations × 6 candidates × 4 members × 2 replicates.
    pub fn smoke() -> Self {
        TrainOptions {
            generations: 2,
            population: 6,
            elites: 2,
            replicates: 2,
            smoke: true,
            ..TrainOptions::default()
        }
    }
}

/// The canonical training spec: everything that determines the search
/// trajectory and the evaluation conditions. Its FNV-1a hash over the
/// canonical JSON encoding is the artifact's `train_hash` — editing any
/// field (space bounds, portfolio constants, budget) changes the hash, so
/// a baseline comparison can tell "the policy landscape moved" apart from
/// "the experiment itself changed".
#[derive(Debug, Serialize)]
struct TrainSpec {
    schema_version: u32,
    space: PolicySpace,
    engine: String,
    seed: u64,
    generations: u32,
    population: u32,
    elites: u32,
    replicates: u32,
    smoke: bool,
    tier: Tier,
    members: Vec<String>,
    recovery_rtt_ms: u64,
    recovery_loss: f64,
    fault_ms: u64,
    fair_bottleneck_mbps: f64,
    fair_n_tcp: u64,
    fairness_band: f64,
}

/// The hex-encoded FNV-1a hash over the canonical training spec for
/// `opts` — the artifact's provenance pin. Pure function of the options,
/// the policy space, and the portfolio constants; the golden-fixture test
/// holds the smoke-tier value so accidental space or portfolio edits
/// surface as a test failure, not silent baseline drift.
pub fn train_hash(opts: &TrainOptions) -> String {
    let train_spec = TrainSpec {
        schema_version: SCHEMA_VERSION,
        space: PolicySpace::ar_default(),
        engine: opts.engine.label().to_string(),
        seed: opts.seed,
        generations: opts.generations,
        population: opts.population,
        elites: opts.elites,
        replicates: opts.replicates,
        smoke: opts.smoke,
        tier: if opts.smoke { SMOKE_TIER } else { FULL_TIER },
        members: MEMBERS.iter().map(|m| (*m).to_string()).collect(),
        recovery_rtt_ms: RECOVERY_RTT_MS,
        recovery_loss: RECOVERY_LOSS,
        fault_ms: FAULT_MS,
        fair_bottleneck_mbps: FAIR_BOTTLENECK_MBPS,
        fair_n_tcp: FAIR_N_TCP as u64,
        fairness_band: FAIRNESS_BAND,
    };
    let hash = fnv1a(serde_json::to_string(&train_spec).expect("train spec serializes").as_bytes());
    format!("{hash:016x}")
}

/// The CRN evaluation seed: a function of `(member, replicate)` only, so
/// every candidate in every generation replays identical network
/// conditions (paired comparisons).
fn crn_seed(base: u64, member: &str, replicate: u32) -> u64 {
    derive_rng(base, &format!("train/eval/{member}/{replicate}")).gen()
}

/// The three configs a candidate is evaluated under: its compiled config
/// as-is, the fault arm (hardened outage handling on top of the searched
/// recovery knobs), and the fairness arm (bottleneck-capped rate).
pub(crate) fn member_configs(params: &PolicyParams) -> (ArConfig, ArConfig, ArConfig) {
    let base = params.to_config();
    let faults = ArConfig { outage: OutageConfig::hardened(), ..base.clone() };
    let mut fairness = base.clone();
    fairness.congestion.max_rate = FAIR_BOTTLENECK_MBPS * 1e6;
    (base, faults, fairness)
}

/// Runs one portfolio member under one candidate's configs for `secs`
/// simulated seconds and returns its scalar contributions plus the
/// captured trace (empty when `telemetry` disables the recorder).
///
/// Shared by the trainer (telemetry off) and by `marnet-lab racecheck`,
/// which replays the same members under perturbed event-queue tie-break
/// policies and needs the trace for its first-divergence report.
pub(crate) fn run_member(
    member: &str,
    cfgs: &(ArConfig, ArConfig, ArConfig),
    secs: u64,
    seed: u64,
    telemetry: &TelemetryOptions,
) -> (BTreeMap<String, f64>, Vec<TraceEvent>) {
    let mut scalars = BTreeMap::new();
    let events = match member {
        "recovery" => {
            let (out, _, capture) = run_recovery_config_instrumented(
                RECOVERY_RTT_MS,
                RECOVERY_LOSS,
                &cfgs.0,
                secs,
                seed,
                telemetry,
            );
            scalars.insert("qoe".to_string(), out.delivered_in_budget_pct);
            scalars.insert("overhead".to_string(), out.overhead_pct);
            capture.events
        }
        "offload" => {
            let (out, _, capture) =
                run_multipath_commute_config_instrumented(&cfgs.0, secs, seed, telemetry);
            let hit_pct = out.receiver.borrow().deadline_hit_ratio() * 100.0;
            let s = out.sender.borrow();
            let total = s.total_sent_bytes();
            let cellular_pct =
                if total == 0 { 0.0 } else { s.cellular_bytes as f64 / total as f64 * 100.0 };
            scalars.insert("qoe".to_string(), hit_pct);
            scalars.insert("overhead".to_string(), cellular_pct);
            capture.events
        }
        "faults" => {
            let (out, _, capture) = run_faults_config_instrumented(
                FaultScenario::LinkOutage,
                &cfgs.1,
                FAULT_MS,
                secs,
                seed,
                telemetry,
            );
            scalars.insert("qoe".to_string(), out.qoe_under_fault_pct);
            capture.events
        }
        "fairness" => {
            let (out, _, capture) = run_fairness_config_instrumented(
                FAIR_BOTTLENECK_MBPS,
                FAIR_N_TCP,
                &cfgs.2,
                secs,
                seed,
                telemetry,
            );
            let secs = secs as f64;
            let ar_mbps = out.ar.borrow().received_bytes as f64 * 8.0 / secs / 1e6;
            let mut alloc: Vec<f64> = out
                .tcp
                .iter()
                .map(|t| t.borrow().goodput_bytes as f64 * 8.0 / secs / 1e6)
                .collect();
            alloc.push(ar_mbps);
            scalars.insert("fairness".to_string(), jain_index(&alloc));
            capture.events
        }
        other => panic!("unknown portfolio member {other:?}"),
    };
    (scalars, events)
}

/// Evaluates one generation's population: candidate × member grid,
/// `replicates` CRN trials per cell, fanned over `threads` workers;
/// per-candidate means fold into one [`Evaluation`] each.
fn evaluate_population(
    generation: u32,
    points_params: &[PolicyParams],
    opts: &TrainOptions,
    tier: &Tier,
) -> Vec<Evaluation> {
    let configs: Vec<(ArConfig, ArConfig, ArConfig)> =
        points_params.iter().map(member_configs).collect();
    let spec = ScenarioSpec::new(format!("train_eval_g{generation}"), opts.seed, opts.replicates)
        .with_axis("candidate", (0..configs.len() as i64).map(ParamValue::Int).collect())
        .with_axis("member", MEMBERS.iter().map(|m| ParamValue::Str((*m).to_string())).collect());
    let base_seed = opts.seed;
    let run = run_experiment(&spec, opts.threads, |point, ctx| {
        let cand = point.param("candidate").as_int().expect("int") as usize;
        let member = point.param("member").as_str().expect("str");
        let seed = crn_seed(base_seed, member, ctx.replicate);
        let mut report = crate::runner::TrialReport::new();
        let (scalars, _) = run_member(
            member,
            &configs[cand],
            tier.member_secs(member),
            seed,
            &TelemetryOptions::disabled(),
        );
        for (key, value) in scalars {
            report.scalar(key, value);
        }
        report
    });
    assert!(
        run.failures.is_empty(),
        "training trial failed in generation {generation}: {:?}",
        run.failures
    );

    (0..configs.len())
        .map(|cand| {
            // Mean of each member scalar across its replicates, in fixed
            // (member, replicate) order — deterministic float summation.
            let member_mean = |member_idx: usize, key: &str| {
                let reports = &run.reports[cand * MEMBERS.len() + member_idx];
                let sum: f64 =
                    reports.iter().map(|r| r.as_ref().expect("no failures").scalars[key]).sum();
                sum / reports.len() as f64
            };
            let qoe_recovery = member_mean(0, "qoe");
            let overhead_recovery = member_mean(0, "overhead");
            let qoe_offload = member_mean(1, "qoe");
            let overhead_offload = member_mean(1, "overhead");
            let qoe_faults = member_mean(2, "qoe");
            let fairness = member_mean(3, "fairness");
            let detail = BTreeMap::from([
                ("qoe/recovery".to_string(), qoe_recovery),
                ("qoe/offload".to_string(), qoe_offload),
                ("qoe/faults".to_string(), qoe_faults),
                ("fairness/jain".to_string(), fairness),
                ("overhead/recovery".to_string(), overhead_recovery),
                ("overhead/offload_cellular_pct".to_string(), overhead_offload),
            ]);
            Evaluation {
                objectives: Objectives {
                    qoe: (qoe_recovery + qoe_offload + qoe_faults) / 3.0,
                    fairness,
                    overhead: (overhead_recovery + overhead_offload) / 2.0,
                },
                detail,
            }
        })
        .collect()
}

/// Runs the E17 city-scale hybrid as an engine-stack canary and returns
/// its scalars plus the captured trace. Shared by the trainer (full
/// client population, telemetry off) and `marnet-lab racecheck` (which
/// perturbs the tie-break policy and compares the scalars byte-for-byte).
pub(crate) fn canary_scalars(
    clients: u64,
    backhaul_gbps: f64,
    secs: u64,
    seed: u64,
    telemetry: &TelemetryOptions,
) -> (BTreeMap<String, f64>, Vec<TraceEvent>) {
    let (out, events, capture) =
        run_cityscale_instrumented(clients, backhaul_gbps, secs, seed, telemetry);
    let mar = out.mar.borrow();
    let offered =
        CITYSCALE_MAR_MBPS * 1e6 / (f64::from(CITYSCALE_MAR_PACKET_BYTES) * 8.0) * secs as f64;
    let in_budget = mar.latency_ms.values().iter().filter(|&&ms| ms <= FRAME_BUDGET_MS).count();
    let scalars = BTreeMap::from([
        ("cityscale/events".to_string(), events as f64),
        ("cityscale/mar_delivery_pct".to_string(), mar.packets as f64 / offered * 100.0),
        ("cityscale/mar_in_budget_pct".to_string(), in_budget as f64 / offered * 100.0),
    ]);
    (scalars, capture.events)
}

/// Runs the city-scale hybrid smoke once as a policy-independent
/// engine-stack canary and returns its scalars for the artifact.
fn run_canary(seed: u64, tier: &Tier) -> BTreeMap<String, f64> {
    let canary_seed: u64 = derive_rng(seed, "train/canary").gen();
    canary_scalars(
        CANARY_CLIENTS,
        CANARY_BACKHAUL_GBPS,
        tier.canary_secs,
        canary_seed,
        &TelemetryOptions::disabled(),
    )
    .0
}

/// One archive entry rendered into its artifact form.
fn entry(e: &Evaluated) -> FrontEntry {
    FrontEntry {
        generation: e.generation,
        candidate: e.candidate,
        point: e.point.clone(),
        params: e.params.clone(),
        objectives: e.evaluation.objectives,
        detail: e.evaluation.detail.clone(),
        scalar: e.scalar,
    }
}

/// Runs the full search and assembles the artifact. Pure given `opts`:
/// the same options produce a byte-identical artifact at any
/// `opts.threads`.
pub fn run_training(opts: &TrainOptions) -> (TrainResult, FrontArtifact) {
    let space = PolicySpace::ar_default();
    let tier = if opts.smoke { SMOKE_TIER } else { FULL_TIER };
    let train_hash = train_hash(opts);

    let cfg = TrainConfig {
        engine: opts.engine,
        seed: opts.seed,
        generations: opts.generations,
        population: opts.population,
        elites: opts.elites,
        ..TrainConfig::default()
    };
    let result = run_search(&space, &cfg, |generation, points| {
        let params: Vec<PolicyParams> = points.iter().map(|p| space.compile(p)).collect();
        evaluate_population(generation, &params, opts, &tier)
    });

    let canary = run_canary(opts.seed, &tier);
    let tuned_index = select_tuned(&result, FAIRNESS_BAND);
    let default = entry(&result.archive[result.default_index]);
    let tuned = entry(&result.archive[tuned_index]);

    // The comparison table pairs every detail metric plus the three
    // aggregate objectives; CRN seeding makes each row a paired
    // comparison under identical network conditions.
    let mut comparison: Vec<ComparisonRow> = default
        .detail
        .keys()
        .map(|metric| ComparisonRow {
            metric: metric.clone(),
            default: default.detail[metric],
            tuned: tuned.detail.get(metric).copied().unwrap_or(f64::NAN),
        })
        .collect();
    comparison.push(ComparisonRow {
        metric: "objective/qoe".to_string(),
        default: default.objectives.qoe,
        tuned: tuned.objectives.qoe,
    });
    comparison.push(ComparisonRow {
        metric: "objective/fairness".to_string(),
        default: default.objectives.fairness,
        tuned: tuned.objectives.fairness,
    });
    comparison.push(ComparisonRow {
        metric: "objective/overhead".to_string(),
        default: default.objectives.overhead,
        tuned: tuned.objectives.overhead,
    });

    let artifact = FrontArtifact {
        schema_version: SCHEMA_VERSION,
        experiment: "train".to_string(),
        engine: opts.engine.label().to_string(),
        seed: opts.seed,
        generations: opts.generations,
        population: opts.population,
        elites: opts.elites,
        replicates: opts.replicates,
        smoke: opts.smoke,
        train_hash,
        space,
        evaluations: result.archive.len() as u32,
        canary,
        front: result.front.iter().map(|&i| entry(&result.archive[i])).collect(),
        default,
        tuned,
        comparison,
    };
    (result, artifact)
}

/// Prints the tuned-vs-default table and the front summary.
pub fn render(artifact: &FrontArtifact) {
    let rows: Vec<Vec<String>> = artifact
        .comparison
        .iter()
        .map(|row| {
            let delta = row.tuned - row.default;
            vec![
                row.metric.clone(),
                fmt(row.default, 3),
                fmt(row.tuned, 3),
                format!("{}{}", if delta >= 0.0 { "+" } else { "" }, fmt(delta, 3)),
            ]
        })
        .collect();
    print_table(
        &format!(
            "E18 — tuned vs paper-default policy ({} engine, CRN-paired, {} candidates)",
            artifact.engine, artifact.evaluations
        ),
        &["Metric", "Default", "Tuned", "Δ"],
        &rows,
    );
    println!(
        "\n[train] front: {} non-dominated of {} evaluated; tuned = gen {} cand {}",
        artifact.front.len(),
        artifact.evaluations,
        artifact.tuned.generation,
        artifact.tuned.candidate
    );
    println!(
        "[train] tuned policy: {}",
        serde_json::to_string(&artifact.tuned.params).expect("params serialize")
    );
}

/// Compares a freshly trained artifact against a committed baseline.
/// Returns the drift findings (empty = byte-identical).
pub fn diff_baseline(artifact: &FrontArtifact, baseline: &FrontArtifact) -> Vec<String> {
    let mut drifts = Vec::new();
    if baseline.train_hash != artifact.train_hash {
        drifts.push(format!(
            "train_hash changed: baseline {} vs current {} (the experiment itself differs)",
            baseline.train_hash, artifact.train_hash
        ));
        return drifts;
    }
    for (b, c) in baseline.comparison.iter().zip(&artifact.comparison) {
        if b.metric == c.metric && (b.default != c.default || b.tuned != c.tuned) {
            drifts.push(format!(
                "{}: baseline {}/{} vs current {}/{} (default/tuned)",
                b.metric, b.default, b.tuned, c.default, c.tuned
            ));
        }
    }
    if baseline.to_json() != artifact.to_json() && drifts.is_empty() {
        drifts.push("artifact bytes differ from baseline".to_string());
    }
    drifts
}

/// Writes the artifact and runs the optional baseline comparison.
/// Returns `Ok(true)` when a baseline was given and drifted (exit 1 for
/// the CLI), `Err` on I/O problems (exit 2).
pub fn finish(
    artifact: &FrontArtifact,
    out: &Path,
    baseline: Option<&Path>,
) -> Result<bool, String> {
    artifact.write(out).map_err(|e| format!("failed to write artifact {}: {e}", out.display()))?;
    println!(
        "\n[artifact] {} (schema v{}, train spec {})",
        out.display(),
        artifact.schema_version,
        artifact.train_hash
    );
    let Some(baseline_path) = baseline else { return Ok(false) };
    let baseline = FrontArtifact::load(baseline_path)
        .map_err(|e| format!("failed to load baseline {}: {e}", baseline_path.display()))?;
    let drifts = diff_baseline(artifact, &baseline);
    if drifts.is_empty() {
        println!("[baseline] no drift vs {} (byte-identical)", baseline_path.display());
        Ok(false)
    } else {
        println!("[baseline] {} drift(s) vs {}:", drifts.len(), baseline_path.display());
        for d in &drifts {
            println!("  {d}");
        }
        Ok(true)
    }
}
