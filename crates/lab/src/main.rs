//! The `marnet-lab` CLI: replicated, parallel versions of the paper
//! experiments with confidence intervals and versioned artifacts.
//!
//! ```text
//! marnet-lab <experiment> [--replicates N] [--threads N] [--seed S]
//!                         [--out PATH] [--baseline PATH]
//!                         [--trace PATH] [--metrics]
//! marnet-lab --list
//! ```
//!
//! The artifact is independent of `--threads`: the same spec and seed give
//! a byte-identical JSON file at any parallelism. `--trace` and
//! `--metrics` (both off by default) run the experiment instrumented:
//! `--trace PATH` writes every trial's flight-recorder events to a binary
//! trace file, concatenated in `(point, replicate)` order so the file too
//! is byte-identical at any thread count; `--metrics` merges each point's
//! replicate metric snapshots into a schema-v2 `metrics` artifact section.
//!
//! Exit codes follow the workspace convention shared by `marnet-trace`
//! and `marnet-lint`: 0 ok, 1 findings (baseline drift or failed
//! trials), 2 usage or I/O error.

use marnet_lab::artifact::Artifact;
use marnet_lab::experiments;
use marnet_lab::runner::run_experiment;
use marnet_telemetry::{file as trace_file, TelemetryOptions, DEFAULT_TRACE_CAPACITY};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    experiment: String,
    replicates: u32,
    threads: usize,
    seed: u64,
    out: Option<PathBuf>,
    baseline: Option<PathBuf>,
    trace: Option<PathBuf>,
    metrics: bool,
}

fn usage() -> String {
    format!(
        "usage: marnet-lab <experiment> [--replicates N] [--threads N] [--seed S]\n\
         \u{20}                        [--out PATH] [--baseline PATH]\n\
         \u{20}                        [--trace PATH] [--metrics]\n\
         \u{20}      marnet-lab --list\n\
         experiments: {}",
        experiments::NAMES.join(", ")
    )
}

fn parse_args() -> Result<Args, String> {
    let mut experiment = None;
    let mut replicates = 8u32;
    let mut threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut seed = 42u64;
    let mut out = None;
    let mut baseline = None;
    let mut trace = None;
    let mut metrics = false;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value =
            |flag: &str| argv.next().ok_or_else(|| format!("{flag} needs a value\n{}", usage()));
        match arg.as_str() {
            "--list" => {
                println!("{}", experiments::NAMES.join("\n"));
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            "--replicates" => {
                replicates =
                    value("--replicates")?.parse().map_err(|e| format!("--replicates: {e}"))?;
            }
            "--threads" => {
                threads = value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?;
            }
            "--seed" => {
                seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--baseline" => baseline = Some(PathBuf::from(value("--baseline")?)),
            "--trace" => trace = Some(PathBuf::from(value("--trace")?)),
            "--metrics" => metrics = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}\n{}", usage()));
            }
            other if experiment.is_none() => experiment = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other}\n{}", usage())),
        }
    }
    let experiment = experiment.ok_or_else(usage)?;
    if replicates == 0 {
        return Err("--replicates must be at least 1".into());
    }
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    Ok(Args { experiment, replicates, threads, seed, out, baseline, trace, metrics })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let telemetry = TelemetryOptions {
        trace_capacity: args.trace.is_some().then_some(DEFAULT_TRACE_CAPACITY),
        metrics: args.metrics,
    };
    let Some(experiment) =
        experiments::build(&args.experiment, args.replicates, args.seed, &telemetry)
    else {
        eprintln!("unknown experiment {:?}\n{}", args.experiment, usage());
        return ExitCode::from(2);
    };

    let spec = experiment.spec.clone();
    println!(
        "[lab] {}: {} points × {} replicates = {} trials on {} threads (seed {}, spec {:016x})",
        spec.name,
        spec.point_count(),
        spec.replicates,
        spec.trial_count(),
        args.threads,
        spec.seed,
        spec.spec_hash(),
    );

    let run = run_experiment(&spec, args.threads, |point, ctx| (experiment.trial)(point, ctx));
    for failure in &run.failures {
        eprintln!(
            "[lab] trial failed: point {} replicate {}: {}",
            failure.point_index, failure.replicate, failure.message
        );
    }

    let artifact = Artifact::from_run(&run);
    (experiment.render)(&artifact.points);

    let out = args
        .out
        .unwrap_or_else(|| PathBuf::from("results").join(format!("lab_{}.json", spec.name)));
    if let Err(e) = artifact.write(&out) {
        eprintln!("[lab] failed to write artifact {}: {e}", out.display());
        return ExitCode::from(2);
    }
    println!(
        "\n[artifact] {} (schema v{}, spec {})",
        out.display(),
        artifact.schema_version,
        artifact.spec_hash
    );

    if let Some(trace_path) = &args.trace {
        let events = run.trace_events();
        if let Err(e) = trace_file::write_file(trace_path, &events) {
            eprintln!("[lab] failed to write trace {}: {e}", trace_path.display());
            return ExitCode::from(2);
        }
        println!("[trace] {} ({} events)", trace_path.display(), events.len());
    }

    if let Some(baseline_path) = args.baseline {
        let baseline = match Artifact::load(&baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("[lab] failed to load baseline {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        };
        if baseline.experiment != artifact.experiment {
            eprintln!(
                "[baseline] warning: baseline is a {:?} artifact, this run is {:?} — \
                 no points will match",
                baseline.experiment, artifact.experiment
            );
        }
        let drifts = artifact.diff(&baseline);
        if drifts.is_empty() {
            println!(
                "[baseline] no drift vs {} (all shared metrics within joint 95% CI)",
                baseline_path.display()
            );
        } else {
            println!(
                "[baseline] {} metric(s) drifted vs {}:",
                drifts.len(),
                baseline_path.display()
            );
            for d in &drifts {
                println!(
                    "  {} :: {}: {:.4} -> {:.4} ({:+.1}%)",
                    d.point,
                    d.metric,
                    d.baseline_mean,
                    d.current_mean,
                    (d.current_mean - d.baseline_mean) / d.baseline_mean.abs() * 100.0
                );
            }
            return ExitCode::FAILURE;
        }
    }

    if run.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
