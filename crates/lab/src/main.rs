//! The `marnet-lab` CLI: replicated, parallel versions of the paper
//! experiments with confidence intervals and versioned artifacts.
//!
//! ```text
//! marnet-lab <experiment> [--replicates N] [--threads N] [--seed S]
//!                         [--out PATH] [--baseline PATH]
//!                         [--trace PATH] [--metrics]
//! marnet-lab --list
//! ```
//!
//! The artifact is independent of `--threads`: the same spec and seed give
//! a byte-identical JSON file at any parallelism. `--trace` and
//! `--metrics` (both off by default) run the experiment instrumented:
//! `--trace PATH` writes every trial's flight-recorder events to a binary
//! trace file, concatenated in `(point, replicate)` order so the file too
//! is byte-identical at any thread count; `--metrics` merges each point's
//! replicate metric snapshots into a schema-v2 `metrics` artifact section.
//!
//! Exit codes follow the workspace convention shared by `marnet-trace`
//! and `marnet-lint`: 0 ok, 1 findings (baseline drift or failed
//! trials), 2 usage or I/O error.

use marnet_lab::artifact::Artifact;
use marnet_lab::experiments;
use marnet_lab::runner::run_experiment;
use marnet_lab::train;
use marnet_telemetry::{file as trace_file, TelemetryOptions, DEFAULT_TRACE_CAPACITY};
use marnet_trainer::Engine;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    experiment: String,
    replicates: u32,
    threads: usize,
    seed: u64,
    out: Option<PathBuf>,
    baseline: Option<PathBuf>,
    trace: Option<PathBuf>,
    metrics: bool,
}

fn usage() -> String {
    format!(
        "usage: marnet-lab <experiment> [--replicates N] [--threads N] [--seed S]\n\
         \u{20}                        [--out PATH] [--baseline PATH]\n\
         \u{20}                        [--trace PATH] [--metrics]\n\
         \u{20}      marnet-lab train [--smoke] [...]   (see `marnet-lab train --help`)\n\
         \u{20}      marnet-lab racecheck [--quick] [...] (see `marnet-lab racecheck --help`)\n\
         \u{20}      marnet-lab --list\n\
         experiments: {}",
        experiments::NAMES.join(", ")
    )
}

fn parse_args() -> Result<Args, String> {
    let mut experiment = None;
    let mut replicates = 8u32;
    let mut threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut seed = 42u64;
    let mut out = None;
    let mut baseline = None;
    let mut trace = None;
    let mut metrics = false;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value =
            |flag: &str| argv.next().ok_or_else(|| format!("{flag} needs a value\n{}", usage()));
        match arg.as_str() {
            "--list" => {
                println!("{}", experiments::NAMES.join("\n"));
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            "--replicates" => {
                replicates =
                    value("--replicates")?.parse().map_err(|e| format!("--replicates: {e}"))?;
            }
            "--threads" => {
                threads = value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?;
            }
            "--seed" => {
                seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--baseline" => baseline = Some(PathBuf::from(value("--baseline")?)),
            "--trace" => trace = Some(PathBuf::from(value("--trace")?)),
            "--metrics" => metrics = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}\n{}", usage()));
            }
            other if experiment.is_none() => experiment = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other}\n{}", usage())),
        }
    }
    let experiment = experiment.ok_or_else(usage)?;
    if replicates == 0 {
        return Err("--replicates must be at least 1".into());
    }
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    Ok(Args { experiment, replicates, threads, seed, out, baseline, trace, metrics })
}

fn racecheck_usage() -> String {
    "usage: marnet-lab racecheck [--seed S] [--replicates N] [--threads N]\n\
     \u{20}                           [--quick] [--demo] [--no-trace]"
        .to_string()
}

/// Parses and runs `marnet-lab racecheck`. Exit codes follow the workspace
/// convention: 0 ok (schedule-stable), 1 findings (a tie-break policy
/// changed an artifact), 2 usage error.
fn racecheck_main(args: &[String]) -> ExitCode {
    let mut opts = marnet_lab::RacecheckOptions::default();

    let parsed = (|| -> Result<(), String> {
        let mut argv = args.iter();
        while let Some(arg) = argv.next() {
            let mut value = |flag: &str| {
                argv.next().ok_or_else(|| format!("{flag} needs a value\n{}", racecheck_usage()))
            };
            match arg.as_str() {
                "--help" | "-h" => {
                    println!("{}", racecheck_usage());
                    std::process::exit(0);
                }
                "--seed" => {
                    opts.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
                }
                "--replicates" => {
                    opts.replicates =
                        value("--replicates")?.parse().map_err(|e| format!("--replicates: {e}"))?;
                }
                "--threads" => {
                    opts.threads =
                        value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?;
                }
                "--quick" => opts.quick = true,
                "--demo" => opts.demo = true,
                "--no-trace" => opts.trace = false,
                other => return Err(format!("unknown argument {other}\n{}", racecheck_usage())),
            }
        }
        Ok(())
    })();
    if let Err(msg) = parsed {
        eprintln!("{msg}");
        return ExitCode::from(2);
    }
    if opts.replicates == 0 || opts.threads == 0 {
        eprintln!("--replicates and --threads must be at least 1");
        return ExitCode::from(2);
    }

    if marnet_lab::run_racecheck(&opts) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn train_usage() -> String {
    "usage: marnet-lab train [--engine cem|es] [--generations N] [--population N]\n\
     \u{20}                       [--elites N] [--replicates N] [--threads N] [--seed S]\n\
     \u{20}                       [--out PATH] [--baseline PATH] [--smoke]"
        .to_string()
}

/// Parses and runs `marnet-lab train`. Exit codes follow the workspace
/// convention: 0 ok, 1 findings (baseline drift), 2 usage or I/O error.
fn train_main(args: &[String]) -> ExitCode {
    let mut engine = Engine::Cem;
    let mut generations = None;
    let mut population = None;
    let mut elites = None;
    let mut replicates = None;
    let mut threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut seed = 42u64;
    let mut out = None;
    let mut baseline = None;
    let mut smoke = false;

    let parsed = (|| -> Result<(), String> {
        let mut argv = args.iter();
        while let Some(arg) = argv.next() {
            let mut value = |flag: &str| {
                argv.next().ok_or_else(|| format!("{flag} needs a value\n{}", train_usage()))
            };
            match arg.as_str() {
                "--help" | "-h" => {
                    println!("{}", train_usage());
                    std::process::exit(0);
                }
                "--engine" => {
                    let label = value("--engine")?;
                    engine = Engine::from_label(label)
                        .ok_or_else(|| format!("unknown engine {label:?} (cem or es)"))?;
                }
                "--generations" => {
                    generations = Some(
                        value("--generations")?
                            .parse::<u32>()
                            .map_err(|e| format!("--generations: {e}"))?,
                    );
                }
                "--population" => {
                    population = Some(
                        value("--population")?
                            .parse::<u32>()
                            .map_err(|e| format!("--population: {e}"))?,
                    );
                }
                "--elites" => {
                    elites = Some(
                        value("--elites")?.parse::<u32>().map_err(|e| format!("--elites: {e}"))?,
                    );
                }
                "--replicates" => {
                    replicates = Some(
                        value("--replicates")?
                            .parse::<u32>()
                            .map_err(|e| format!("--replicates: {e}"))?,
                    );
                }
                "--threads" => {
                    threads = value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?;
                }
                "--seed" => {
                    seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
                }
                "--out" => out = Some(PathBuf::from(value("--out")?)),
                "--baseline" => baseline = Some(PathBuf::from(value("--baseline")?)),
                "--smoke" => smoke = true,
                other => return Err(format!("unknown argument {other}\n{}", train_usage())),
            }
        }
        Ok(())
    })();
    if let Err(msg) = parsed {
        eprintln!("{msg}");
        return ExitCode::from(2);
    }

    let defaults =
        if smoke { train::TrainOptions::smoke() } else { train::TrainOptions::default() };
    let opts = train::TrainOptions {
        engine,
        seed,
        generations: generations.unwrap_or(defaults.generations),
        population: population.unwrap_or(defaults.population),
        elites: elites.unwrap_or(defaults.elites),
        replicates: replicates.unwrap_or(defaults.replicates),
        threads,
        smoke,
    };
    if opts.generations == 0 || opts.population == 0 || opts.replicates == 0 || opts.threads == 0 {
        eprintln!("--generations, --population, --replicates and --threads must be at least 1");
        return ExitCode::from(2);
    }
    if opts.elites == 0 || opts.elites > opts.population {
        eprintln!("--elites must be in 1..=population");
        return ExitCode::from(2);
    }

    println!(
        "[train] {} search: {} generations × {} candidates × {} members × {} replicates \
         = {} sims on {} threads (seed {}{})",
        opts.engine.label(),
        opts.generations,
        opts.population,
        train::MEMBERS.len(),
        opts.replicates,
        opts.generations as usize
            * opts.population as usize
            * train::MEMBERS.len()
            * opts.replicates as usize,
        opts.threads,
        opts.seed,
        if opts.smoke { ", smoke tier" } else { "" },
    );
    let (_result, artifact) = train::run_training(&opts);
    train::render(&artifact);

    let out = out.unwrap_or_else(|| {
        PathBuf::from("results").join(if opts.smoke {
            "lab_train_smoke.json"
        } else {
            "lab_train.json"
        })
    });
    match train::finish(&artifact, &out, baseline.as_deref()) {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("[train] {msg}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    // The `train` subcommand has its own flag set; peek before the
    // experiment-runner parser claims argv.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("train") {
        return train_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("racecheck") {
        return racecheck_main(&argv[1..]);
    }
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let telemetry = TelemetryOptions {
        trace_capacity: args.trace.is_some().then_some(DEFAULT_TRACE_CAPACITY),
        metrics: args.metrics,
    };
    let Some(experiment) =
        experiments::build(&args.experiment, args.replicates, args.seed, &telemetry)
    else {
        eprintln!("unknown experiment {:?}\n{}", args.experiment, usage());
        return ExitCode::from(2);
    };

    let spec = experiment.spec.clone();
    println!(
        "[lab] {}: {} points × {} replicates = {} trials on {} threads (seed {}, spec {:016x})",
        spec.name,
        spec.point_count(),
        spec.replicates,
        spec.trial_count(),
        args.threads,
        spec.seed,
        spec.spec_hash(),
    );

    let run = run_experiment(&spec, args.threads, |point, ctx| (experiment.trial)(point, ctx));
    for failure in &run.failures {
        eprintln!(
            "[lab] trial failed: point {} replicate {}: {}",
            failure.point_index, failure.replicate, failure.message
        );
    }

    let artifact = Artifact::from_run(&run);
    (experiment.render)(&artifact.points);

    let out = args
        .out
        .unwrap_or_else(|| PathBuf::from("results").join(format!("lab_{}.json", spec.name)));
    if let Err(e) = artifact.write(&out) {
        eprintln!("[lab] failed to write artifact {}: {e}", out.display());
        return ExitCode::from(2);
    }
    println!(
        "\n[artifact] {} (schema v{}, spec {})",
        out.display(),
        artifact.schema_version,
        artifact.spec_hash
    );

    if let Some(trace_path) = &args.trace {
        let events = run.trace_events();
        if let Err(e) = trace_file::write_file(trace_path, &events) {
            eprintln!("[lab] failed to write trace {}: {e}", trace_path.display());
            return ExitCode::from(2);
        }
        println!("[trace] {} ({} events)", trace_path.display(), events.len());
    }

    if let Some(baseline_path) = args.baseline {
        let baseline = match Artifact::load(&baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("[lab] failed to load baseline {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        };
        if baseline.experiment != artifact.experiment {
            eprintln!(
                "[baseline] warning: baseline is a {:?} artifact, this run is {:?} — \
                 no points will match",
                baseline.experiment, artifact.experiment
            );
        }
        let drifts = artifact.diff(&baseline);
        if drifts.is_empty() {
            println!(
                "[baseline] no drift vs {} (all shared metrics within joint 95% CI)",
                baseline_path.display()
            );
        } else {
            println!(
                "[baseline] {} metric(s) drifted vs {}:",
                drifts.len(),
                baseline_path.display()
            );
            for d in &drifts {
                println!(
                    "  {} :: {}: {:.4} -> {:.4} ({:+.1}%)",
                    d.point,
                    d.metric,
                    d.baseline_mean,
                    d.current_mean,
                    (d.current_mean - d.baseline_mean) / d.baseline_mean.abs() * 100.0
                );
            }
            return ExitCode::FAILURE;
        }
    }

    if run.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
