//! Golden spec-hash fixtures: the `spec_hash` recorded in lab artifacts is
//! part of their byte-identical contract, so the hashes of the built-in
//! experiments are pinned here. A failure means either the canonical JSON
//! encoding or an experiment's spec changed — both invalidate previously
//! published artifacts and should be deliberate, with the goldens updated
//! in the same change.

use marnet_lab::artifact::Artifact;
use marnet_lab::experiments;
use marnet_lab::runner::run_experiment;
use marnet_lab::TrialReport;
use marnet_telemetry::TelemetryOptions;

/// `(name, spec_hash)` for every built-in experiment at `--replicates 8
/// --seed 42`, the configuration the committed reference artifacts use.
const GOLDEN_SPEC_HASHES: [(&str, u64); 5] = [
    ("table2_rtt", 0x157f_f182_3e33_b013),
    ("sweep_recovery", 0xcc61_0c13_0853_e855),
    ("sweep_offload", 0xddde_06b2_685f_01d0),
    ("sweep_faults", 0xbd12_7632_99a1_e71f),
    ("sweep_cityscale", 0x4512_7ec1_5412_aefc),
];

#[test]
fn builtin_experiment_spec_hashes_match_goldens() {
    for (name, golden) in GOLDEN_SPEC_HASHES {
        let exp = experiments::build(name, 8, 42, &TelemetryOptions::disabled())
            .expect("built-in experiment");
        assert_eq!(
            exp.spec.spec_hash(),
            golden,
            "spec hash drifted for {name}: artifacts keyed by the old hash \
             no longer correspond to this spec"
        );
    }
}

#[test]
fn every_builtin_experiment_has_a_golden() {
    assert_eq!(experiments::NAMES.len(), GOLDEN_SPEC_HASHES.len());
    for name in experiments::NAMES {
        assert!(GOLDEN_SPEC_HASHES.iter().any(|(n, _)| *n == name), "no golden for {name}");
    }
}

/// The artifact records the hash as fixed-width lower-case hex; that string
/// is what external tooling joins on, so pin the exact formatting too.
#[test]
fn artifact_spec_hash_is_fixed_width_hex_of_spec_hash() {
    let exp = experiments::build("table2_rtt", 8, 42, &TelemetryOptions::disabled())
        .expect("built-in experiment");
    let run = run_experiment(&exp.spec, 1, |_, _| TrialReport::new());
    let artifact = Artifact::from_run(&run);
    assert_eq!(artifact.spec_hash, "157ff1823e33b013");
    assert_eq!(artifact.spec_hash, format!("{:016x}", exp.spec.spec_hash()));
}
