//! `marnet-lab racecheck`: the race detector must itself be
//! deterministic — same report bytes at any `--threads` and across
//! reruns — and its exit codes must follow the workspace convention
//! (0 schedule-stable, 1 divergence found, 2 usage error).

use std::process::{Command, Output};

fn lab_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_marnet-lab"))
}

fn run_racecheck(args: &[&str]) -> Output {
    lab_bin().arg("racecheck").args(args).output().expect("run marnet-lab racecheck")
}

#[test]
fn report_is_byte_identical_across_threads_and_reruns() {
    let one = run_racecheck(&["--quick", "--threads", "1"]);
    let eight = run_racecheck(&["--quick", "--threads", "8"]);
    let again = run_racecheck(&["--quick", "--threads", "8"]);
    assert!(one.status.success(), "{}", String::from_utf8_lossy(&one.stderr));
    assert_eq!(
        String::from_utf8_lossy(&one.stdout),
        String::from_utf8_lossy(&eight.stdout),
        "racecheck report must not depend on --threads"
    );
    assert_eq!(
        String::from_utf8_lossy(&eight.stdout),
        String::from_utf8_lossy(&again.stdout),
        "racecheck report must be stable across reruns"
    );
}

#[test]
fn clean_portfolio_exits_zero() {
    let out = run_racecheck(&["--quick"]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stdout));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("tie-order independent"), "{text}");
}

#[test]
fn demo_divergence_exits_one_with_a_first_divergence_trace() {
    let out = run_racecheck(&["--quick", "--demo"]);
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stdout));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("divergence"), "{text}");
}

#[test]
fn usage_errors_exit_two() {
    // Unknown flag.
    assert_eq!(run_racecheck(&["--frob"]).status.code(), Some(2));
    // Dangling flag value.
    assert_eq!(run_racecheck(&["--seed"]).status.code(), Some(2));
    // Non-numeric value.
    assert_eq!(run_racecheck(&["--threads", "many"]).status.code(), Some(2));
    // Zero threads / replicates.
    assert_eq!(run_racecheck(&["--threads", "0"]).status.code(), Some(2));
    assert_eq!(run_racecheck(&["--replicates", "0"]).status.code(), Some(2));
}
