//! The trainer's end-to-end guarantees through the lab evaluator:
//! byte-identical search artifacts at any thread count, the golden
//! train-spec hash, and the committed tuned-vs-default table's acceptance
//! criterion (tuned matches or beats the paper default on at least one
//! QoE scenario without degrading fairness-to-TCP beyond its band).

use marnet_lab::train::{run_training, train_hash, TrainOptions, FAIRNESS_BAND};
use marnet_trainer::{Engine, FrontArtifact};
use std::path::PathBuf;

/// The smallest budget that still exercises both generations' sampling,
/// the elite refit, and every portfolio member.
fn tiny_opts(threads: usize) -> TrainOptions {
    TrainOptions {
        engine: Engine::Cem,
        seed: 7,
        generations: 2,
        population: 3,
        elites: 2,
        replicates: 1,
        threads,
        smoke: true,
    }
}

#[test]
fn search_artifact_is_byte_identical_across_thread_counts() {
    let (result_a, artifact_a) = run_training(&tiny_opts(1));
    let (result_b, artifact_b) = run_training(&tiny_opts(4));
    assert_eq!(artifact_a.to_json(), artifact_b.to_json(), "threads 1 vs 4");
    assert_eq!(result_a.front, result_b.front);
    assert_eq!(result_a.best_index, result_b.best_index);
    // The archive is the full determinism surface: every candidate's
    // point, params, objectives and scalar must agree bit-for-bit.
    assert_eq!(result_a.archive, result_b.archive);
}

#[test]
fn front_is_non_dominated_and_contains_no_dominated_default() {
    let (result, artifact) = run_training(&tiny_opts(2));
    assert!(!artifact.front.is_empty());
    for a in &artifact.front {
        for b in &artifact.front {
            if (a.generation, a.candidate) != (b.generation, b.candidate) {
                assert!(
                    !a.objectives.dominates(&b.objectives),
                    "front entries must be mutually non-dominated"
                );
            }
        }
    }
    // The incumbent is archive index 0 by construction.
    assert_eq!(result.default_index, 0);
    assert_eq!(artifact.default.generation, 0);
    assert_eq!(artifact.default.candidate, 0);
}

/// Path of the committed smoke artifact, from the crate directory.
fn committed_artifact() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/lab_train_smoke.json")
}

#[test]
fn smoke_train_hash_matches_the_golden_fixture() {
    // The hex FNV-1a over the canonical training spec (space bounds,
    // engine budget, portfolio constants). If this fails you changed the
    // experiment: regenerate results/lab_train_smoke.json with
    // `cargo run --release -p marnet-lab -- train --smoke` and update the
    // fixture here.
    let hash = train_hash(&TrainOptions::smoke());
    assert_eq!(hash, "2859b32fd0ee7539");
    let artifact = FrontArtifact::load(&committed_artifact())
        .expect("committed smoke artifact loads; regenerate with `marnet-lab train --smoke`");
    assert_eq!(artifact.train_hash, hash, "committed artifact was built from a different spec");
}

#[test]
fn committed_comparison_table_meets_the_acceptance_criterion() {
    let artifact = FrontArtifact::load(&committed_artifact()).expect("committed artifact loads");
    // Tuned matches or beats the paper default on at least one QoE
    // scenario...
    let improved = artifact
        .comparison
        .iter()
        .filter(|row| row.metric.starts_with("qoe/"))
        .any(|row| row.tuned >= row.default);
    assert!(
        improved,
        "tuned policy beats the default on no QoE scenario: {:?}",
        artifact.comparison
    );
    // ...without degrading fairness-to-TCP beyond its band.
    assert!(
        artifact.tuned.objectives.fairness >= artifact.default.objectives.fairness - FAIRNESS_BAND,
        "tuned fairness {} degrades more than {} below default {}",
        artifact.tuned.objectives.fairness,
        FAIRNESS_BAND,
        artifact.default.objectives.fairness
    );
    // Provenance sanity: the committed artifact is the CI smoke tier.
    assert!(artifact.smoke);
    assert_eq!(artifact.experiment, "train");
    assert_eq!(artifact.engine, "cem");
    assert_eq!(
        artifact.evaluations as usize,
        artifact.generations as usize * artifact.population as usize
    );
    // The canary recorded the engine-stack smoke.
    assert!(artifact.canary.contains_key("cityscale/mar_in_budget_pct"));
}
