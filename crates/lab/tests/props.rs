//! Property tests for the lab's statistical plumbing: merged accumulators
//! must agree with sequential accumulation no matter how the samples are
//! partitioned.

use marnet_lab::agg::MetricSummary;
use marnet_sim::stats::{Histogram, OnlineStats};
use proptest::prelude::*;

proptest! {
    #[test]
    fn merged_online_stats_equal_sequential(
        values in prop::collection::vec(-1e3f64..1e3, 1..200),
        cut in any::<prop::sample::Index>(),
    ) {
        let cut = cut.index(values.len() + 1).min(values.len());
        let mut whole = OnlineStats::new();
        for &v in &values {
            whole.record(v);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &v in &values[..cut] {
            left.record(v);
        }
        for &v in &values[cut..] {
            right.record(v);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-6);
        prop_assert_eq!(left.min(), whole.min());
        prop_assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merged_histograms_equal_pooled_accumulation(
        values in prop::collection::vec(0.0f64..1e4, 1..300),
        pieces in 1usize..6,
    ) {
        let mut pooled = Histogram::new();
        for &v in &values {
            pooled.record(v);
        }
        // Round-robin partition into `pieces` histograms, then merge back.
        let mut parts = vec![Histogram::new(); pieces];
        for (i, &v) in values.iter().enumerate() {
            parts[i % pieces].record(v);
        }
        let mut merged = Histogram::new();
        for part in &parts {
            merged.merge(part);
        }
        prop_assert_eq!(merged.count(), pooled.count());
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), pooled.quantile(q));
        }
        prop_assert_eq!(merged.mean(), pooled.mean());
    }

    #[test]
    fn ci_shrinks_with_replicates_and_brackets_the_mean(
        base in -100.0f64..100.0,
        spread in 0.1f64..10.0,
        n in 4u64..40,
    ) {
        let mut stats = OnlineStats::new();
        for i in 0..n {
            // Symmetric deterministic spread around `base`.
            let offset = (i as f64 / (n - 1) as f64 - 0.5) * spread;
            stats.record(base + offset);
        }
        let summary = MetricSummary::from_stats(&stats);
        prop_assert!(summary.ci95 > 0.0);
        prop_assert!(summary.ci95.is_finite());
        // The CI half-width never exceeds the full spread for n ≥ 4
        // (t ≤ 3.182, s ≤ spread/2, √n ≥ 2).
        prop_assert!(summary.ci95 <= spread * 1.6);
        prop_assert!((summary.mean - base).abs() < 1e-9);
    }
}
