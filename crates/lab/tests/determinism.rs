//! The lab's headline guarantee: the serialized artifact of a run is
//! byte-identical at any thread count, and fully reproducible from the
//! spec and seed alone.

use marnet_bench::scenarios::{run_recovery_with_pooling, RecoveryMechanism};
use marnet_lab::artifact::Artifact;
use marnet_lab::runner::{run_experiment, TrialCtx, TrialReport};
use marnet_lab::spec::{GridPoint, ParamValue, ScenarioSpec};
use marnet_telemetry::TelemetryOptions;
use proptest::prelude::*;

fn spec() -> ScenarioSpec {
    ScenarioSpec::new("determinism-probe", 2024, 16)
        .with_param("gain", ParamValue::Float(2.5))
        .with_axis("mode", vec![ParamValue::Str("a".into()), ParamValue::Str("b".into())])
        .with_axis("level", vec![ParamValue::Int(1), ParamValue::Int(2), ParamValue::Int(3)])
}

/// A trial with real RNG use, per-point behaviour and an occasional panic,
/// so the determinism claim is exercised on the messy path, not a toy.
fn trial(point: &GridPoint, ctx: &TrialCtx) -> TrialReport {
    use rand::Rng;
    let mut rng = ctx.rng();
    let gain = point.param("gain").as_float().unwrap();
    let level = point.param("level").as_int().unwrap() as f64;
    if point.param("mode").as_str() == Some("b") && ctx.replicate == 7 {
        panic!("synthetic failure");
    }
    let mut report = TrialReport::new();
    let samples: Vec<f64> = (0..50).map(|_| gain * level + rng.gen_range(-1.0..1.0)).collect();
    report.scalar("mean_level", samples.iter().sum::<f64>() / samples.len() as f64);
    report.scalar("draw", rng.gen_range(0.0..1.0));
    report.samples("latency_ms", samples);
    report
}

#[test]
fn artifacts_are_byte_identical_across_thread_counts() {
    let spec = spec();
    let json_by_threads: Vec<String> = [1usize, 2, 8]
        .iter()
        .map(|&threads| Artifact::from_run(&run_experiment(&spec, threads, trial)).to_json())
        .collect();
    assert_eq!(json_by_threads[0], json_by_threads[1], "1 vs 2 threads");
    assert_eq!(json_by_threads[1], json_by_threads[2], "2 vs 8 threads");
}

#[test]
fn reruns_of_the_same_spec_are_byte_identical() {
    let a = Artifact::from_run(&run_experiment(&spec(), 4, trial)).to_json();
    let b = Artifact::from_run(&run_experiment(&spec(), 4, trial)).to_json();
    assert_eq!(a, b);
}

#[test]
fn changing_the_seed_changes_the_results_but_not_the_shape() {
    let mut reseeded = spec();
    reseeded.seed = 2025;
    let a = Artifact::from_run(&run_experiment(&spec(), 4, trial));
    let b = Artifact::from_run(&run_experiment(&reseeded, 4, trial));
    assert_ne!(a.to_json(), b.to_json());
    assert_eq!(a.points.len(), b.points.len());
    // Failures are part of the deterministic contract too.
    assert_eq!(a.failed_trials, 3, "mode=b has one failing replicate per level");
    assert_eq!(b.failed_trials, 3);
}

/// Runs a down-scaled recovery sweep through the lab and serializes the
/// artifact, with payload pooling forced on or off. The chunked flight
/// recorder is enabled so the identity claim covers the PR's whole hot
/// path, not just the allocator.
fn recovery_artifact(
    rtt_ms: u64,
    loss: f64,
    mech: RecoveryMechanism,
    threads: usize,
    pooling: bool,
) -> String {
    let spec = ScenarioSpec::new("pooling-identity-probe", 0xA11C, 2)
        .with_param("rtt_ms", ParamValue::Int(rtt_ms as i64))
        .with_param("loss_pct", ParamValue::Float(loss * 100.0));
    let run = run_experiment(&spec, threads, move |point, ctx| {
        let rtt = point.param("rtt_ms").as_int().unwrap() as u64;
        let loss = point.param("loss_pct").as_float().unwrap() / 100.0;
        let telemetry = TelemetryOptions { trace_capacity: Some(1 << 12), metrics: false };
        let (outcome, events, capture) =
            run_recovery_with_pooling(rtt, loss, mech, 2, ctx.seed, &telemetry, pooling);
        let mut report = TrialReport::new();
        report.scalar("delivered_in_budget_pct", outcome.delivered_in_budget_pct);
        report.scalar("delivered_total_pct", outcome.delivered_total_pct);
        report.scalar("overhead_pct", outcome.overhead_pct);
        report.scalar("events", events as f64);
        report.scalar("trace_events", capture.events.len() as f64);
        report
    });
    Artifact::from_run(&run).to_json()
}

proptest! {
    // Each case runs four full sweeps; a handful of cases keeps the suite
    // fast while still sampling the (rtt, loss, mechanism) surface.
    #![proptest_config(ProptestConfig { cases: 4 })]

    /// The PR's pooling contract: forced-fresh allocation and pooled
    /// buffers produce byte-identical lab artifacts at `--threads 1` and
    /// `8`, with the chunked recorder on.
    #[test]
    fn pooled_and_fresh_artifacts_are_byte_identical_across_threads(
        rtt_ix in 0usize..3,
        loss in 0.0f64..0.15,
        mech_ix in 0usize..RecoveryMechanism::ALL.len(),
    ) {
        let rtt_ms = [20u64, 40, 80][rtt_ix];
        let mech = RecoveryMechanism::ALL[mech_ix];
        let base = recovery_artifact(rtt_ms, loss, mech, 1, true);
        for (threads, pooling) in [(8usize, true), (1, false), (8, false)] {
            let got = recovery_artifact(rtt_ms, loss, mech, threads, pooling);
            prop_assert_eq!(
                &base,
                &got,
                "threads={} pooling={} diverged from threads=1 pooling=on ({} @ rtt {} loss {:.3})",
                threads,
                pooling,
                mech.label(),
                rtt_ms,
                loss
            );
        }
    }
}

#[test]
fn built_in_experiment_artifact_is_thread_independent() {
    // The real table2_rtt experiment, scaled down for test time.
    let exp = marnet_lab::experiments::build(
        "table2_rtt",
        2,
        7,
        &marnet_telemetry::TelemetryOptions::disabled(),
    )
    .unwrap();
    let mut spec = exp.spec.clone();
    // 40 probes instead of 200 keeps this test quick.
    spec.base.insert("probes".into(), ParamValue::Int(40));
    let a = Artifact::from_run(&run_experiment(&spec, 2, |p, c| (exp.trial)(p, c)));
    let b = Artifact::from_run(&run_experiment(&spec, 8, |p, c| (exp.trial)(p, c)));
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.failed_trials, 0);
    // Every scenario point carries the CI-bearing summaries.
    for point in &a.points {
        assert!(point.scalars.contains_key("median_ms"));
        assert!(point.samples.contains_key("rtt_ms"));
        assert_eq!(point.replicates_ok, 2);
    }
}
