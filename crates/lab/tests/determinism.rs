//! The lab's headline guarantee: the serialized artifact of a run is
//! byte-identical at any thread count, and fully reproducible from the
//! spec and seed alone.

use marnet_lab::artifact::Artifact;
use marnet_lab::runner::{run_experiment, TrialCtx, TrialReport};
use marnet_lab::spec::{GridPoint, ParamValue, ScenarioSpec};

fn spec() -> ScenarioSpec {
    ScenarioSpec::new("determinism-probe", 2024, 16)
        .with_param("gain", ParamValue::Float(2.5))
        .with_axis("mode", vec![ParamValue::Str("a".into()), ParamValue::Str("b".into())])
        .with_axis("level", vec![ParamValue::Int(1), ParamValue::Int(2), ParamValue::Int(3)])
}

/// A trial with real RNG use, per-point behaviour and an occasional panic,
/// so the determinism claim is exercised on the messy path, not a toy.
fn trial(point: &GridPoint, ctx: &TrialCtx) -> TrialReport {
    use rand::Rng;
    let mut rng = ctx.rng();
    let gain = point.param("gain").as_float().unwrap();
    let level = point.param("level").as_int().unwrap() as f64;
    if point.param("mode").as_str() == Some("b") && ctx.replicate == 7 {
        panic!("synthetic failure");
    }
    let mut report = TrialReport::new();
    let samples: Vec<f64> = (0..50).map(|_| gain * level + rng.gen_range(-1.0..1.0)).collect();
    report.scalar("mean_level", samples.iter().sum::<f64>() / samples.len() as f64);
    report.scalar("draw", rng.gen_range(0.0..1.0));
    report.samples("latency_ms", samples);
    report
}

#[test]
fn artifacts_are_byte_identical_across_thread_counts() {
    let spec = spec();
    let json_by_threads: Vec<String> = [1usize, 2, 8]
        .iter()
        .map(|&threads| Artifact::from_run(&run_experiment(&spec, threads, trial)).to_json())
        .collect();
    assert_eq!(json_by_threads[0], json_by_threads[1], "1 vs 2 threads");
    assert_eq!(json_by_threads[1], json_by_threads[2], "2 vs 8 threads");
}

#[test]
fn reruns_of_the_same_spec_are_byte_identical() {
    let a = Artifact::from_run(&run_experiment(&spec(), 4, trial)).to_json();
    let b = Artifact::from_run(&run_experiment(&spec(), 4, trial)).to_json();
    assert_eq!(a, b);
}

#[test]
fn changing_the_seed_changes_the_results_but_not_the_shape() {
    let mut reseeded = spec();
    reseeded.seed = 2025;
    let a = Artifact::from_run(&run_experiment(&spec(), 4, trial));
    let b = Artifact::from_run(&run_experiment(&reseeded, 4, trial));
    assert_ne!(a.to_json(), b.to_json());
    assert_eq!(a.points.len(), b.points.len());
    // Failures are part of the deterministic contract too.
    assert_eq!(a.failed_trials, 3, "mode=b has one failing replicate per level");
    assert_eq!(b.failed_trials, 3);
}

#[test]
fn built_in_experiment_artifact_is_thread_independent() {
    // The real table2_rtt experiment, scaled down for test time.
    let exp = marnet_lab::experiments::build(
        "table2_rtt",
        2,
        7,
        &marnet_telemetry::TelemetryOptions::disabled(),
    )
    .unwrap();
    let mut spec = exp.spec.clone();
    // 40 probes instead of 200 keeps this test quick.
    spec.base.insert("probes".into(), ParamValue::Int(40));
    let a = Artifact::from_run(&run_experiment(&spec, 2, |p, c| (exp.trial)(p, c)));
    let b = Artifact::from_run(&run_experiment(&spec, 8, |p, c| (exp.trial)(p, c)));
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.failed_trials, 0);
    // Every scenario point carries the CI-bearing summaries.
    for point in &a.points {
        assert!(point.scalars.contains_key("median_ms"));
        assert!(point.samples.contains_key("rtt_ms"));
        assert_eq!(point.replicates_ok, 2);
    }
}
