//! `marnet-lab` exit codes: the workspace CLI convention is 0 ok,
//! 1 findings (baseline drift, failed trials), 2 usage or I/O error.
//!
//! The drift path is exercised by doctoring a baseline artifact's mean
//! far outside any confidence band and re-running the same spec.

use std::path::PathBuf;
use std::process::Command;

fn lab_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_marnet-lab"))
}

fn tmp(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name)
}

/// The cheapest real experiment invocation the suite has.
fn run_small(out: &PathBuf, extra: &[&str]) -> std::process::ExitStatus {
    lab_bin()
        .args(["table2_rtt", "--replicates", "2", "--threads", "1", "--seed", "11"])
        .arg("--out")
        .arg(out)
        .args(extra)
        .status()
        .expect("run marnet-lab")
}

#[test]
fn clean_run_and_matching_baseline_exit_zero() {
    let base = tmp("lab_ec_base.json");
    assert_eq!(run_small(&base, &[]).code(), Some(0));
    let rerun = tmp("lab_ec_rerun.json");
    let st = run_small(&rerun, &["--baseline", base.to_str().unwrap()]);
    assert_eq!(st.code(), Some(0), "identical spec+seed must not drift");
}

#[test]
fn doctored_baseline_drift_exits_one() {
    let base = tmp("lab_ec_drift_base.json");
    assert_eq!(run_small(&base, &[]).code(), Some(0));
    // Push every mean far outside any CI band (all lab metrics are
    // nonnegative, so prefixing a digit inflates them ~10-1000x).
    let text = std::fs::read_to_string(&base).expect("read artifact");
    let doctored = text.replace("\"mean\": ", "\"mean\": 9");
    assert_ne!(text, doctored, "artifact schema changed; update the doctoring");
    let doctored_path = tmp("lab_ec_drift_doctored.json");
    std::fs::write(&doctored_path, doctored).expect("write doctored baseline");
    let rerun = tmp("lab_ec_drift_rerun.json");
    let st = run_small(&rerun, &["--baseline", doctored_path.to_str().unwrap()]);
    assert_eq!(st.code(), Some(1));
}

/// The cheapest real `train` invocation: one generation of two
/// candidates, one replicate each, smoke-tier horizons.
fn run_train(out: &PathBuf, extra: &[&str]) -> std::process::ExitStatus {
    lab_bin()
        .args([
            "train",
            "--smoke",
            "--generations",
            "1",
            "--population",
            "2",
            "--elites",
            "1",
            "--replicates",
            "1",
            "--threads",
            "1",
        ])
        .arg("--out")
        .arg(out)
        .args(extra)
        .status()
        .expect("run marnet-lab train")
}

#[test]
fn train_clean_run_and_matching_baseline_exit_zero() {
    let base = tmp("train_ec_base.json");
    assert_eq!(run_train(&base, &[]).code(), Some(0));
    let rerun = tmp("train_ec_rerun.json");
    let st = run_train(&rerun, &["--baseline", base.to_str().unwrap()]);
    assert_eq!(st.code(), Some(0), "identical options must reproduce the artifact byte-for-byte");
}

#[test]
fn train_doctored_baseline_drift_exits_one() {
    let base = tmp("train_ec_drift_base.json");
    assert_eq!(run_train(&base, &[]).code(), Some(0));
    // Inflate every candidate's scalarized fitness; the spec hash stays
    // intact so the comparison reaches the byte-level check.
    let text = std::fs::read_to_string(&base).expect("read artifact");
    let doctored = text.replace("\"scalar\": ", "\"scalar\": 9");
    assert_ne!(text, doctored, "artifact schema changed; update the doctoring");
    let doctored_path = tmp("train_ec_drift_doctored.json");
    std::fs::write(&doctored_path, doctored).expect("write doctored baseline");
    let rerun = tmp("train_ec_drift_rerun.json");
    let st = run_train(&rerun, &["--baseline", doctored_path.to_str().unwrap()]);
    assert_eq!(st.code(), Some(1));
}

#[test]
fn train_usage_and_io_errors_exit_two() {
    // Unknown flag.
    assert_eq!(lab_bin().args(["train", "--frob"]).status().expect("run").code(), Some(2));
    // Dangling flag value.
    assert_eq!(lab_bin().args(["train", "--seed"]).status().expect("run").code(), Some(2));
    // Unknown engine.
    assert_eq!(lab_bin().args(["train", "--engine", "sgd"]).status().expect("run").code(), Some(2));
    // Elites above the population size.
    assert_eq!(
        lab_bin()
            .args(["train", "--population", "2", "--elites", "3"])
            .status()
            .expect("run")
            .code(),
        Some(2)
    );
    // Unreadable baseline: I/O error (after the cheapest possible run).
    let out = tmp("train_ec_io.json");
    let st = run_train(&out, &["--baseline", "/nonexistent/baseline.json"]);
    assert_eq!(st.code(), Some(2));
}

#[test]
fn usage_and_io_errors_exit_two() {
    // No experiment named.
    assert_eq!(lab_bin().status().expect("run").code(), Some(2));
    // Unknown experiment.
    assert_eq!(lab_bin().arg("not_an_experiment").status().expect("run").code(), Some(2));
    // Unknown flag.
    assert_eq!(lab_bin().args(["table2_rtt", "--frob"]).status().expect("run").code(), Some(2));
    // Dangling flag value.
    assert_eq!(lab_bin().args(["table2_rtt", "--seed"]).status().expect("run").code(), Some(2));
    // Unreadable baseline: I/O error.
    let out = tmp("lab_ec_io.json");
    let st = run_small(&out, &["--baseline", "/nonexistent/baseline.json"]);
    assert_eq!(st.code(), Some(2));
}
