//! Replicate throughput of the lab runner at increasing thread counts.
//!
//! Each trial runs a small but non-trivial deterministic workload, so the
//! benchmark shows how close the atomic-work-queue executor gets to linear
//! scaling (merge order is fixed, so results are identical throughout).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use marnet_lab::runner::{run_experiment, TrialReport};
use marnet_lab::spec::{ParamValue, ScenarioSpec};

fn spec(replicates: u32) -> ScenarioSpec {
    ScenarioSpec::new("runner-scaling", 7, replicates).with_axis(
        "x",
        vec![ParamValue::Int(1), ParamValue::Int(2), ParamValue::Int(3), ParamValue::Int(4)],
    )
}

fn bench_runner_scaling(c: &mut Criterion) {
    let replicates = 16u32;
    let s = spec(replicates);
    let trials = s.trial_count() as u64;
    let mut group = c.benchmark_group("runner_scaling");
    group.throughput(Throughput::Elements(trials));
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(&format!("threads_{threads}"), |b| {
            b.iter(|| {
                let run = run_experiment(&s, threads, |point, ctx| {
                    use rand::Rng;
                    let mut rng = ctx.rng();
                    let x = point.param("x").as_int().unwrap() as f64;
                    // ~50k RNG draws + arithmetic per trial.
                    let mut acc = 0.0f64;
                    for _ in 0..50_000 {
                        acc += (x + rng.gen_range(-1.0..1.0)).sqrt().abs();
                    }
                    let mut r = TrialReport::new();
                    r.scalar("acc", acc);
                    r
                });
                black_box(run.reports.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_runner_scaling);
criterion_main!(benches);
