//! Property-based tests for the AR protocol's invariants: FEC round trips,
//! priority ordering, scheduler conservation and the recovery gate.

use marnet_core::class::TrafficClass;
use marnet_core::class::{Priority, StreamKind};
use marnet_core::degradation::DegradationScheduler;
use marnet_core::fec::{recover_single, residual_loss, XorEncoder};
use marnet_core::message::ArMessage;
use marnet_core::recovery::{FragmentRecord, RecoveryPolicy};
use marnet_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// XOR FEC recovers ANY single missing block of ANY group, for
    /// arbitrary block contents and lengths.
    #[test]
    fn fec_recovers_any_single_loss(
        blocks in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..600), 2..10),
        missing_idx in any::<prop::sample::Index>(),
    ) {
        let missing = missing_idx.index(blocks.len());
        let mut enc = XorEncoder::new(blocks.len());
        let mut parity = None;
        for b in &blocks {
            parity = enc.push(b);
        }
        let parity = parity.expect("full group emits parity");
        let survivors: Vec<&[u8]> = blocks
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != missing)
            .map(|(_, b)| b.as_slice())
            .collect();
        let rec = recover_single(&survivors, &parity, blocks[missing].len());
        prop_assert_eq!(&rec, &blocks[missing]);
    }

    #[test]
    fn fec_residual_loss_is_probability_and_monotone_in_k(
        p in 0.0f64..=1.0,
        k in 1usize..32,
    ) {
        let r = residual_loss(k, p);
        prop_assert!((0.0..=1.0).contains(&r));
        // More data blocks per parity → weaker protection.
        prop_assert!(residual_loss(k + 1, p) >= r - 1e-12);
    }

    #[test]
    fn priority_rank_is_consistent_with_semantics(level in 0u8..16) {
        // Anything droppable ranks strictly below Highest.
        prop_assert!(Priority::Highest.rank() < Priority::DropNotDelay(level).rank());
        prop_assert!(Priority::Highest.rank() < Priority::Lowest(level).rank());
        // Delayable-not-droppable sits between Highest and the droppables.
        prop_assert!(Priority::DelayNotDrop(level).rank() < Priority::DropNotDelay(0).rank());
        // Band never exceeds 3, rank is stable.
        prop_assert!(Priority::Lowest(level).band() == 3);
    }

    /// Scheduler conservation: every submitted message is sent, dropped or
    /// still queued — none invented, none lost.
    #[test]
    fn degradation_scheduler_conserves_messages(
        sizes in prop::collection::vec(1u32..20_000, 1..100),
        budget in 100.0f64..50_000.0,
        ticks in 1usize..20,
    ) {
        let mut s = DegradationScheduler::new(SimDuration::from_millis(100), 4.0);
        let n = sizes.len();
        for (i, size) in sizes.into_iter().enumerate() {
            let kind = match i % 4 {
                0 => StreamKind::Metadata,
                1 => StreamKind::Sensor,
                2 => StreamKind::VideoReference,
                _ => StreamKind::VideoInter,
            };
            s.submit(ArMessage::new(i as u64, kind, size, SimTime::ZERO));
        }
        let mut sent = 0usize;
        let mut dropped = 0usize;
        for t in 0..ticks {
            let out = s.tick(SimTime::from_millis(t as u64 * 5), budget);
            sent += out.sent.len();
            dropped += out.dropped.len();
        }
        prop_assert_eq!(sent + dropped + s.queued_messages(), n);
    }

    /// Non-droppable messages are never dropped, whatever the pressure.
    #[test]
    fn scheduler_never_drops_undroppable(
        n in 1usize..80,
        budget in 0.0f64..5_000.0,
    ) {
        let mut s = DegradationScheduler::new(SimDuration::from_millis(10), 1.0);
        for i in 0..n {
            let kind = if i % 2 == 0 { StreamKind::Metadata } else { StreamKind::Sensor };
            s.submit(
                ArMessage::new(i as u64, kind, 5_000, SimTime::ZERO)
                    .with_deadline(SimTime::from_millis(1)),
            );
        }
        // Far past every deadline, with pressure: still no drops allowed.
        let out = s.tick(SimTime::from_secs(100), budget);
        prop_assert!(out.dropped.is_empty());
    }

    /// Recovery-gate monotonicity: if a retransmission is allowed at some
    /// RTT, it is allowed at any smaller RTT (same instant).
    #[test]
    fn recovery_gate_is_monotone_in_rtt(
        deadline_ms in 1u64..500,
        now_ms in 0u64..500,
        rtt_ms in 1u64..400,
        smaller in 0u64..400,
    ) {
        let policy = RecoveryPolicy::default();
        let frag = FragmentRecord {
            msg_id: 0,
            frag_index: 0,
            frag_count: 1,
            size: 1000,
            kind: StreamKind::VideoReference,
            class: TrafficClass::BestEffortWithRecovery,
            created: SimTime::ZERO,
            prio_band: 0,
            deadline: Some(SimTime::from_millis(deadline_ms)),
            attempts: 1,
        };
        let now = SimTime::from_millis(now_ms);
        let big = SimDuration::from_millis(rtt_ms);
        let small = SimDuration::from_millis(smaller.min(rtt_ms));
        if policy.should_retransmit(&frag, Some(big), now) {
            prop_assert!(policy.should_retransmit(&frag, Some(small), now));
        }
    }

    /// The gate never fires after the deadline for deadline-gated classes.
    #[test]
    fn recovery_gate_respects_deadlines(
        deadline_ms in 1u64..500,
        late_by in 1u64..500,
        rtt_ms in 1u64..400,
    ) {
        let policy = RecoveryPolicy::default();
        let frag = FragmentRecord {
            msg_id: 0,
            frag_index: 0,
            frag_count: 1,
            size: 1000,
            kind: StreamKind::VideoReference,
            class: TrafficClass::BestEffortWithRecovery,
            created: SimTime::ZERO,
            prio_band: 0,
            deadline: Some(SimTime::from_millis(deadline_ms)),
            attempts: 1,
        };
        let now = SimTime::from_millis(deadline_ms + late_by);
        prop_assert!(!policy.should_retransmit(&frag, Some(SimDuration::from_millis(rtt_ms)), now));
    }

    #[test]
    fn fragment_count_covers_all_bytes(size in 0u32..10_000_000, mtu in 1u32..9000) {
        let m = ArMessage::new(1, StreamKind::VideoInter, size, SimTime::ZERO);
        let frags = m.fragment_count(mtu);
        prop_assert!(frags >= 1);
        prop_assert!(u64::from(frags) * u64::from(mtu) >= u64::from(size));
        if size > 0 {
            prop_assert!(u64::from(frags - 1) * u64::from(mtu) < u64::from(size));
        }
    }
}

mod controller_props {
    use marnet_core::class::StreamKind;
    use marnet_core::congestion::{CongestionConfig, DelayCongestionController};
    use marnet_core::multipath::{MultipathPolicy, MultipathScheduler, PathRole, PathSnapshot};
    use marnet_sim::time::{SimDuration, SimTime};
    use proptest::prelude::*;

    proptest! {
        /// The controller's rate stays within [min_rate, max_rate] under any
        /// feedback sequence.
        #[test]
        fn rate_stays_within_configured_bounds(
            events in prop::collection::vec((1u64..2_000, 0u64..4, 0u64..1_000_000), 1..200),
        ) {
            let cfg = CongestionConfig {
                initial_rate: 100_000.0,
                min_rate: 5_000.0,
                max_rate: 500_000.0,
                ..CongestionConfig::default()
            };
            let mut c = DelayCongestionController::new(cfg);
            let mut now = SimTime::ZERO;
            for (rtt_ms, losses, recv) in events {
                now += SimDuration::from_millis(15);
                let recv_rate = if recv == 0 { None } else { Some(recv as f64) };
                c.on_feedback(SimDuration::from_millis(rtt_ms), losses, recv_rate, now);
                let r = c.rate_bytes_per_sec();
                prop_assert!((5_000.0..=500_000.0).contains(&r), "rate {r}");
            }
            // Estimator sanity after the storm.
            prop_assert!(c.base_rtt().unwrap() <= c.srtt().unwrap() + c.jitter() * 8);
        }

        /// Multipath selection only ever returns up paths, valid indices and
        /// no duplicate picks.
        #[test]
        fn selection_is_always_valid(
            ups in prop::collection::vec(any::<bool>(), 1..5),
            srtts in prop::collection::vec(1u64..200, 1..5),
            policy_idx in 0usize..3,
            dup in any::<bool>(),
            kind_idx in 0usize..6,
        ) {
            let n = ups.len().min(srtts.len());
            let snaps: Vec<PathSnapshot> = (0..n)
                .map(|i| PathSnapshot {
                    role: if i == 0 { PathRole::Wifi } else { PathRole::Cellular },
                    up: ups[i],
                    srtt: Some(SimDuration::from_millis(srtts[i])),
                    rate: 100_000.0 + i as f64,
                })
                .collect();
            let policy = [
                MultipathPolicy::WifiOnly,
                MultipathPolicy::WifiPreferred,
                MultipathPolicy::Aggregate,
            ][policy_idx];
            let kind = marnet_core::class::ALL_STREAM_KINDS[kind_idx];
            let (class, prio) = kind.default_class();
            let mut mp = MultipathScheduler::new(policy, dup);
            let picks = mp.select(&snaps, class, prio, 1_200);
            let mut seen = std::collections::HashSet::new();
            for &p in &picks {
                prop_assert!(p < snaps.len(), "index {p} out of range");
                prop_assert!(snaps[p].up, "selected a down path");
                prop_assert!(seen.insert(p), "duplicate pick {p}");
            }
            prop_assert!(picks.len() <= 2);
            // With every path down, nothing may be picked.
            if snaps.iter().all(|s| !s.up) {
                prop_assert!(picks.is_empty());
            }
            let _ = StreamKind::Metadata;
        }
    }
}
