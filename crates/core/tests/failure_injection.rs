//! Failure-injection tests for the AR protocol: links flapping mid-session,
//! total blackouts, bursty (Gilbert-Elliott) loss, and path death during a
//! fragmented message — the §VI-D handover realities.

use marnet_core::class::StreamKind;
use marnet_core::config::ArConfig;
use marnet_core::endpoint::{
    ArReceiver, ArReceiverStats, ArSender, ArSenderStats, SenderPathConfig, Submit,
};
use marnet_core::message::ArMessage;
use marnet_core::multipath::{MultipathPolicy, PathRole};
use marnet_sim::engine::{Actor, ActorId, Event, SimCtx, Simulator};
use marnet_sim::link::{Bandwidth, LinkId, LinkParams, LossModel};
use marnet_sim::packet::Payload;
use marnet_sim::time::{SimDuration, SimTime};
use marnet_transport::nic::TxPath;
use std::cell::RefCell;
use std::rc::Rc;

struct App {
    sender: ActorId,
    next_id: u64,
}

impl Actor for App {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        if matches!(ev, Event::Start | Event::Timer { .. }) {
            let now = ctx.now();
            let frame = ArMessage::new(self.next_id, StreamKind::VideoReference, 12_000, now)
                .with_deadline(now + SimDuration::from_millis(150));
            let meta = ArMessage::new(self.next_id + 1, StreamKind::Metadata, 100, now);
            self.next_id += 2;
            ctx.send_message(self.sender, Payload::new(Submit(frame)));
            ctx.send_message(self.sender, Payload::new(Submit(meta)));
            ctx.schedule_timer(SimDuration::from_millis(33), 0);
        }
    }
}

/// Toggles a set of links down/up on a fixed schedule.
struct Flapper {
    links: Vec<LinkId>,
    period: SimDuration,
    down_for: SimDuration,
    down: bool,
}

impl Actor for Flapper {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        if matches!(ev, Event::Start) {
            ctx.schedule_timer(self.period, 0);
            return;
        }
        if matches!(ev, Event::Timer { .. }) {
            self.down = !self.down;
            for &l in &self.links {
                ctx.set_link_up(l, !self.down);
            }
            let next = if self.down { self.down_for } else { self.period };
            ctx.schedule_timer(next, 0);
        }
    }
}

struct Built {
    sim: Simulator,
    wifi_links: Vec<LinkId>,
    sstats: Rc<RefCell<ArSenderStats>>,
    rstats: Rc<RefCell<ArReceiverStats>>,
}

fn build(policy: MultipathPolicy, with_lte: bool, loss: LossModel, seed: u64) -> Built {
    let mut sim = Simulator::new(seed);
    let snd = sim.reserve_actor();
    let rcv = sim.reserve_actor();
    let wifi_up = sim.add_link(
        snd,
        rcv,
        LinkParams::new(Bandwidth::from_mbps(20.0), SimDuration::from_millis(8)).with_loss(loss),
    );
    let wifi_down = sim.add_link(
        rcv,
        snd,
        LinkParams::new(Bandwidth::from_mbps(20.0), SimDuration::from_millis(8)),
    );
    let mut paths = vec![SenderPathConfig {
        role: PathRole::Wifi,
        tx: TxPath::Link(wifi_up),
        link: Some(wifi_up),
    }];
    let mut reverse = vec![TxPath::Link(wifi_down)];
    if with_lte {
        let lte_up = sim.add_link(
            snd,
            rcv,
            LinkParams::new(Bandwidth::from_mbps(8.0), SimDuration::from_millis(30)),
        );
        let lte_down = sim.add_link(
            rcv,
            snd,
            LinkParams::new(Bandwidth::from_mbps(8.0), SimDuration::from_millis(30)),
        );
        paths.push(SenderPathConfig {
            role: PathRole::Cellular,
            tx: TxPath::Link(lte_up),
            link: Some(lte_up),
        });
        reverse.push(TxPath::Link(lte_down));
    }
    let cfg = ArConfig { policy, ..ArConfig::default() };
    let sender = ArSender::new(1, cfg.clone(), paths);
    let sstats = sender.stats();
    sim.install_actor(snd, sender);
    let receiver = ArReceiver::new(1, cfg.feedback_interval, reverse);
    let rstats = receiver.stats();
    sim.install_actor(rcv, receiver);
    sim.add_actor(App { sender: snd, next_id: 0 });
    Built { sim, wifi_links: vec![wifi_up, wifi_down], sstats, rstats }
}

#[test]
fn wifi_flaps_with_lte_failover_keep_metadata_flowing() {
    let mut b = build(MultipathPolicy::WifiPreferred, true, LossModel::None, 3);
    let links = b.wifi_links.clone();
    b.sim.add_actor(Flapper {
        links,
        period: SimDuration::from_secs(3),
        down_for: SimDuration::from_secs(2),
        down: false,
    });
    b.sim.run_until(SimTime::from_secs(30));
    let r = b.rstats.borrow();
    let meta = &r.by_kind[&StreamKind::Metadata];
    let offered = 30_000 / 33;
    assert!(
        meta.delivered as f64 > offered as f64 * 0.95,
        "metadata through flaps: {}/{offered}",
        meta.delivered
    );
    // The failover must actually have used LTE.
    assert!(b.sstats.borrow().cellular_bytes > 0);
}

#[test]
fn total_blackout_delays_critical_data_but_loses_none() {
    // Single path, down for a full 5 s window: critical metadata queues
    // (delay-not-drop is not its semantics — Critical/Highest cannot be
    // dropped at all) and is delivered after the blackout.
    let mut b = build(MultipathPolicy::WifiPreferred, false, LossModel::None, 5);
    let links = b.wifi_links.clone();
    struct OneBlackout {
        links: Vec<LinkId>,
        fired: u8,
    }
    impl Actor for OneBlackout {
        fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
            match ev {
                Event::Start => {
                    ctx.schedule_timer(SimDuration::from_secs(5), 0);
                }
                Event::Timer { .. } => {
                    self.fired += 1;
                    let up = self.fired == 2;
                    for &l in &self.links {
                        ctx.set_link_up(l, up);
                    }
                    if self.fired == 1 {
                        ctx.schedule_timer(SimDuration::from_secs(5), 0);
                    }
                }
                _ => {}
            }
        }
    }
    b.sim.add_actor(OneBlackout { links, fired: 0 });
    b.sim.run_until(SimTime::from_secs(40));
    let r = b.rstats.borrow();
    let meta = &r.by_kind[&StreamKind::Metadata];
    let offered = 40_000 / 33;
    assert!(
        meta.delivered as f64 > offered as f64 * 0.93,
        "metadata after blackout: {}/{offered}",
        meta.delivered
    );
    // Some metadata must have seen multi-second latency (queued through the
    // blackout) — proof the data was delayed, not dropped.
    let max_ms = meta.latency_ms.values().iter().cloned().fold(0.0f64, f64::max);
    assert!(max_ms > 2_000.0, "expected blackout-sized latency, max {max_ms} ms");
}

#[test]
fn bursty_loss_is_survivable_for_recovery_class() {
    // Gilbert-Elliott bursts: FEC alone dies inside a burst (whole groups
    // lost) but deadline-gated ARQ at 16 ms RTT refills the holes.
    let ge =
        LossModel::GilbertElliott { p_good_to_bad: 0.02, p_bad_to_good: 0.3, loss_in_bad: 0.6 };
    let mut b = build(MultipathPolicy::WifiPreferred, false, ge, 7);
    b.sim.run_until(SimTime::from_secs(30));
    let r = b.rstats.borrow();
    let refs = &r.by_kind[&StreamKind::VideoReference];
    let offered = 30_000 / 33;
    assert!(
        refs.delivered as f64 > offered as f64 * 0.9,
        "refs through bursts: {}/{offered}",
        refs.delivered
    );
    let s = b.sstats.borrow();
    assert!(s.retransmits > 0, "bursts must force retransmissions");
}

#[test]
fn path_death_mid_message_falls_back_to_the_other_path() {
    // Kill WiFi permanently at 10 s with messages in flight; everything
    // after must flow over LTE; delivery continues.
    let mut b = build(MultipathPolicy::WifiPreferred, true, LossModel::None, 9);
    let links = b.wifi_links.clone();
    struct Kill {
        links: Vec<LinkId>,
    }
    impl Actor for Kill {
        fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
            match ev {
                Event::Start => {
                    ctx.schedule_timer(SimDuration::from_secs(10), 0);
                }
                Event::Timer { .. } => {
                    for &l in &self.links {
                        ctx.set_link_up(l, false);
                    }
                }
                _ => {}
            }
        }
    }
    b.sim.add_actor(Kill { links });
    b.sim.run_until(SimTime::from_secs(25));
    let r = b.rstats.borrow();
    let refs = &r.by_kind[&StreamKind::VideoReference];
    // Frames keep arriving during the LTE-only era.
    let offered = 25_000 / 33;
    assert!(
        refs.delivered as f64 > offered as f64 * 0.9,
        "refs across path death: {}/{offered}",
        refs.delivered
    );
    let s = b.sstats.borrow();
    // Sanity: substantial traffic moved over cellular after the kill.
    assert!(s.cellular_bytes > 1_000_000, "cellular bytes {}", s.cellular_bytes);
}
