//! Targeted tests of ArSender/ArReceiver internals that the scenario tests
//! only exercise implicitly: FEC-only recovery, wire-budget accounting,
//! hole abandonment, and feedback-driven RTT convergence.

use marnet_core::class::StreamKind;
use marnet_core::config::ArConfig;
use marnet_core::congestion::CongestionConfig;
use marnet_core::endpoint::{ArReceiver, ArSender, SenderPathConfig, Submit};
use marnet_core::message::ArMessage;
use marnet_core::multipath::PathRole;
use marnet_core::recovery::RecoveryPolicy;
use marnet_sim::engine::{Actor, ActorId, Event, SimCtx, Simulator};
use marnet_sim::link::{Bandwidth, LinkParams, LossModel};
use marnet_sim::packet::Payload;
use marnet_sim::time::{SimDuration, SimTime};
use marnet_transport::nic::TxPath;

struct RefApp {
    sender: ActorId,
    next_id: u64,
    size: u32,
}

impl Actor for RefApp {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        if matches!(ev, Event::Start | Event::Timer { .. }) {
            let now = ctx.now();
            let m = ArMessage::new(self.next_id, StreamKind::VideoReference, self.size, now)
                .with_deadline(now + SimDuration::from_millis(200));
            self.next_id += 1;
            ctx.send_message(self.sender, Payload::new(Submit(m)));
            ctx.schedule_timer(SimDuration::from_millis(33), 0);
        }
    }
}

struct Harness {
    sstats: std::rc::Rc<std::cell::RefCell<marnet_core::endpoint::ArSenderStats>>,
    rstats: std::rc::Rc<std::cell::RefCell<marnet_core::endpoint::ArReceiverStats>>,
}

fn run(cfg: ArConfig, loss: f64, msg_size: u32, secs: u64, seed: u64) -> Harness {
    let mut sim = Simulator::new(seed);
    let snd = sim.reserve_actor();
    let rcv = sim.reserve_actor();
    let up = sim.add_link(
        snd,
        rcv,
        LinkParams::new(Bandwidth::from_mbps(30.0), SimDuration::from_millis(10))
            .with_loss(LossModel::Bernoulli { p: loss }),
    );
    let down = sim.add_link(
        rcv,
        snd,
        LinkParams::new(Bandwidth::from_mbps(30.0), SimDuration::from_millis(10)),
    );
    let sender = ArSender::new(
        1,
        cfg.clone(),
        vec![SenderPathConfig { role: PathRole::Wifi, tx: TxPath::Link(up), link: Some(up) }],
    );
    let sstats = sender.stats();
    sim.install_actor(snd, sender);
    let receiver = ArReceiver::new(1, cfg.feedback_interval, vec![TxPath::Link(down)]);
    let rstats = receiver.stats();
    sim.install_actor(rcv, receiver);
    sim.add_actor(RefApp { sender: snd, next_id: 0, size: msg_size });
    sim.run_until(SimTime::from_secs(secs));
    Harness { sstats, rstats }
}

#[test]
fn fec_alone_recovers_most_single_losses() {
    // Retransmission disabled: only FEC parity can repair. With k=4 at 3%
    // loss the residual message loss is well under 1 packet in 20.
    let cfg = ArConfig {
        recovery: RecoveryPolicy { enabled: false, ..Default::default() },
        fec_group: Some(4),
        ..ArConfig::default()
    };
    let h = run(cfg, 0.03, 6_000, 30, 3);
    let r = h.rstats.borrow();
    assert!(r.fec_recovered > 5, "FEC must repair losses: {}", r.fec_recovered);
    let refs = &r.by_kind[&StreamKind::VideoReference];
    let offered = 30_000 / 33;
    assert!(
        refs.delivered as f64 > offered as f64 * 0.95,
        "delivered {}/{offered}",
        refs.delivered
    );
    assert_eq!(h.sstats.borrow().retransmits, 0, "ARQ was disabled");
}

#[test]
fn no_fec_no_arq_loses_fragmented_messages() {
    // The control for the test above: nothing repairs losses, so a 5-
    // fragment message dies whenever any fragment dies (~14% at 3%).
    let cfg = ArConfig {
        recovery: RecoveryPolicy { enabled: false, ..Default::default() },
        fec_group: None,
        ..ArConfig::default()
    };
    let h = run(cfg, 0.03, 6_000, 30, 3);
    let r = h.rstats.borrow();
    assert_eq!(r.fec_recovered, 0);
    let refs = &r.by_kind[&StreamKind::VideoReference];
    let offered = 30_000 / 33;
    let ratio = refs.delivered as f64 / offered as f64;
    assert!(
        (0.70..0.95).contains(&ratio),
        "expected ~86% message survival without repair, got {ratio}"
    );
}

#[test]
fn abandoned_holes_are_bounded_and_counted() {
    // Unrepairable losses leave per-path sequence holes; after 8 NACK
    // rounds the receiver must abandon them rather than NACK forever.
    let cfg = ArConfig {
        recovery: RecoveryPolicy { enabled: false, ..Default::default() },
        fec_group: None,
        ..ArConfig::default()
    };
    let h = run(cfg, 0.05, 3_000, 20, 11);
    let r = h.rstats.borrow();
    assert!(r.abandoned_holes > 0, "holes must eventually be abandoned");
}

#[test]
fn wire_overhead_stays_near_the_controller_rate() {
    // Total wire bytes (headers + parity + rtx) must track the allowed
    // rate: the controller rate bounds *wire* load, not just payload.
    let cfg = ArConfig {
        congestion: CongestionConfig {
            initial_rate: 100_000.0,
            max_rate: 100_000.0, // pin the rate: 800 kb/s
            ..CongestionConfig::default()
        },
        ..ArConfig::default()
    };
    // Offer ~1.5 Mb/s into the 800 kb/s allowance.
    let h = run(cfg, 0.0, 6_000, 20, 13);
    let s = h.sstats.borrow();
    let sent: u64 = s.total_sent_bytes();
    let parity_estimate = s.parity_sent * (1_230);
    let wire = sent + parity_estimate;
    let allowed = 100_000.0 * 20.0;
    assert!(
        (wire as f64) < allowed * 1.15,
        "wire bytes {wire} must not exceed the allowance {allowed} by >15%"
    );
}

#[test]
fn srtt_converges_to_path_rtt() {
    let cfg = ArConfig::default();
    let mut sim = Simulator::new(21);
    let snd = sim.reserve_actor();
    let rcv = sim.reserve_actor();
    let up = sim.add_link(
        snd,
        rcv,
        LinkParams::new(Bandwidth::from_mbps(30.0), SimDuration::from_millis(25)),
    );
    let down = sim.add_link(
        rcv,
        snd,
        LinkParams::new(Bandwidth::from_mbps(30.0), SimDuration::from_millis(25)),
    );
    let sender = ArSender::new(
        1,
        cfg.clone(),
        vec![SenderPathConfig { role: PathRole::Wifi, tx: TxPath::Link(up), link: Some(up) }],
    );
    let sstats = sender.stats();
    sim.install_actor(snd, sender);
    let receiver = ArReceiver::new(1, cfg.feedback_interval, vec![TxPath::Link(down)]);
    sim.install_actor(rcv, receiver);
    sim.add_actor(RefApp { sender: snd, next_id: 0, size: 2_000 });
    sim.run_until(SimTime::from_secs(10));
    let s = sstats.borrow();
    let last_srtt = s.srtt_series.points().last().map(|p| p.1).expect("srtt recorded");
    // True RTT = 50 ms propagation + ~1 ms serialization/feedback slop.
    assert!(
        (50.0..54.0).contains(&last_srtt),
        "srtt {last_srtt} must converge near the 50 ms path RTT"
    );
    let base = s.base_rtt_series.points().last().map(|p| p.1).expect("base recorded");
    assert!((50.0..52.0).contains(&base), "base rtt {base}");
}
