//! XOR forward error correction (§VI-C).
//!
//! Recovery through retransmission costs at least one RTT, which the 75 ms
//! budget rarely affords; the paper recommends "introduc\[ing\] some
//! redundancy in the data flow either by performing network coding \[or\]
//! forward error correction". This module implements the classic (k, 1)
//! XOR parity code — one parity block per k data blocks, recovering any
//! single loss per group — on real byte buffers, plus a group tracker the
//! protocol endpoint uses at packet granularity.
//!
//! Overhead is `1/k`; residual loss is the probability of ≥2 losses per
//! group. The E11 experiment sweeps `k` against loss rate and RTT to map
//! the FEC-vs-ARQ frontier.

/// Encoder producing one parity block per `k` data blocks.
///
/// ```
/// use marnet_core::fec::XorEncoder;
/// let mut enc = XorEncoder::new(3);
/// assert!(enc.push(b"abc").is_none());
/// assert!(enc.push(b"de").is_none());
/// let parity = enc.push(b"fghi").expect("third block completes the group");
/// assert_eq!(parity.len(), 4); // longest block in the group
/// ```
#[derive(Debug, Clone)]
pub struct XorEncoder {
    k: usize,
    parity: Vec<u8>,
    in_group: usize,
}

impl XorEncoder {
    /// A (k, 1) encoder.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "group size must be positive");
        // marnet-lint: allow(hot-path-alloc): encoder constructor, once per sender path
        XorEncoder { k, parity: Vec::new(), in_group: 0 }
    }

    /// The group size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Blocks accumulated in the current (incomplete) group.
    pub fn pending(&self) -> usize {
        self.in_group
    }

    /// Adds a data block; returns the parity block when the group completes.
    pub fn push(&mut self, block: &[u8]) -> Option<Vec<u8>> {
        xor_into(&mut self.parity, block);
        self.in_group += 1;
        if self.in_group == self.k {
            self.in_group = 0;
            Some(std::mem::take(&mut self.parity))
        } else {
            None
        }
    }

    /// Abandons the current group (e.g. at a flush boundary), returning the
    /// partial parity if any blocks were pending.
    pub fn flush(&mut self) -> Option<Vec<u8>> {
        if self.in_group == 0 {
            return None;
        }
        self.in_group = 0;
        Some(std::mem::take(&mut self.parity))
    }
}

/// Recovers a single missing block of a group from the survivors + parity.
///
/// `received` holds the `k - 1` surviving data blocks (any order); `parity`
/// is the group's parity block. The missing block is returned trimmed to
/// `missing_len` bytes (block lengths are carried out of band, as a real
/// packetization would in its headers).
///
/// ```
/// use marnet_core::fec::{recover_single, XorEncoder};
/// let mut enc = XorEncoder::new(3);
/// enc.push(b"hello");
/// enc.push(b"world");
/// let parity = enc.push(b"!").unwrap();
/// let lost = recover_single(&[b"hello".as_slice(), b"!".as_slice()], &parity, 5);
/// assert_eq!(lost, b"world");
/// ```
pub fn recover_single(received: &[&[u8]], parity: &[u8], missing_len: usize) -> Vec<u8> {
    // marnet-lint: allow(hot-path-alloc): the copy is the recovered block returned to the caller
    let mut out = parity.to_vec();
    for block in received {
        xor_into(&mut out, block);
    }
    out.truncate(missing_len);
    out.resize(missing_len, 0);
    out
}

/// Number of bytes one unrolled `xor_into` iteration processes: 4 lanes
/// of `u64`.
const XOR_STRIDE: usize = 32;

/// XORs `block` into `acc`, growing `acc` with zeros if it is shorter.
///
/// The main loop works on 4×`u64` lanes per iteration via
/// `from_ne_bytes`/`to_ne_bytes` slice conversion — fully safe, stable
/// Rust that the compiler lowers to wide loads/stores — with a scalar
/// tail for the ragged remainder. Byte order is irrelevant because XOR is
/// bytewise. See `xor_into_scalar` for the reference implementation the
/// unit tests compare against.
pub fn xor_into(acc: &mut Vec<u8>, block: &[u8]) {
    if acc.len() < block.len() {
        acc.resize(block.len(), 0);
    }
    let n = block.len();
    let lanes = n / XOR_STRIDE * XOR_STRIDE;
    for (ac, bc) in
        acc[..lanes].chunks_exact_mut(XOR_STRIDE).zip(block[..lanes].chunks_exact(XOR_STRIDE))
    {
        for lane in 0..XOR_STRIDE / 8 {
            let off = lane * 8;
            let a = u64::from_ne_bytes(ac[off..off + 8].try_into().expect("8-byte lane"));
            let b = u64::from_ne_bytes(bc[off..off + 8].try_into().expect("8-byte lane"));
            ac[off..off + 8].copy_from_slice(&(a ^ b).to_ne_bytes());
        }
    }
    for (a, &b) in acc[lanes..n].iter_mut().zip(&block[lanes..]) {
        *a ^= b;
    }
}

/// The plain bytewise XOR accumulate — reference semantics for
/// [`xor_into`], kept for the correctness tests and the
/// `fec_parity_throughput` benchmark's scalar baseline.
pub fn xor_into_scalar(acc: &mut Vec<u8>, block: &[u8]) {
    if acc.len() < block.len() {
        acc.resize(block.len(), 0);
    }
    for (a, &b) in acc.iter_mut().zip(block) {
        *a ^= b;
    }
}

/// Residual message-loss probability of a (k, 1) XOR group under
/// independent per-packet loss `p`: the chance that two or more of the
/// `k + 1` packets (k data + parity) are lost.
pub fn residual_loss(k: usize, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "loss probability out of range: {p}");
    let n = k as f64 + 1.0;
    let none = (1.0 - p).powf(n);
    let one = n * p * (1.0 - p).powf(n - 1.0);
    (1.0 - none - one).max(0.0)
}

/// Bandwidth overhead of a (k, 1) code: one extra packet per k.
pub fn overhead(k: usize) -> f64 {
    assert!(k > 0, "group size must be positive");
    1.0 / k as f64
}

// ---------------------------------------------------------------------------
// Packet-granularity group tracking for the protocol endpoint
// ---------------------------------------------------------------------------

/// Receiver-side tracker: groups are identified by id; data packets report
/// their own sequence number and group, the parity packet reports the full
/// coverage list. A group with a received parity and exactly one missing
/// data packet is recoverable.
///
/// Group ids are assigned sequentially by the encoder, so the tracker is a
/// direct-mapped table of [`WAYS`] slots indexed by `id % WAYS`: every
/// lookup is one probe, and a group is naturally retired when the group
/// `WAYS` ids later claims its slot — far beyond any plausible reorder
/// window. Retired slots keep their `Vec` capacity, so steady-state
/// tracking allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct FecGroupTracker {
    slots: Vec<Option<(u64, GroupState)>>,
}

/// Direct-mapped table size; bounds memory to this many live groups.
const WAYS: usize = 64;

#[derive(Debug, Clone, Default)]
struct GroupState {
    /// Known only once the parity packet arrives.
    covered: Vec<u64>,
    received: Vec<u64>,
    parity_received: bool,
    recovered: bool,
}

/// Outcome of feeding a packet event to the tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FecOutcome {
    /// Nothing new recoverable.
    Nothing,
    /// The given sequence number was just recovered via parity.
    Recovered(u64),
}

impl FecGroupTracker {
    /// A tracker with no groups.
    pub fn new() -> Self {
        FecGroupTracker::default()
    }

    fn find_or_insert(&mut self, id: u64) -> &mut GroupState {
        if self.slots.is_empty() {
            self.slots.resize(WAYS, None);
        }
        // marnet-lint: allow(panic-path): `% WAYS` indexes a WAYS-long vec
        let slot = &mut self.slots[(id as usize) % WAYS];
        let (gid, g) = slot.get_or_insert_with(|| (id, GroupState::default()));
        if *gid != id {
            // A newer group claims the slot; recycle the buffers.
            *gid = id;
            g.covered.clear();
            g.received.clear();
            g.parity_received = false;
            g.recovered = false;
        }
        g
    }

    fn check(g: &mut GroupState) -> FecOutcome {
        if g.recovered || !g.parity_received || g.covered.is_empty() {
            return FecOutcome::Nothing;
        }
        // Recoverable iff exactly one covered seq is missing; bail as soon
        // as a second gap shows up.
        let mut missing = None;
        for &s in &g.covered {
            if !g.received.contains(&s) {
                if missing.is_some() {
                    return FecOutcome::Nothing;
                }
                missing = Some(s);
            }
        }
        match missing {
            Some(s) => {
                g.recovered = true;
                g.received.push(s);
                FecOutcome::Recovered(s)
            }
            None => FecOutcome::Nothing,
        }
    }

    /// Records that data packet `seq` of group `id` arrived.
    pub fn on_data(&mut self, id: u64, seq: u64) -> FecOutcome {
        let g = self.find_or_insert(id);
        if !g.received.contains(&seq) {
            g.received.push(seq);
        }
        Self::check(g)
    }

    /// Records that the parity packet of group `id` (covering `covered`)
    /// arrived.
    pub fn on_parity(&mut self, id: u64, covered: impl IntoIterator<Item = u64>) -> FecOutcome {
        let g = self.find_or_insert(id);
        g.covered.clear();
        g.covered.extend(covered);
        g.parity_received = true;
        Self::check(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_recovers_any_single_loss() {
        let blocks: Vec<Vec<u8>> = vec![
            b"the quick".to_vec(),
            b"brown fox jumps".to_vec(),
            b"over".to_vec(),
            b"the lazy dog".to_vec(),
        ];
        let mut enc = XorEncoder::new(blocks.len());
        let mut parity = None;
        for b in &blocks {
            parity = enc.push(b);
        }
        let parity = parity.expect("group complete");
        for missing in 0..blocks.len() {
            let survivors: Vec<&[u8]> = blocks
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != missing)
                .map(|(_, b)| b.as_slice())
                .collect();
            let rec = recover_single(&survivors, &parity, blocks[missing].len());
            assert_eq!(rec, blocks[missing], "failed to recover block {missing}");
        }
    }

    #[test]
    fn parity_length_is_longest_block() {
        let mut enc = XorEncoder::new(2);
        enc.push(&[1, 2, 3]);
        let parity = enc.push(&[0xff]).unwrap();
        assert_eq!(parity, vec![1 ^ 0xff, 2, 3]);
    }

    #[test]
    fn flush_emits_partial_group() {
        let mut enc = XorEncoder::new(4);
        assert!(enc.flush().is_none());
        enc.push(b"ab");
        assert_eq!(enc.pending(), 1);
        let p = enc.flush().unwrap();
        assert_eq!(p, b"ab".to_vec());
        assert_eq!(enc.pending(), 0);
    }

    #[test]
    fn unrolled_xor_matches_scalar_on_ragged_lengths() {
        // Deterministic pseudo-random bytes without an RNG dependency.
        let noise = |seed: u64, len: usize| -> Vec<u8> {
            let mut h = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
            (0..len)
                .map(|_| {
                    h ^= h << 13;
                    h ^= h >> 7;
                    h ^= h << 17;
                    h as u8
                })
                .collect()
        };
        for len in 1..=257usize {
            for (acc_len, tag) in [(0usize, "grow"), (len / 2, "partial"), (len + 3, "longer")] {
                let block = noise(len as u64, len);
                let mut fast = noise(acc_len as u64 ^ 0xabcd, acc_len);
                let mut slow = fast.clone();
                xor_into(&mut fast, &block);
                xor_into_scalar(&mut slow, &block);
                assert_eq!(fast, slow, "len {len} acc {acc_len} ({tag})");
            }
        }
    }

    #[test]
    fn residual_loss_math() {
        // k=1 (full duplication), p=0.1: residual = p² = 0.01.
        assert!((residual_loss(1, 0.1) - 0.01).abs() < 1e-12);
        // Larger groups have higher residual loss at the same p.
        assert!(residual_loss(8, 0.1) > residual_loss(2, 0.1));
        assert_eq!(residual_loss(4, 0.0), 0.0);
        // Overhead is the reciprocal of k.
        assert_eq!(overhead(4), 0.25);
        assert_eq!(overhead(1), 1.0);
    }

    #[test]
    fn tracker_recovers_single_gap_when_parity_arrives() {
        let mut t = FecGroupTracker::new();
        let covered = [10, 11, 12];
        assert_eq!(t.on_data(1, 10), FecOutcome::Nothing);
        assert_eq!(t.on_data(1, 12), FecOutcome::Nothing);
        // Packet 11 lost; parity closes the hole.
        assert_eq!(t.on_parity(1, covered.iter().copied()), FecOutcome::Recovered(11));
        // Idempotent: no double recovery.
        assert_eq!(t.on_data(1, 11), FecOutcome::Nothing);
    }

    #[test]
    fn tracker_cannot_recover_two_gaps() {
        let mut t = FecGroupTracker::new();
        let covered = [1, 2, 3, 4];
        t.on_data(7, 1);
        t.on_data(7, 2);
        assert_eq!(t.on_parity(7, covered.iter().copied()), FecOutcome::Nothing);
        // The late arrival of one of the two shrinks the gap to one.
        assert_eq!(t.on_data(7, 3), FecOutcome::Recovered(4));
    }

    #[test]
    fn tracker_parity_first_then_data() {
        let mut t = FecGroupTracker::new();
        let covered = [5, 6];
        assert_eq!(t.on_parity(2, covered.iter().copied()), FecOutcome::Nothing);
        assert_eq!(t.on_data(2, 5), FecOutcome::Recovered(6));
    }

    #[test]
    fn tracker_full_group_needs_no_recovery() {
        let mut t = FecGroupTracker::new();
        let covered = [1, 2];
        t.on_data(1, 1);
        t.on_data(1, 2);
        assert_eq!(t.on_parity(1, covered.iter().copied()), FecOutcome::Nothing);
    }

    #[test]
    #[should_panic]
    fn zero_group_size_panics() {
        let _ = XorEncoder::new(0);
    }
}
