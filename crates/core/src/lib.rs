//! # marnet-core — the AR-oriented transport protocol (the paper's proposal)
//!
//! §VI of *"Future Networking Challenges: The Case of Mobile Augmented
//! Reality"* (ICDCS 2017) lays out design guidelines for a transport
//! protocol built for MAR offloading. This crate is a complete
//! implementation of that protocol over the `marnet-sim` simulator, with all
//! six envisioned properties:
//!
//! 1. **Classful traffic** ([`class`]) — full best effort, best effort with
//!    loss recovery, and critical data, with four priority levels
//!    (droppable/delayable semantics) and sublevels;
//! 2. **Fair but greedy congestion control** ([`congestion`]) — rate-based
//!    control using delay as the primary congestion signal ("a sudden rise
//!    of delay or jitter should be treated as a congestion indication, with
//!    immediate reaction"), with a loss-based fallback for fairness;
//! 3. **Low latency and fault tolerance** ([`recovery`], [`fec`]) —
//!    deadline-gated retransmission (a loss is only worth recovering if the
//!    retransmission can still arrive within the 75 ms budget) and XOR
//!    forward error correction for the recovery class;
//! 4. **Multipath** ([`multipath`]) — WiFi+LTE path management with the
//!    three §VI-D usage policies, lowest-RTT scheduling for latency-bound
//!    classes and duplication for the recovery class;
//! 5. **Distributed** — the per-path `remote` attribute lets different
//!    paths terminate at different servers (exercised by `marnet-edge`);
//! 6. **Graceful degradation** ([`degradation`]) — instead of a congestion
//!    window, the sender sheds traffic by priority and signals QoS to the
//!    application so it can lower video quality rather than stall (Fig. 4).
//!
//! The protocol endpoints ([`endpoint::ArSender`], [`endpoint::ArReceiver`])
//! are simulator actors; applications submit [`message::ArMessage`]s and
//! receive [`degradation::QosSignal`]s back.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod class;
pub mod config;
pub mod congestion;
pub mod degradation;
pub mod endpoint;
pub mod fec;
pub mod message;
pub mod multipath;
pub mod policy;
pub mod recovery;
pub mod wire;

pub use class::{Priority, StreamKind, TrafficClass};
pub use config::{ArConfig, OutageConfig};
pub use endpoint::{ArReceiver, ArSender, Delivered, Submit};
pub use message::ArMessage;
pub use policy::{ArqMode, PolicyParams};
