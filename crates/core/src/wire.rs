//! On-the-wire structures of the AR protocol.
//!
//! The protocol is datagram-based ("the actual implementation of this
//! protocol may be done on top of UDP at the application level", §VI-H):
//! data packets carry fragment descriptors and timestamps; feedback packets
//! carry per-path cumulative acknowledgements, NACK lists, loss counts and
//! timestamp echoes.

use crate::class::{StreamKind, TrafficClass};
use marnet_sim::time::SimTime;

/// Protocol header overhead per packet, in bytes (UDP/IP + AR header).
pub const AR_HEADER_BYTES: u32 = 30;

/// Identity of one fragment, as carried in FEC parity headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FragmentId {
    /// Per-path sequence number the fragment was sent with.
    pub seq: u64,
    /// Message it belongs to.
    pub msg_id: u64,
    /// Index within the message.
    pub frag_index: u32,
}

/// FEC grouping information attached to recovery-class packets.
#[derive(Debug, Clone, PartialEq)]
pub struct FecInfo {
    /// Group identifier (per path).
    pub group: u64,
    /// The fragments the group covers. Only parity packets carry the list;
    /// data packets leave it empty (they identify themselves by `seq` and
    /// carry just the group id, so the send path never allocates).
    pub covered: Vec<FragmentId>,
    /// `true` for the parity packet of the group.
    pub is_parity: bool,
}

/// A data packet.
#[derive(Debug, Clone)]
pub struct ArPacket {
    /// Connection identifier.
    pub conn: u64,
    /// Session epoch the sender believes the receiver is in (incarnation
    /// number). The receiver discards packets from a dead epoch — without
    /// this, old-session packets still in flight after an edge restart
    /// would poison the fresh sequence space.
    pub epoch: u32,
    /// Index of the path this packet was sent on.
    pub path: usize,
    /// Per-path sequence number (gaps ⇒ loss detection).
    pub seq: u64,
    /// Message this fragment belongs to (unused for parity packets).
    pub msg_id: u64,
    /// Fragment index within the message.
    pub frag_index: u32,
    /// Total fragments of the message.
    pub frag_count: u32,
    /// Total payload size of the message in bytes.
    pub msg_size: u32,
    /// Sub-stream of the carried message.
    pub kind: StreamKind,
    /// Traffic class.
    pub class: TrafficClass,
    /// When the application created the message (end-to-end latency).
    pub created: SimTime,
    /// Application-level reference instant carried end to end, if any.
    pub origin: Option<SimTime>,
    /// Message deadline, if any.
    pub deadline: Option<SimTime>,
    /// Transmission timestamp (echoed by feedback for RTT).
    pub ts: SimTime,
    /// FEC grouping, if the packet participates in FEC.
    pub fec: Option<FecInfo>,
    /// `true` if this is a retransmission.
    pub is_retransmit: bool,
}

/// A feedback packet (receiver → sender), one per path per interval.
#[derive(Debug, Clone)]
pub struct ArFeedback {
    /// Connection identifier.
    pub conn: u64,
    /// Receiver session epoch. Bumped when the receiver re-establishes its
    /// session after an edge crash; a sender seeing a new epoch knows the
    /// peer's receive state is gone and must re-sync (drop retransmit
    /// state, restart sequence spaces).
    pub epoch: u32,
    /// Path this feedback describes.
    pub path: usize,
    /// Highest sequence received in order on the path.
    pub cum_seq: Option<u64>,
    /// Missing sequences above `cum_seq` (bounded list).
    pub nacks: Vec<u64>,
    /// Losses newly detected since the previous feedback.
    pub new_losses: u64,
    /// Timestamp of the most recent data packet (RTT echo).
    pub ts_echo: Option<SimTime>,
    /// How long the echoed timestamp was held at the receiver before this
    /// feedback was emitted (RTCP DLSR-style); the sender subtracts it so
    /// feedback scheduling does not inflate RTT samples.
    pub echo_delay: marnet_sim::time::SimDuration,
    /// Delivery rate the receiver measured since its previous feedback,
    /// in bytes per second (`None` before the first interval completes).
    pub recv_rate: Option<f64>,
}

/// Wire size of a feedback packet.
pub fn feedback_size(nacks: usize) -> u32 {
    AR_HEADER_BYTES + 16 + 8 * nacks as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feedback_size_grows_with_nacks() {
        assert_eq!(feedback_size(0), 46);
        assert_eq!(feedback_size(4), 46 + 32);
    }

    #[test]
    fn structures_are_cloneable_payloads() {
        // The simulator requires payloads to be Clone + Debug + 'static.
        let pkt = ArPacket {
            conn: 1,
            epoch: 0,
            path: 0,
            seq: 9,
            msg_id: 4,
            frag_index: 0,
            frag_count: 1,
            msg_size: 100,
            kind: StreamKind::Sensor,
            class: TrafficClass::FullBestEffort,
            created: SimTime::ZERO,
            origin: None,
            deadline: None,
            ts: SimTime::ZERO,
            fec: Some(FecInfo {
                group: 2,
                covered: vec![FragmentId { seq: 9, msg_id: 4, frag_index: 0 }],
                is_parity: false,
            }),
            is_retransmit: false,
        };
        let p = marnet_sim::packet::Payload::new(pkt);
        let q = p.clone();
        assert_eq!(q.downcast_ref::<ArPacket>().unwrap().seq, 9);
    }
}
