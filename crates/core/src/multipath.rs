//! Multipath scheduling (§VI-D).
//!
//! "An AR protocol should provide the possibility to exploit multiple paths
//! simultaneously": aggregate WiFi + LTE for bandwidth, put latency-bound
//! data on the lowest-RTT path, duplicate recovery-class data across paths
//! instead of paying for retransmission, and smooth WiFi handover gaps with
//! cellular. The paper names three user-facing policies driven by LTE cost:
//!
//! 1. *WiFi all the time, 4G for handover* — [`MultipathPolicy::WifiOnly`];
//! 2. *WiFi most of the time, 4G for handover and when WiFi is unavailable*
//!    — [`MultipathPolicy::WifiPreferred`];
//! 3. *WiFi and 4G simultaneously* — [`MultipathPolicy::Aggregate`].

use crate::class::{Priority, TrafficClass};
use marnet_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// What kind of network a path crosses (drives policy and cost accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PathRole {
    /// A WiFi access path (free, intermittent).
    Wifi,
    /// A cellular path (metered, near-ubiquitous).
    Cellular,
    /// A device-to-device path (free, short range).
    DeviceToDevice,
    /// A wired/reference path.
    Wired,
}

/// The §VI-D usage policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MultipathPolicy {
    /// WiFi carries everything; cellular is touched only by data that must
    /// not stall (Critical class / Highest priority) while WiFi is down.
    WifiOnly,
    /// WiFi preferred; everything fails over to cellular when WiFi is down.
    WifiPreferred,
    /// Use all paths at once: latency-bound data on the lowest-RTT path,
    /// bulk data spread proportionally to path rate.
    Aggregate,
}

/// A scheduler-visible summary of one path's state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathSnapshot {
    /// The path's network kind.
    pub role: PathRole,
    /// Whether the path is currently usable.
    pub up: bool,
    /// Smoothed RTT, if feedback has arrived.
    pub srtt: Option<SimDuration>,
    /// Estimated available rate in bytes/s (from the path's controller).
    pub rate: f64,
}

/// The path indices chosen for one packet, primary first.
///
/// A small inline array instead of a `Vec<usize>`: `select` runs once per
/// fragment on the pacing hot path, and a selection never names more than
/// [`Picks::MAX`] paths, so the result is `Copy` and allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Picks {
    idx: [usize; Picks::MAX],
    len: u8,
}

impl Picks {
    /// The most paths one packet can be sent on (primary + duplicates).
    pub const MAX: usize = 4;

    /// An empty selection (no policy-compatible path is up).
    pub fn new() -> Self {
        Picks::default()
    }

    /// Appends a path index. Panics if already at [`Picks::MAX`].
    pub fn push(&mut self, path: usize) {
        assert!((self.len as usize) < Picks::MAX, "more than {} picks", Picks::MAX);
        self.idx[self.len as usize] = path;
        self.len += 1;
    }

    /// Number of selected paths.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` when no path was selected.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The selected indices as a slice, primary first.
    pub fn as_slice(&self) -> &[usize] {
        &self.idx[..self.len as usize]
    }

    /// Iterates over the selected indices by value.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.as_slice().iter().copied()
    }
}

impl std::ops::Index<usize> for Picks {
    type Output = usize;
    fn index(&self, i: usize) -> &usize {
        &self.as_slice()[i]
    }
}

impl PartialEq<Vec<usize>> for Picks {
    fn eq(&self, other: &Vec<usize>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<'a> IntoIterator for &'a Picks {
    type Item = &'a usize;
    type IntoIter = std::slice::Iter<'a, usize>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Picks transmission paths for each packet.
#[derive(Debug, Clone)]
pub struct MultipathScheduler {
    policy: MultipathPolicy,
    /// Duplicate recovery-class packets on a second path when available
    /// ("data packets belonging to a traffic class with loss recovery could
    /// also be sent on both links in order to prevent a costly recovery").
    duplicate_recovery: bool,
    /// Deficit counters for rate-proportional spreading in Aggregate mode.
    deficits: Vec<f64>,
}

impl MultipathScheduler {
    /// Creates a scheduler with the given policy.
    pub fn new(policy: MultipathPolicy, duplicate_recovery: bool) -> Self {
        // marnet-lint: allow(hot-path-alloc): construction-time; `Vec::new` does not allocate
        MultipathScheduler { policy, duplicate_recovery, deficits: Vec::new() }
    }

    /// The configured policy.
    pub fn policy(&self) -> MultipathPolicy {
        self.policy
    }

    fn wifi(snaps: &[PathSnapshot]) -> Option<usize> {
        snaps.iter().position(|s| s.role == PathRole::Wifi)
    }

    fn cellular(snaps: &[PathSnapshot]) -> Option<usize> {
        snaps.iter().position(|s| s.role == PathRole::Cellular)
    }

    fn lowest_rtt_up(snaps: &[PathSnapshot]) -> Option<usize> {
        snaps
            .iter()
            .enumerate()
            .filter(|(_, s)| s.up)
            .min_by_key(|(_, s)| s.srtt.unwrap_or(SimDuration::MAX))
            .map(|(i, _)| i)
    }

    fn weighted_pick(&mut self, snaps: &[PathSnapshot], size: u32) -> Option<usize> {
        if self.deficits.len() != snaps.len() {
            // marnet-lint: allow(hot-path-alloc): reallocated only when the path set changes size
            self.deficits = vec![0.0; snaps.len()];
        }
        // Deficit round robin weighted by rate: add rate-proportional
        // credit, pick the up path with the largest credit.
        let total_rate: f64 = snaps.iter().filter(|s| s.up).map(|s| s.rate.max(1.0)).sum();
        if total_rate <= 0.0 {
            return None;
        }
        for (i, s) in snaps.iter().enumerate() {
            if s.up {
                // marnet-lint: allow(panic-path): `deficits` resized to `snaps.len()` above
                self.deficits[i] += s.rate.max(1.0) / total_rate * f64::from(size);
            }
        }
        let best = snaps
            .iter()
            .enumerate()
            .filter(|(_, s)| s.up)
            // marnet-lint: allow(panic-path): `deficits` resized to `snaps.len()` above
            .max_by(|(i, _), (j, _)| self.deficits[*i].total_cmp(&self.deficits[*j]))
            .map(|(i, _)| i)?;
        // marnet-lint: allow(panic-path): `best` enumerated from `snaps`
        self.deficits[best] -= f64::from(size);
        Some(best)
    }

    /// Chooses the path(s) for a packet of `size` bytes with the given
    /// class/priority. Returns an empty selection when no policy-compatible
    /// path is up (the packet should stay queued).
    ///
    /// The first returned index is the primary; any further are duplicates.
    pub fn select(
        &mut self,
        snaps: &[PathSnapshot],
        class: TrafficClass,
        priority: Priority,
        size: u32,
    ) -> Picks {
        if snaps.is_empty() {
            return Picks::new();
        }
        let wifi = Self::wifi(snaps);
        let cell = Self::cellular(snaps);
        // marnet-lint: allow(panic-path): `wifi` is a position into `snaps`
        let wifi_up = wifi.is_some_and(|i| snaps[i].up);

        let primary = match self.policy {
            MultipathPolicy::WifiOnly => {
                if wifi_up {
                    wifi
                } else if class == TrafficClass::Critical || priority == Priority::Highest {
                    // marnet-lint: allow(panic-path): `cell` is a position into `snaps`
                    cell.filter(|&i| snaps[i].up)
                } else {
                    None
                }
            }
            MultipathPolicy::WifiPreferred => {
                if wifi_up {
                    wifi
                } else {
                    // marnet-lint: allow(panic-path): `cell` is a position into `snaps`
                    cell.filter(|&i| snaps[i].up).or_else(|| Self::lowest_rtt_up(snaps))
                }
            }
            MultipathPolicy::Aggregate => {
                let latency_bound = priority.band() == 0 || class == TrafficClass::Critical;
                if latency_bound {
                    Self::lowest_rtt_up(snaps)
                } else {
                    self.weighted_pick(snaps, size)
                }
            }
        };

        let Some(primary) = primary else {
            return Picks::new();
        };
        let mut out = Picks::new();
        out.push(primary);
        if self.duplicate_recovery && class == TrafficClass::BestEffortWithRecovery {
            // Duplicate on the best other up path (Aggregate and
            // WifiPreferred only — WifiOnly is explicitly LTE-frugal).
            if self.policy != MultipathPolicy::WifiOnly {
                let dup = snaps
                    .iter()
                    .enumerate()
                    .filter(|(i, s)| *i != primary && s.up)
                    .min_by_key(|(_, s)| s.srtt.unwrap_or(SimDuration::MAX))
                    .map(|(i, _)| i);
                if let Some(d) = dup {
                    out.push(d);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::StreamKind;

    fn snap(role: PathRole, up: bool, srtt_ms: u64, rate: f64) -> PathSnapshot {
        PathSnapshot { role, up, srtt: Some(SimDuration::from_millis(srtt_ms)), rate }
    }

    fn wifi_lte(wifi_up: bool) -> Vec<PathSnapshot> {
        vec![
            snap(PathRole::Wifi, wifi_up, 10, 500_000.0),
            snap(PathRole::Cellular, true, 40, 250_000.0),
        ]
    }

    #[test]
    fn wifi_only_uses_wifi_when_up() {
        let mut s = MultipathScheduler::new(MultipathPolicy::WifiOnly, false);
        let (class, prio) = StreamKind::VideoInter.default_class();
        assert_eq!(s.select(&wifi_lte(true), class, prio, 1000), vec![0]);
    }

    #[test]
    fn wifi_only_sends_only_critical_over_lte_during_gap() {
        let mut s = MultipathScheduler::new(MultipathPolicy::WifiOnly, false);
        let snaps = wifi_lte(false);
        let (vc, vp) = StreamKind::VideoInter.default_class();
        assert!(s.select(&snaps, vc, vp, 1000).is_empty(), "video must wait out the gap");
        let (mc, mp) = StreamKind::Metadata.default_class();
        assert_eq!(s.select(&snaps, mc, mp, 100), vec![1], "metadata hops to LTE");
    }

    #[test]
    fn wifi_preferred_fails_everything_over() {
        let mut s = MultipathScheduler::new(MultipathPolicy::WifiPreferred, false);
        let (vc, vp) = StreamKind::VideoInter.default_class();
        assert_eq!(s.select(&wifi_lte(true), vc, vp, 1000), vec![0]);
        assert_eq!(s.select(&wifi_lte(false), vc, vp, 1000), vec![1]);
    }

    #[test]
    fn aggregate_puts_latency_data_on_lowest_rtt() {
        let mut s = MultipathScheduler::new(MultipathPolicy::Aggregate, false);
        let (mc, mp) = StreamKind::Metadata.default_class();
        // WiFi has the lower RTT here.
        assert_eq!(s.select(&wifi_lte(true), mc, mp, 100), vec![0]);
        // Flip RTTs: cellular becomes the latency path.
        let snaps = vec![
            snap(PathRole::Wifi, true, 80, 500_000.0),
            snap(PathRole::Cellular, true, 15, 250_000.0),
        ];
        assert_eq!(s.select(&snaps, mc, mp, 100), vec![1]);
    }

    #[test]
    fn aggregate_spreads_bulk_by_rate() {
        let mut s = MultipathScheduler::new(MultipathPolicy::Aggregate, false);
        let snaps = vec![
            snap(PathRole::Wifi, true, 10, 750_000.0),
            snap(PathRole::Cellular, true, 40, 250_000.0),
        ];
        let (bc, bp) = StreamKind::Bulk.default_class();
        let mut counts = [0usize; 2];
        for _ in 0..1000 {
            let picked = s.select(&snaps, bc, bp, 1000);
            counts[picked[0]] += 1;
        }
        let frac = counts[0] as f64 / 1000.0;
        assert!((frac - 0.75).abs() < 0.05, "wifi share {frac}, want ~0.75");
    }

    #[test]
    fn duplication_adds_a_second_path_for_recovery_class() {
        let mut s = MultipathScheduler::new(MultipathPolicy::Aggregate, true);
        let (rc, rp) = StreamKind::VideoReference.default_class();
        let picked = s.select(&wifi_lte(true), rc, rp, 1000);
        assert_eq!(picked.len(), 2);
        assert_ne!(picked[0], picked[1]);
        // Best-effort data is never duplicated.
        let (vc, vp) = StreamKind::VideoInter.default_class();
        assert_eq!(s.select(&wifi_lte(true), vc, vp, 1000).len(), 1);
    }

    #[test]
    fn no_duplication_with_single_up_path() {
        let mut s = MultipathScheduler::new(MultipathPolicy::WifiPreferred, true);
        let (rc, rp) = StreamKind::VideoReference.default_class();
        let picked = s.select(&wifi_lte(false), rc, rp, 1000);
        assert_eq!(picked, vec![1]);
    }

    #[test]
    fn empty_paths_select_nothing() {
        let mut s = MultipathScheduler::new(MultipathPolicy::Aggregate, true);
        let (mc, mp) = StreamKind::Metadata.default_class();
        assert!(s.select(&[], mc, mp, 100).is_empty());
    }

    #[test]
    fn all_paths_down_selects_nothing() {
        let mut s = MultipathScheduler::new(MultipathPolicy::Aggregate, false);
        let snaps =
            vec![snap(PathRole::Wifi, false, 10, 1.0), snap(PathRole::Cellular, false, 40, 1.0)];
        let (mc, mp) = StreamKind::Metadata.default_class();
        assert!(s.select(&snaps, mc, mp, 100).is_empty());
        let (bc, bp) = StreamKind::Bulk.default_class();
        assert!(s.select(&snaps, bc, bp, 100).is_empty());
    }
}
