//! Graceful degradation instead of a congestion window (§VI-B, Fig. 4).
//!
//! TCP reacts to congestion by shrinking its window — it sends *the same
//! data, later*. A MAR flow cannot: frames are only useful on time. The
//! paper's answer is a scheduler that, given the rate the congestion
//! controller allows, decides *which* data to send, *which* to delay (data
//! that may be delayed but not discarded) and *which* to discard (data that
//! may be discarded but not delayed), strictly by priority — while telling
//! the application to reduce its offered load (lower video quality, fewer
//! sensor samples) so the user experiences degraded but uninterrupted
//! service.

use crate::class::Priority;
use crate::message::ArMessage;
use marnet_sim::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, VecDeque};

/// Why the scheduler discarded a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Its deadline passed while it waited.
    Late,
    /// The backlog exceeded what the allowed rate can clear; lowest
    /// priorities are shed first.
    Congestion,
}

/// A discarded message and the reason.
#[derive(Debug, Clone)]
pub struct DroppedMessage {
    /// The message that was shed.
    pub message: ArMessage,
    /// Why.
    pub reason: DropReason,
}

/// What one scheduler tick produced.
#[derive(Debug, Default)]
pub struct TickOutcome {
    /// Messages to transmit now, in priority order.
    pub sent: Vec<ArMessage>,
    /// Messages shed this tick.
    pub dropped: Vec<DroppedMessage>,
}

/// QoS feedback the protocol surfaces to the application (§VI-B: "the
/// protocol can provide QoS information to the application. In case of
/// congestion, the application can lower the video quality, the number of
/// samples, etc.").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QosSignal {
    /// Headroom available; the application may raise quality.
    Headroom {
        /// Current allowed rate, bytes/s.
        rate: f64,
    },
    /// The allowed rate no longer fits the offered load; the application
    /// should reduce quality. `severity` 1 = shed lowest priority only,
    /// larger = deeper cuts are happening.
    Degrade {
        /// Current allowed rate, bytes/s.
        rate: f64,
        /// How deep the shedding reached (1 = Lowest, 2 = DropNotDelay, …).
        severity: u8,
        /// Bytes shed since the last signal.
        dropped_bytes: u64,
    },
}

/// Priority-ordered send queues with budget-based draining.
#[derive(Debug)]
pub struct DegradationScheduler {
    queues: BTreeMap<u8, VecDeque<ArMessage>>,
    /// Unused budget carried between ticks (positive, capped at one tick's
    /// budget) or debt from overshooting (negative).
    credit: f64,
    /// Backlog horizon: droppable data older than this is shed even without
    /// a deadline.
    stale_after: SimDuration,
    /// Maximum backlog (in ticks of budget) tolerated in droppable queues
    /// before congestion shedding starts.
    backlog_ticks: f64,
    queued_bytes: u64,
    /// Outage mode (§VI-B applied to faults): while the watchdog reports
    /// the peer unreachable, only the *freshest* droppable message of each
    /// stream kind is retained — older ones are shed as they are superseded.
    /// AR frames are only useful on time, so banking an outage-long backlog
    /// would deliver stale video in a burst on recovery; shedding everything
    /// would instead waste the newest frame, which is exactly the one worth
    /// sending the instant the path returns. Delayable and critical traffic
    /// still queues in full.
    outage: bool,
}

impl DegradationScheduler {
    /// Creates a scheduler. `stale_after` bounds the age of droppable data;
    /// `backlog_ticks` sets how many ticks of budget may sit queued before
    /// congestion shedding.
    pub fn new(stale_after: SimDuration, backlog_ticks: f64) -> Self {
        assert!(backlog_ticks > 0.0, "backlog horizon must be positive");
        DegradationScheduler {
            queues: BTreeMap::new(),
            credit: 0.0,
            stale_after,
            backlog_ticks,
            queued_bytes: 0,
            outage: false,
        }
    }

    /// Enters or leaves outage mode. While on, each tick retains only the
    /// newest droppable message per stream kind and sheds the superseded
    /// rest (the application keeps getting `Degrade` signals);
    /// delayable/critical data still waits for recovery.
    pub fn set_outage(&mut self, on: bool) {
        self.outage = on;
    }

    /// Whether the scheduler is in outage mode.
    pub fn outage(&self) -> bool {
        self.outage
    }

    /// Bytes currently queued across all priorities.
    pub fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// Messages currently queued.
    pub fn queued_messages(&self) -> usize {
        self.queues.values().map(|q| q.len()).sum()
    }

    /// Accepts a message from the application.
    pub fn submit(&mut self, msg: ArMessage) {
        self.queued_bytes += u64::from(msg.size);
        self.queues.entry(msg.priority.rank()).or_default().push_back(msg);
    }

    /// Runs one pacing tick with `budget_bytes` of allowance, at time `now`.
    pub fn tick(&mut self, now: SimTime, budget_bytes: f64) -> TickOutcome {
        let mut out = TickOutcome::default();
        self.tick_into(now, budget_bytes, &mut out);
        out
    }

    /// [`DegradationScheduler::tick`] into a caller-owned outcome so the
    /// hot pacing loop can reuse the `sent`/`dropped` buffers tick after
    /// tick instead of allocating fresh `Vec`s. `out` is cleared first.
    pub fn tick_into(&mut self, now: SimTime, budget_bytes: f64, out: &mut TickOutcome) {
        out.sent.clear();
        out.dropped.clear();

        // 1a. Outage retention: while the peer is unreachable, keep only
        // the freshest droppable message of each stream kind — superseded
        // frames would arrive stale on recovery, but the newest one is
        // worth sending the instant the path returns.
        if self.outage {
            for q in self.queues.values_mut() {
                if q.iter().filter(|m| m.priority.can_drop()).count() < 2 {
                    continue;
                }
                // Walk back-to-front: submissions are chronological, so the
                // first droppable of a kind seen from the back is the newest.
                // marnet-lint: allow(hot-path-alloc): outage-only branch, off the per-event path
                let mut seen: Vec<crate::class::StreamKind> = Vec::new();
                let mut kept = VecDeque::with_capacity(q.len());
                let mut removed = 0u64;
                while let Some(m) = q.pop_back() {
                    if m.priority.can_drop() {
                        if seen.contains(&m.kind) {
                            removed += u64::from(m.size);
                            out.dropped
                                .push(DroppedMessage { message: m, reason: DropReason::Late });
                            continue;
                        }
                        seen.push(m.kind);
                    }
                    kept.push_front(m);
                }
                *q = kept;
                self.queued_bytes -= removed;
            }
        }

        // 1. Shed late droppable messages everywhere. Most ticks shed
        // nothing, so scan first and rebuild the queue only when a stale
        // message is actually present.
        let stale_after = self.stale_after;
        let is_stale = |m: &ArMessage| {
            m.priority.can_drop()
                && (m.is_late(now) || now.saturating_since(m.created) > stale_after)
        };
        for q in self.queues.values_mut() {
            if !q.iter().any(is_stale) {
                continue;
            }
            let mut kept = VecDeque::with_capacity(q.len());
            let mut removed = 0u64;
            while let Some(m) = q.pop_front() {
                if is_stale(&m) {
                    removed += u64::from(m.size);
                    out.dropped.push(DroppedMessage { message: m, reason: DropReason::Late });
                } else {
                    kept.push_back(m);
                }
            }
            *q = kept;
            self.queued_bytes -= removed;
        }

        // 2. Drain by priority within budget (+ carried credit).
        let mut budget = budget_bytes + self.credit;
        for q in self.queues.values_mut() {
            while budget > 0.0 {
                match q.pop_front() {
                    Some(m) => {
                        budget -= f64::from(m.size);
                        self.queued_bytes -= u64::from(m.size);
                        out.sent.push(m);
                    }
                    None => break,
                }
            }
            if budget <= 0.0 {
                break;
            }
        }
        // Bank at most one tick of positive credit; debt carries in full.
        self.credit = budget.min(budget_bytes);

        // 3. Congestion shedding: if droppable backlog exceeds the horizon,
        // discard from the least important rank upward. Skipped during an
        // outage: the budget is zero (or meaningless) while the peer is
        // unreachable, and retention already caps the droppable backlog at
        // one message per kind — shedding those would throw away exactly
        // the frames worth sending the instant the path returns.
        if self.outage {
            return;
        }
        let max_backlog = budget_bytes * self.backlog_ticks;
        let mut droppable_backlog: f64 = self
            .queues
            .values()
            .flat_map(|q| q.iter())
            .filter(|m| m.priority.can_drop())
            .map(|m| f64::from(m.size))
            .sum();
        if droppable_backlog > max_backlog {
            for q in self.queues.values_mut().rev() {
                // Shed from the front: old frames are the stale ones.
                let mut removed_bytes = 0u64;
                while droppable_backlog > max_backlog {
                    let droppable_at = q.iter().position(|m| m.priority.can_drop());
                    match droppable_at {
                        Some(i) => {
                            let Some(m) = q.remove(i) else { break };
                            droppable_backlog -= f64::from(m.size);
                            removed_bytes += u64::from(m.size);
                            out.dropped.push(DroppedMessage {
                                message: m,
                                reason: DropReason::Congestion,
                            });
                        }
                        None => break,
                    }
                }
                self.queued_bytes -= removed_bytes;
                if droppable_backlog <= max_backlog {
                    break;
                }
            }
        }
    }

    /// Deepest priority level that was shed in `dropped` (for QoS severity):
    /// 0 = nothing, 1 = Lowest, 2 = DropNotDelay.
    pub fn shed_severity(dropped: &[DroppedMessage]) -> u8 {
        let mut severity = 0;
        for d in dropped {
            let s = match d.message.priority {
                Priority::Lowest(_) => 1,
                Priority::DropNotDelay(_) => 2,
                _ => 0,
            };
            severity = severity.max(s);
        }
        severity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::StreamKind;

    fn msg(id: u64, kind: StreamKind, size: u32, created_ms: u64) -> ArMessage {
        ArMessage::new(id, kind, size, SimTime::from_millis(created_ms))
    }

    fn sched() -> DegradationScheduler {
        DegradationScheduler::new(SimDuration::from_millis(100), 4.0)
    }

    #[test]
    fn drains_in_priority_order() {
        let mut s = sched();
        s.submit(msg(1, StreamKind::VideoInter, 100, 0)); // Lowest
        s.submit(msg(2, StreamKind::Metadata, 100, 0)); // Highest
        s.submit(msg(3, StreamKind::Sensor, 100, 0)); // DelayNotDrop
        let out = s.tick(SimTime::from_millis(1), 1000.0);
        let ids: Vec<u64> = out.sent.iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![2, 3, 1]);
        assert!(out.dropped.is_empty());
        assert_eq!(s.queued_bytes(), 0);
    }

    #[test]
    fn budget_limits_what_is_sent_and_rest_waits() {
        let mut s = sched();
        for i in 0..10 {
            s.submit(msg(i, StreamKind::Metadata, 500, 0));
        }
        let out = s.tick(SimTime::from_millis(1), 1000.0);
        // 1000 budget: two full messages fit, a third starts on credit.
        assert!(out.sent.len() >= 2 && out.sent.len() <= 3, "{}", out.sent.len());
        assert!(out.dropped.is_empty(), "critical data must never be shed");
        assert!(s.queued_messages() >= 7);
    }

    #[test]
    fn credit_debt_carries_across_ticks() {
        let mut s = sched();
        s.submit(msg(1, StreamKind::Metadata, 5_000, 0));
        // One huge message on a small budget: sent immediately (work
        // conserving) but subsequent ticks pay the debt.
        let out = s.tick(SimTime::from_millis(1), 1000.0);
        assert_eq!(out.sent.len(), 1);
        s.submit(msg(2, StreamKind::Metadata, 500, 0));
        let out2 = s.tick(SimTime::from_millis(6), 1000.0);
        assert!(out2.sent.is_empty(), "debt must gate the next tick");
        let out3 = s.tick(SimTime::from_millis(11), 1000.0);
        let out4 = s.tick(SimTime::from_millis(16), 1000.0);
        let out5 = s.tick(SimTime::from_millis(21), 1000.0);
        // Debt: -4000 after tick 1, repaid at 1000/tick across ticks 2-5.
        let repaying: usize = [&out2, &out3, &out4, &out5].iter().map(|o| o.sent.len()).sum();
        assert_eq!(repaying, 0, "nothing may flow while the debt is outstanding");
        let out6 = s.tick(SimTime::from_millis(26), 1000.0);
        assert_eq!(out6.sent.len(), 1, "message 2 flows once the debt is repaid");
    }

    #[test]
    fn late_droppable_messages_are_shed() {
        let mut s = sched();
        s.submit(msg(1, StreamKind::VideoInter, 100, 0).with_deadline(SimTime::from_millis(30)));
        s.submit(msg(2, StreamKind::Metadata, 100, 0).with_deadline(SimTime::from_millis(30)));
        let out = s.tick(SimTime::from_millis(50), 1000.0);
        // The interframe is late → shed; metadata cannot be dropped → sent.
        assert_eq!(out.dropped.len(), 1);
        assert_eq!(out.dropped[0].message.id, 1);
        assert_eq!(out.dropped[0].reason, DropReason::Late);
        assert_eq!(out.sent.len(), 1);
        assert_eq!(out.sent[0].id, 2);
    }

    #[test]
    fn stale_droppable_messages_are_shed_without_deadline() {
        let mut s = sched();
        s.submit(msg(1, StreamKind::VideoInter, 100, 0));
        // 200 ms later (> 100 ms stale_after) with zero budget.
        let out = s.tick(SimTime::from_millis(200), 0.0);
        assert_eq!(out.dropped.len(), 1);
        assert_eq!(out.dropped[0].reason, DropReason::Late);
    }

    #[test]
    fn delayable_messages_are_never_shed() {
        let mut s = sched();
        for i in 0..50 {
            s.submit(msg(i, StreamKind::Sensor, 1_000, 0)); // DelayNotDrop
        }
        // Tiny budget, huge backlog: sensors wait, none are dropped.
        let out = s.tick(SimTime::from_secs(10), 100.0);
        assert!(out.dropped.is_empty());
        assert!(s.queued_messages() >= 48);
    }

    #[test]
    fn congestion_sheds_lowest_priority_first() {
        let mut s = sched();
        // Backlog horizon = 4 ticks × 1000 B = 4000 B of droppable backlog.
        for i in 0..10 {
            s.submit(msg(i, StreamKind::VideoInter, 1_000, 0)); // Lowest
        }
        for i in 10..13 {
            s.submit(msg(i, StreamKind::Result, 1_000, 0)); // DropNotDelay
        }
        let out = s.tick(SimTime::from_millis(1), 1000.0);
        assert!(!out.dropped.is_empty());
        // Only interframes (Lowest) are shed at this backlog level; the
        // higher DropNotDelay results survive.
        assert!(
            out.dropped.iter().all(|d| d.message.kind == StreamKind::VideoInter),
            "{:?}",
            out.dropped.iter().map(|d| d.message.kind).collect::<Vec<_>>()
        );
        assert_eq!(
            DegradationScheduler::shed_severity(&out.dropped),
            1,
            "severity 1 = only Lowest shed"
        );
    }

    #[test]
    fn deeper_congestion_reaches_drop_not_delay() {
        let mut s = DegradationScheduler::new(SimDuration::from_secs(10), 1.0);
        for i in 0..40 {
            s.submit(msg(i, StreamKind::Result, 1_000, 0)); // DropNotDelay
        }
        // No Lowest data at all: shedding must cut into DropNotDelay.
        let out = s.tick(SimTime::from_millis(1), 500.0);
        assert!(!out.dropped.is_empty());
        assert_eq!(DegradationScheduler::shed_severity(&out.dropped), 2);
    }

    #[test]
    fn zero_severity_without_drops() {
        assert_eq!(DegradationScheduler::shed_severity(&[]), 0);
    }

    #[test]
    fn outage_mode_retains_freshest_droppable_per_kind() {
        let mut s = sched();
        s.set_outage(true);
        assert!(s.outage());
        s.submit(msg(1, StreamKind::VideoInter, 100, 0)); // Lowest: superseded
        s.submit(msg(2, StreamKind::VideoInter, 100, 10)); // Lowest: freshest
        s.submit(msg(3, StreamKind::Result, 100, 0)); // DropNotDelay: only one
        s.submit(msg(4, StreamKind::Sensor, 100, 0)); // DelayNotDrop: queued
        s.submit(msg(5, StreamKind::Metadata, 100, 0)); // Highest: queued
                                                        // Zero budget (the link is down): the superseded interframe is shed
                                                        // immediately; the freshest of each kind and all delayable/critical
                                                        // data wait for recovery.
        let out = s.tick(SimTime::from_millis(11), 0.0);
        let shed: Vec<u64> = out.dropped.iter().map(|d| d.message.id).collect();
        assert_eq!(shed, vec![1]);
        assert!(out.sent.is_empty());
        assert_eq!(s.queued_messages(), 4);
        // Recovery: outage mode off, the retained frames flow immediately
        // and fresh droppables are no longer subject to retention.
        s.set_outage(false);
        s.submit(msg(6, StreamKind::VideoInter, 100, 20));
        let out = s.tick(SimTime::from_millis(25), 1000.0);
        assert!(out.dropped.is_empty());
        assert_eq!(out.sent.len(), 5);
    }

    #[test]
    fn outage_retention_sheds_superseded_frames_across_ticks() {
        let mut s = sched();
        s.set_outage(true);
        // A long outage: frames arrive every tick, only the newest survives.
        let mut shed_total = 0;
        for i in 0..20u64 {
            s.submit(msg(i, StreamKind::VideoInter, 1_000, i * 10));
            let out = s.tick(SimTime::from_millis(i * 10 + 1), 0.0);
            shed_total += out.dropped.len();
            assert!(s.queued_messages() <= 1, "at most the freshest frame is banked");
        }
        assert_eq!(shed_total, 19, "every superseded frame was shed");
    }
}
