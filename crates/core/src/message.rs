//! Application-level messages submitted to the AR protocol.

use crate::class::{Priority, StreamKind, TrafficClass};
use marnet_sim::time::SimTime;

/// One application message (a frame, a sensor batch, a metadata record).
///
/// Messages larger than the MTU are fragmented by the sender; the receiver
/// reassembles and reports one delivery per message.
#[derive(Debug, Clone, PartialEq)]
pub struct ArMessage {
    /// Application-assigned unique id.
    pub id: u64,
    /// Which sub-stream this belongs to.
    pub kind: StreamKind,
    /// Traffic class (recovery semantics).
    pub class: TrafficClass,
    /// Priority (degradation semantics).
    pub priority: Priority,
    /// Payload size in bytes.
    pub size: u32,
    /// When the application created it.
    pub created: SimTime,
    /// Latest useful delivery instant, if any. Late droppable messages are
    /// shed; late recovery is suppressed (§VI-C).
    pub deadline: Option<SimTime>,
    /// Application-level reference instant carried end to end (e.g. the
    /// camera timestamp a server result responds to); does not affect
    /// scheduling, only measurement.
    pub origin: Option<SimTime>,
}

impl ArMessage {
    /// Creates a message with the default class/priority for its kind.
    pub fn new(id: u64, kind: StreamKind, size: u32, created: SimTime) -> Self {
        let (class, priority) = kind.default_class();
        ArMessage { id, kind, class, priority, size, created, deadline: None, origin: None }
    }

    /// Sets a delivery deadline, builder style.
    #[must_use]
    pub fn with_deadline(mut self, deadline: SimTime) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the end-to-end reference instant, builder style.
    #[must_use]
    pub fn with_origin(mut self, origin: SimTime) -> Self {
        self.origin = Some(origin);
        self
    }

    /// Overrides the class, builder style.
    #[must_use]
    pub fn with_class(mut self, class: TrafficClass) -> Self {
        self.class = class;
        self
    }

    /// Overrides the priority, builder style.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Whether the message is already past its deadline at `now`.
    pub fn is_late(&self, now: SimTime) -> bool {
        self.deadline.is_some_and(|d| now > d)
    }

    /// Number of MTU-sized fragments needed.
    ///
    /// # Panics
    ///
    /// Panics if `mtu` is zero.
    pub fn fragment_count(&self, mtu: u32) -> u32 {
        assert!(mtu > 0, "mtu must be positive");
        self.size.div_ceil(mtu).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_stream_kind() {
        let m = ArMessage::new(1, StreamKind::Metadata, 100, SimTime::ZERO);
        assert_eq!(m.class, TrafficClass::Critical);
        assert_eq!(m.priority, Priority::Highest);
        assert_eq!(m.deadline, None);
    }

    #[test]
    fn deadline_check() {
        let m = ArMessage::new(1, StreamKind::VideoInter, 100, SimTime::ZERO)
            .with_deadline(SimTime::from_millis(75));
        assert!(!m.is_late(SimTime::from_millis(75)));
        assert!(m.is_late(SimTime::from_millis(76)));
        let n = ArMessage::new(2, StreamKind::Sensor, 10, SimTime::ZERO);
        assert!(!n.is_late(SimTime::from_secs(100)));
    }

    #[test]
    fn fragmentation_rounds_up() {
        let m = ArMessage::new(1, StreamKind::VideoReference, 3000, SimTime::ZERO);
        assert_eq!(m.fragment_count(1200), 3);
        assert_eq!(m.fragment_count(3000), 1);
        assert_eq!(m.fragment_count(4000), 1);
        let tiny = ArMessage::new(2, StreamKind::Sensor, 0, SimTime::ZERO);
        assert_eq!(tiny.fragment_count(1200), 1);
    }

    #[test]
    fn builders_override() {
        let m = ArMessage::new(1, StreamKind::VideoInter, 100, SimTime::ZERO)
            .with_class(TrafficClass::Critical)
            .with_priority(Priority::DelayNotDrop(2));
        assert_eq!(m.class, TrafficClass::Critical);
        assert_eq!(m.priority, Priority::DelayNotDrop(2));
    }
}
