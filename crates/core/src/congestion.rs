//! Rate-based congestion control with delay as the primary signal (§VI-B).
//!
//! The paper: *"the congestion control algorithm should closely monitor
//! latencies and react accordingly. A sudden rise of delay or jitter should
//! be treated as a congestion indication, with immediate reaction"* — while
//! warning (citing the Vegas fairness studies) that pure delay-based control
//! starves against loss-based competitors, so *"a trade-off has to be found
//! between the latency and bandwidth requirements"*.
//!
//! [`DelayCongestionController`] keeps a sending *rate* (there is no
//! congestion window to shrink — the application's media rate is what it
//! is; the degradation scheduler decides what fits). The control law:
//!
//! * congestion event when `srtt > base_rtt + latency_threshold` or when
//!   the jitter estimate spikes, at most once per RTT → multiplicative
//!   decrease by `beta`;
//! * loss events (NACK bursts) also count as congestion (the loss-based
//!   fallback that preserves fairness against TCP);
//! * otherwise additive increase per RTT.

use marnet_sim::time::{SimDuration, SimTime};

/// What the controller concluded from the latest feedback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CongestionVerdict {
    /// No congestion; rate was (possibly) increased.
    Clear,
    /// Delay-based congestion detected; rate was cut.
    DelayCongestion,
    /// Loss-based congestion detected; rate was cut.
    LossCongestion,
}

/// Tuning knobs for [`DelayCongestionController`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CongestionConfig {
    /// Starting rate in bytes/s.
    pub initial_rate: f64,
    /// Floor below which the rate never drops (keeps critical data moving —
    /// graceful degradation must "function with degraded performance even
    /// if no network connectivity is available").
    pub min_rate: f64,
    /// Ceiling on the rate (e.g. the application's maximum media rate).
    pub max_rate: f64,
    /// Queueing-delay budget above the base RTT before we call congestion.
    pub latency_threshold: SimDuration,
    /// Jitter (RTT variance) budget before we call congestion.
    pub jitter_threshold: SimDuration,
    /// Multiplicative decrease factor on congestion.
    pub beta: f64,
    /// Additive increase in bytes per RTT when clear.
    pub increase_per_rtt: f64,
    /// Whether NACKed packets trigger the loss-based fallback.
    pub react_to_loss: bool,
}

impl Default for CongestionConfig {
    fn default() -> Self {
        CongestionConfig {
            initial_rate: 250_000.0, // 2 Mb/s
            min_rate: 10_000.0,      // 80 kb/s — metadata floor
            max_rate: 125_000_000.0, // 1 Gb/s
            latency_threshold: SimDuration::from_millis(15),
            jitter_threshold: SimDuration::from_millis(30),
            beta: 0.8,
            increase_per_rtt: 15_000.0,
            react_to_loss: true,
        }
    }
}

/// The delay-first, rate-based congestion controller.
#[derive(Debug, Clone)]
pub struct DelayCongestionController {
    cfg: CongestionConfig,
    rate: f64,
    base_rtt: Option<SimDuration>,
    srtt: Option<SimDuration>,
    jitter: SimDuration,
    last_decrease: SimTime,
}

impl DelayCongestionController {
    /// Creates a controller with the given configuration.
    pub fn new(cfg: CongestionConfig) -> Self {
        DelayCongestionController {
            rate: cfg.initial_rate.clamp(cfg.min_rate, cfg.max_rate),
            cfg,
            base_rtt: None,
            srtt: None,
            jitter: SimDuration::ZERO,
            last_decrease: SimTime::ZERO,
        }
    }

    /// Current allowed sending rate in bytes per second.
    pub fn rate_bytes_per_sec(&self) -> f64 {
        self.rate
    }

    /// Smoothed RTT estimate, if any feedback arrived yet.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Minimum observed RTT (propagation estimate).
    pub fn base_rtt(&self) -> Option<SimDuration> {
        self.base_rtt
    }

    /// Current jitter (mean RTT deviation) estimate.
    pub fn jitter(&self) -> SimDuration {
        self.jitter
    }

    fn decrease(&mut self, now: SimTime, recv_rate: Option<f64>) -> bool {
        // Freeze after a decrease for one (inflated) smoothed RTT: every
        // sample arriving in that window was emitted against the *old*
        // rate and still reflects the standing queue we just started to
        // drain — reacting to it again would collapse the rate.
        let guard = self
            .srtt
            .unwrap_or(SimDuration::from_millis(100))
            .max(self.base_rtt.unwrap_or(SimDuration::ZERO));
        if now.saturating_since(self.last_decrease) < guard {
            return false;
        }
        self.last_decrease = now;
        // Multiplicative decrease, anchored slightly *below* the receiver's
        // measured delivery rate when available: under a standing queue the
        // delivery rate is the capacity, and undershooting it is what lets
        // the queue drain (an exact match would freeze the queue in place).
        let mut target = self.rate * self.cfg.beta;
        if let Some(r) = recv_rate {
            if r > 0.0 {
                target = target.min(r * 0.85);
            }
        }
        self.rate = target.max(self.cfg.min_rate);
        true
    }

    /// Feeds one RTT sample (from protocol feedback), the count of losses
    /// reported since the previous feedback, and the receiver's measured
    /// delivery rate (bytes/s) if known. Returns the verdict.
    pub fn on_feedback(
        &mut self,
        rtt: SimDuration,
        losses: u64,
        recv_rate: Option<f64>,
        now: SimTime,
    ) -> CongestionVerdict {
        self.on_feedback_attributed(rtt, losses, recv_rate, now, true)
    }

    /// [`DelayCongestionController::on_feedback`] with explicit congestion
    /// attribution. With `attribute_congestion` false the sample updates
    /// the RTT estimators but is never blamed on congestion and the rate
    /// holds steady — the outage-hardened sender uses this for the grace
    /// window after an outage resolves, when reported losses describe the
    /// fault (packets that died against a dead link or peer) and the
    /// receiver's delivery-rate window still spans the silence. Cutting the
    /// rate on that evidence would collapse it to the floor and stall
    /// recovery on additive increase.
    pub fn on_feedback_attributed(
        &mut self,
        rtt: SimDuration,
        losses: u64,
        recv_rate: Option<f64>,
        now: SimTime,
        attribute_congestion: bool,
    ) -> CongestionVerdict {
        // Update estimators (EWMA 7/8, like TCP's SRTT/RTTVAR).
        let base = match self.base_rtt {
            Some(b) if b <= rtt => b,
            _ => rtt,
        };
        self.base_rtt = Some(base);
        let srtt = match self.srtt {
            None => rtt,
            Some(s) => s.mul_f64(0.875) + rtt.mul_f64(0.125),
        };
        let deviation = if srtt > rtt { srtt - rtt } else { rtt - srtt };
        self.jitter = self.jitter.mul_f64(0.75) + deviation.mul_f64(0.25);
        self.srtt = Some(srtt);

        if !attribute_congestion {
            return CongestionVerdict::Clear;
        }
        if self.cfg.react_to_loss && losses > 0 {
            if self.decrease(now, recv_rate) {
                return CongestionVerdict::LossCongestion;
            }
            return CongestionVerdict::Clear;
        }
        if srtt > base + self.cfg.latency_threshold || self.jitter > self.cfg.jitter_threshold {
            if self.decrease(now, recv_rate) {
                return CongestionVerdict::DelayCongestion;
            }
            return CongestionVerdict::Clear;
        }
        // Additive increase, scaled so one full RTT of clear feedback adds
        // `increase_per_rtt` bytes/s.
        let rtt_s = srtt.as_secs_f64().max(1e-4);
        self.rate = (self.rate + self.cfg.increase_per_rtt * (rtt.as_secs_f64() / rtt_s))
            .min(self.cfg.max_rate);
        CongestionVerdict::Clear
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CongestionConfig {
        CongestionConfig {
            initial_rate: 100_000.0,
            min_rate: 10_000.0,
            max_rate: 1_000_000.0,
            latency_threshold: SimDuration::from_millis(15),
            jitter_threshold: SimDuration::from_millis(30),
            beta: 0.8,
            increase_per_rtt: 10_000.0,
            react_to_loss: true,
        }
    }

    #[test]
    fn stable_rtt_grows_rate_additively() {
        let mut c = DelayCongestionController::new(cfg());
        let mut now = SimTime::ZERO;
        for _ in 0..10 {
            now += SimDuration::from_millis(20);
            let v = c.on_feedback(SimDuration::from_millis(20), 0, None, now);
            assert_eq!(v, CongestionVerdict::Clear);
        }
        // 10 feedbacks at one per RTT → ~10 × 10 kB/s growth.
        let rate = c.rate_bytes_per_sec();
        assert!((rate - 200_000.0).abs() < 15_000.0, "rate {rate}");
    }

    #[test]
    fn delay_rise_cuts_rate_immediately() {
        let mut c = DelayCongestionController::new(cfg());
        let mut now = SimTime::ZERO;
        for _ in 0..5 {
            now += SimDuration::from_millis(20);
            c.on_feedback(SimDuration::from_millis(20), 0, None, now);
        }
        let before = c.rate_bytes_per_sec();
        now += SimDuration::from_millis(20);
        // RTT jumps 40 ms above base: srtt moves 1/8 of the way = +5 ms...
        // keep feeding until the EWMA crosses the 15 ms threshold.
        let mut verdicts = Vec::new();
        for _ in 0..10 {
            now += SimDuration::from_millis(60);
            verdicts.push(c.on_feedback(SimDuration::from_millis(200), 0, None, now));
        }
        assert!(
            verdicts.contains(&CongestionVerdict::DelayCongestion),
            "no delay congestion in {verdicts:?}"
        );
        assert!(c.rate_bytes_per_sec() < before);
    }

    #[test]
    fn loss_fallback_cuts_rate() {
        let mut c = DelayCongestionController::new(cfg());
        let v = c.on_feedback(SimDuration::from_millis(20), 3, None, SimTime::from_millis(500));
        assert_eq!(v, CongestionVerdict::LossCongestion);
        assert!(c.rate_bytes_per_sec() < 100_000.0);
    }

    #[test]
    fn loss_ignored_when_fallback_disabled() {
        let mut c =
            DelayCongestionController::new(CongestionConfig { react_to_loss: false, ..cfg() });
        let v = c.on_feedback(SimDuration::from_millis(20), 5, None, SimTime::from_millis(500));
        assert_eq!(v, CongestionVerdict::Clear);
    }

    #[test]
    fn at_most_one_decrease_per_rtt() {
        let mut c = DelayCongestionController::new(cfg());
        c.on_feedback(SimDuration::from_millis(20), 0, None, SimTime::from_millis(20));
        let v1 = c.on_feedback(SimDuration::from_millis(20), 1, None, SimTime::from_millis(100));
        assert_eq!(v1, CongestionVerdict::LossCongestion);
        let rate_after_first = c.rate_bytes_per_sec();
        // 1 ms later — still inside the RTT guard window.
        let v2 = c.on_feedback(SimDuration::from_millis(20), 1, None, SimTime::from_millis(101));
        assert_eq!(v2, CongestionVerdict::Clear);
        assert_eq!(c.rate_bytes_per_sec(), rate_after_first);
    }

    #[test]
    fn rate_never_falls_below_floor() {
        let mut c = DelayCongestionController::new(cfg());
        let mut now = SimTime::ZERO;
        for i in 0..100 {
            now += SimDuration::from_millis(200);
            c.on_feedback(SimDuration::from_millis(20 + i * 10), 1, None, now);
        }
        assert_eq!(c.rate_bytes_per_sec(), 10_000.0);
    }

    #[test]
    fn rate_caps_at_max() {
        let mut c = DelayCongestionController::new(CongestionConfig {
            initial_rate: 990_000.0,
            increase_per_rtt: 100_000.0,
            ..cfg()
        });
        let mut now = SimTime::ZERO;
        for _ in 0..10 {
            now += SimDuration::from_millis(20);
            c.on_feedback(SimDuration::from_millis(20), 0, None, now);
        }
        assert_eq!(c.rate_bytes_per_sec(), 1_000_000.0);
    }

    #[test]
    fn jitter_spike_counts_as_congestion() {
        let mut c = DelayCongestionController::new(CongestionConfig {
            latency_threshold: SimDuration::from_secs(10), // disable the srtt path
            jitter_threshold: SimDuration::from_millis(10),
            ..cfg()
        });
        let mut now = SimTime::ZERO;
        let mut saw_congestion = false;
        for i in 0..30 {
            now += SimDuration::from_millis(50);
            let rtt = if i % 2 == 0 { 20 } else { 120 };
            if c.on_feedback(SimDuration::from_millis(rtt), 0, None, now)
                == CongestionVerdict::DelayCongestion
            {
                saw_congestion = true;
            }
        }
        assert!(saw_congestion, "alternating RTTs must trip the jitter guard");
    }
}
