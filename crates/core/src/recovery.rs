//! Deadline-gated loss recovery (§VI-C).
//!
//! "As recovery is costly in a latency-constrained context, the protocol
//! should ideally avoid recovery from losses. […] If the application
//! generates 30 frames per second, with maximum tolerable latency no higher
//! than 75 ms, we can afford to recover a single lost frame only if the
//! round trip time is at most 37.5 ms."
//!
//! [`RecoveryPolicy::should_retransmit`] encodes that rule: a lost fragment
//! is retransmitted only if its class wants recovery *and* either the class
//! is [`TrafficClass::Critical`] (unconditional) or the retransmission can
//! still arrive before the deadline. [`RetransmitBuffer`] keeps the
//! sender-side state needed to act on NACKs.

use crate::class::{StreamKind, TrafficClass};
use marnet_sim::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Sender-side description of an in-flight fragment, kept until it is
/// acknowledged, recovered or expired.
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentRecord {
    /// Message the fragment belongs to.
    pub msg_id: u64,
    /// Fragment index within the message.
    pub frag_index: u32,
    /// Total fragments of the message.
    pub frag_count: u32,
    /// Fragment wire size in bytes.
    pub size: u32,
    /// Sub-stream of the carried message.
    pub kind: StreamKind,
    /// Traffic class (recovery semantics).
    pub class: TrafficClass,
    /// When the application created the message.
    pub created: SimTime,
    /// Priority band for re-sends.
    pub prio_band: u8,
    /// Delivery deadline, if any.
    pub deadline: Option<SimTime>,
    /// How many times this fragment has been (re)transmitted.
    pub attempts: u32,
}

/// The §VI-C retransmission gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Hard cap on transmission attempts per fragment.
    pub max_attempts: u32,
    /// Safety margin subtracted from the deadline check (processing slack).
    pub margin: SimDuration,
    /// If `false`, even deadline-feasible retransmissions are suppressed
    /// (the "never retransmit" ablation).
    pub enabled: bool,
    /// If `false`, the deadline gate is skipped and anything recoverable is
    /// retransmitted (the "always retransmit" ablation).
    pub deadline_gated: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_attempts: 4,
            margin: SimDuration::from_millis(2),
            enabled: true,
            deadline_gated: true,
        }
    }
}

impl RecoveryPolicy {
    /// Decides whether a NACKed fragment should be retransmitted at `now`,
    /// given the current smoothed RTT estimate.
    ///
    /// A retransmission needs one more RTT to be delivered (the NACK
    /// consumed the first half-RTT; the re-send needs a one-way trip, but
    /// we budget a full RTT as the paper does for its 37.5 ms rule).
    pub fn should_retransmit(
        &self,
        frag: &FragmentRecord,
        srtt: Option<SimDuration>,
        now: SimTime,
    ) -> bool {
        if !self.enabled || !frag.class.wants_recovery() || frag.attempts >= self.max_attempts {
            return false;
        }
        if frag.class.recovery_is_unconditional() || !self.deadline_gated {
            return true;
        }
        match (frag.deadline, srtt) {
            (Some(deadline), Some(srtt)) => now.saturating_add(srtt + self.margin) <= deadline,
            // No deadline: recovery is harmless. No RTT estimate yet: be
            // optimistic once, the attempt cap bounds the damage.
            _ => true,
        }
    }
}

/// Capped exponential backoff with deterministic jitter, used by the
/// endpoint watchdog to pace recovery probes during an outage.
///
/// The jitter is a pure function of `(attempt, salt)` — no RNG — so probe
/// times stay byte-identical across runs while still decorrelating the
/// probes of different senders (use the connection id as the salt).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Backoff {
    /// Delay of the first retry.
    pub base: SimDuration,
    /// Hard cap on the (pre-jitter) delay; doubling stops here.
    pub cap: SimDuration,
    /// Jitter added on top, as a percentage of the capped delay in
    /// `[0, jitter_pct]`.
    pub jitter_pct: u32,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            base: SimDuration::from_millis(25),
            cap: SimDuration::from_millis(200),
            jitter_pct: 20,
        }
    }
}

impl Backoff {
    /// The delay before retry `attempt` (0-based): `base × 2^attempt`,
    /// capped at `cap`, plus deterministic jitter derived from
    /// `(attempt, salt)`.
    pub fn delay(&self, attempt: u32, salt: u64) -> SimDuration {
        let raw = self.base.as_nanos().saturating_mul(1u64 << attempt.min(16));
        let capped = raw.min(self.cap.as_nanos());
        let jitter = if self.jitter_pct == 0 {
            0
        } else {
            let mut h = 0xcbf2_9ce4_8422_2325u64 ^ salt;
            for b in attempt.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            capped / 100 * (h % (u64::from(self.jitter_pct) + 1))
        };
        SimDuration::from_nanos(capped.saturating_add(jitter))
    }
}

/// Default bound on records a [`RetransmitBuffer`] may hold. During a long
/// outage the sender keeps pacing recoverable fragments into a dead link;
/// without a cap the buffer grows without bound (critical and deadline-less
/// records are never expired). 2048 records ≈ one second of full-rate video
/// on the default profile — far more than any feasible recovery window.
pub const DEFAULT_RETRANSMIT_CAP: usize = 2048;

/// One path's records: a dense sequence-indexed slot ring.
///
/// Sequence numbers are per-path and monotone at the sender, so
/// `ring[seq - base]` addresses a record directly — insertion moves the
/// record into a recycled slot (no tree nodes, no per-record allocation
/// once the deque reached its steady-state capacity). Invariant outside
/// method bodies: when `held > 0` the front slot is occupied (the back
/// may only end occupied because records are appended there), so the
/// oldest sequence is always `base`.
#[derive(Debug, Default)]
struct PathSlots {
    /// Sequence number of `ring[0]`.
    base: u64,
    ring: VecDeque<Option<FragmentRecord>>,
    /// Occupied slots in `ring`.
    held: usize,
}

impl PathSlots {
    /// Pops empty slots off the front, advancing `base`, restoring the
    /// front-occupied invariant after a removal.
    fn trim_front(&mut self) {
        while matches!(self.ring.front(), Some(None)) {
            self.ring.pop_front();
            self.base += 1;
        }
    }

    /// Pops empty slots off the back (keeps gap-heavy rings short).
    fn trim_back(&mut self) {
        while matches!(self.ring.back(), Some(None)) {
            self.ring.pop_back();
        }
    }

    /// Places `frag` at `seq`, growing the ring with empty slots when the
    /// sequence extends past either end.
    fn insert(&mut self, seq: u64, frag: FragmentRecord) {
        if self.held == 0 {
            self.ring.clear();
            self.base = seq;
            self.ring.push_back(Some(frag));
            self.held = 1;
            return;
        }
        if seq < self.base {
            for _ in 0..self.base - seq - 1 {
                self.ring.push_front(None);
            }
            self.ring.push_front(Some(frag));
            self.base = seq;
            self.held += 1;
            return;
        }
        let idx = (seq - self.base) as usize;
        if idx >= self.ring.len() {
            for _ in self.ring.len()..idx {
                self.ring.push_back(None);
            }
            self.ring.push_back(Some(frag));
            self.held += 1;
        } else if self.ring[idx].replace(frag).is_none() {
            self.held += 1;
        }
    }

    /// Removes and returns the record at `seq`, if held.
    fn take(&mut self, seq: u64) -> Option<FragmentRecord> {
        let idx = usize::try_from(seq.checked_sub(self.base)?).ok()?;
        let frag = self.ring.get_mut(idx)?.take()?;
        self.held -= 1;
        self.trim_front();
        self.trim_back();
        Some(frag)
    }

    /// Removes the oldest record (the front slot; invariant makes it
    /// occupied whenever `held > 0`).
    fn evict_oldest(&mut self) -> bool {
        if self.held == 0 {
            return false;
        }
        debug_assert!(matches!(self.ring.front(), Some(Some(_))));
        self.ring.pop_front();
        self.base += 1;
        self.held -= 1;
        self.trim_front();
        true
    }

    /// Releases every record with sequence ≤ `cum_seq`; returns the count.
    fn ack_cumulative(&mut self, cum_seq: u64) -> usize {
        let mut released = 0;
        while !self.ring.is_empty() && self.base <= cum_seq {
            if self.ring.pop_front().flatten().is_some() {
                released += 1;
                self.held -= 1;
            }
            self.base += 1;
        }
        self.trim_front();
        released
    }
}

/// Sender-side store of unacknowledged fragments, keyed by `(path, seq)`.
///
/// Holds at most `cap` records: inserting at capacity evicts the oldest
/// (lowest-sequence) record from the fullest path, so a link that stays
/// down longer than the RTO cannot blow the buffer up. Storage is a
/// per-path slot ring whose capacity is recycled across the connection's
/// lifetime — steady-state insert/ack/take traffic allocates nothing.
#[derive(Debug)]
pub struct RetransmitBuffer {
    /// Indexed by path id (path ids are small, dense sender-side indexes).
    paths: Vec<PathSlots>,
    /// Earliest deadline among held *expirable* records (non-critical with a
    /// deadline). [`RetransmitBuffer::expire`] is called every pacing tick;
    /// the watermark lets it skip the full walk while nothing can have
    /// expired yet. Kept as a lower bound: records leaving via ack/take may
    /// make it stale (too early), never too late.
    earliest_deadline: Option<SimTime>,
    /// Hard bound on held records.
    cap: usize,
    /// Records evicted to enforce the bound (for stats/tests).
    evictions: u64,
}

impl Default for RetransmitBuffer {
    fn default() -> Self {
        RetransmitBuffer {
            // marnet-lint: allow(hot-path-alloc): construction-time; `Vec::new` does not allocate
            paths: Vec::new(),
            earliest_deadline: None,
            cap: DEFAULT_RETRANSMIT_CAP,
            evictions: 0,
        }
    }
}

impl RetransmitBuffer {
    /// An empty buffer with the default record cap.
    pub fn new() -> Self {
        RetransmitBuffer::default()
    }

    /// An empty buffer bounded to `cap` records (`cap` ≥ 1).
    pub fn with_cap(cap: usize) -> Self {
        RetransmitBuffer { cap: cap.max(1), ..RetransmitBuffer::default() }
    }

    /// Records evicted to enforce the record cap.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Drops every record (session re-establishment after an edge restart:
    /// the peer's receive state is gone, so held fragments are
    /// unrecoverable). Returns how many records were dropped. Slot-ring
    /// capacity is retained for the next session.
    pub fn clear(&mut self) -> usize {
        let n = self.len();
        for p in &mut self.paths {
            p.ring.clear();
            p.base = 0;
            p.held = 0;
        }
        self.earliest_deadline = None;
        n
    }

    /// Records a transmission of `frag` as `(path, seq)`.
    pub fn insert(&mut self, path: usize, seq: u64, frag: FragmentRecord) {
        if !frag.class.recovery_is_unconditional() {
            if let Some(d) = frag.deadline {
                self.earliest_deadline = Some(self.earliest_deadline.map_or(d, |cur| cur.min(d)));
            }
        }
        if path >= self.paths.len() {
            self.paths.resize_with(path + 1, PathSlots::default);
        }
        self.paths[path].insert(seq, frag);
        if self.len() > self.cap {
            self.evict_oldest();
        }
    }

    /// Evicts the lowest-sequence record from the fullest path (ties go to
    /// the lowest path id). Called only when the cap is exceeded.
    fn evict_oldest(&mut self) {
        let mut victim: Option<(usize, usize)> = None;
        for (p, slots) in self.paths.iter().enumerate() {
            if slots.held > 0 && victim.is_none_or(|(_, held)| slots.held > held) {
                victim = Some((p, slots.held));
            }
        }
        if let Some((p, _)) = victim {
            if self.paths[p].evict_oldest() {
                self.evictions += 1;
            }
        }
    }

    /// Removes and returns the record for a NACKed `(path, seq)`, if held.
    pub fn take(&mut self, path: usize, seq: u64) -> Option<FragmentRecord> {
        self.paths.get_mut(path)?.take(seq)
    }

    /// Acknowledges everything on `path` up to and including `cum_seq`.
    /// Returns how many records were released.
    pub fn ack_cumulative(&mut self, path: usize, cum_seq: u64) -> usize {
        match self.paths.get_mut(path) {
            Some(slots) => slots.ack_cumulative(cum_seq),
            None => 0,
        }
    }

    /// Drops records whose deadline passed (no point retransmitting).
    /// Returns how many were expired.
    pub fn expire(&mut self, now: SimTime) -> usize {
        // Nothing held can be past its deadline yet: skip the walk entirely.
        // The watermark is exact on the expiry *time* (it only goes stale
        // when an expirable record leaves early, which can only raise the
        // true minimum), so skipping here removes exactly zero records —
        // the same outcome as the walk.
        if self.earliest_deadline.is_none_or(|d| now <= d) {
            return 0;
        }
        let mut expired = 0;
        let mut next_deadline: Option<SimTime> = None;
        for slots in &mut self.paths {
            for slot in &mut slots.ring {
                let Some(f) = slot else { continue };
                let keep =
                    f.class.recovery_is_unconditional() || f.deadline.is_none_or(|d| now <= d);
                if keep {
                    if !f.class.recovery_is_unconditional() {
                        if let Some(d) = f.deadline {
                            next_deadline = Some(next_deadline.map_or(d, |cur| cur.min(d)));
                        }
                    }
                } else {
                    *slot = None;
                    slots.held -= 1;
                    expired += 1;
                }
            }
            slots.trim_front();
            slots.trim_back();
        }
        self.earliest_deadline = next_deadline;
        expired
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.paths.iter().map(|p| p.held).sum()
    }

    /// `true` if no records are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frag(class: TrafficClass, deadline_ms: Option<u64>) -> FragmentRecord {
        FragmentRecord {
            msg_id: 1,
            frag_index: 0,
            frag_count: 1,
            size: 1000,
            kind: StreamKind::VideoReference,
            class,
            created: SimTime::ZERO,
            prio_band: 0,
            deadline: deadline_ms.map(SimTime::from_millis),
            attempts: 1,
        }
    }

    #[test]
    fn paper_rule_37_5ms() {
        // 75 ms budget, loss detected at t=0 (frame creation), so recovery
        // is feasible iff RTT ≤ 37.5 ms... our gate checks now + srtt ≤
        // deadline: at now = 37.5 ms (one RTT after sending), srtt = 37.5
        // ms fits exactly (ignoring margin), 40 ms does not.
        let policy = RecoveryPolicy { margin: SimDuration::ZERO, ..Default::default() };
        let f = frag(TrafficClass::BestEffortWithRecovery, Some(75));
        let rtt_ok = SimDuration::from_micros(37_500);
        assert!(policy.should_retransmit(&f, Some(rtt_ok), SimTime::from_micros(37_500)));
        assert!(!policy.should_retransmit(
            &f,
            Some(SimDuration::from_millis(40)),
            SimTime::from_millis(40)
        ));
    }

    #[test]
    fn best_effort_never_retransmits() {
        let policy = RecoveryPolicy::default();
        let f = frag(TrafficClass::FullBestEffort, Some(1_000_000));
        assert!(!policy.should_retransmit(&f, Some(SimDuration::from_millis(1)), SimTime::ZERO));
    }

    #[test]
    fn critical_retransmits_even_when_late() {
        let policy = RecoveryPolicy::default();
        let f = frag(TrafficClass::Critical, Some(10));
        assert!(policy.should_retransmit(
            &f,
            Some(SimDuration::from_millis(500)),
            SimTime::from_secs(5)
        ));
    }

    #[test]
    fn attempt_cap_stops_retransmission() {
        let policy = RecoveryPolicy::default();
        let mut f = frag(TrafficClass::Critical, None);
        f.attempts = 4;
        assert!(!policy.should_retransmit(&f, None, SimTime::ZERO));
    }

    #[test]
    fn disabled_policy_never_retransmits() {
        let policy = RecoveryPolicy { enabled: false, ..Default::default() };
        let f = frag(TrafficClass::Critical, None);
        assert!(!policy.should_retransmit(&f, None, SimTime::ZERO));
    }

    #[test]
    fn ungated_policy_ignores_deadlines() {
        let policy = RecoveryPolicy { deadline_gated: false, ..Default::default() };
        let f = frag(TrafficClass::BestEffortWithRecovery, Some(10));
        assert!(policy.should_retransmit(
            &f,
            Some(SimDuration::from_millis(500)),
            SimTime::from_secs(5)
        ));
    }

    #[test]
    fn no_deadline_is_recoverable() {
        let policy = RecoveryPolicy::default();
        let f = frag(TrafficClass::BestEffortWithRecovery, None);
        assert!(policy.should_retransmit(&f, Some(SimDuration::from_secs(10)), SimTime::ZERO));
    }

    #[test]
    fn buffer_take_and_cumulative_ack() {
        let mut b = RetransmitBuffer::new();
        for seq in 0..10 {
            b.insert(0, seq, frag(TrafficClass::Critical, None));
        }
        b.insert(1, 0, frag(TrafficClass::Critical, None));
        assert_eq!(b.len(), 11);
        assert!(b.take(0, 5).is_some());
        assert!(b.take(0, 5).is_none());
        let released = b.ack_cumulative(0, 7);
        // Seqs 0..=7 minus the taken 5 → 7 released.
        assert_eq!(released, 7);
        assert_eq!(b.len(), 3); // path0: 8, 9; path1: 0.
        assert_eq!(b.ack_cumulative(2, 100), 0);
    }

    #[test]
    fn buffer_expires_late_recoverables_but_keeps_critical() {
        let mut b = RetransmitBuffer::new();
        b.insert(0, 1, frag(TrafficClass::BestEffortWithRecovery, Some(50)));
        b.insert(0, 2, frag(TrafficClass::Critical, Some(50)));
        b.insert(0, 3, frag(TrafficClass::BestEffortWithRecovery, None));
        let expired = b.expire(SimTime::from_millis(100));
        assert_eq!(expired, 1);
        assert_eq!(b.len(), 2);
        assert!(b.take(0, 2).is_some());
        assert!(b.take(0, 3).is_some());
    }

    #[test]
    fn buffer_stays_bounded_during_long_outage() {
        // A link down for longer than the RTO keeps feeding the buffer with
        // critical/deadline-less records that `expire` never removes; the
        // cap must bound the state anyway.
        let mut b = RetransmitBuffer::with_cap(64);
        for seq in 0..10_000u64 {
            let class = if seq % 2 == 0 {
                TrafficClass::Critical
            } else {
                TrafficClass::BestEffortWithRecovery
            };
            b.insert(0, seq, frag(class, None));
            assert!(b.len() <= 64, "buffer exceeded its cap at seq {seq}");
        }
        assert_eq!(b.len(), 64);
        assert_eq!(b.evictions(), 10_000 - 64);
        // The newest records survive; the oldest were evicted.
        assert!(b.take(0, 9_999).is_some());
        assert!(b.take(0, 0).is_none());
    }

    #[test]
    fn eviction_prefers_the_fullest_path() {
        let mut b = RetransmitBuffer::with_cap(4);
        b.insert(0, 0, frag(TrafficClass::Critical, None));
        b.insert(1, 0, frag(TrafficClass::Critical, None));
        b.insert(1, 1, frag(TrafficClass::Critical, None));
        b.insert(1, 2, frag(TrafficClass::Critical, None));
        // Path 1 holds 3 records, path 0 holds 1: the next insert evicts
        // path 1's oldest, not path 0's only record.
        b.insert(0, 1, frag(TrafficClass::Critical, None));
        assert_eq!(b.len(), 4);
        assert!(b.take(0, 0).is_some());
        assert!(b.take(1, 0).is_none());
        assert!(b.take(1, 1).is_some());
    }

    #[test]
    fn clear_releases_everything() {
        let mut b = RetransmitBuffer::new();
        for seq in 0..5 {
            b.insert(0, seq, frag(TrafficClass::Critical, None));
        }
        assert_eq!(b.clear(), 5);
        assert!(b.is_empty());
        assert_eq!(b.expire(SimTime::from_secs(1)), 0);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let bo = Backoff { jitter_pct: 0, ..Default::default() };
        assert_eq!(bo.delay(0, 1), SimDuration::from_millis(25));
        assert_eq!(bo.delay(1, 1), SimDuration::from_millis(50));
        assert_eq!(bo.delay(2, 1), SimDuration::from_millis(100));
        assert_eq!(bo.delay(3, 1), SimDuration::from_millis(200));
        // Capped from here on, even for huge attempt numbers.
        assert_eq!(bo.delay(10, 1), SimDuration::from_millis(200));
        assert_eq!(bo.delay(u32::MAX, 1), SimDuration::from_millis(200));
    }

    #[test]
    fn backoff_jitter_is_deterministic_and_bounded() {
        let bo = Backoff::default();
        for attempt in 0..8 {
            let a = bo.delay(attempt, 42);
            let b = bo.delay(attempt, 42);
            assert_eq!(a, b, "jitter must be a pure function of (attempt, salt)");
            let base = Backoff { jitter_pct: 0, ..bo }.delay(attempt, 42);
            assert!(a >= base);
            assert!(a <= base + base.mul_f64(0.20) + SimDuration::from_nanos(100));
        }
        // Different salts decorrelate.
        let spread: std::collections::BTreeSet<_> =
            (0..16u64).map(|salt| bo.delay(4, salt)).collect();
        assert!(spread.len() > 1);
    }
}
