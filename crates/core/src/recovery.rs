//! Deadline-gated loss recovery (§VI-C).
//!
//! "As recovery is costly in a latency-constrained context, the protocol
//! should ideally avoid recovery from losses. […] If the application
//! generates 30 frames per second, with maximum tolerable latency no higher
//! than 75 ms, we can afford to recover a single lost frame only if the
//! round trip time is at most 37.5 ms."
//!
//! [`RecoveryPolicy::should_retransmit`] encodes that rule: a lost fragment
//! is retransmitted only if its class wants recovery *and* either the class
//! is [`TrafficClass::Critical`] (unconditional) or the retransmission can
//! still arrive before the deadline. [`RetransmitBuffer`] keeps the
//! sender-side state needed to act on NACKs.

use crate::class::{StreamKind, TrafficClass};
use marnet_sim::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Sender-side description of an in-flight fragment, kept until it is
/// acknowledged, recovered or expired.
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentRecord {
    /// Message the fragment belongs to.
    pub msg_id: u64,
    /// Fragment index within the message.
    pub frag_index: u32,
    /// Total fragments of the message.
    pub frag_count: u32,
    /// Fragment wire size in bytes.
    pub size: u32,
    /// Sub-stream of the carried message.
    pub kind: StreamKind,
    /// Traffic class (recovery semantics).
    pub class: TrafficClass,
    /// When the application created the message.
    pub created: SimTime,
    /// Priority band for re-sends.
    pub prio_band: u8,
    /// Delivery deadline, if any.
    pub deadline: Option<SimTime>,
    /// How many times this fragment has been (re)transmitted.
    pub attempts: u32,
}

/// The §VI-C retransmission gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Hard cap on transmission attempts per fragment.
    pub max_attempts: u32,
    /// Safety margin subtracted from the deadline check (processing slack).
    pub margin: SimDuration,
    /// If `false`, even deadline-feasible retransmissions are suppressed
    /// (the "never retransmit" ablation).
    pub enabled: bool,
    /// If `false`, the deadline gate is skipped and anything recoverable is
    /// retransmitted (the "always retransmit" ablation).
    pub deadline_gated: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_attempts: 4,
            margin: SimDuration::from_millis(2),
            enabled: true,
            deadline_gated: true,
        }
    }
}

impl RecoveryPolicy {
    /// Decides whether a NACKed fragment should be retransmitted at `now`,
    /// given the current smoothed RTT estimate.
    ///
    /// A retransmission needs one more RTT to be delivered (the NACK
    /// consumed the first half-RTT; the re-send needs a one-way trip, but
    /// we budget a full RTT as the paper does for its 37.5 ms rule).
    pub fn should_retransmit(
        &self,
        frag: &FragmentRecord,
        srtt: Option<SimDuration>,
        now: SimTime,
    ) -> bool {
        if !self.enabled || !frag.class.wants_recovery() || frag.attempts >= self.max_attempts {
            return false;
        }
        if frag.class.recovery_is_unconditional() || !self.deadline_gated {
            return true;
        }
        match (frag.deadline, srtt) {
            (Some(deadline), Some(srtt)) => now.saturating_add(srtt + self.margin) <= deadline,
            // No deadline: recovery is harmless. No RTT estimate yet: be
            // optimistic once, the attempt cap bounds the damage.
            _ => true,
        }
    }
}

/// Sender-side store of unacknowledged fragments, keyed by `(path, seq)`.
#[derive(Debug, Default)]
pub struct RetransmitBuffer {
    /// Per path: seq → record.
    by_path: BTreeMap<usize, BTreeMap<u64, FragmentRecord>>,
    /// Earliest deadline among held *expirable* records (non-critical with a
    /// deadline). [`RetransmitBuffer::expire`] is called every pacing tick;
    /// the watermark lets it skip the full walk while nothing can have
    /// expired yet. Kept as a lower bound: records leaving via ack/take may
    /// make it stale (too early), never too late.
    earliest_deadline: Option<SimTime>,
}

impl RetransmitBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        RetransmitBuffer::default()
    }

    /// Records a transmission of `frag` as `(path, seq)`.
    pub fn insert(&mut self, path: usize, seq: u64, frag: FragmentRecord) {
        if !frag.class.recovery_is_unconditional() {
            if let Some(d) = frag.deadline {
                self.earliest_deadline = Some(self.earliest_deadline.map_or(d, |cur| cur.min(d)));
            }
        }
        self.by_path.entry(path).or_default().insert(seq, frag);
    }

    /// Removes and returns the record for a NACKed `(path, seq)`, if held.
    pub fn take(&mut self, path: usize, seq: u64) -> Option<FragmentRecord> {
        self.by_path.get_mut(&path)?.remove(&seq)
    }

    /// Acknowledges everything on `path` up to and including `cum_seq`.
    /// Returns how many records were released.
    pub fn ack_cumulative(&mut self, path: usize, cum_seq: u64) -> usize {
        let Some(m) = self.by_path.get_mut(&path) else {
            return 0;
        };
        // Pop acknowledged records off the front instead of `split_off`,
        // which would allocate a fresh tree on every feedback packet.
        let mut released = 0;
        while let Some(entry) = m.first_entry() {
            if *entry.key() > cum_seq {
                break;
            }
            entry.remove();
            released += 1;
        }
        released
    }

    /// Drops records whose deadline passed (no point retransmitting).
    /// Returns how many were expired.
    pub fn expire(&mut self, now: SimTime) -> usize {
        // Nothing held can be past its deadline yet: skip the walk entirely.
        // The watermark is exact on the expiry *time* (it only goes stale
        // when an expirable record leaves early, which can only raise the
        // true minimum), so skipping here removes exactly zero records —
        // the same outcome as the walk.
        if self.earliest_deadline.is_none_or(|d| now <= d) {
            return 0;
        }
        let mut expired = 0;
        let mut next_deadline: Option<SimTime> = None;
        for m in self.by_path.values_mut() {
            let before = m.len();
            m.retain(|_, f| {
                let keep =
                    f.class.recovery_is_unconditional() || f.deadline.is_none_or(|d| now <= d);
                if keep && !f.class.recovery_is_unconditional() {
                    if let Some(d) = f.deadline {
                        next_deadline = Some(next_deadline.map_or(d, |cur| cur.min(d)));
                    }
                }
                keep
            });
            expired += before - m.len();
        }
        self.earliest_deadline = next_deadline;
        expired
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.by_path.values().map(|m| m.len()).sum()
    }

    /// `true` if no records are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frag(class: TrafficClass, deadline_ms: Option<u64>) -> FragmentRecord {
        FragmentRecord {
            msg_id: 1,
            frag_index: 0,
            frag_count: 1,
            size: 1000,
            kind: StreamKind::VideoReference,
            class,
            created: SimTime::ZERO,
            prio_band: 0,
            deadline: deadline_ms.map(SimTime::from_millis),
            attempts: 1,
        }
    }

    #[test]
    fn paper_rule_37_5ms() {
        // 75 ms budget, loss detected at t=0 (frame creation), so recovery
        // is feasible iff RTT ≤ 37.5 ms... our gate checks now + srtt ≤
        // deadline: at now = 37.5 ms (one RTT after sending), srtt = 37.5
        // ms fits exactly (ignoring margin), 40 ms does not.
        let policy = RecoveryPolicy { margin: SimDuration::ZERO, ..Default::default() };
        let f = frag(TrafficClass::BestEffortWithRecovery, Some(75));
        let rtt_ok = SimDuration::from_micros(37_500);
        assert!(policy.should_retransmit(&f, Some(rtt_ok), SimTime::from_micros(37_500)));
        assert!(!policy.should_retransmit(
            &f,
            Some(SimDuration::from_millis(40)),
            SimTime::from_millis(40)
        ));
    }

    #[test]
    fn best_effort_never_retransmits() {
        let policy = RecoveryPolicy::default();
        let f = frag(TrafficClass::FullBestEffort, Some(1_000_000));
        assert!(!policy.should_retransmit(&f, Some(SimDuration::from_millis(1)), SimTime::ZERO));
    }

    #[test]
    fn critical_retransmits_even_when_late() {
        let policy = RecoveryPolicy::default();
        let f = frag(TrafficClass::Critical, Some(10));
        assert!(policy.should_retransmit(
            &f,
            Some(SimDuration::from_millis(500)),
            SimTime::from_secs(5)
        ));
    }

    #[test]
    fn attempt_cap_stops_retransmission() {
        let policy = RecoveryPolicy::default();
        let mut f = frag(TrafficClass::Critical, None);
        f.attempts = 4;
        assert!(!policy.should_retransmit(&f, None, SimTime::ZERO));
    }

    #[test]
    fn disabled_policy_never_retransmits() {
        let policy = RecoveryPolicy { enabled: false, ..Default::default() };
        let f = frag(TrafficClass::Critical, None);
        assert!(!policy.should_retransmit(&f, None, SimTime::ZERO));
    }

    #[test]
    fn ungated_policy_ignores_deadlines() {
        let policy = RecoveryPolicy { deadline_gated: false, ..Default::default() };
        let f = frag(TrafficClass::BestEffortWithRecovery, Some(10));
        assert!(policy.should_retransmit(
            &f,
            Some(SimDuration::from_millis(500)),
            SimTime::from_secs(5)
        ));
    }

    #[test]
    fn no_deadline_is_recoverable() {
        let policy = RecoveryPolicy::default();
        let f = frag(TrafficClass::BestEffortWithRecovery, None);
        assert!(policy.should_retransmit(&f, Some(SimDuration::from_secs(10)), SimTime::ZERO));
    }

    #[test]
    fn buffer_take_and_cumulative_ack() {
        let mut b = RetransmitBuffer::new();
        for seq in 0..10 {
            b.insert(0, seq, frag(TrafficClass::Critical, None));
        }
        b.insert(1, 0, frag(TrafficClass::Critical, None));
        assert_eq!(b.len(), 11);
        assert!(b.take(0, 5).is_some());
        assert!(b.take(0, 5).is_none());
        let released = b.ack_cumulative(0, 7);
        // Seqs 0..=7 minus the taken 5 → 7 released.
        assert_eq!(released, 7);
        assert_eq!(b.len(), 3); // path0: 8, 9; path1: 0.
        assert_eq!(b.ack_cumulative(2, 100), 0);
    }

    #[test]
    fn buffer_expires_late_recoverables_but_keeps_critical() {
        let mut b = RetransmitBuffer::new();
        b.insert(0, 1, frag(TrafficClass::BestEffortWithRecovery, Some(50)));
        b.insert(0, 2, frag(TrafficClass::Critical, Some(50)));
        b.insert(0, 3, frag(TrafficClass::BestEffortWithRecovery, None));
        let expired = b.expire(SimTime::from_millis(100));
        assert_eq!(expired, 1);
        assert_eq!(b.len(), 2);
        assert!(b.take(0, 2).is_some());
        assert!(b.take(0, 3).is_some());
    }
}
