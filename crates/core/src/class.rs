//! Traffic classes and priorities (§VI-A).
//!
//! The paper defines three baseline traffic classes and four priority
//! levels, with the key semantic split between data that may be *delayed but
//! never discarded* and data that may be *discarded but never delayed*
//! (stale video frames are worthless; critical metadata is not).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The §VI-A baseline traffic classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    /// Latency above all: new data is preferred to loss recovery.
    /// Most uplink sensor data and video interframes live here.
    FullBestEffort,
    /// Sensitive data with latency requirements: recover losses when (and
    /// only when) recovery can still meet the deadline; protect with FEC.
    /// Video reference frames live here.
    BestEffortWithRecovery,
    /// Reliable in-order delivery preferred to latency: connection
    /// metadata. Always retransmitted.
    Critical,
}

impl TrafficClass {
    /// Whether losses of this class are ever recovered.
    pub fn wants_recovery(self) -> bool {
        !matches!(self, TrafficClass::FullBestEffort)
    }

    /// Whether recovery is unconditional (ignores deadlines).
    pub fn recovery_is_unconditional(self) -> bool {
        matches!(self, TrafficClass::Critical)
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrafficClass::FullBestEffort => "best-effort",
            TrafficClass::BestEffortWithRecovery => "best-effort+recovery",
            TrafficClass::Critical => "critical",
        };
        f.write_str(s)
    }
}

/// The §VI-A priority levels. Each intermediate level carries a sublevel
/// (`0` = most important within the level) "to precisely describe the order
/// in which service should be reduced".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Priority {
    /// Never discarded, never delayed while any other traffic exists.
    Highest,
    /// May be delayed but never discarded (e.g. critical-class data that is
    /// not time sensitive).
    DelayNotDrop(u8),
    /// May be discarded but not delayed: in-time delivery beats integrity
    /// (e.g. fresh video frames replacing stale ones).
    DropNotDelay(u8),
    /// Completely discardable under congestion.
    Lowest(u8),
}

impl Priority {
    /// Whether the scheduler may discard this data under congestion.
    pub fn can_drop(self) -> bool {
        matches!(self, Priority::DropNotDelay(_) | Priority::Lowest(_))
    }

    /// Whether the scheduler may hold this data back under congestion.
    pub fn can_delay(self) -> bool {
        matches!(self, Priority::DelayNotDrop(_) | Priority::Lowest(_))
    }

    /// Total order used by the degradation scheduler: lower rank is served
    /// first and shed last. Sublevels refine within each level.
    pub fn rank(self) -> u8 {
        match self {
            Priority::Highest => 0,
            Priority::DelayNotDrop(l) => 0x10 + l.min(0xf),
            Priority::DropNotDelay(l) => 0x20 + l.min(0xf),
            Priority::Lowest(l) => 0x30 + l.min(0xf),
        }
    }

    /// The packet-header priority band (0-3) used for on-path queueing
    /// (strict-priority queues look at this).
    pub fn band(self) -> u8 {
        match self {
            Priority::Highest => 0,
            Priority::DelayNotDrop(_) => 1,
            Priority::DropNotDelay(_) => 2,
            Priority::Lowest(_) => 3,
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Priority::Highest => write!(f, "highest"),
            Priority::DelayNotDrop(l) => write!(f, "delay-not-drop.{l}"),
            Priority::DropNotDelay(l) => write!(f, "drop-not-delay.{l}"),
            Priority::Lowest(l) => write!(f, "lowest.{l}"),
        }
    }
}

/// The example sub-streams of a MAR flow used throughout §VI-B and Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamKind {
    /// Connection metadata: constantly generated, must not be lost/delayed.
    Metadata,
    /// Sensor samples (position, orientation, ...): small, adjustable.
    Sensor,
    /// Video reference (key) frames: needed to decode the stream.
    VideoReference,
    /// Video interframes: the main adjustable variable.
    VideoInter,
    /// Server → client computation results.
    Result,
    /// Anything else (bulk transfers, prefetches).
    Bulk,
}

impl StreamKind {
    /// The class/priority assignment Fig. 4 uses for each sub-stream.
    pub fn default_class(self) -> (TrafficClass, Priority) {
        match self {
            StreamKind::Metadata => (TrafficClass::Critical, Priority::Highest),
            StreamKind::Sensor => (TrafficClass::FullBestEffort, Priority::DelayNotDrop(0)),
            StreamKind::VideoReference => (TrafficClass::BestEffortWithRecovery, Priority::Highest),
            StreamKind::VideoInter => (TrafficClass::FullBestEffort, Priority::Lowest(0)),
            StreamKind::Result => (TrafficClass::BestEffortWithRecovery, Priority::DropNotDelay(0)),
            StreamKind::Bulk => (TrafficClass::FullBestEffort, Priority::Lowest(1)),
        }
    }
}

impl fmt::Display for StreamKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StreamKind::Metadata => "metadata",
            StreamKind::Sensor => "sensor",
            StreamKind::VideoReference => "video-ref",
            StreamKind::VideoInter => "video-inter",
            StreamKind::Result => "result",
            StreamKind::Bulk => "bulk",
        };
        f.write_str(s)
    }
}

/// A map keyed by [`StreamKind`], stored as a fixed inline array.
///
/// The per-kind statistics on the send/deliver hot paths update one entry
/// per fragment; an array index replaces the hashing and probing a
/// `HashMap` would pay, and iteration order is the (deterministic) enum
/// declaration order.
#[derive(Debug, Clone)]
pub struct KindMap<V> {
    slots: [Option<V>; ALL_STREAM_KINDS.len()],
}

impl<V> Default for KindMap<V> {
    fn default() -> Self {
        KindMap { slots: [None, None, None, None, None, None] }
    }
}

impl<V> KindMap<V> {
    /// An empty map.
    pub fn new() -> Self {
        KindMap::default()
    }

    /// The value for `kind`, if one was ever inserted.
    pub fn get(&self, kind: &StreamKind) -> Option<&V> {
        self.slots[*kind as usize].as_ref()
    }

    /// Mutable access to the value for `kind`.
    pub fn get_mut(&mut self, kind: &StreamKind) -> Option<&mut V> {
        // marnet-lint: allow(panic-path): enum discriminant indexes a same-arity array
        self.slots[*kind as usize].as_mut()
    }

    /// The value for `kind`, inserting `f()` first if absent.
    pub fn get_or_insert_with(&mut self, kind: StreamKind, f: impl FnOnce() -> V) -> &mut V {
        // marnet-lint: allow(panic-path): enum discriminant indexes a same-arity array
        self.slots[kind as usize].get_or_insert_with(f)
    }

    /// The value for `kind`, inserting the default first if absent.
    pub fn or_default(&mut self, kind: StreamKind) -> &mut V
    where
        V: Default,
    {
        // marnet-lint: allow(panic-path): enum discriminant indexes a same-arity array
        self.slots[kind as usize].get_or_insert_with(V::default)
    }

    /// Iterates over present `(kind, value)` pairs in enum order.
    pub fn iter(&self) -> impl Iterator<Item = (StreamKind, &V)> {
        ALL_STREAM_KINDS.iter().zip(&self.slots).filter_map(|(k, v)| Some((*k, v.as_ref()?)))
    }

    /// Iterates over present values in enum order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.slots.iter().filter_map(|v| v.as_ref())
    }
}

/// Iterator over present `(kind, value)` pairs in enum order.
#[derive(Debug)]
pub struct KindMapIter<'a, V> {
    slots: &'a [Option<V>; ALL_STREAM_KINDS.len()],
    pos: usize,
}

impl<'a, V> Iterator for KindMapIter<'a, V> {
    type Item = (StreamKind, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        while self.pos < ALL_STREAM_KINDS.len() {
            let i = self.pos;
            self.pos += 1;
            // marnet-lint: allow(panic-path): `i < ALL_STREAM_KINDS.len()` by the loop bound
            if let Some(v) = &self.slots[i] {
                // marnet-lint: allow(panic-path): `i < ALL_STREAM_KINDS.len()` by the loop bound
                return Some((ALL_STREAM_KINDS[i], v));
            }
        }
        None
    }
}

impl<'a, V> IntoIterator for &'a KindMap<V> {
    type Item = (StreamKind, &'a V);
    type IntoIter = KindMapIter<'a, V>;

    /// `for (kind, v) in &map` — same order and filtering as [`KindMap::iter`].
    fn into_iter(self) -> KindMapIter<'a, V> {
        KindMapIter { slots: &self.slots, pos: 0 }
    }
}

impl<V> std::ops::Index<&StreamKind> for KindMap<V> {
    type Output = V;
    /// Panics (like `HashMap` indexing) when `kind` has no entry.
    fn index(&self, kind: &StreamKind) -> &V {
        self.slots[*kind as usize].as_ref().expect("no entry for stream kind")
    }
}

/// All stream kinds, for iteration in experiment code.
pub const ALL_STREAM_KINDS: [StreamKind; 6] = [
    StreamKind::Metadata,
    StreamKind::Sensor,
    StreamKind::VideoReference,
    StreamKind::VideoInter,
    StreamKind::Result,
    StreamKind::Bulk,
];

/// Stable lowercase label of each stream kind, aligned with
/// [`ALL_STREAM_KINDS`] (used as metric-name segments by telemetry).
pub const STREAM_KIND_LABELS: [&str; ALL_STREAM_KINDS.len()] =
    ["metadata", "sensor", "video-ref", "video-inter", "result", "bulk"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_recovery_semantics() {
        assert!(!TrafficClass::FullBestEffort.wants_recovery());
        assert!(TrafficClass::BestEffortWithRecovery.wants_recovery());
        assert!(TrafficClass::Critical.wants_recovery());
        assert!(TrafficClass::Critical.recovery_is_unconditional());
        assert!(!TrafficClass::BestEffortWithRecovery.recovery_is_unconditional());
    }

    #[test]
    fn priority_semantics_match_the_paper() {
        // (1) Highest: neither discarded nor delayed.
        assert!(!Priority::Highest.can_drop());
        assert!(!Priority::Highest.can_delay());
        // (2) Medium 1: delayed but never discarded.
        assert!(!Priority::DelayNotDrop(0).can_drop());
        assert!(Priority::DelayNotDrop(0).can_delay());
        // (3) Medium 2: discarded but not delayed.
        assert!(Priority::DropNotDelay(0).can_drop());
        assert!(!Priority::DropNotDelay(0).can_delay());
        // (4) Lowest: completely discardable.
        assert!(Priority::Lowest(0).can_drop());
        assert!(Priority::Lowest(0).can_delay());
    }

    #[test]
    fn rank_orders_levels_then_sublevels() {
        let order = [
            Priority::Highest,
            Priority::DelayNotDrop(0),
            Priority::DelayNotDrop(1),
            Priority::DropNotDelay(0),
            Priority::DropNotDelay(3),
            Priority::Lowest(0),
            Priority::Lowest(5),
        ];
        let ranks: Vec<u8> = order.iter().map(|p| p.rank()).collect();
        let mut sorted = ranks.clone();
        sorted.sort_unstable();
        assert_eq!(ranks, sorted, "ranks must already be in ascending order");
        // Sublevels saturate rather than bleed into the next level.
        assert!(Priority::DelayNotDrop(200).rank() < Priority::DropNotDelay(0).rank());
    }

    #[test]
    fn bands_collapse_sublevels() {
        assert_eq!(Priority::Highest.band(), 0);
        assert_eq!(Priority::DelayNotDrop(7).band(), 1);
        assert_eq!(Priority::DropNotDelay(2).band(), 2);
        assert_eq!(Priority::Lowest(9).band(), 3);
    }

    #[test]
    fn fig4_stream_assignments() {
        // The exact Fig. 4 example mapping.
        assert_eq!(
            StreamKind::Metadata.default_class(),
            (TrafficClass::Critical, Priority::Highest)
        );
        assert_eq!(
            StreamKind::Sensor.default_class(),
            (TrafficClass::FullBestEffort, Priority::DelayNotDrop(0))
        );
        assert_eq!(
            StreamKind::VideoReference.default_class(),
            (TrafficClass::BestEffortWithRecovery, Priority::Highest)
        );
        assert_eq!(
            StreamKind::VideoInter.default_class(),
            (TrafficClass::FullBestEffort, Priority::Lowest(0))
        );
    }

    #[test]
    fn displays() {
        assert_eq!(TrafficClass::Critical.to_string(), "critical");
        assert_eq!(Priority::DropNotDelay(1).to_string(), "drop-not-delay.1");
        assert_eq!(StreamKind::VideoReference.to_string(), "video-ref");
    }
}
