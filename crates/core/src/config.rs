//! Protocol configuration.

use crate::congestion::CongestionConfig;
use crate::multipath::MultipathPolicy;
use crate::recovery::{Backoff, RecoveryPolicy};
use marnet_sim::time::SimDuration;

/// Watchdog-driven outage handling at the sender.
///
/// Disabled by default: the hardened behaviour only engages when an
/// experiment opts in, so existing scenarios (and their artifacts) are
/// byte-identical with and without this feature compiled in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageConfig {
    /// Master switch for watchdog detection, outage-aware degradation and
    /// probe-based recovery.
    pub enabled: bool,
    /// Feedback silence after which the watchdog declares an outage (data
    /// was sent but nothing came back). Must comfortably exceed the
    /// feedback interval; the default is 4× the 15 ms default interval.
    pub watchdog_silence: SimDuration,
    /// Backoff schedule for recovery probes while the peer is unreachable.
    pub probe_backoff: Backoff,
    /// Congestion-attribution grace after an outage resolves: losses and
    /// delivery-rate samples reported inside this window describe the fault
    /// (packets that died against the dead link or peer, a rate window
    /// spanning the silence), so the congestion controller updates its RTT
    /// estimators but holds its rate instead of collapsing to the floor.
    pub congestion_grace: SimDuration,
}

impl Default for OutageConfig {
    fn default() -> Self {
        OutageConfig {
            enabled: false,
            watchdog_silence: SimDuration::from_millis(60),
            probe_backoff: Backoff::default(),
            congestion_grace: SimDuration::from_millis(150),
        }
    }
}

impl OutageConfig {
    /// The hardened profile: watchdog on with default constants.
    pub fn hardened() -> Self {
        OutageConfig { enabled: true, ..OutageConfig::default() }
    }
}

/// Configuration of an [`crate::endpoint::ArSender`].
///
/// The tunable controller subset of these fields is mirrored by
/// [`crate::policy::PolicyParams`]; `PolicyParams::default().to_config()`
/// reproduces [`ArConfig::default`] exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct ArConfig {
    /// Maximum fragment payload per packet.
    pub mtu: u32,
    /// Pacing-tick interval (budget is released per tick).
    pub tick: SimDuration,
    /// Receiver feedback interval.
    pub feedback_interval: SimDuration,
    /// Age beyond which droppable data is shed even without a deadline.
    pub stale_after: SimDuration,
    /// Backlog horizon (in ticks of budget) before congestion shedding.
    pub backlog_ticks: f64,
    /// Congestion-controller tuning (per path).
    pub congestion: CongestionConfig,
    /// Retransmission gate.
    pub recovery: RecoveryPolicy,
    /// XOR FEC group size for the recovery class; `None` disables FEC.
    pub fec_group: Option<usize>,
    /// Path-usage policy.
    pub policy: MultipathPolicy,
    /// Duplicate recovery-class packets on a second path.
    pub duplicate_recovery: bool,
    /// Watchdog/outage handling (disabled by default).
    pub outage: OutageConfig,
    /// Recycle payload buffers through slab pools on the hot send/receive
    /// paths. Artifacts are byte-identical either way; `false` forces a
    /// fresh allocation per payload, which the determinism suite uses to
    /// prove pooling is observationally inert.
    pub pooling: bool,
}

impl Default for ArConfig {
    fn default() -> Self {
        ArConfig {
            mtu: 1200,
            tick: SimDuration::from_millis(5),
            feedback_interval: SimDuration::from_millis(15),
            stale_after: SimDuration::from_millis(150),
            backlog_ticks: 6.0,
            congestion: CongestionConfig::default(),
            recovery: RecoveryPolicy::default(),
            fec_group: Some(8),
            policy: MultipathPolicy::WifiPreferred,
            duplicate_recovery: false,
            outage: OutageConfig::default(),
            pooling: true,
        }
    }
}

impl ArConfig {
    /// Bytes of budget released per pacing tick at `rate` bytes/s.
    pub fn budget_per_tick(&self, rate_bytes_per_sec: f64) -> f64 {
        rate_bytes_per_sec * self.tick.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ArConfig::default();
        assert!(c.mtu > 0 && c.mtu <= 1460);
        assert!(c.tick < c.stale_after);
        assert!(c.fec_group.is_some());
    }

    #[test]
    fn budget_math() {
        let c = ArConfig { tick: SimDuration::from_millis(10), ..Default::default() };
        assert_eq!(c.budget_per_tick(100_000.0), 1000.0);
    }
}
